//! Process state: machine context, credentials, descriptors, signals.

use std::sync::Arc;

use ia_abi::signal::{SigDisposition, SigSet, Signal};
use ia_abi::{RawArgs, Timeval};
use ia_vfs::Ino;
use ia_vm::{AddressSpace, FusedProgram, Insn, VmState};

use crate::files::FdTable;

/// Process identifier.
pub type Pid = u32;

/// Something a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitChannel {
    /// A pipe to become readable (or hang up).
    PipeReadable(ia_vfs::PipeId),
    /// A pipe to gain space (or hang up).
    PipeWritable(ia_vfs::PipeId),
    /// Any child to change state.
    Child,
    /// Any signal (`sigsuspend`).
    AnySignal,
    /// `select`: any descriptor activity or the timeout.
    Select {
        /// Virtual-clock deadline in ns, `u64::MAX` for none.
        deadline_ns: u64,
    },
    /// Terminal input.
    TtyInput,
    /// A listening socket's backlog to become non-empty.
    SockAccept,
}

/// A trap that must be re-dispatched when its wait channel fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTrap {
    /// Raw syscall number.
    pub nr: u32,
    /// Raw arguments.
    pub args: RawArgs,
    /// How many times this trap has been restarted.
    pub restarts: u32,
}

/// Scheduler-visible process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Ready to run.
    Runnable,
    /// Waiting on a channel, with the trap to restart.
    Blocked(WaitChannel),
    /// Stopped by a job-control signal; resumed by `SIGCONT`.
    Stopped,
    /// Exited, holding the wait-status word for the parent.
    Zombie(u32),
}

/// Per-signal disposition plus the mask to apply while handling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigAction {
    /// What to do.
    pub disposition: SigDisposition,
    /// Extra signals blocked during the handler.
    pub mask: SigSet,
}

/// A process's signal state.
#[derive(Debug, Clone, Default)]
pub struct SigState {
    /// Signals posted but not yet delivered.
    pub pending: SigSet,
    /// Signals currently blocked.
    pub mask: SigSet,
    /// Disposition of each signal (index = signo − 1).
    pub actions: [SigAction; 31],
    /// Saved mask for `sigsuspend` to restore on return.
    pub suspend_saved: Option<SigSet>,
}

impl SigState {
    /// Posts a signal (idempotent while pending).
    pub fn post(&mut self, sig: Signal) {
        self.pending.add(sig);
    }

    /// The action currently installed for `sig`.
    #[must_use]
    pub fn action(&self, sig: Signal) -> SigAction {
        self.actions[(sig.number() - 1) as usize]
    }

    /// Installs an action, returning the old one. SIGKILL/SIGSTOP cannot be
    /// caught or ignored.
    pub fn set_action(&mut self, sig: Signal, act: SigAction) -> Result<SigAction, ia_abi::Errno> {
        if sig.uncatchable() && !matches!(act.disposition, SigDisposition::Default) {
            return Err(ia_abi::Errno::EINVAL);
        }
        let slot = &mut self.actions[(sig.number() - 1) as usize];
        let old = *slot;
        *slot = act;
        Ok(old)
    }

    /// The lowest pending signal not blocked by the mask, if any.
    #[must_use]
    pub fn deliverable(&self) -> Option<Signal> {
        self.pending.minus(self.mask).lowest()
    }

    /// Resets caught handlers to default (what `execve` does); ignored
    /// dispositions survive exec in BSD.
    pub fn reset_for_exec(&mut self) {
        for a in &mut self.actions {
            if matches!(a.disposition, SigDisposition::Handler(_)) {
                *a = SigAction::default();
            }
        }
    }
}

/// Resource-usage counters (`getrusage`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Usage {
    /// Instructions retired in user mode.
    pub user_insns: u64,
    /// Virtual ns spent in system calls.
    pub sys_ns: u64,
    /// Block-input operations (reads that reached the filesystem).
    pub inblock: u64,
    /// Block-output operations.
    pub oublock: u64,
    /// Signals delivered.
    pub nsignals: u64,
    /// Voluntary context switches (blocking).
    pub nvcsw: u64,
    /// Involuntary context switches (slice expiry).
    pub nivcsw: u64,
    /// System calls made, by trap count.
    pub nsyscalls: u64,
}

/// One simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id (0 = orphaned / kernel-spawned).
    pub ppid: Pid,
    /// Process group.
    pub pgrp: Pid,
    /// Machine registers and pc.
    pub vm: VmState,
    /// Data/stack address space.
    pub mem: AddressSpace,
    /// Code segment (shared after `fork`, replaced by `execve`).
    pub code: Arc<Vec<Insn>>,
    /// Superinstruction rewrite of `code`, derived once per image and
    /// shared exactly like it. Executed by the fused engine; never
    /// observable (analyze and the plain engine see raw code only).
    pub fused: Arc<FusedProgram>,
    /// Scheduler state.
    pub state: ProcState,
    /// A trap awaiting restart while blocked.
    pub pending_trap: Option<PendingTrap>,
    /// Descriptor table.
    pub fds: FdTable,
    /// Working directory inode.
    pub cwd: Ino,
    /// Root directory inode (`chroot`).
    pub root: Ino,
    /// Real user id.
    pub uid: u32,
    /// Effective user id.
    pub euid: u32,
    /// Real group id.
    pub gid: u32,
    /// Effective group id.
    pub egid: u32,
    /// File-creation mask.
    pub umask: u32,
    /// Signal state.
    pub sig: SigState,
    /// Resource usage.
    pub usage: Usage,
    /// Interval timer (`setitimer(ITIMER_REAL)`): next expiry in virtual ns
    /// and reload interval in ns (0 = one-shot).
    pub itimer: Option<(u64, u64)>,
    /// Command name, for diagnostics and `trace` output.
    pub name: Vec<u8>,
    /// Instructions left in the current scheduling slice.
    pub slice_left: u32,
    /// Scheduling priority (`nice`); bookkeeping only.
    pub priority: i32,
    /// Deadline stashed by a blocked `select`, in virtual ns.
    pub select_deadline: Option<u64>,
}

impl Process {
    /// Effective credentials for filesystem permission checks.
    #[must_use]
    pub fn cred(&self) -> ia_vfs::Cred {
        ia_vfs::Cred::new(self.euid, self.egid)
    }

    /// True if this process may signal `other` (same effective or real uid,
    /// or superuser).
    #[must_use]
    pub fn can_signal(&self, other: &Process) -> bool {
        self.euid == 0 || self.euid == other.euid || self.uid == other.uid
    }

    /// Builds the `fork` child: identical machine state and descriptors,
    /// but the address space is duplicated through
    /// [`AddressSpace::fork_clone`], which copies only the regions the
    /// parent has actually written instead of the whole space. The child
    /// starts runnable with fresh usage counters, no timer, no pending
    /// signals, and a 0 return value in its registers.
    #[must_use]
    pub fn fork_child(&self, child_pid: Pid) -> Process {
        let mut vm = self.vm.clone();
        vm.apply_sysret(Ok([0, 0]));
        let mut sig = self.sig.clone();
        sig.pending = SigSet::EMPTY;
        Process {
            pid: child_pid,
            ppid: self.pid,
            pgrp: self.pgrp,
            vm,
            mem: self.mem.fork_clone(),
            code: Arc::clone(&self.code),
            fused: Arc::clone(&self.fused),
            state: ProcState::Runnable,
            pending_trap: None,
            fds: self.fds.clone(),
            cwd: self.cwd,
            root: self.root,
            uid: self.uid,
            euid: self.euid,
            gid: self.gid,
            egid: self.egid,
            umask: self.umask,
            sig,
            usage: Usage::default(),
            itimer: None,
            name: self.name.clone(),
            slice_left: 0,
            priority: self.priority,
            select_deadline: None,
        }
    }

    /// Converts the usage counters to the wire `Rusage`, given the profile's
    /// per-instruction cost for user time.
    #[must_use]
    pub fn rusage(&self, insn_ns: u64) -> ia_abi::Rusage {
        ia_abi::Rusage {
            utime: Timeval::from_micros((self.usage.user_insns * insn_ns / 1_000) as i64),
            stime: Timeval::from_micros((self.usage.sys_ns / 1_000) as i64),
            maxrss: self.mem.size() as u64 / 1024,
            inblock: self.usage.inblock,
            oublock: self.usage.oublock,
            nsignals: self.usage.nsignals,
            nvcsw: self.usage.nvcsw,
            nivcsw: self.usage.nivcsw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_abi::Errno;

    #[test]
    fn sigstate_post_and_deliver_order() {
        let mut s = SigState::default();
        s.post(Signal::SIGTERM);
        s.post(Signal::SIGHUP);
        assert_eq!(s.deliverable(), Some(Signal::SIGHUP));
        s.mask.add(Signal::SIGHUP);
        assert_eq!(s.deliverable(), Some(Signal::SIGTERM));
        s.mask.add(Signal::SIGTERM);
        assert_eq!(s.deliverable(), None);
    }

    #[test]
    fn sigkill_cannot_be_caught() {
        let mut s = SigState::default();
        let act = SigAction {
            disposition: SigDisposition::Handler(0x100),
            mask: SigSet::EMPTY,
        };
        assert_eq!(s.set_action(Signal::SIGKILL, act), Err(Errno::EINVAL));
        assert_eq!(s.set_action(Signal::SIGSTOP, act), Err(Errno::EINVAL));
        assert!(s.set_action(Signal::SIGTERM, act).is_ok());
    }

    #[test]
    fn exec_resets_handlers_but_keeps_ignores() {
        let mut s = SigState::default();
        s.set_action(
            Signal::SIGTERM,
            SigAction {
                disposition: SigDisposition::Handler(0x40),
                mask: SigSet::EMPTY,
            },
        )
        .unwrap();
        s.set_action(
            Signal::SIGINT,
            SigAction {
                disposition: SigDisposition::Ignore,
                mask: SigSet::EMPTY,
            },
        )
        .unwrap();
        s.reset_for_exec();
        assert!(matches!(
            s.action(Signal::SIGTERM).disposition,
            SigDisposition::Default
        ));
        assert!(matches!(
            s.action(Signal::SIGINT).disposition,
            SigDisposition::Ignore
        ));
    }
}
