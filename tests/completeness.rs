//! The paper's §3.2 goal: agents can both use and provide the *entire*
//! system interface — every system call on the downward path and every
//! signal on the upward path.

use interposition_agents::abi::sysno::ALL_SYSCALLS;
use interposition_agents::abi::{RawArgs, Signal, Sysno};
use interposition_agents::agents::TimeSymbolic;
use interposition_agents::interpose::{Agent, InterestSet, InterposedRouter, SysCtx};
use interposition_agents::kernel::{KernelBuilder, SysOutcome, SyscallRouter};

/// Plausible-but-harmless raw arguments for exercising a call: valid
/// pointers into scratch data space, fd 1 (the console).
fn probe_args(sys: Sysno) -> RawArgs {
    use Sysno::*;
    // A data address known to hold a NUL-terminated path string (set up by
    // `probe_world`), and a big scratch buffer.
    let path = 0x1000u64;
    let buf = 0x1400u64;
    match sys {
        Open | Stat | Lstat | Access | Chdir | Unlink | Readlink | Truncate | Utimes | Chroot
        | Mkdir | Rmdir | Mknod | Mkfifo | Execve => [path, buf, 64, 0, 0, 0],
        Link | Rename | Symlink => [path, path, 0, 0, 0, 0],
        Read | Write => [1, buf, 8, 0, 0, 0],
        Readv | Writev => [1, buf, 0, 0, 0, 0],
        Wait4 => [0, 0, 1 /* WNOHANG */, 0, 0, 0],
        Kill => [0x7fff_ffff, 0, 0, 0, 0, 0], // sig 0 probe of a bogus pid
        Sigaction => [15, 0, buf, 0, 0, 0],
        Sigsuspend => [0, 0, 0, 0, 0, 0],
        Sigreturn => [buf, 0, 0, 0, 0, 0],
        Gettimeofday | Getitimer | Getrusage | Settimeofday | Adjtime => [buf, 0, 0, 0, 0, 0],
        Setitimer => [0, 0, buf, 0, 0, 0],
        Select => [0, 0, 0, 0, buf, 0],
        Getdirentries => [1, buf, 128, 0, 0, 0],
        Fork | Vfork | Exit => [0, 0, 0, 0, 0, 0], // dispatched but skipped below
        _ => [1, buf, 0, 0, 0, 0],
    }
}

/// Issues every syscall in the table twice — once straight to the kernel,
/// once through a full-interception pass-through chain — and demands
/// identical results. This is the "no two classes of programs" property:
/// nothing an application can ask for falls outside what agents handle.
#[test]
fn every_syscall_passes_through_agents_unchanged() {
    let img = ia_vm::assemble("main: halt\n").unwrap();
    for &sys in ALL_SYSCALLS {
        // Lifecycle calls tear down the probe process; they are covered by
        // the workload tests instead.
        if matches!(
            sys,
            Sysno::Exit | Sysno::Fork | Sysno::Vfork | Sysno::Execve | Sysno::Sigreturn
        ) {
            continue;
        }
        let run = |agent: bool| -> SysOutcome {
            let mut k = KernelBuilder::new().build();
            let pid = k.spawn_image(&img, &[b"probe"], b"probe");
            // A valid path string at a known address.
            k.proc_mut(pid)
                .unwrap()
                .mem
                .write_cstr(0x1000, b"/tmp/probe-target")
                .unwrap();
            let mut router = InterposedRouter::new();
            if agent {
                router.push_agent(pid, TimeSymbolic::boxed());
            }
            router.route(&mut k, pid, sys.number(), probe_args(sys), 0)
        };
        let without = run(false);
        let with = run(true);
        assert_eq!(without, with, "{sys} differs under interposition");
    }
}

/// An agent that records every signal headed for the application.
struct SignalLog {
    seen: std::sync::Arc<std::sync::Mutex<Vec<Signal>>>,
}

impl Agent for SignalLog {
    fn name(&self) -> &'static str {
        "signal-log"
    }
    fn interests(&self) -> InterestSet {
        InterestSet::NONE
    }
    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        ctx.down(nr, args)
    }
    fn signal_incoming(
        &mut self,
        _ctx: &mut SysCtx<'_>,
        sig: Signal,
    ) -> interposition_agents::interpose::SignalVerdict {
        self.seen.lock().unwrap().push(sig);
        interposition_agents::interpose::SignalVerdict::Deliver
    }
    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(SignalLog {
            seen: self.seen.clone(),
        })
    }
}

/// The upward path: signals of every catchable kind flow through the agent
/// before reaching the application.
#[test]
fn signals_flow_through_the_agent_chain() {
    // The program installs a handler for every catchable signal, raises a
    // few, and exits normally only if its handlers ran.
    use ia_abi::Sysno;
    use ia_vm::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    let act = b.data_space(16);
    let counter = b.data_space(8);
    let start = b.new_label();
    b.jmp(start);
    b.emit(ia_vm::Insn::Nop);
    // handler: bump a counter *in memory* (registers are restored by
    // sigreturn, exactly as the real sigcontext machinery demands), then
    // return through the saved context.
    let handler_addr = 2;
    b.la(10, counter);
    b.ld(11, 10, 0);
    b.addi(11, 11, 1);
    b.st(10, 11, 0);
    b.mov(0, 1);
    b.sys(Sysno::Sigreturn);
    b.bind(start);
    b.entry_here();
    b.li(3, handler_addr);
    b.la(1, act);
    b.st(1, 3, 0);
    for sig in [Signal::SIGUSR1, Signal::SIGUSR2, Signal::SIGTERM] {
        b.li(0, u64::from(sig.number()));
        b.la(1, act);
        b.li(2, 0);
        b.sys(Sysno::Sigaction);
    }
    for sig in [Signal::SIGUSR1, Signal::SIGUSR2, Signal::SIGTERM] {
        b.sys(Sysno::Getpid);
        b.li(1, u64::from(sig.number()));
        b.sys(Sysno::Kill);
    }
    // exit(number of handled signals)
    b.la(10, counter);
    b.ld(0, 10, 0);
    b.sys(Sysno::Exit);
    let img = b.build();

    let mut k = KernelBuilder::new().build();
    let pid = k.spawn_image(&img, &[b"sig"], b"sig");
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut router = InterposedRouter::new();
    router.push_agent(pid, Box::new(SignalLog { seen: seen.clone() }));
    k.run_with(&mut router);

    assert_eq!(
        k.exit_status(pid),
        Some(ia_abi::signal::wait_status_exited(3)),
        "all three handlers ran"
    );
    assert_eq!(
        *seen.lock().unwrap(),
        vec![Signal::SIGUSR1, Signal::SIGUSR2, Signal::SIGTERM],
        "the agent observed each signal on its way up"
    );
}

/// The interface is wide (the paper's premise): our curated table still
/// has the many-calls-few-abstractions structure.
#[test]
fn interface_width_and_abstraction_classification() {
    assert!(
        ALL_SYSCALLS.len() >= 70,
        "a large interface: {}",
        ALL_SYSCALLS.len()
    );
    let path_calls = ALL_SYSCALLS.iter().filter(|s| s.uses_pathname()).count();
    let desc_calls = ALL_SYSCALLS.iter().filter(|s| s.uses_descriptor()).count();
    assert!(path_calls >= 18);
    assert!(desc_calls >= 20);
}
