//! Unix-domain-style sockets, built on pipe pairs.
//!
//! A connection is two pipes, one per direction. `socketpair` creates a
//! pair directly; `bind`+`listen`+`connect`+`accept` rendezvous through a
//! socket inode in the filesystem name space.

use std::collections::{HashMap, VecDeque};

use ia_abi::Errno;
use ia_vfs::{Ino, PipeId, PipeTable};

use crate::files::SockId;

/// State of one socket.
#[derive(Debug, Clone)]
pub enum SockState {
    /// Fresh from `socket(2)`.
    Unbound,
    /// Bound to a filesystem name but not yet listening.
    Bound(Ino),
    /// Listening; queued connections await `accept`.
    Listening {
        /// The bound name.
        ino: Ino,
        /// Completed connections: pipes are (client→server, server→client).
        backlog: VecDeque<(PipeId, PipeId)>,
        /// Maximum queued connections.
        limit: usize,
    },
    /// Connected; `rx` is read by this socket, `tx` written.
    Connected {
        /// Pipe this end reads from.
        rx: PipeId,
        /// Pipe this end writes to.
        tx: PipeId,
    },
}

/// One socket.
#[derive(Debug, Clone)]
pub struct Socket {
    /// Protocol state.
    pub state: SockState,
}

/// The kernel socket table.
#[derive(Debug, Clone, Default)]
pub struct SocketTable {
    socks: HashMap<u64, Socket>,
    by_ino: HashMap<Ino, SockId>,
    next: u64,
}

impl SocketTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> SocketTable {
        SocketTable::default()
    }

    /// Number of live sockets (created and not yet released).
    #[must_use]
    pub fn live(&self) -> usize {
        self.socks.len()
    }

    /// Creates a fresh socket.
    pub fn create(&mut self) -> SockId {
        let id = SockId(self.next);
        self.next += 1;
        self.socks.insert(
            id.0,
            Socket {
                state: SockState::Unbound,
            },
        );
        id
    }

    /// Borrows a socket.
    pub fn get(&self, id: SockId) -> Result<&Socket, Errno> {
        self.socks.get(&id.0).ok_or(Errno::EBADF)
    }

    /// Mutably borrows a socket.
    pub fn get_mut(&mut self, id: SockId) -> Result<&mut Socket, Errno> {
        self.socks.get_mut(&id.0).ok_or(Errno::EBADF)
    }

    /// Binds a socket to a name-space inode created by the caller.
    pub fn bind(&mut self, id: SockId, ino: Ino) -> Result<(), Errno> {
        let s = self.get_mut(id)?;
        match s.state {
            SockState::Unbound => {
                s.state = SockState::Bound(ino);
                self.by_ino.insert(ino, id);
                Ok(())
            }
            _ => Err(Errno::EINVAL),
        }
    }

    /// Starts listening on a bound socket.
    pub fn listen(&mut self, id: SockId, backlog: usize) -> Result<(), Errno> {
        let s = self.get_mut(id)?;
        match s.state {
            SockState::Bound(ino) => {
                s.state = SockState::Listening {
                    ino,
                    backlog: VecDeque::new(),
                    limit: backlog.clamp(1, 128),
                };
                Ok(())
            }
            SockState::Listening { .. } => Ok(()),
            _ => Err(Errno::EDESTADDRREQ),
        }
    }

    /// Connects `id` to the listener bound at `ino`. Creates the two pipes
    /// in `pipes` and queues the server side on the listener's backlog.
    pub fn connect(&mut self, id: SockId, ino: Ino, pipes: &mut PipeTable) -> Result<(), Errno> {
        let listener = *self.by_ino.get(&ino).ok_or(Errno::ECONNREFUSED)?;
        {
            let l = self.get_mut(listener)?;
            let SockState::Listening { backlog, limit, .. } = &mut l.state else {
                return Err(Errno::ECONNREFUSED);
            };
            if backlog.len() >= *limit {
                return Err(Errno::ECONNREFUSED);
            }
            let c2s = pipes.create();
            let s2c = pipes.create();
            // Client reads s2c / writes c2s; server the reverse. Register
            // both endpoints of each pipe now so neither side sees a
            // spurious hangup before the other attaches.
            pipes.add_writer(c2s);
            pipes.add_reader(c2s);
            pipes.add_writer(s2c);
            pipes.add_reader(s2c);
            backlog.push_back((c2s, s2c));
            let client = self.get_mut(id)?;
            match client.state {
                SockState::Unbound => {
                    client.state = SockState::Connected { rx: s2c, tx: c2s };
                    Ok(())
                }
                _ => Err(Errno::EISCONN),
            }
        }
    }

    /// Accepts a queued connection, producing a new connected socket.
    /// `Ok(None)` means the backlog is empty (caller blocks).
    pub fn accept(&mut self, id: SockId) -> Result<Option<SockId>, Errno> {
        let l = self.get_mut(id)?;
        let SockState::Listening { backlog, .. } = &mut l.state else {
            return Err(Errno::EINVAL);
        };
        let Some((c2s, s2c)) = backlog.pop_front() else {
            return Ok(None);
        };
        let conn = SockId(self.next);
        self.next += 1;
        self.socks.insert(
            conn.0,
            Socket {
                state: SockState::Connected { rx: c2s, tx: s2c },
            },
        );
        Ok(Some(conn))
    }

    /// Creates a connected pair (`socketpair(2)`).
    pub fn pair(&mut self, pipes: &mut PipeTable) -> (SockId, SockId) {
        let ab = pipes.create();
        let ba = pipes.create();
        pipes.add_reader(ab);
        pipes.add_writer(ab);
        pipes.add_reader(ba);
        pipes.add_writer(ba);
        let a = SockId(self.next);
        self.next += 1;
        let b = SockId(self.next);
        self.next += 1;
        self.socks.insert(
            a.0,
            Socket {
                state: SockState::Connected { rx: ba, tx: ab },
            },
        );
        self.socks.insert(
            b.0,
            Socket {
                state: SockState::Connected { rx: ab, tx: ba },
            },
        );
        (a, b)
    }

    /// Releases a socket (last descriptor closed), dropping its pipe
    /// endpoints.
    pub fn release(&mut self, id: SockId, pipes: &mut PipeTable) {
        if let Some(s) = self.socks.remove(&id.0) {
            match s.state {
                SockState::Connected { rx, tx } => {
                    pipes.drop_reader(rx);
                    pipes.drop_writer(tx);
                }
                SockState::Listening { ino, backlog, .. } => {
                    self.by_ino.remove(&ino);
                    for (c2s, s2c) in backlog {
                        pipes.drop_reader(c2s);
                        pipes.drop_writer(s2c);
                    }
                }
                SockState::Bound(ino) => {
                    self.by_ino.remove(&ino);
                }
                SockState::Unbound => {}
            }
        }
    }

    /// True if a listener has a queued connection ready for `accept`.
    #[must_use]
    pub fn acceptable(&self, id: SockId) -> bool {
        matches!(
            self.socks.get(&id.0),
            Some(Socket {
                state: SockState::Listening { backlog, .. }
            }) if !backlog.is_empty()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_vfs::pipe::PipeIo;

    #[test]
    fn socketpair_carries_both_directions() {
        let mut pipes = PipeTable::new();
        let mut t = SocketTable::new();
        let (a, b) = t.pair(&mut pipes);
        let (SockState::Connected { tx: atx, .. }, SockState::Connected { rx: brx, .. }) = (
            t.get(a).unwrap().state.clone(),
            t.get(b).unwrap().state.clone(),
        ) else {
            panic!("not connected");
        };
        assert_eq!(atx, brx, "a's tx is b's rx");
        assert_eq!(pipes.get_mut(atx).unwrap().write(b"ping"), PipeIo::Done(4));
        let mut out = Vec::new();
        assert_eq!(
            pipes.get_mut(brx).unwrap().read(&mut out, 8),
            PipeIo::Done(4)
        );
        assert_eq!(out, b"ping");
    }

    #[test]
    fn bind_listen_connect_accept_flow() {
        let mut pipes = PipeTable::new();
        let mut t = SocketTable::new();
        let server = t.create();
        t.bind(server, 42).unwrap();
        t.listen(server, 5).unwrap();
        assert!(!t.acceptable(server));
        assert_eq!(t.accept(server).unwrap(), None, "empty backlog");

        let client = t.create();
        t.connect(client, 42, &mut pipes).unwrap();
        assert!(t.acceptable(server));
        let conn = t.accept(server).unwrap().expect("queued connection");

        // Client → server.
        let SockState::Connected { tx, .. } = t.get(client).unwrap().state else {
            panic!()
        };
        let SockState::Connected { rx, .. } = t.get(conn).unwrap().state else {
            panic!()
        };
        pipes.get_mut(tx).unwrap().write(b"hi");
        let mut out = Vec::new();
        pipes.get_mut(rx).unwrap().read(&mut out, 8);
        assert_eq!(out, b"hi");
    }

    #[test]
    fn connect_to_nonlistener_refused() {
        let mut pipes = PipeTable::new();
        let mut t = SocketTable::new();
        let c = t.create();
        assert_eq!(t.connect(c, 7, &mut pipes), Err(Errno::ECONNREFUSED));
        let bound = t.create();
        t.bind(bound, 7).unwrap();
        // Bound but not listening.
        assert_eq!(t.connect(c, 7, &mut pipes), Err(Errno::ECONNREFUSED));
    }

    #[test]
    fn double_bind_rejected_and_listen_needs_bind() {
        let mut t = SocketTable::new();
        let s = t.create();
        t.bind(s, 1).unwrap();
        assert_eq!(t.bind(s, 2), Err(Errno::EINVAL));
        let u = t.create();
        assert_eq!(t.listen(u, 4), Err(Errno::EDESTADDRREQ));
    }

    #[test]
    fn release_connected_drops_pipe_endpoints() {
        let mut pipes = PipeTable::new();
        let mut t = SocketTable::new();
        let (a, b) = t.pair(&mut pipes);
        assert_eq!(pipes.len(), 2);
        t.release(a, &mut pipes);
        // b now sees hangup on read.
        let SockState::Connected { rx, .. } = t.get(b).unwrap().state else {
            panic!()
        };
        let mut out = Vec::new();
        assert_eq!(pipes.get_mut(rx).unwrap().read(&mut out, 4), PipeIo::Hangup);
        t.release(b, &mut pipes);
        assert_eq!(pipes.len(), 0);
    }

    #[test]
    fn backlog_limit_refuses_extra_connections() {
        let mut pipes = PipeTable::new();
        let mut t = SocketTable::new();
        let server = t.create();
        t.bind(server, 9).unwrap();
        t.listen(server, 1).unwrap();
        let c1 = t.create();
        t.connect(c1, 9, &mut pipes).unwrap();
        let c2 = t.create();
        assert_eq!(t.connect(c2, 9, &mut pipes), Err(Errno::ECONNREFUSED));
    }
}
