//! The interposed router: attaches agent chains to the scheduler's trap
//! path.

use std::collections::HashMap;

use ia_abi::{RawArgs, Signal, Sysno};
use ia_kernel::{
    BatchCall, FastMode, FastSpec, Kernel, KernelSnapshot, Pid, SysOutcome, SyscallRouter,
};

use crate::agent::{dispatch_chain, dispatch_chain_from, signal_chain, Agent, SysCtx};
use crate::interest::InterestSet;

/// Flat-table entry meaning "no agent interested: call the kernel".
const KERNEL_DIRECT: u8 = 0xFF;

/// Maximum calls buffered in one vectored upcall before it is flushed.
pub const BATCH_CAP: usize = 32;

/// Counters describing what the router did, for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Traps that entered an agent chain.
    pub intercepted: u64,
    /// Traps that bypassed the chain (pay-per-use fast path).
    pub passthrough: u64,
    /// Traps on processes with no chain at all.
    pub unmanaged: u64,
    /// Signals filtered through agent chains.
    pub signals_filtered: u64,
    /// Chains cloned into forked children.
    pub chains_forked: u64,
}

/// Consecutive same-number calls awaiting delivery as one vectored upcall.
struct PendingBatch {
    nr: u32,
    calls: Vec<BatchCall>,
}

/// One process's agent chain plus everything compiled from it at
/// install/modify time: the interest union, the flat per-number dispatch
/// table, the batchable-number set, and any pending vectored upcall.
struct Chain {
    agents: Vec<Box<dyn Agent>>,
    interest: InterestSet,
    /// Flat dispatch table: trap number → index of the first interested
    /// agent, or [`KERNEL_DIRECT`]. Entry 255 also covers all numbers
    /// ≥ 256 (they share one interest bit). Only trusted while `fixed`.
    flat: [u8; 256],
    /// Numbers where every interested agent accepts vectored upcalls.
    batchable: InterestSet,
    /// All agents report fixed interests (and the chain is short enough to
    /// index), so `flat` and `batchable` are trustworthy between mutations.
    fixed: bool,
    pending: Option<PendingBatch>,
}

impl Chain {
    fn new() -> Chain {
        Chain {
            agents: Vec::new(),
            interest: InterestSet::NONE,
            flat: [KERNEL_DIRECT; 256],
            batchable: InterestSet::NONE,
            fixed: true,
            pending: None,
        }
    }

    /// Recompiles every cached table from the current agent list. Called on
    /// each chain mutation (install, removal, fork) — this *is* the flat
    /// table and vDSO invalidation rule: mutation implies recompilation.
    fn recompute(&mut self) {
        self.interest = self
            .agents
            .iter()
            .fold(InterestSet::NONE, |acc, a| acc.union(&a.interests()));
        self.fixed = self.agents.len() < usize::from(KERNEL_DIRECT)
            && self.agents.iter().all(|a| a.interests_fixed());
        self.flat = [KERNEL_DIRECT; 256];
        self.batchable = InterestSet::NONE;
        if !self.fixed {
            return;
        }
        for (i, agent) in self.agents.iter().enumerate().rev() {
            for nr in agent.interests().iter() {
                self.flat[nr as usize] = i as u8;
            }
        }
        for nr in self.interest.iter() {
            let all_batch = self
                .agents
                .iter()
                .all(|a| !a.interests().contains(nr) || a.batch_interests().contains(nr));
            if all_batch {
                self.batchable.add(nr);
            }
        }
    }

    /// Delivers the pending vectored upcall, if any: charges the single
    /// amortized interception cost and hands each batch-interested agent
    /// the recorded calls. Charging order mirrors the per-call intercepted
    /// path (intercept, then one virtual call per visited agent).
    fn flush(&mut self, k: &mut Kernel, pid: Pid) {
        let Some(batch) = self.pending.take() else {
            return;
        };
        let nr = batch.nr;
        k.obs
            .layer_enter("interpose", pid, nr, k.clock.elapsed_ns());
        let cost = k.profile.intercept_ns;
        k.clock.advance_ns(cost);
        if let Ok(p) = k.proc_mut(pid) {
            p.usage.sys_ns += cost;
        }
        for i in 0..self.agents.len() {
            if !self.agents[i].interests().contains(nr)
                || !self.agents[i].batch_interests().contains(nr)
            {
                continue;
            }
            let vcost = k.profile.virtual_call_ns;
            k.clock.advance_ns(vcost);
            if let Ok(p) = k.proc_mut(pid) {
                p.usage.sys_ns += vcost;
            }
            let layer = self.agents[i].name();
            k.obs.layer_enter(layer, pid, nr, k.clock.elapsed_ns());
            let (cur, below) = self.agents.split_at_mut(i + 1);
            let mut ctx = SysCtx::new(k, pid, below, 0);
            cur[i].syscall_batch(&mut ctx, nr, &batch.calls);
            k.obs.layer_exit(
                layer,
                pid,
                nr,
                SysOutcome::ok().obs_outcome(),
                k.clock.elapsed_ns(),
            );
        }
        k.obs.layer_exit(
            "interpose",
            pid,
            nr,
            SysOutcome::ok().obs_outcome(),
            k.clock.elapsed_ns(),
        );
    }
}

/// A [`SyscallRouter`] that runs registered traps through per-process agent
/// chains before (or instead of) the kernel.
///
/// ```
/// use ia_interpose::InterposedRouter;
/// use ia_kernel::{KernelBuilder, Kernel, RunOutcome, I486_25};
///
/// let mut kernel = KernelBuilder::new().build();
/// let image = ia_vm::assemble("main:\n li r0, 0\n sys exit\n").unwrap();
/// kernel.spawn_image(&image, &[b"p"], b"p");
/// let mut router = InterposedRouter::new(); // no agents yet: identity
/// assert_eq!(kernel.run_with(&mut router), RunOutcome::AllExited);
/// assert_eq!(router.stats.unmanaged, 1, "the exit trap bypassed agents");
/// ```
#[derive(Default)]
pub struct InterposedRouter {
    chains: HashMap<Pid, Chain>,
    /// Observation counters.
    pub stats: RouterStats,
}

impl InterposedRouter {
    /// A router with no chains: behaves exactly like the identity router
    /// until agents are loaded.
    #[must_use]
    pub fn new() -> InterposedRouter {
        InterposedRouter::default()
    }

    /// Pushes an agent on top of `pid`'s chain (the new agent sees traps
    /// first). This is the simulated `task_set_emulation()` registration.
    pub fn push_agent(&mut self, pid: Pid, agent: Box<dyn Agent>) {
        let chain = self.chains.entry(pid).or_insert_with(Chain::new);
        chain.agents.insert(0, agent);
        chain.recompute();
    }

    /// Delivers any pending vectored upcall for `pid` immediately. Callers
    /// that mutate the chain (the loader, tests driving [`Self::with_chain`])
    /// use this first so agents observe the calls made under the *old*
    /// chain configuration before it changes.
    pub fn flush_pending(&mut self, k: &mut Kernel, pid: Pid) {
        if let Some(chain) = self.chains.get_mut(&pid) {
            chain.flush(k, pid);
        }
    }

    /// Removes every agent from `pid`'s chain, returning them.
    pub fn remove_chain(&mut self, pid: Pid) -> Vec<Box<dyn Agent>> {
        self.chains.remove(&pid).map_or(Vec::new(), |c| c.agents)
    }

    /// True if `pid` runs under at least one agent.
    #[must_use]
    pub fn has_chain(&self, pid: Pid) -> bool {
        self.chains.get(&pid).is_some_and(|c| !c.agents.is_empty())
    }

    /// Number of agents wrapped around `pid`.
    #[must_use]
    pub fn chain_len(&self, pid: Pid) -> usize {
        self.chains.get(&pid).map_or(0, |c| c.agents.len())
    }

    /// Borrow an agent on a chain (top = 0), for post-run inspection by
    /// tests and tools.
    #[must_use]
    pub fn agent(&self, pid: Pid, idx: usize) -> Option<&dyn Agent> {
        self.chains
            .get(&pid)
            .and_then(|c| c.agents.get(idx))
            .map(AsRef::as_ref)
    }

    /// Runs a closure against an agent on the chain, downcast by the
    /// caller. (Rust-side replacement for the paper's direct object access.)
    pub fn with_chain<R>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut Vec<Box<dyn Agent>>) -> R,
    ) -> Option<R> {
        self.chains.get_mut(&pid).map(|c| {
            let r = f(&mut c.agents);
            c.recompute();
            r
        })
    }

    /// Clones `parent`'s chain onto `child` and runs `init_child` hooks —
    /// what happens implicitly on Mach because agents share the client's
    /// address space.
    fn fork_chain(&mut self, k: &mut Kernel, parent: Pid, child: Pid) {
        let Some(pc) = self.chains.get(&parent) else {
            return;
        };
        // Toolkit fork bookkeeping plus child-side agent initialization —
        // the paper's "approximately 10 milliseconds" added to fork.
        k.clock
            .advance_ns(k.profile.agent_fork_ns + k.profile.agent_child_init_ns);
        let mut agents: Vec<Box<dyn Agent>> = pc.agents.iter().map(|a| a.clone_box()).collect();
        for i in 0..agents.len() {
            let (cur, below) = agents.split_at_mut(i + 1);
            let mut ctx = SysCtx::new(k, child, below, 0);
            cur[i].init_child(&mut ctx);
        }
        let mut chain = Chain::new();
        chain.agents = agents;
        chain.recompute();
        self.chains.insert(child, chain);
        self.stats.chains_forked += 1;
    }
}

/// A capture of every agent chain, taken with [`InterposedRouter::snapshot`].
///
/// Agents are captured through `Agent::clone_box` — the same mechanism a
/// `fork` uses. Since [`Agent`] is `Send`, any interior state an agent
/// shares with its clones is held behind thread-safe handles
/// (`Arc<Mutex<…>>`, atomics); a capture therefore shares that state with
/// the live chain exactly as a forked chain would, and the whole snapshot
/// remains `Send`. Agents whose capture must be *independent* deep-copy in
/// `clone_box` instead. Either way the sharing is confined to one tenant —
/// nothing here may alias state in another tenant's world.
/// Compiled dispatch state (flat tables, batchable sets) is *not* captured:
/// [`InterposedRouter::restore`] recompiles it from the restored agents,
/// which is the chain-mutation invalidation rule applied to time travel.
pub struct RouterSnapshot {
    chains: Vec<(Pid, Vec<Box<dyn Agent>>)>,
    stats: RouterStats,
}

impl Clone for RouterSnapshot {
    fn clone(&self) -> Self {
        RouterSnapshot {
            chains: self
                .chains
                .iter()
                .map(|(pid, agents)| (*pid, agents.iter().map(|a| a.clone_box()).collect()))
                .collect(),
            stats: self.stats,
        }
    }
}

/// A full world capture: kernel state plus agent chains. Build with
/// [`snapshot_world`], rewind with [`restore_world`].
#[derive(Clone)]
pub struct WorldSnapshot {
    /// The kernel's world state.
    pub kernel: KernelSnapshot,
    /// The router's agent chains.
    pub router: RouterSnapshot,
}

impl WorldSnapshot {
    /// The kernel snapshot's unique id, for repro artifacts.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.kernel.id
    }
}

/// Captures kernel and router together. Pending vectored upcalls are
/// delivered first (they belong to the past, not the future), so the
/// capture never holds an in-flight batch.
pub fn snapshot_world(k: &mut Kernel, router: &mut InterposedRouter) -> WorldSnapshot {
    let router_snap = router.snapshot(k);
    WorldSnapshot {
        kernel: k.snapshot(),
        router: router_snap,
    }
}

/// Rewinds kernel and router to `snap`. See [`Kernel::restore`] and
/// [`InterposedRouter::restore`] for what each side does.
pub fn restore_world(k: &mut Kernel, router: &mut InterposedRouter, snap: &WorldSnapshot) {
    k.restore(&snap.kernel);
    router.restore(&snap.router);
}

impl InterposedRouter {
    /// Captures every agent chain. Any pending vectored upcall is flushed
    /// into `k` first (in pid order), so take the [`KernelSnapshot`]
    /// *after* this call — or use [`snapshot_world`], which orders the two
    /// correctly.
    pub fn snapshot(&mut self, k: &mut Kernel) -> RouterSnapshot {
        let mut pids: Vec<Pid> = self.chains.keys().copied().collect();
        pids.sort_unstable();
        for pid in &pids {
            self.flush_pending(k, *pid);
        }
        RouterSnapshot {
            chains: pids
                .into_iter()
                .map(|pid| {
                    let agents = self.chains[&pid]
                        .agents
                        .iter()
                        .map(|a| a.clone_box())
                        .collect();
                    (pid, agents)
                })
                .collect(),
            stats: self.stats,
        }
    }

    /// Rewinds every chain to `snap`. Live chains (and any pending upcall
    /// batches they hold) are discarded — the rewound world re-executes
    /// those calls itself — and each restored chain's flat dispatch table,
    /// batchable set and vDSO gating are recompiled from scratch.
    pub fn restore(&mut self, snap: &RouterSnapshot) {
        self.chains.clear();
        for (pid, agents) in &snap.chains {
            let mut chain = Chain::new();
            chain.agents = agents.iter().map(|a| a.clone_box()).collect();
            chain.recompute();
            self.chains.insert(*pid, chain);
        }
        self.stats = snap.stats;
    }
}

impl SyscallRouter for InterposedRouter {
    fn route(
        &mut self,
        k: &mut Kernel,
        pid: Pid,
        nr: u32,
        args: RawArgs,
        restarts: u32,
    ) -> SysOutcome {
        let next_pid_before = k.pids().last().copied().unwrap_or(0);

        let out = match self.chains.get_mut(&pid) {
            None => {
                self.stats.unmanaged += 1;
                k.syscall(pid, nr, args)
            }
            Some(chain) if chain.batchable.contains(nr) => {
                // Vectored upcall path (always on, independent of the fast
                // path and the scheduler): the kernel executes the call
                // now; interested agents observe it later, in one batch.
                if chain.pending.as_ref().is_some_and(|b| b.nr != nr) {
                    chain.flush(k, pid);
                }
                self.stats.intercepted += 1;
                let out = k.syscall(pid, nr, args);
                match out {
                    SysOutcome::Done(res) => {
                        let batch = chain.pending.get_or_insert_with(|| PendingBatch {
                            nr,
                            calls: Vec::new(),
                        });
                        batch.calls.push(BatchCall { args, ret: res });
                        if batch.calls.len() >= BATCH_CAP {
                            chain.flush(k, pid);
                        }
                    }
                    // Blocked or no-return calls cannot sit in a batch;
                    // deliver what we have so agents stay ordered.
                    _ => chain.flush(k, pid),
                }
                out
            }
            Some(chain) => {
                // Which agent (if any) sees this trap: one indexed load
                // from the flat table when it is trustworthy, the legacy
                // interest-union test plus chain walk otherwise.
                let first = if k.fast_path && chain.fixed {
                    usize::from(chain.flat[(nr as usize).min(255)])
                } else if chain.interest.contains(nr) {
                    0
                } else {
                    usize::from(KERNEL_DIRECT)
                };
                if first >= chain.agents.len() {
                    // Pay-per-use: no agent cost at all.
                    self.stats.passthrough += 1;
                    k.syscall(pid, nr, args)
                } else {
                    // An individually intercepted call must not overtake a
                    // pending batch: agents observe calls in order.
                    chain.flush(k, pid);
                    self.stats.intercepted += 1;
                    // The obs enter comes first so the trap-redirection cost
                    // below is attributed to the "interpose" pseudo-layer.
                    k.obs
                        .layer_enter("interpose", pid, nr, k.clock.elapsed_ns());
                    let cost = k.profile.intercept_ns;
                    k.clock.advance_ns(cost);
                    if let Ok(p) = k.proc_mut(pid) {
                        p.usage.sys_ns += cost;
                    }
                    let out = if k.fast_path && chain.fixed {
                        dispatch_chain_from(k, pid, &mut chain.agents, first, nr, args, restarts)
                    } else {
                        dispatch_chain(k, pid, &mut chain.agents, nr, args, restarts)
                    };
                    k.obs.layer_exit(
                        "interpose",
                        pid,
                        nr,
                        out.obs_outcome(),
                        k.clock.elapsed_ns(),
                    );
                    out
                }
            }
        };

        // A successful execve under an agent pays the reimplementation tax:
        // the toolkit rebuilds the exec sequence from lower-level
        // primitives (§3.5.1.2).
        if matches!(out, SysOutcome::NoReturn)
            && Sysno::from_u32(nr) == Some(Sysno::Execve)
            && self.has_chain(pid)
        {
            k.clock.advance_ns(k.profile.agent_exec_ns);
        }

        // Any child created during this trap (fork, possibly issued from
        // inside an agent or under a remapped number) inherits the chain.
        if self.has_chain(pid) {
            let new_children: Vec<Pid> = k
                .pids()
                .into_iter()
                .filter(|&p| p > next_pid_before)
                .filter(|&p| k.proc(p).is_ok_and(|pr| pr.ppid == pid))
                .collect();
            for child in new_children {
                self.fork_chain(k, pid, child);
            }
        }
        out
    }

    fn filter_signal(&mut self, k: &mut Kernel, pid: Pid, sig: Signal) -> bool {
        let Some(chain) = self.chains.get_mut(&pid) else {
            return true;
        };
        if chain.agents.is_empty() {
            return true;
        }
        // Agents must observe batched calls before the signal they might
        // react to.
        chain.flush(k, pid);
        self.stats.signals_filtered += 1;
        match signal_chain(k, pid, &mut chain.agents, sig) {
            Some(s) if s == sig => true,
            Some(replacement) => {
                // Deliver the replacement on the next delivery pass.
                let _ = k.post_signal(pid, replacement);
                false
            }
            None => false,
        }
    }

    fn on_process_exit(&mut self, k: &mut Kernel, pid: Pid) {
        if let Some(mut chain) = self.chains.remove(&pid) {
            // Undelivered batched calls are observed before teardown.
            chain.flush(k, pid);
            // Agent teardown: close logs, flush state, release objects.
            k.clock.advance_ns(k.profile.agent_exit_ns);
        }
    }

    fn fast_spec(&mut self, _k: &Kernel, pid: Pid) -> FastSpec {
        let Some(chain) = self.chains.get(&pid) else {
            return FastSpec::DIRECT;
        };
        if chain.agents.is_empty() {
            return FastSpec::DIRECT;
        }
        if !chain.fixed {
            return FastSpec::OFF;
        }
        let mode = |nr: Sysno| {
            let nr = nr.number();
            if !chain.interest.contains(nr) {
                FastMode::Direct
            } else if chain.batchable.contains(nr) {
                FastMode::Collect
            } else {
                FastMode::Off
            }
        };
        FastSpec {
            getpid: mode(Sysno::Getpid),
            gtod: mode(Sysno::Gettimeofday),
            pending_nr: chain.pending.as_ref().map(|b| b.nr),
            pending_len: chain.pending.as_ref().map_or(0, |b| b.calls.len() as u32),
            batch_cap: BATCH_CAP as u32,
        }
    }

    fn note_fast_direct(&mut self, _k: &mut Kernel, pid: Pid, _nr: u32, count: u64) {
        // Mirrors what `route` would have counted per call: pay-per-use
        // passthrough under a chain, unmanaged without one. Direct calls
        // never flush a pending batch — the slow path would not have
        // flushed on a passthrough either.
        if self.chains.contains_key(&pid) {
            self.stats.passthrough += count;
        } else {
            self.stats.unmanaged += count;
        }
    }

    fn absorb_batch(&mut self, k: &mut Kernel, pid: Pid, nr: u32, calls: &[BatchCall]) {
        let Some(chain) = self.chains.get_mut(&pid) else {
            return;
        };
        if chain.pending.as_ref().is_some_and(|b| b.nr != nr) {
            // The lane bails on number changes, so this cannot happen by
            // construction; flushing keeps it correct anyway.
            chain.flush(k, pid);
        }
        self.stats.intercepted += calls.len() as u64;
        for call in calls {
            let batch = chain.pending.get_or_insert_with(|| PendingBatch {
                nr,
                calls: Vec::new(),
            });
            batch.calls.push(*call);
            if batch.calls.len() >= BATCH_CAP {
                chain.flush(k, pid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::SignalVerdict;
    use ia_abi::Sysno;
    use ia_kernel::RunOutcome;

    /// Counts every trap it sees; interested in everything.
    #[derive(Default)]
    struct Counter {
        seen: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl Agent for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn interests(&self) -> InterestSet {
            InterestSet::ALL
        }
        fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
            self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.down(nr, args)
        }
        fn clone_box(&self) -> Box<dyn Agent> {
            Box::new(Counter {
                seen: self.seen.clone(),
            })
        }
    }

    #[test]
    fn transparent_counter_agent_preserves_behaviour() {
        let src = r#"
            .data
            msg: .asciz "out"
            .text
            main:
                li r0, 1
                la r1, msg
                li r2, 3
                sys write
                li r0, 0
                sys exit
        "#;
        // Without an agent:
        let mut k1 = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble(src).unwrap();
        k1.spawn_image(&img, &[b"t"], b"t");
        k1.run_to_completion();

        // With the counter agent:
        let mut k2 = ia_kernel::KernelBuilder::new().build();
        let pid = k2.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        let counter = Counter::default();
        let seen = counter.seen.clone();
        router.push_agent(pid, Box::new(counter));
        assert_eq!(k2.run_with(&mut router), RunOutcome::AllExited);

        assert_eq!(
            k1.console.output_string(),
            k2.console.output_string(),
            "agent is transparent"
        );
        assert_eq!(
            seen.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "write + exit intercepted"
        );
        assert!(
            k2.clock.elapsed_ns() > k1.clock.elapsed_ns(),
            "interposition costs time"
        );
    }

    #[test]
    fn pay_per_use_bypasses_chain() {
        let mut k = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble("main: sys getpid\n sys getpid\n li r0,0\n sys exit\n").unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();

        /// Interested only in gettimeofday.
        struct Narrow;
        impl Agent for Narrow {
            fn name(&self) -> &'static str {
                "narrow"
            }
            fn interests(&self) -> InterestSet {
                InterestSet::of(&[Sysno::Gettimeofday])
            }
            fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
                ctx.down(nr, args)
            }
            fn clone_box(&self) -> Box<dyn Agent> {
                Box::new(Narrow)
            }
        }
        router.push_agent(pid, Box::new(Narrow));
        k.run_with(&mut router);
        assert_eq!(router.stats.intercepted, 0);
        assert_eq!(router.stats.passthrough, 3, "getpid x2 + exit bypassed");
    }

    #[test]
    fn forked_child_inherits_chain() {
        let src = r#"
            main:
                sys fork
                jz r0, child
                li r0, 0
                li r1, 0
                li r2, 0
                li r3, 0
                sys wait4
                li r0, 0
                sys exit
            child:
                sys getpid
                li r0, 0
                sys exit
        "#;
        let mut k = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble(src).unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        let counter = Counter::default();
        let seen = counter.seen.clone();
        router.push_agent(pid, Box::new(counter));
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(router.stats.chains_forked, 1);
        // fork + wait4 + exit (parent) + getpid + exit (child) — the
        // child's traps were intercepted too because the chain forked.
        // wait4 may be dispatched more than once if it blocked; require at
        // least the five logical calls.
        let n = seen.load(std::sync::atomic::Ordering::Relaxed);
        assert!(n >= 5, "saw {n}");
    }

    #[test]
    fn exit_removes_chain() {
        let mut k = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble("main: li r0,0\n sys exit\n").unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, Box::new(Counter::default()));
        assert!(router.has_chain(pid));
        k.run_with(&mut router);
        assert!(!router.has_chain(pid));
    }

    /// Suppresses SIGTERM — a tiny "protected environment".
    struct Shield;
    impl Agent for Shield {
        fn name(&self) -> &'static str {
            "shield"
        }
        fn interests(&self) -> InterestSet {
            InterestSet::NONE
        }
        fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
            ctx.down(nr, args)
        }
        fn signal_incoming(&mut self, _: &mut SysCtx<'_>, sig: Signal) -> SignalVerdict {
            if sig == Signal::SIGTERM {
                SignalVerdict::Suppress
            } else {
                SignalVerdict::Deliver
            }
        }
        fn clone_box(&self) -> Box<dyn Agent> {
            Box::new(Shield)
        }
    }

    #[test]
    fn agent_suppresses_fatal_signal() {
        // The program SIGTERMs itself, then prints — it survives only if
        // the agent suppressed the signal.
        let src = r#"
            .data
            msg: .asciz "alive"
            .text
            main:
                sys getpid
                li r1, 15
                sys kill
                li r0, 1
                la r1, msg
                li r2, 5
                sys write
                li r0, 0
                sys exit
        "#;
        let mut k = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble(src).unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, Box::new(Shield));
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "alive");
        assert_eq!(router.stats.signals_filtered, 1);
    }
}
