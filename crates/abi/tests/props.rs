//! Property tests for the wire layer: every structure that crosses the
//! system interface round-trips through its byte encoding, for arbitrary
//! field values.

use ia_abi::signal::{SigSet, Signal};
use ia_abi::types::{IoVec, ItimerVal, SigContext, NREGS};
use ia_abi::wire::Wire;
use ia_abi::{DirEntry, Errno, Rusage, SigActionRec, Stat, Timeval, Timezone};
use proptest::prelude::*;

fn tv() -> impl Strategy<Value = Timeval> {
    (any::<i64>(), 0i64..1_000_000).prop_map(|(sec, usec)| Timeval { sec, usec })
}

proptest! {
    #[test]
    fn timeval_round_trips(v in tv()) {
        prop_assert_eq!(Timeval::decode(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn timeval_micros_round_trip(us in -1_000_000_000_000i64..1_000_000_000_000) {
        prop_assert_eq!(Timeval::from_micros(us).as_micros(), us);
    }

    #[test]
    fn timezone_round_trips(mw in any::<i32>(), dst in any::<i32>()) {
        let v = Timezone { minuteswest: mw, dsttime: dst };
        prop_assert_eq!(Timezone::decode(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn stat_round_trips(
        dev in any::<u32>(), ino in any::<u64>(), mode in any::<u32>(),
        nlink in any::<u32>(), uid in any::<u32>(), gid in any::<u32>(),
        rdev in any::<u32>(), size in any::<u64>(),
        atime in tv(), mtime in tv(), ctime in tv(),
        blksize in any::<u32>(), blocks in any::<u64>(),
    ) {
        let v = Stat { dev, ino, mode, nlink, uid, gid, rdev, size, atime, mtime, ctime, blksize, blocks };
        prop_assert_eq!(Stat::decode(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn rusage_round_trips(
        utime in tv(), stime in tv(),
        maxrss in any::<u64>(), inblock in any::<u64>(), oublock in any::<u64>(),
        nsignals in any::<u64>(), nvcsw in any::<u64>(), nivcsw in any::<u64>(),
    ) {
        let v = Rusage { utime, stime, maxrss, inblock, oublock, nsignals, nvcsw, nivcsw };
        prop_assert_eq!(Rusage::decode(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn sigaction_round_trips(handler in any::<u64>(), mask in any::<u32>(), flags in any::<u32>()) {
        let v = SigActionRec { handler, mask, flags };
        prop_assert_eq!(SigActionRec::decode(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn iovec_itimer_round_trip(base in any::<u64>(), len in any::<u64>(), a in tv(), b in tv()) {
        let v = IoVec { base, len };
        prop_assert_eq!(IoVec::decode(&v.to_bytes()).unwrap(), v);
        let it = ItimerVal { interval: a, value: b };
        prop_assert_eq!(ItimerVal::decode(&it.to_bytes()).unwrap(), it);
    }

    #[test]
    fn sigcontext_round_trips(pc in any::<u64>(), regs in proptest::array::uniform32(any::<u64>()), mask in 0u32..0x8000_0000) {
        let mut ctx = SigContext { pc, regs: [0; NREGS], mask: SigSet::from_bits(mask) };
        ctx.regs.copy_from_slice(&regs[..NREGS]);
        prop_assert_eq!(SigContext::decode(&ctx.to_bytes()).unwrap(), ctx);
    }

    #[test]
    fn direntry_streams_round_trip(entries in proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(1u8..=255, 1..40)), 0..12
    )) {
        let entries: Vec<DirEntry> = entries
            .into_iter()
            .map(|(ino, mut name)| {
                name.retain(|&c| c != b'/');
                if name.is_empty() { name.push(b'x'); }
                DirEntry::new(ino, name)
            })
            .collect();
        let mut buf = Vec::new();
        for e in &entries {
            e.encode_to(&mut buf);
        }
        prop_assert_eq!(DirEntry::decode_stream(&buf).unwrap(), entries);
    }

    #[test]
    fn truncated_decodes_fail_not_panic(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        // Short random buffers must error cleanly for fixed-size structs.
        if bytes.len() < Stat::WIRE_SIZE {
            prop_assert!(Stat::decode(&bytes).is_err());
        }
        // DirEntry decoding of arbitrary bytes never panics.
        let _ = DirEntry::decode_stream(&bytes);
    }

    #[test]
    fn sigset_ops_behave_like_sets(a in 0u32..0x8000_0000, b in 0u32..0x8000_0000) {
        let sa = SigSet::from_bits(a);
        let sb = SigSet::from_bits(b);
        prop_assert_eq!(sa.union(sb).bits(), (a | b) & 0x7fff_ffff);
        prop_assert_eq!(sa.minus(sb).bits(), (a & !b) & 0x7fff_ffff);
        for sig in ia_abi::signal::ALL_SIGNALS {
            prop_assert_eq!(sa.union(sb).contains(*sig), sa.contains(*sig) || sb.contains(*sig));
        }
    }

    #[test]
    fn errno_code_round_trips(code in 1u32..=69) {
        let e = Errno::from_code(code).unwrap();
        prop_assert_eq!(e.code(), code);
        prop_assert!(!e.name().is_empty());
    }

    #[test]
    fn wait_status_encodings_disjoint(code in any::<u8>(), signo in 1u32..=31) {
        use ia_abi::signal::{wait_status_exited, wait_status_signaled, wait_status_stopped, WaitStatus};
        let sig = Signal::from_u32(signo).unwrap();
        prop_assert_eq!(WaitStatus::decode(wait_status_exited(code)), Some(WaitStatus::Exited(code)));
        prop_assert_eq!(WaitStatus::decode(wait_status_signaled(sig)), Some(WaitStatus::Signaled(sig)));
        prop_assert_eq!(WaitStatus::decode(wait_status_stopped(sig)), Some(WaitStatus::Stopped(sig)));
    }
}
