//! The bottom implementation of every system call.
//!
//! Each call is a method on [`Kernel`], grouped by subsystem. The single
//! entry point is [`Kernel::syscall`], which the interposition layer's
//! downcall path ultimately reaches — the simulated equivalent of the Mach
//! `htg_unix_syscall()` bottoming out in the 4.3BSD server.

mod fs;
mod io;
mod proc;
mod sig;
mod sock;
mod time;

use ia_abi::types::MAXPATHLEN;
use ia_abi::{Errno, RawArgs, Sysno};
use ia_vfs::{Cred, Ino};

use crate::kernel::{Kernel, SysOutcome};
use crate::process::Pid;

impl Kernel {
    /// Executes a system call at the kernel level and charges its base
    /// virtual cost. Unknown trap numbers fail with `EINVAL`, as the
    /// 4.3BSD `nosys` stub did.
    pub fn syscall(&mut self, pid: Pid, nr: u32, args: RawArgs) -> SysOutcome {
        if !self.obs.is_enabled() {
            return self.syscall_inner(pid, nr, args);
        }
        self.obs
            .layer_enter("kernel", pid, nr, self.clock.elapsed_ns());
        let out = self.syscall_inner(pid, nr, args);
        self.obs.layer_exit(
            "kernel",
            pid,
            nr,
            out.obs_outcome(),
            self.clock.elapsed_ns(),
        );
        out
    }

    fn syscall_inner(&mut self, pid: Pid, nr: u32, args: RawArgs) -> SysOutcome {
        let Some(sys) = Sysno::from_u32(nr) else {
            return SysOutcome::err(Errno::EINVAL);
        };
        self.total_syscalls += 1;
        let cost = self.profile.syscall_base_ns(sys);
        self.clock.advance_ns(cost);
        if let Ok(p) = self.proc_mut(pid) {
            p.usage.sys_ns += cost;
            p.usage.nsyscalls += 1;
        } else {
            return SysOutcome::err(Errno::ESRCH);
        }

        use Sysno::*;
        match sys {
            // fs.rs
            Open => self.sys_open(pid, &args),
            Access => self.sys_access(pid, &args),
            Stat => self.sys_stat(pid, &args, true),
            Lstat => self.sys_stat(pid, &args, false),
            Fstat => self.sys_fstat(pid, &args),
            Link => self.sys_link(pid, &args),
            Unlink => self.sys_unlink(pid, &args),
            Symlink => self.sys_symlink(pid, &args),
            Readlink => self.sys_readlink(pid, &args),
            Rename => self.sys_rename(pid, &args),
            Mkdir => self.sys_mkdir(pid, &args),
            Rmdir => self.sys_rmdir(pid, &args),
            Chdir => self.sys_chdir(pid, &args),
            Fchdir => self.sys_fchdir(pid, &args),
            Chroot => self.sys_chroot(pid, &args),
            Chmod => self.sys_chmod(pid, &args),
            Chown => self.sys_chown(pid, &args),
            Fchmod => self.sys_fchmod(pid, &args),
            Fchown => self.sys_fchown(pid, &args),
            Truncate => self.sys_truncate(pid, &args),
            Ftruncate => self.sys_ftruncate(pid, &args),
            Utimes => self.sys_utimes(pid, &args),
            Mknod => self.sys_mknod(pid, &args),
            Mkfifo => self.sys_mkfifo(pid, &args),
            Umask => self.sys_umask(pid, &args),
            Sync => SysOutcome::ok(),
            Flock => self.sys_flock(pid, &args),

            // io.rs
            Read => self.sys_read(pid, &args),
            Write => self.sys_write(pid, &args),
            Readv => self.sys_readv(pid, &args),
            Writev => self.sys_writev(pid, &args),
            Lseek => self.sys_lseek(pid, &args),
            Close => self.sys_close(pid, &args),
            Dup => self.sys_dup(pid, &args),
            Dup2 => self.sys_dup2(pid, &args),
            Fcntl => self.sys_fcntl(pid, &args),
            Pipe => self.sys_pipe(pid),
            Getdirentries => self.sys_getdirentries(pid, &args),
            Ioctl => self.sys_ioctl(pid, &args),
            Select => self.sys_select(pid, &args),
            Fsync => self.sys_fsync(pid, &args),
            Sbrk => self.sys_sbrk(pid, &args),
            Getdtablesize => self.sys_getdtablesize(pid),

            // proc.rs
            Fork | Vfork => self.sys_fork(pid),
            Execve => self.sys_execve(pid, &args),
            Exit => self.sys_exit(pid, &args),
            Wait4 => self.sys_wait4(pid, &args),
            Getpid => self.sys_getpid(pid),
            Getppid => self.sys_getppid(pid),
            Getuid => self.sys_getuid(pid),
            Geteuid => self.sys_geteuid(pid),
            Getgid => self.sys_getgid(pid),
            Getegid => self.sys_getegid(pid),
            Setuid => self.sys_setuid(pid, &args),
            Setgid => self.sys_setgid(pid, &args),
            Setreuid => self.sys_setreuid(pid, &args),
            Setregid => self.sys_setregid(pid, &args),
            Getpgrp => self.sys_getpgrp(pid),
            Setpgid => self.sys_setpgid(pid, &args),
            Setsid => self.sys_setsid(pid),
            Getpriority => self.sys_getpriority(pid, &args),
            Setpriority => self.sys_setpriority(pid, &args),

            // sig.rs
            Kill => self.sys_kill(pid, &args),
            Sigaction => self.sys_sigaction(pid, &args),
            Sigprocmask => self.sys_sigprocmask(pid, &args),
            Sigpending => self.sys_sigpending(pid),
            Sigsuspend => self.sys_sigsuspend(pid, &args),
            Sigreturn => self.sys_sigreturn(pid, &args),

            // time.rs
            Gettimeofday => self.sys_gettimeofday(pid, &args),
            Settimeofday => self.sys_settimeofday(pid, &args),
            Adjtime => self.sys_adjtime(pid, &args),
            Getitimer => self.sys_getitimer(pid, &args),
            Setitimer => self.sys_setitimer(pid, &args),
            Getrusage => self.sys_getrusage(pid, &args),

            // sock.rs
            Socket => self.sys_socket(pid, &args),
            Socketpair => self.sys_socketpair(pid, &args),
            Bind => self.sys_bind(pid, &args),
            Connect => self.sys_connect(pid, &args),
            Listen => self.sys_listen(pid, &args),
            Accept => self.sys_accept(pid, &args),
        }
    }

    // ---- shared decode helpers -----------------------------------------

    /// Reads a pathname argument from the calling process's memory.
    pub(crate) fn read_path(&self, pid: Pid, addr: u64) -> Result<Vec<u8>, Errno> {
        let p = self.proc(pid)?;
        let path = p.mem.read_cstr(addr, MAXPATHLEN)?;
        ia_vfs::path::validate(&path)?;
        Ok(path)
    }

    /// The caller's name-space context: (root, cwd, effective credentials).
    pub(crate) fn namei_ctx(&self, pid: Pid) -> Result<(Ino, Ino, Cred), Errno> {
        let p = self.proc(pid)?;
        Ok((p.root, p.cwd, p.cred()))
    }

    /// Resolves a path in the caller's context, following final symlinks.
    pub(crate) fn resolve_for(&self, pid: Pid, path: &[u8]) -> Result<Ino, Errno> {
        let (root, cwd, cred) = self.namei_ctx(pid)?;
        Ok(self.fs.resolve_rooted(root, cwd, path, cred)?.ino)
    }

    /// Resolves a path without following a final symlink.
    pub(crate) fn resolve_nofollow_for(&self, pid: Pid, path: &[u8]) -> Result<Ino, Errno> {
        let (root, cwd, cred) = self.namei_ctx(pid)?;
        Ok(self.fs.resolve_nofollow_rooted(root, cwd, path, cred)?.ino)
    }

    /// Resolves the parent directory and final component of a path.
    pub(crate) fn resolve_parent_for(
        &self,
        pid: Pid,
        path: &[u8],
    ) -> Result<(Ino, Vec<u8>), Errno> {
        let (root, cwd, cred) = self.namei_ctx(pid)?;
        self.fs.resolve_parent_rooted(root, cwd, path, cred)
    }
}

/// Maps a `Result<RetVal-like, Errno>` into a [`SysOutcome`].
pub(crate) fn done(r: Result<[u64; 2], Errno>) -> SysOutcome {
    SysOutcome::Done(r)
}

/// Maps a unit result into a [`SysOutcome`].
pub(crate) fn done0(r: Result<(), Errno>) -> SysOutcome {
    SysOutcome::Done(r.map(|()| [0, 0]))
}
