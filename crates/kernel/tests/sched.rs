//! Scheduler-focused tests: stop/continue, fairness, run limits, and the
//! terminal outcomes.

use ia_abi::signal::Signal;
use ia_kernel::{run, KernelBuilder, KernelRouter, ProcState, RunLimits, RunOutcome};

#[test]
fn sigstop_stops_and_sigcont_resumes() {
    // The target spins; the controller stops it, verifies, continues it,
    // then kills it.
    let spin = ia_vm::assemble("main: jmp main\n").unwrap();
    let mut k = KernelBuilder::new().build();
    let target = k.spawn_image(&spin, &[b"spin"], b"spin");

    // Drive manually: run a bounded slice, then stop the target.
    let out = run(&mut k, &mut KernelRouter, RunLimits { max_steps: 500 });
    assert_eq!(out, RunOutcome::StepLimit);
    k.post_signal(target, Signal::SIGSTOP).unwrap();
    let out = run(&mut k, &mut KernelRouter, RunLimits { max_steps: 500 });
    // Only the stopped process remains: the scheduler reports Stalled.
    assert_eq!(out, RunOutcome::Stalled);
    assert_eq!(k.proc(target).unwrap().state, ProcState::Stopped);

    k.post_signal(target, Signal::SIGCONT).unwrap();
    assert_eq!(k.proc(target).unwrap().state, ProcState::Runnable);
    let out = run(&mut k, &mut KernelRouter, RunLimits { max_steps: 500 });
    assert_eq!(out, RunOutcome::StepLimit, "spinning again");

    k.post_signal(target, Signal::SIGKILL).unwrap();
    let out = run(&mut k, &mut KernelRouter, RunLimits { max_steps: 500 });
    assert_eq!(out, RunOutcome::AllExited);
}

#[test]
fn sigkill_kills_even_a_stopped_process() {
    let spin = ia_vm::assemble("main: jmp main\n").unwrap();
    let mut k = KernelBuilder::new().build();
    let target = k.spawn_image(&spin, &[b"spin"], b"spin");
    k.post_signal(target, Signal::SIGSTOP).unwrap();
    let _ = run(&mut k, &mut KernelRouter, RunLimits { max_steps: 500 });
    k.post_signal(target, Signal::SIGKILL).unwrap();
    assert_eq!(
        run(&mut k, &mut KernelRouter, RunLimits { max_steps: 500 }),
        RunOutcome::AllExited
    );
    assert_eq!(
        ia_abi::signal::WaitStatus::decode(k.exit_status(target).unwrap()),
        Some(ia_abi::signal::WaitStatus::Signaled(Signal::SIGKILL))
    );
}

#[test]
fn scheduler_is_fair_between_cpu_hogs() {
    // Two pure-compute processes of equal length must finish in the same
    // run without either starving: both retire all their instructions.
    let prog = ia_vm::assemble(
        r#"
        main:
            li r5, 2000
        l:  addi r5, r5, -1
            jnz r5, l
            li r0, 0
            sys exit
        "#,
    )
    .unwrap();
    let mut k = KernelBuilder::new().build();
    let a = k.spawn_image(&prog, &[b"a"], b"a");
    let b = k.spawn_image(&prog, &[b"b"], b"b");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    assert_eq!(k.exit_status(a), Some(0));
    assert_eq!(k.exit_status(b), Some(0));
}

#[test]
fn run_limits_cap_runaway_programs() {
    let spin = ia_vm::assemble("main: jmp main\n").unwrap();
    let mut k = KernelBuilder::new().build();
    k.spawn_image(&spin, &[b"s"], b"s");
    let before = std::time::Instant::now();
    let out = run(&mut k, &mut KernelRouter, RunLimits { max_steps: 10_000 });
    assert_eq!(out, RunOutcome::StepLimit);
    assert!(before.elapsed().as_secs() < 5, "bounded promptly");
    assert_eq!(k.total_insns, 10_000);
}

#[test]
fn virtual_clock_equals_instructions_plus_syscalls() {
    // For a pure compute + exit program the virtual time decomposes
    // exactly: insns * insn_ns + exit base cost.
    let prog = ia_vm::assemble(
        r#"
        main:
            li r5, 100
        l:  addi r5, r5, -1
            jnz r5, l
            li r0, 0
            sys exit
        "#,
    )
    .unwrap();
    let mut k = KernelBuilder::new().build();
    k.spawn_image(&prog, &[b"c"], b"c");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    let expected =
        k.total_insns * k.profile.insn_ns + k.profile.syscall_base_ns(ia_abi::Sysno::Exit);
    assert_eq!(k.clock.elapsed_ns(), expected);
}
