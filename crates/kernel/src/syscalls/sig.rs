//! Signal system calls — the upward half of the interface.

use ia_abi::signal::{SigDisposition, SigSet, SigmaskHow, Signal};
use ia_abi::types::SigContext;
use ia_abi::{Errno, RawArgs, SigActionRec};

use super::{done, done0, SysOutcome};
use crate::kernel::Kernel;
use crate::process::{Pid, SigAction, WaitChannel};

impl Kernel {
    /// `kill(pid, sig)` — `pid > 0` targets a process, `0` the caller's
    /// group, `< -1` the group `|pid|`. `sig == 0` probes permissions only.
    pub(crate) fn sys_kill(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let target = args[0] as i64;
        let signo = args[1] as u32;
        let sig = if signo == 0 {
            None
        } else {
            match Signal::from_u32(signo) {
                Some(s) => Some(s),
                None => return SysOutcome::err(Errno::EINVAL),
            }
        };
        let r = (|| {
            if target > 0 {
                let t = target as Pid;
                let dest = self.proc(t)?;
                let me = self.proc(pid)?;
                if !me.can_signal(dest) {
                    return Err(Errno::EPERM);
                }
                if let Some(s) = sig {
                    self.post_signal(t, s)?;
                }
                Ok(())
            } else {
                let pgrp = if target == 0 {
                    self.proc(pid)?.pgrp
                } else {
                    (-target) as Pid
                };
                if let Some(s) = sig {
                    if self.post_signal_pgrp(pgrp, s, pid) == 0 {
                        return Err(Errno::ESRCH);
                    }
                } else if !self.procs.values().any(|p| p.pgrp == pgrp) {
                    return Err(Errno::ESRCH);
                }
                Ok(())
            }
        })();
        done0(r)
    }

    /// `sigaction(sig, act, oact)`
    pub(crate) fn sys_sigaction(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let sig = Signal::from_u32(args[0] as u32).ok_or(Errno::EINVAL)?;
            let new = if args[1] != 0 {
                let rec = self.proc(pid)?.mem.read_struct::<SigActionRec>(args[1])?;
                Some(SigAction {
                    disposition: SigDisposition::from_u64(rec.handler),
                    mask: SigSet::from_bits(rec.mask).blockable(),
                })
            } else {
                None
            };
            let p = self.proc_mut(pid)?;
            let old = match new {
                Some(act) => p.sig.set_action(sig, act)?,
                None => p.sig.action(sig),
            };
            if args[2] != 0 {
                let rec = SigActionRec {
                    handler: old.disposition.to_u64(),
                    mask: old.mask.bits(),
                    flags: 0,
                };
                self.proc_mut(pid)?.mem.write_struct(args[2], &rec)?;
            }
            Ok(())
        })();
        done0(r)
    }

    /// `sigprocmask(how, set)` → previous mask in `r0`.
    ///
    /// The set is passed by value in the second argument register (4.3BSD's
    /// `sigsetmask`/`sigblock` convention), not through memory.
    pub(crate) fn sys_sigprocmask(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let how = SigmaskHow::from_u32(args[0] as u32)?;
            let set = SigSet::from_bits(args[1] as u32).blockable();
            let p = self.proc_mut(pid)?;
            let old = p.sig.mask;
            p.sig.mask = match how {
                SigmaskHow::Block => old.union(set),
                SigmaskHow::Unblock => old.minus(set),
                SigmaskHow::SetMask => set,
            };
            Ok([u64::from(old.bits()), 0])
        })();
        done(r)
    }

    /// `sigpending()` → pending set in `r0`
    pub(crate) fn sys_sigpending(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.sig.pending.bits())),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `sigsuspend(mask)` — install `mask`, wait for a signal, restore.
    ///
    /// Always "fails" with `EINTR` once a signal has been handled, per BSD.
    pub(crate) fn sys_sigsuspend(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r: Result<SysOutcome, Errno> = (|| {
            let p = self.proc_mut(pid)?;
            let temp = SigSet::from_bits(args[0] as u32).blockable();
            if p.sig.suspend_saved.is_none() {
                p.sig.suspend_saved = Some(p.sig.mask);
                p.sig.mask = temp;
            }
            if p.sig.deliverable().is_some() {
                // The scheduler will deliver it and the restart path
                // returns EINTR with the saved mask restored after the
                // handler completes.
                return Ok(SysOutcome::err(Errno::EINTR));
            }
            Ok(SysOutcome::Block(WaitChannel::AnySignal))
        })();
        match r {
            Ok(o) => o,
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `sigreturn(ctx)` — restore the machine context pushed at delivery.
    pub(crate) fn sys_sigreturn(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r: Result<(), Errno> = (|| {
            let p = self.proc_mut(pid)?;
            let ctx = p.mem.read_struct::<SigContext>(args[0])?;
            p.vm.pc = ctx.pc;
            p.vm.regs = ctx.regs;
            p.sig.mask = ctx.mask.blockable();
            Ok(())
        })();
        match r {
            Ok(()) => SysOutcome::NoReturn,
            Err(e) => SysOutcome::err(e),
        }
    }
}
