//! Fleet conformance: the work-stealing pool must be invisible.
//!
//! Every generated program that the serial oracle runs solo is also run
//! as one tenant among many on a multi-threaded [`Fleet`] — preempted
//! into quanta, migrated between workers, sharing the base VFS and exec
//! cache with every other tenant. Its outcome and complete `Observable`
//! (console, exit statuses, VFS digest, virtual clock, instruction and
//! syscall counts) must be bit-identical to the solo run. Any divergence
//! means host-side scheduling policy leaked into tenant semantics.

use ia_fleet::{Fleet, FleetBase, Tenant};
use ia_prng::Prng;

use crate::gen::{sample, OpSet, Program};
use crate::oracle::{describe_diff, run_stack, Observation, SchedKind, StackKind, MAX_STEPS};

/// Quantum for fleet-conformance runs: small enough that every generated
/// program is preempted and requeued many times.
const QUANTUM: u64 = 100;

/// Aggregate statistics from one fleet-conformance sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct FleetStats {
    /// Tenants checked (one per seed).
    pub tenants: u64,
    /// Worker threads in the fleet.
    pub threads: usize,
    /// Total scheduling turns across the fleet (>> tenants proves the
    /// quantum actually fragmented the runs).
    pub turns: u64,
    /// Successful steals between workers.
    pub steals: u64,
}

/// The agent stack a seed's tenant runs under — rotated so the sweep
/// covers all four configurations (bare, full-interception, batched,
/// triple-stacked).
#[must_use]
pub fn fleet_stack(seed: u64) -> StackKind {
    match seed % 4 {
        0 => StackKind::Bare,
        1 => StackKind::Pass,
        2 => StackKind::Batched,
        _ => StackKind::Stacked,
    }
}

/// Builds the shared base every fleet-conformance tenant clones from:
/// the standard skeleton plus [`Program::setup`]'s fixtures — the exact
/// initial state the serial oracle's kernel sees.
#[must_use]
pub fn fleet_base() -> FleetBase {
    let mut base = FleetBase::new();
    base.decorate(Program::setup);
    base
}

/// Runs seeds `start..start + seeds` as parallel fleet tenants on
/// `threads` workers and checks each against its serial oracle run.
/// Returns the first divergence as `(seed, detail)`.
pub fn check_fleet(
    start: u64,
    seeds: u64,
    threads: usize,
    ops_min: usize,
    ops_max: usize,
) -> Result<FleetStats, (u64, String)> {
    let base = fleet_base();
    let mut programs = Vec::new();
    let mut tenants = Vec::new();
    for (i, seed) in (start..start + seeds).enumerate() {
        let mut rng = Prng::new(seed);
        let nops = rng.range_usize(ops_min, ops_max + 1);
        let program = sample(seed, nops, OpSet::ALL);
        tenants.push(Tenant::spawn(
            &base,
            i,
            &program.compile(),
            &[b"conform"],
            b"conform",
            fleet_stack(seed).agents(),
        ));
        programs.push((seed, program));
    }

    let (results, report) = Fleet::new(threads)
        .quantum(QUANTUM)
        .max_steps_total(MAX_STEPS)
        .run(tenants);

    for (i, (seed, program)) in programs.iter().enumerate() {
        let serial = run_stack(program, fleet_stack(*seed), SchedKind::Sliced);
        let fleet = Observation {
            outcome: results[i].outcome.clone(),
            obs: results[i].obs.clone(),
            leaks: Vec::new(),
        };
        if let Some(d) = describe_diff("serial", &serial, "fleet", &fleet) {
            return Err((*seed, format!("fleet divergence: {d}")));
        }
        if !serial.leaks.is_empty() {
            return Err((
                *seed,
                format!("serial oracle left leaks: {:?}", serial.leaks),
            ));
        }
    }
    Ok(FleetStats {
        tenants: seeds,
        threads,
        turns: report.total_turns,
        steals: report.steals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_sweep_matches_serial_oracle() {
        let stats = check_fleet(0, 12, 4, 4, 30).unwrap_or_else(|(s, d)| panic!("seed {s}: {d}"));
        assert_eq!(stats.tenants, 12);
        assert!(stats.turns >= 12);
    }
}
