//! The "format my dissertation" workload (§3.4.1.1, Table 3-2).
//!
//! "This task requires 716 system calls. When run without any agents, it
//! takes 151.7 seconds of elapsed time" on a VAX 6250.
//!
//! The simulated Scribe: one process that reads a dissertation chapter by
//! chapter, "formats" each chapter (a calibrated compute loop), and writes
//! the device output — reproducing both the syscall count and the
//! compute-dominated time profile. Run it on the
//! [`ia_kernel::VAX_6250`] profile to regenerate the table.

use ia_abi::{OpenFlags, Sysno};
use ia_kernel::Kernel;
use ia_vm::{Image, ProgramBuilder};

/// Number of chapters in the simulated dissertation.
pub const CHAPTERS: u64 = 10;
/// Reads per chapter (4 KB each).
pub const READS_PER_CHAPTER: u64 = 12;
/// Output writes per chapter.
pub const WRITES_PER_CHAPTER: u64 = 24;
/// Auxiliary database lookups (fonts, macros) per chapter: stat + open +
/// read + close.
pub const AUX_PER_CHAPTER: u64 = 8;
/// Compute-loop iterations per chapter. Each iteration is 2 instructions;
/// calibrated so the whole run takes ≈151.7 virtual seconds on the VAX
/// profile (instruction costs are inflated by `compute_scale`, see
/// `ia_kernel::clock`).
pub const BURN_PER_CHAPTER: u64 = 600_000;

/// Syscalls this workload performs, by construction:
/// per chapter: open+close of the source (2), reads, aux lookups (4 each),
/// output writes, one gettimeofday; plus: an initial getpid, open+close of
/// the output file, a final fstat+stat pair, and exit — 716 in all, the
/// paper's count.
#[must_use]
pub fn expected_syscalls() -> u64 {
    CHAPTERS * (2 + READS_PER_CHAPTER + AUX_PER_CHAPTER * 4 + WRITES_PER_CHAPTER + 1) + 6
}

/// Installs the dissertation sources and auxiliary files.
pub fn setup(k: &mut Kernel) {
    k.mkdir_p(b"/home/mbj/diss").unwrap();
    k.mkdir_p(b"/usr/lib/scribe/fonts").unwrap();
    let chapter = vec![b'x'; 4096 * READS_PER_CHAPTER as usize];
    for c in 0..CHAPTERS {
        k.write_file(format!("/home/mbj/diss/ch{c}.mss").as_bytes(), &chapter)
            .unwrap();
    }
    for c in 0..CHAPTERS {
        for a in 0..AUX_PER_CHAPTER {
            k.write_file(
                format!("/usr/lib/scribe/fonts/f{c}_{a}.fd").as_bytes(),
                &vec![b'f'; 512],
            )
            .unwrap();
        }
    }
}

/// Builds the Scribe program image.
#[must_use]
pub fn image() -> Image {
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(4096);
    let statbuf = b.data_space(128);
    let out_path = b.data_asciz(b"/home/mbj/diss/thesis.dvi");
    let tvbuf = b.data_space(16);

    let mut chapter_paths = Vec::new();
    let mut aux_paths = Vec::new();
    for c in 0..CHAPTERS {
        chapter_paths.push(b.data_asciz(format!("/home/mbj/diss/ch{c}.mss").as_bytes()));
        for a in 0..AUX_PER_CHAPTER {
            aux_paths.push(b.data_asciz(format!("/usr/lib/scribe/fonts/f{c}_{a}.fd").as_bytes()));
        }
    }

    b.entry_here();
    b.sys(Sysno::Getpid); // Scribe asks for its pid once, for its log name.
                          // Open the output device file once.
    b.la(0, out_path);
    b.li(
        1,
        u64::from(OpenFlags::O_WRONLY | OpenFlags::O_CREAT | OpenFlags::O_TRUNC),
    );
    b.li(2, 0o644);
    b.sys(Sysno::Open);
    b.mov(12, 0); // r12 = output fd

    for c in 0..CHAPTERS as usize {
        // Open the chapter.
        b.la(0, chapter_paths[c]);
        b.li(1, 0);
        b.li(2, 0);
        b.sys(Sysno::Open);
        b.mov(13, 0); // r13 = chapter fd
                      // Read it.
        for _ in 0..READS_PER_CHAPTER {
            b.mov(0, 13);
            b.la(1, buf);
            b.li(2, 4096);
            b.sys(Sysno::Read);
        }
        b.mov(0, 13);
        b.sys(Sysno::Close);

        // Font/macro database lookups.
        for a in 0..AUX_PER_CHAPTER as usize {
            let p = aux_paths[c * AUX_PER_CHAPTER as usize + a];
            b.la(0, p);
            b.la(1, statbuf);
            b.sys(Sysno::Stat);
            b.la(0, p);
            b.li(1, 0);
            b.li(2, 0);
            b.sys(Sysno::Open);
            b.mov(13, 0);
            b.mov(0, 13);
            b.la(1, buf);
            b.li(2, 512);
            b.sys(Sysno::Read);
            b.mov(0, 13);
            b.sys(Sysno::Close);
        }

        // "Format" the chapter: the compute-bound phase.
        b.burn(BURN_PER_CHAPTER);

        // Progress timestamp (Scribe stamps its logs).
        b.la(0, tvbuf);
        b.li(1, 0);
        b.sys(Sysno::Gettimeofday);

        // Emit the formatted output.
        for _ in 0..WRITES_PER_CHAPTER {
            b.mov(0, 12);
            b.la(1, buf);
            b.li(2, 1024);
            b.sys(Sysno::Write);
        }
    }

    // Final bookkeeping and exit.
    b.mov(0, 12);
    b.la(1, statbuf);
    b.sys(Sysno::Fstat);
    b.mov(0, 12);
    b.sys(Sysno::Close);
    b.la(0, out_path);
    b.la(1, statbuf);
    b.sys(Sysno::Stat);
    b.li(0, 0);
    b.sys(Sysno::Exit);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_kernel::{KernelBuilder, RunOutcome, VAX_6250};

    #[test]
    fn syscall_count_matches_construction() {
        let mut k = KernelBuilder::new().profile(VAX_6250).build();
        setup(&mut k);
        k.spawn_image(&image(), &[b"scribe"], b"scribe");
        let before = k.total_syscalls;
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        let calls = k.total_syscalls - before;
        assert_eq!(calls, expected_syscalls(), "construction arithmetic");
        // The paper's 716: we land close by design.
        assert!(
            (660..=780).contains(&calls),
            "should be near the paper's 716, got {calls}"
        );
    }

    #[test]
    fn base_runtime_near_paper_on_vax() {
        let mut k = KernelBuilder::new().profile(VAX_6250).build();
        setup(&mut k);
        k.spawn_image(&image(), &[b"scribe"], b"scribe");
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        let secs = k.clock.elapsed_secs();
        assert!(
            (140.0..165.0).contains(&secs),
            "paper: 151.7 s; got {secs:.1} s"
        );
    }

    #[test]
    fn output_file_written() {
        let mut k = KernelBuilder::new().profile(VAX_6250).build();
        setup(&mut k);
        k.spawn_image(&image(), &[b"scribe"], b"scribe");
        k.run_to_completion();
        let out = k.read_file(b"/home/mbj/diss/thesis.dvi").unwrap();
        assert_eq!(
            out.len() as u64,
            CHAPTERS * WRITES_PER_CHAPTER * 1024,
            "all device output landed"
        );
    }
}
