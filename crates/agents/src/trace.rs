//! The `trace` agent (§3.3.2) — "traces the execution of client processes,
//! printing each system call made and signal received".
//!
//! As in the paper, the trace is written through the interface itself:
//! each traced call costs "at least an additional two `write()` system
//! calls in order to write the trace output", and the output "is not
//! buffered across system calls so it will not be lost if the process is
//! killed". The log is an ordinary file in the simulated filesystem; a
//! [`TraceHandle`] additionally captures the text host-side for tests and
//! tools.
//!
//! Where the paper wrote ~1350 statements of per-call derived methods,
//! Rust's pattern matching concentrates the same per-call knowledge in
//! [`format_call`]: still proportional to the size of the interface,
//! exactly as §3.3.2 observes, just denser.

use std::sync::{Arc, Mutex};

use ia_abi::{Errno, OpenFlags, RawArgs, Signal, Sysno};
use ia_interpose::{Agent, InterestSet, SignalVerdict, SysCtx};
use ia_kernel::SysOutcome;
use ia_toolkit::{Scratch, SymCtx};

/// Host-side view of the trace text.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    buf: Arc<Mutex<String>>,
}

impl TraceHandle {
    /// The accumulated trace text.
    #[must_use]
    pub fn text(&self) -> String {
        self.buf.lock().unwrap().clone()
    }

    /// Number of trace lines so far.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.buf.lock().unwrap().lines().count()
    }
}

/// The tracing agent.
pub struct TraceAgent {
    log_path: Vec<u8>,
    log_fd: Option<u64>,
    scratch: Scratch,
    handle: TraceHandle,
}

impl TraceAgent {
    /// Default log location in the simulated filesystem.
    pub const DEFAULT_LOG: &'static [u8] = b"/tmp/trace.out";

    /// Creates a tracer logging to [`Self::DEFAULT_LOG`], returning the
    /// agent and the host-side handle.
    #[must_use]
    pub fn new() -> (TraceAgent, TraceHandle) {
        Self::with_log(Self::DEFAULT_LOG)
    }

    /// Creates a tracer logging to `path`.
    #[must_use]
    pub fn with_log(path: &[u8]) -> (TraceAgent, TraceHandle) {
        let handle = TraceHandle::default();
        (
            TraceAgent {
                log_path: path.to_vec(),
                log_fd: None,
                scratch: Scratch::new(),
                handle: handle.clone(),
            },
            handle,
        )
    }

    /// Emits one line: an unbuffered `write()` downcall plus the host copy.
    fn emit(&mut self, ctx: &mut SysCtx<'_>, line: &str) {
        self.handle.buf.lock().unwrap().push_str(line);
        self.handle.buf.lock().unwrap().push('\n');
        if let Some(fd) = self.log_fd {
            let mut sym = SymCtx::new(ctx);
            let mut bytes = line.as_bytes().to_vec();
            bytes.push(b'\n');
            if let Ok(addr) = self.scratch.write(&mut sym, &bytes) {
                let _ = sym.down_args(Sysno::Write, [fd, addr, bytes.len() as u64, 0, 0, 0]);
            }
        }
    }
}

impl Default for TraceAgent {
    fn default() -> Self {
        Self::new().0
    }
}

impl Agent for TraceAgent {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn interests(&self) -> InterestSet {
        InterestSet::ALL
    }

    fn init(&mut self, ctx: &mut SysCtx<'_>, args: &[Vec<u8>]) {
        if let Some(p) = args.first() {
            self.log_path = p.clone();
        }
        let mut sym = SymCtx::new(ctx);
        self.scratch.reset();
        if let Ok(addr) = self.scratch.write_cstr(&mut sym, &self.log_path) {
            let flags = u64::from(OpenFlags::O_WRONLY | OpenFlags::O_CREAT | OpenFlags::O_APPEND);
            if let SysOutcome::Done(Ok([fd, _])) =
                sym.down_args(Sysno::Open, [addr, flags, 0o644, 0, 0, 0])
            {
                self.log_fd = Some(fd);
            }
        }
    }

    fn init_child(&mut self, _ctx: &mut SysCtx<'_>) {
        // The log descriptor was inherited across fork; O_APPEND keeps the
        // interleaved writes safe.
    }

    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        self.scratch.reset();
        let call_text = {
            let mut sym = SymCtx::new(ctx);
            format_call(&mut sym, nr, &args)
        };
        // Print the entry line only on first delivery, not on restarts of
        // a blocked call.
        if ctx.restarts == 0 {
            let line = format!("{call_text} ...");
            self.emit(ctx, &line);
        }
        let out = ctx.down(nr, args);
        match out {
            SysOutcome::Done(res) => {
                let line = format!("... {call_text} -> {}", format_result(res));
                self.emit(ctx, &line);
            }
            SysOutcome::NoReturn => {
                // exit / exec / sigreturn: no result line, as in the paper.
            }
            SysOutcome::Block(_) => {
                // Will restart; the result line comes from the retry.
            }
        }
        out
    }

    fn signal_incoming(&mut self, ctx: &mut SysCtx<'_>, sig: Signal) -> SignalVerdict {
        self.scratch.reset();
        let line = format!("--- signal {sig} ---");
        self.emit(ctx, &line);
        SignalVerdict::Deliver
    }

    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(TraceAgent {
            log_path: self.log_path.clone(),
            log_fd: self.log_fd,
            scratch: self.scratch.deep_clone(),
            handle: self.handle.clone(),
        })
    }
}

/// Reads a pathname argument for display, with a fallback for bad
/// pointers.
fn path_arg(ctx: &mut SymCtx<'_, '_>, addr: u64) -> String {
    match ctx.read_path(addr) {
        Ok(p) => format!("\"{}\"", String::from_utf8_lossy(&p)),
        Err(_) => format!("{addr:#x}"),
    }
}

/// Formats one system call with per-call argument knowledge — the trace
/// agent's interface-proportional core.
pub fn format_call(ctx: &mut SymCtx<'_, '_>, nr: u32, args: &RawArgs) -> String {
    let Some(sys) = Sysno::from_u32(nr) else {
        return format!(
            "syscall({nr}, {:#x}, {:#x}, {:#x})",
            args[0], args[1], args[2]
        );
    };
    use Sysno::*;
    match sys {
        Open => format!(
            "open({}, {}, {:#o})",
            path_arg(ctx, args[0]),
            OpenFlags::new(args[1] as u32).describe(),
            args[2]
        ),
        Read => format!("read({}, {:#x}, {:#x})", args[0], args[1], args[2]),
        Write => format!("write({}, {:#x}, {:#x})", args[0], args[1], args[2]),
        Close => format!("close({})", args[0]),
        Exit => format!("exit({})", args[0]),
        Fork => "fork()".to_string(),
        Vfork => "vfork()".to_string(),
        Wait4 => format!(
            "wait4({}, {:#x}, {}, {:#x})",
            args[0] as i64, args[1], args[2], args[3]
        ),
        Link => format!(
            "link({}, {})",
            path_arg(ctx, args[0]),
            path_arg(ctx, args[1])
        ),
        Unlink => format!("unlink({})", path_arg(ctx, args[0])),
        Chdir => format!("chdir({})", path_arg(ctx, args[0])),
        Fchdir => format!("fchdir({})", args[0]),
        Mknod => format!(
            "mknod({}, {:#o}, {})",
            path_arg(ctx, args[0]),
            args[1],
            args[2]
        ),
        Chmod => format!("chmod({}, {:#o})", path_arg(ctx, args[0]), args[1]),
        Chown => format!(
            "chown({}, {}, {})",
            path_arg(ctx, args[0]),
            args[1] as i64,
            args[2] as i64
        ),
        Sbrk => format!("sbrk({})", args[0] as i64),
        Lseek => format!("lseek({}, {}, {})", args[0], args[1] as i64, args[2]),
        Getpid => "getpid()".to_string(),
        Getppid => "getppid()".to_string(),
        Getuid => "getuid()".to_string(),
        Geteuid => "geteuid()".to_string(),
        Getgid => "getgid()".to_string(),
        Getegid => "getegid()".to_string(),
        Setuid => format!("setuid({})", args[0]),
        Setgid => format!("setgid({})", args[0]),
        Setreuid => format!("setreuid({}, {})", args[0] as i64, args[1] as i64),
        Setregid => format!("setregid({}, {})", args[0] as i64, args[1] as i64),
        Access => format!("access({}, {})", path_arg(ctx, args[0]), args[1]),
        Sync => "sync()".to_string(),
        Kill => format!(
            "kill({}, {})",
            args[0] as i64,
            Signal::from_u32(args[1] as u32).map_or_else(|| args[1].to_string(), |s| s.to_string())
        ),
        Stat => format!("stat({}, {:#x})", path_arg(ctx, args[0]), args[1]),
        Lstat => format!("lstat({}, {:#x})", path_arg(ctx, args[0]), args[1]),
        Fstat => format!("fstat({}, {:#x})", args[0], args[1]),
        Dup => format!("dup({})", args[0]),
        Dup2 => format!("dup2({}, {})", args[0], args[1]),
        Pipe => "pipe()".to_string(),
        Sigaction => format!(
            "sigaction({}, {:#x}, {:#x})",
            Signal::from_u32(args[0] as u32).map_or_else(|| args[0].to_string(), |s| s.to_string()),
            args[1],
            args[2]
        ),
        Sigprocmask => format!("sigprocmask({}, {:#x})", args[0], args[1]),
        Sigpending => "sigpending()".to_string(),
        Sigsuspend => format!("sigsuspend({:#x})", args[0]),
        Sigreturn => format!("sigreturn({:#x})", args[0]),
        Ioctl => format!("ioctl({}, {:#x}, {:#x})", args[0], args[1], args[2]),
        Symlink => format!(
            "symlink({}, {})",
            path_arg(ctx, args[0]),
            path_arg(ctx, args[1])
        ),
        Readlink => format!(
            "readlink({}, {:#x}, {})",
            path_arg(ctx, args[0]),
            args[1],
            args[2]
        ),
        Execve => format!(
            "execve({}, {:#x}, {:#x})",
            path_arg(ctx, args[0]),
            args[1],
            args[2]
        ),
        Umask => format!("umask({:#o})", args[0]),
        Chroot => format!("chroot({})", path_arg(ctx, args[0])),
        Getpgrp => "getpgrp()".to_string(),
        Setpgid => format!("setpgid({}, {})", args[0], args[1]),
        Setsid => "setsid()".to_string(),
        Setitimer => format!("setitimer({}, {:#x}, {:#x})", args[0], args[1], args[2]),
        Getitimer => format!("getitimer({}, {:#x})", args[0], args[1]),
        Getdtablesize => "getdtablesize()".to_string(),
        Fcntl => format!("fcntl({}, {}, {:#x})", args[0], args[1], args[2]),
        Select => format!(
            "select({}, {:#x}, {:#x}, {:#x}, {:#x})",
            args[0], args[1], args[2], args[3], args[4]
        ),
        Fsync => format!("fsync({})", args[0]),
        Setpriority => format!("setpriority({}, {}, {})", args[0], args[1], args[2] as i64),
        Getpriority => format!("getpriority({}, {})", args[0], args[1]),
        Socket => format!("socket({}, {}, {})", args[0], args[1], args[2]),
        Socketpair => format!("socketpair({}, {}, {})", args[0], args[1], args[2]),
        Bind => format!("bind({}, {})", args[0], path_arg(ctx, args[1])),
        Connect => format!("connect({}, {})", args[0], path_arg(ctx, args[1])),
        Listen => format!("listen({}, {})", args[0], args[1]),
        Accept => format!("accept({}, {:#x}, {:#x})", args[0], args[1], args[2]),
        Gettimeofday => format!("gettimeofday({:#x}, {:#x})", args[0], args[1]),
        Settimeofday => format!("settimeofday({:#x}, {:#x})", args[0], args[1]),
        Adjtime => format!("adjtime({:#x}, {:#x})", args[0], args[1]),
        Getrusage => format!("getrusage({}, {:#x})", args[0], args[1]),
        Readv => format!("readv({}, {:#x}, {})", args[0], args[1], args[2]),
        Writev => format!("writev({}, {:#x}, {})", args[0], args[1], args[2]),
        Fchown => format!(
            "fchown({}, {}, {})",
            args[0], args[1] as i64, args[2] as i64
        ),
        Fchmod => format!("fchmod({}, {:#o})", args[0], args[1]),
        Rename => format!(
            "rename({}, {})",
            path_arg(ctx, args[0]),
            path_arg(ctx, args[1])
        ),
        Truncate => format!("truncate({}, {})", path_arg(ctx, args[0]), args[1]),
        Ftruncate => format!("ftruncate({}, {})", args[0], args[1]),
        Flock => format!("flock({}, {})", args[0], args[1]),
        Mkfifo => format!("mkfifo({}, {:#o})", path_arg(ctx, args[0]), args[1]),
        Mkdir => format!("mkdir({}, {:#o})", path_arg(ctx, args[0]), args[1]),
        Rmdir => format!("rmdir({})", path_arg(ctx, args[0])),
        Utimes => format!("utimes({}, {:#x})", path_arg(ctx, args[0]), args[1]),
        Getdirentries => format!(
            "getdirentries({}, {:#x}, {}, {:#x})",
            args[0], args[1], args[2], args[3]
        ),
    }
}

/// Formats a completed result: value, or `-1 ERRNO`.
#[must_use]
pub fn format_result(res: Result<[u64; 2], Errno>) -> String {
    match res {
        Ok([a, 0]) => format!("{a}"),
        Ok([a, b]) => format!("({a}, {b})"),
        Err(e) => format!("-1 {}", e.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::{spawn_with_agent, InterposedRouter};
    use ia_kernel::{Kernel, KernelBuilder, RunOutcome};

    fn run_traced(src: &str) -> (Kernel, TraceHandle) {
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        let mut router = InterposedRouter::new();
        let (agent, handle) = TraceAgent::new();
        spawn_with_agent(
            &mut k,
            &mut router,
            Box::new(agent),
            &[],
            &img,
            &[b"client"],
            b"client",
        );
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        (k, handle)
    }

    #[test]
    fn traces_calls_with_decoded_paths_and_results() {
        let (k, handle) = run_traced(
            r#"
            .data
            path: .asciz "/tmp/x"
            .text
            main:
                la r0, path
                li r1, 0x601
                li r2, 420
                sys open
                mov r3, r0
                mov r0, r3
                sys close
                li r0, 7
                sys exit
            "#,
        );
        let text = handle.text();
        assert!(
            text.contains(r#"open("/tmp/x", O_WRONLY|O_CREAT|O_TRUNC, 0o644)"#),
            "decoded open line, got:\n{text}"
        );
        // fd 3 is the trace log itself (opened at agent init), so the
        // client's file lands on fd 4.
        assert!(text.contains("-> 4"), "open returned fd 4:\n{text}");
        assert!(text.contains("close(4)"));
        assert!(text.contains("exit(7)"));
        // The log is also a real file in the simulated filesystem.
        let mut k = k;
        let log = k.read_file(TraceAgent::DEFAULT_LOG).unwrap();
        assert!(!log.is_empty());
        let log_text = String::from_utf8_lossy(&log);
        assert!(log_text.contains("close(4)"));
    }

    #[test]
    fn trace_records_errors_symbolically() {
        let (_, handle) = run_traced(
            r#"
            .data
            path: .asciz "/no/such/file"
            .text
            main:
                la r0, path
                li r1, 0
                li r2, 0
                sys open
                li r0, 0
                sys exit
            "#,
        );
        assert!(
            handle.text().contains("-> -1 ENOENT"),
            "got:\n{}",
            handle.text()
        );
    }

    #[test]
    fn trace_records_signals() {
        let (_, handle) = run_traced(
            r#"
            main:
                sys getpid
                li r1, 2        ; SIGINT
                sys kill
                li r0, 0
                sys exit
            "#,
        );
        assert!(
            handle.text().contains("--- signal SIGINT ---"),
            "got:\n{}",
            handle.text()
        );
    }

    #[test]
    fn each_call_costs_two_extra_writes() {
        // Paper §3.4.1.1: each traced call results in at least two
        // additional write() calls for the log.
        let (k, handle) = run_traced("main: sys getpid\n li r0, 0\n sys exit\n");
        // getpid produces 2 lines; exit produces 1 (no result line).
        assert_eq!(handle.lines(), 3, "got:\n{}", handle.text());
        let _ = k;
    }
}
