//! Property tests for pipe buffers: FIFO ordering against an oracle,
//! capacity discipline, and endpoint-lifecycle invariants.

use ia_vfs::pipe::PipeIo;
use ia_vfs::{PipeTable, PIPE_CAPACITY};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum PipeOp {
    Write(Vec<u8>),
    Read(usize),
    AddReader,
    AddWriter,
    DropReader,
    DropWriter,
}

fn op() -> impl Strategy<Value = PipeOp> {
    prop_oneof![
        4 => proptest::collection::vec(any::<u8>(), 0..300).prop_map(PipeOp::Write),
        4 => (0usize..300).prop_map(PipeOp::Read),
        1 => Just(PipeOp::AddReader),
        1 => Just(PipeOp::AddWriter),
        1 => Just(PipeOp::DropReader),
        1 => Just(PipeOp::DropWriter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bytes come out exactly in the order they went in, regardless of the
    /// interleaving of reads, writes and endpoint churn.
    #[test]
    fn fifo_order_matches_oracle(ops in proptest::collection::vec(op(), 1..60)) {
        let mut t = PipeTable::new();
        let id = t.create();
        t.add_reader(id);
        t.add_writer(id);
        let mut readers: u32 = 1;
        let mut writers: u32 = 1;
        let mut sent: Vec<u8> = Vec::new();
        let mut received: Vec<u8> = Vec::new();
        let mut accepted = 0usize;

        for o in ops {
            // Once the pipe is reclaimed, stop (both endpoint classes gone).
            if t.get(id).is_none() {
                break;
            }
            match o {
                PipeOp::Write(data) => {
                    match t.get_mut(id).unwrap().write(&data) {
                        PipeIo::Done(n) => {
                            sent.extend_from_slice(&data[..n]);
                            accepted += n;
                        }
                        PipeIo::WouldBlock => {
                            // Nothing may have been transferred.
                        }
                        PipeIo::Hangup => prop_assert_eq!(readers, 0),
                    }
                }
                PipeOp::Read(n) => {
                    let mut out = Vec::new();
                    match t.get_mut(id).unwrap().read(&mut out, n) {
                        PipeIo::Done(k) => {
                            prop_assert_eq!(out.len(), k);
                            received.extend_from_slice(&out);
                        }
                        PipeIo::WouldBlock => prop_assert!(writers > 0),
                        PipeIo::Hangup => prop_assert_eq!(writers, 0),
                    }
                }
                PipeOp::AddReader => {
                    t.add_reader(id);
                    readers += 1;
                }
                PipeOp::AddWriter => {
                    t.add_writer(id);
                    writers += 1;
                }
                PipeOp::DropReader => {
                    if readers > 0 {
                        t.drop_reader(id);
                        readers -= 1;
                    }
                }
                PipeOp::DropWriter => {
                    if writers > 0 {
                        t.drop_writer(id);
                        writers -= 1;
                    }
                }
            }
            if let Some(p) = t.get(id) {
                prop_assert!(p.len() <= PIPE_CAPACITY);
                prop_assert_eq!(p.len(), accepted - received.len());
            }
        }
        prop_assert!(received.len() <= sent.len());
        prop_assert_eq!(&received[..], &sent[..received.len()], "FIFO order");
    }

    /// Writes never exceed capacity, and sub-capacity writes are atomic:
    /// either everything transfers or nothing does.
    #[test]
    fn atomicity_of_small_writes(pre in 0usize..PIPE_CAPACITY, n in 1usize..PIPE_CAPACITY) {
        let mut t = PipeTable::new();
        let id = t.create();
        t.add_reader(id);
        t.add_writer(id);
        let p = t.get_mut(id).unwrap();
        assert_eq!(p.write(&vec![1; pre]), PipeIo::Done(pre));
        match p.write(&vec![2; n]) {
            PipeIo::Done(k) => {
                prop_assert_eq!(k, n, "full transfer when it fits");
                prop_assert!(pre + n <= PIPE_CAPACITY);
            }
            PipeIo::WouldBlock => {
                prop_assert!(pre + n > PIPE_CAPACITY, "refused only when it would not fit");
                prop_assert_eq!(p.len(), pre, "nothing partially transferred");
            }
            PipeIo::Hangup => prop_assert!(false, "readers exist"),
        }
    }
}
