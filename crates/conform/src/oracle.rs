//! The differential executor: one program, many configurations, one
//! verdict.
//!
//! Two oracles compose here:
//!
//! * **Scheduler conformance** — for a fixed agent configuration, the
//!   sliced scheduler and the per-instruction legacy scheduler must agree
//!   on the *complete* observable state, virtual clock included.
//! * **Transparency** (the paper's §3.1) — across agent configurations,
//!   the *client-visible* state (console, exit statuses, filesystem
//!   content) must agree, while clocks legitimately differ by the
//!   interposition overhead.

use ia_agents::{PassThrough, ProfileAgent, TimeSymbolic, TraceAgent};
use ia_interpose::{wrap_process, Agent, InterposedRouter};
use ia_kernel::{run, run_legacy, Engine, KernelBuilder, Observable, RunLimits, RunOutcome};

use crate::gen::Program;

/// Step budget for one conformance run; generated programs finish in well
/// under a million instructions, so hitting this is itself a finding.
pub const MAX_STEPS: u64 = 50_000_000;

/// Which scheduler drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// The sliced hot path (`ia_kernel::run`).
    Sliced,
    /// The per-instruction reference (`ia_kernel::run_legacy`).
    Legacy,
}

/// Which agent configuration wraps the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// No interposition at all.
    Bare,
    /// One full-interception pass-through agent.
    Pass,
    /// One batchable full-coverage observer (vectored upcalls engaged).
    Batched,
    /// Three stacked pass-through agents (symbolic, profile, trace).
    Stacked,
}

impl StackKind {
    /// Builds the agent boxes for this configuration.
    #[must_use]
    pub fn agents(self) -> Vec<Box<dyn Agent>> {
        match self {
            StackKind::Bare => Vec::new(),
            StackKind::Pass => vec![TimeSymbolic::boxed()],
            StackKind::Batched => vec![PassThrough::boxed() as Box<dyn Agent>],
            StackKind::Stacked => vec![
                TimeSymbolic::boxed(),
                Box::new(ProfileAgent::new().0),
                Box::new(TraceAgent::with_log(b"/dev/null").0),
            ],
        }
    }
}

/// Everything one run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Full observable state at the end.
    pub obs: Observable,
    /// Post-run invariant violations (leaks, queue corruption); must be
    /// empty.
    pub leaks: Vec<String>,
}

/// Runs `program` once under `sched` with the given agents wrapped around
/// the initial process, with the trap fast path on.
#[must_use]
pub fn run_config(program: &Program, sched: SchedKind, agents: Vec<Box<dyn Agent>>) -> Observation {
    run_config_fast(program, sched, true, agents)
}

/// [`run_config`] with an explicit fast-path knob, for differential runs
/// against the fully-dispatched slow path. Runs the default (fused) engine.
#[must_use]
pub fn run_config_fast(
    program: &Program,
    sched: SchedKind,
    fast: bool,
    agents: Vec<Box<dyn Agent>>,
) -> Observation {
    run_config_full(program, sched, fast, Engine::Fused, agents)
}

/// The fully-knobbed run: scheduler × fast path × execution engine. The
/// engine selects the `run_slice` body, so it is inert under the legacy
/// per-instruction scheduler — the matrix still runs those configurations
/// to prove exactly that.
#[must_use]
pub fn run_config_full(
    program: &Program,
    sched: SchedKind,
    fast: bool,
    engine: Engine,
    agents: Vec<Box<dyn Agent>>,
) -> Observation {
    let mut k = KernelBuilder::new().fast_path(fast).engine(engine).build();
    Program::setup(&mut k);
    let pid = k.spawn_image(&program.compile(), &[b"conform"], b"conform");
    let mut router = InterposedRouter::new();
    for a in agents {
        wrap_process(&mut k, &mut router, pid, a, &[]);
    }
    let limits = RunLimits {
        max_steps: MAX_STEPS,
    };
    let outcome = match sched {
        SchedKind::Sliced => run(&mut k, &mut router, limits),
        SchedKind::Legacy => run_legacy(&mut k, &mut router, limits),
    };
    let leaks = if outcome == RunOutcome::AllExited {
        k.check_quiescent()
    } else {
        k.check_invariants()
    };
    Observation {
        outcome,
        obs: k.observable(),
        leaks,
    }
}

/// Convenience: [`run_config`] with a named pass-through stack.
#[must_use]
pub fn run_stack(program: &Program, stack: StackKind, sched: SchedKind) -> Observation {
    run_config(program, sched, stack.agents())
}

/// Convenience: [`run_config_fast`] with a named pass-through stack.
#[must_use]
pub fn run_stack_fast(
    program: &Program,
    stack: StackKind,
    sched: SchedKind,
    fast: bool,
) -> Observation {
    run_config_fast(program, sched, fast, stack.agents())
}

/// Convenience: [`run_config_full`] with a named pass-through stack.
#[must_use]
pub fn run_stack_full(
    program: &Program,
    stack: StackKind,
    sched: SchedKind,
    fast: bool,
    engine: Engine,
) -> Observation {
    run_config_full(program, sched, fast, engine, stack.agents())
}

/// Renders console bytes for an error message, lossily and truncated.
fn show_console(bytes: &[u8]) -> String {
    let s = String::from_utf8_lossy(bytes);
    if s.len() > 160 {
        format!("{}… ({} bytes)", &s[..160], bytes.len())
    } else {
        s.into_owned()
    }
}

/// First difference between two full observations, if any.
#[must_use]
pub fn describe_diff(la: &str, a: &Observation, lb: &str, b: &Observation) -> Option<String> {
    if a.outcome != b.outcome {
        return Some(format!(
            "outcome: {la}={:?} vs {lb}={:?}",
            a.outcome, b.outcome
        ));
    }
    if let Some(d) = describe_client_diff(la, a, lb, b) {
        return Some(d);
    }
    if a.obs.clock_ns != b.obs.clock_ns {
        return Some(format!(
            "virtual clock: {la}={}ns vs {lb}={}ns",
            a.obs.clock_ns, b.obs.clock_ns
        ));
    }
    if a.obs.total_insns != b.obs.total_insns {
        return Some(format!(
            "instructions: {la}={} vs {lb}={}",
            a.obs.total_insns, b.obs.total_insns
        ));
    }
    if a.obs.total_syscalls != b.obs.total_syscalls {
        return Some(format!(
            "syscalls: {la}={} vs {lb}={}",
            a.obs.total_syscalls, b.obs.total_syscalls
        ));
    }
    None
}

/// First difference between the client-visible halves, if any.
#[must_use]
pub fn describe_client_diff(
    la: &str,
    a: &Observation,
    lb: &str,
    b: &Observation,
) -> Option<String> {
    let (ca, cb) = (&a.obs.client, &b.obs.client);
    if ca.console != cb.console {
        return Some(format!(
            "console: {la}={:?} vs {lb}={:?}",
            show_console(&ca.console),
            show_console(&cb.console)
        ));
    }
    if ca.exit_statuses != cb.exit_statuses {
        return Some(format!(
            "exit statuses: {la}={:?} vs {lb}={:?}",
            ca.exit_statuses, cb.exit_statuses
        ));
    }
    if ca.vfs_digest != cb.vfs_digest {
        return Some(format!(
            "vfs digest: {la}={:#x} vs {lb}={:#x} (files {}/{} bytes {}/{})",
            ca.vfs_digest, cb.vfs_digest, ca.fs_files, cb.fs_files, ca.fs_bytes, cb.fs_bytes
        ));
    }
    None
}

fn completed(label: &str, o: &Observation) -> Result<(), String> {
    if o.outcome != RunOutcome::AllExited {
        return Err(format!("[{label}] did not complete: {:?}", o.outcome));
    }
    if !o.leaks.is_empty() {
        return Err(format!("[{label}] kernel left inconsistent: {:?}", o.leaks));
    }
    Ok(())
}

/// The full oracle matrix for one program: four agent stacks ×
/// {fused, plain} × {sliced, legacy} × {fast path on, off}. Per-stack,
/// every configuration must agree on the *complete* observable state (the
/// trap fast path, both schedulers, and both execution engines are
/// bit-identical by design — the engine knob is inert under the legacy
/// scheduler, and those runs prove it); across stacks, the client view must
/// agree. Every run must terminate and leave the kernel leak-free.
pub fn check_program(program: &Program) -> Result<(), String> {
    let mut baseline: Option<(&'static str, Observation)> = None;
    for (label, stack) in [
        ("bare", StackKind::Bare),
        ("pass", StackKind::Pass),
        ("batched", StackKind::Batched),
        ("stacked", StackKind::Stacked),
    ] {
        let mut reference: Option<(String, Observation)> = None;
        for (cfg, sched, fast, engine) in [
            ("sliced+fast+fused", SchedKind::Sliced, true, Engine::Fused),
            ("sliced+fused", SchedKind::Sliced, false, Engine::Fused),
            ("sliced+fast", SchedKind::Sliced, true, Engine::Plain),
            ("sliced", SchedKind::Sliced, false, Engine::Plain),
            ("legacy+fast+fused", SchedKind::Legacy, true, Engine::Fused),
            ("legacy+fused", SchedKind::Legacy, false, Engine::Fused),
            ("legacy+fast", SchedKind::Legacy, true, Engine::Plain),
            ("legacy", SchedKind::Legacy, false, Engine::Plain),
        ] {
            let run_label = format!("{label}/{cfg}");
            let o = run_stack_full(program, stack, sched, fast, engine);
            completed(&run_label, &o)?;
            match &reference {
                None => reference = Some((run_label, o)),
                Some((rlabel, r)) => {
                    if let Some(d) = describe_diff(rlabel, r, &run_label, &o) {
                        return Err(format!("scheduler divergence: {d}"));
                    }
                }
            }
        }
        let (_, sliced_fast) = reference.expect("at least one config ran");
        match &baseline {
            None => baseline = Some((label, sliced_fast)),
            Some((blabel, base)) => {
                if let Some(d) = describe_client_diff(blabel, base, label, &sliced_fast) {
                    return Err(format!("transparency violation: {d}"));
                }
            }
        }
    }
    Ok(())
}

/// Transparency check against a custom agent stack: the client view with
/// `agents` wrapped must equal the bare run. `compare_fs` selects whether
/// at-rest filesystem content must also match — turn it off for agents
/// (crypt, zip) that legitimately transform stored bytes while presenting
/// the same data through the interface.
pub fn check_client_equiv(
    program: &Program,
    agents: impl Fn() -> Vec<Box<dyn Agent>>,
    compare_fs: bool,
) -> Result<(), String> {
    let bare = run_stack(program, StackKind::Bare, SchedKind::Sliced);
    completed("bare", &bare)?;
    let wrapped = run_config(program, SchedKind::Sliced, agents());
    completed("wrapped", &wrapped)?;
    let (ca, cb) = (&bare.obs.client, &wrapped.obs.client);
    if ca.console != cb.console {
        return Err(format!(
            "console: bare={:?} vs wrapped={:?}",
            show_console(&ca.console),
            show_console(&cb.console)
        ));
    }
    if ca.exit_statuses != cb.exit_statuses {
        return Err(format!(
            "exit statuses: bare={:?} vs wrapped={:?}",
            ca.exit_statuses, cb.exit_statuses
        ));
    }
    if compare_fs && ca.vfs_digest != cb.vfs_digest {
        return Err(format!(
            "vfs digest: bare={:#x} vs wrapped={:#x}",
            ca.vfs_digest, cb.vfs_digest
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{sample, OpSet};

    #[test]
    fn oracle_matrix_passes_on_generated_programs() {
        for seed in 0..6 {
            let p = sample(seed, 25, OpSet::ALL);
            check_program(&p).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }

    #[test]
    fn client_equiv_accepts_pass_through() {
        let p = sample(77, 20, OpSet::ALL);
        check_client_equiv(&p, || vec![TimeSymbolic::boxed()], true).unwrap();
    }
}
