//! Host wall-clock bench for Table 3-3: the make-8-programs workload
//! under each agent.

use ia_bench::harness::case;
use ia_kernel::I486_25;
use ia_workloads::{run_workload, AgentKind, Workload};

fn main() {
    for agent in AgentKind::TABLE_ROWS {
        case("table_3_3_make8", agent.name(), 10, || {
            let stats = run_workload(Workload::Make8, I486_25, agent);
            assert_eq!(stats.outcome, ia_kernel::RunOutcome::AllExited);
            stats.virtual_secs
        });
    }
}
