//! Micro-benchmark loops for per-syscall costs (Tables 3-4 and 3-5).
//!
//! Each builder produces a program that performs one system call `n`
//! times in a tight loop whose instruction count is known exactly, so the
//! harness can subtract loop overhead from the virtual elapsed time and
//! recover the per-call cost — with and without an interposed agent.

use ia_abi::Sysno;
use ia_kernel::Kernel;
use ia_vm::{Image, ProgramBuilder};

/// Which call a micro loop exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroCall {
    /// `getpid()` — the cheapest call.
    Getpid,
    /// `gettimeofday(&tv, 0)`.
    Gettimeofday,
    /// `fstat(fd, &st)` on an open file.
    Fstat,
    /// `read(fd, buf, 1024)` — sequential 1 KB reads of a large file.
    Read1k,
    /// `write(fd, buf, 1024)` — sequential 1 KB writes to a scratch file.
    /// Not part of Table 3-5 ([`MicroCall::ALL`]); used by the BENCH_2
    /// per-agent overhead table.
    Write1k,
    /// `stat` of a six-component pathname, as the paper measured.
    Stat,
    /// `open`+`close` of the six-component pathname.
    OpenClose,
    /// `fork`+`wait`+`_exit` round trip.
    ForkWaitExit,
    /// `fork`+`execve`+`wait`: the child execs a trivial image.
    ForkExecWait,
}

impl MicroCall {
    /// All variants, in Table 3-5 order.
    pub const ALL: [MicroCall; 8] = [
        MicroCall::Getpid,
        MicroCall::Gettimeofday,
        MicroCall::Fstat,
        MicroCall::Read1k,
        MicroCall::Stat,
        MicroCall::OpenClose,
        MicroCall::ForkWaitExit,
        MicroCall::ForkExecWait,
    ];

    /// Display name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MicroCall::Getpid => "getpid()",
            MicroCall::Gettimeofday => "gettimeofday()",
            MicroCall::Fstat => "fstat()",
            MicroCall::Read1k => "read() 1K of data",
            MicroCall::Write1k => "write() 1K of data",
            MicroCall::Stat => "stat()",
            MicroCall::OpenClose => "open() + close()",
            MicroCall::ForkWaitExit => "fork(), wait(), _exit()",
            MicroCall::ForkExecWait => "execve()",
        }
    }
}

/// The six-component path used by stat/open loops, as in the paper's
/// "pathnames ... in a UFS filesystem with 6 pathname components".
pub const SIX_COMPONENT_PATH: &[u8] = b"/usr/lib/tex/fonts/cm/cmr10.tfm";

/// Installs the files the micro loops reference. Returns the path of the
/// trivial exec target.
pub fn setup(k: &mut Kernel) -> Vec<u8> {
    k.mkdir_p(b"/usr/lib/tex/fonts/cm").unwrap();
    // Large enough that sequential micro-loop reads never hit EOF.
    k.write_file(SIX_COMPONENT_PATH, &vec![b'f'; 512 * 1024])
        .unwrap();
    let mut b = ProgramBuilder::new();
    b.li(0, 0);
    b.sys(Sysno::Exit);
    let img = b.build();
    k.install_image(b"/bin/true", &img).unwrap();
    b"/bin/true".to_vec()
}

/// Builds a loop performing `call` exactly `n` times, then exiting.
#[must_use]
pub fn loop_image(call: MicroCall, n: u64) -> Image {
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(1152);
    let path = b.data_asciz(SIX_COMPONENT_PATH);
    let true_path = b.data_asciz(b"/bin/true");
    let wpath = b.data_asciz(b"/tmp/micro.out");

    b.entry_here();
    // Open a descriptor for fd-based loops (not counted in the loop).
    // The write loop gets a writable scratch file; everything else reads
    // the six-component path.
    if call == MicroCall::Write1k {
        b.la(0, wpath);
        b.li(1, 0x601); // O_WRONLY | O_CREAT | O_TRUNC
        b.li(2, 420);
    } else {
        b.la(0, path);
        b.li(1, 0);
        b.li(2, 0);
    }
    b.sys(Sysno::Open);
    b.mov(12, 0);

    b.li(13, n); // loop counter
    let top = b.here();
    let done = b.new_label();
    b.jz(13, done);
    match call {
        MicroCall::Getpid => {
            b.sys(Sysno::Getpid);
        }
        MicroCall::Gettimeofday => {
            b.la(0, buf);
            b.li(1, 0);
            b.sys(Sysno::Gettimeofday);
        }
        MicroCall::Fstat => {
            b.mov(0, 12);
            b.la(1, buf);
            b.sys(Sysno::Fstat);
        }
        MicroCall::Read1k => {
            b.mov(0, 12);
            b.la(1, buf);
            b.li(2, 1024);
            b.sys(Sysno::Read);
        }
        MicroCall::Write1k => {
            b.mov(0, 12);
            b.la(1, buf);
            b.li(2, 1024);
            b.sys(Sysno::Write);
        }
        MicroCall::Stat => {
            b.la(0, path);
            b.la(1, buf);
            b.sys(Sysno::Stat);
        }
        MicroCall::OpenClose => {
            b.la(0, path);
            b.li(1, 0);
            b.li(2, 0);
            b.sys(Sysno::Open);
            b.sys(Sysno::Close); // fd still in r0
        }
        MicroCall::ForkWaitExit => {
            let parent = b.new_label();
            b.sys(Sysno::Fork);
            b.jnz(0, parent);
            b.li(0, 0);
            b.sys(Sysno::Exit);
            b.bind(parent);
            b.li(0, 0);
            b.li(1, 0);
            b.li(2, 0);
            b.li(3, 0);
            b.sys(Sysno::Wait4);
        }
        MicroCall::ForkExecWait => {
            let parent = b.new_label();
            b.sys(Sysno::Fork);
            b.jnz(0, parent);
            b.la(0, true_path);
            b.li(1, 0);
            b.li(2, 0);
            b.sys(Sysno::Execve);
            b.li(0, 127);
            b.sys(Sysno::Exit);
            b.bind(parent);
            b.li(0, 0);
            b.li(1, 0);
            b.li(2, 0);
            b.li(3, 0);
            b.sys(Sysno::Wait4);
        }
    }
    b.addi(13, 13, -1);
    b.jmp(top);
    b.bind(done);
    b.li(0, 0);
    b.sys(Sysno::Exit);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_kernel::{KernelBuilder, RunOutcome, I486_25};

    #[test]
    fn every_micro_loop_completes() {
        for call in MicroCall::ALL.into_iter().chain([MicroCall::Write1k]) {
            let mut k = KernelBuilder::new().build();
            setup(&mut k);
            k.spawn_image(&loop_image(call, 5), &[b"micro"], b"micro");
            assert_eq!(
                k.run_to_completion(),
                RunOutcome::AllExited,
                "{}",
                call.name()
            );
        }
    }

    #[test]
    fn getpid_loop_cost_matches_model() {
        // 100 getpid calls: virtual time must include exactly 100 × 25 µs
        // of syscall cost on the i486 profile.
        let n = 100;
        let mut k = KernelBuilder::new().build();
        setup(&mut k);
        k.spawn_image(&loop_image(MicroCall::Getpid, n), &[b"m"], b"m");
        let t0 = k.clock.elapsed_ns();
        k.run_to_completion();
        let elapsed = k.clock.elapsed_ns() - t0;
        let syscall_part = n * I486_25.syscall_base_ns(ia_abi::Sysno::Getpid);
        assert!(elapsed > syscall_part, "includes loop instructions");
        // Everything beyond the call cost is instructions at insn_ns each.
        let overhead = elapsed - syscall_part;
        let insns = overhead
            - 2 * I486_25.syscall_base_ns(ia_abi::Sysno::Open) / 2 // setup open+exit, approx
            ;
        let _ = insns; // sanity only: the reproduce harness does this exactly
    }
}
