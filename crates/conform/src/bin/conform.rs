//! The `conform` driver: seeded conformance sweeps, fault-injection
//! schedules, failure shrinking, `.conf` repro files, and replay.
//!
//! ```text
//! conform --seeds 200                 # sweep seeds 0..200
//! conform --seeds 50 --start 1000     # sweep seeds 1000..1050
//! conform --tree --depth 2 --seeds 50 # fault-tree exploration per seed
//! conform --fleet --seeds 64          # parallel tenants vs the serial oracle
//! conform --replay repro.conf         # re-run one repro file
//! conform --demo-mutant               # show a caught+shrunk divergence
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ia_conform::{
    check_faults, check_flow_faults, check_flow_soundness, check_program, check_soundness,
    check_tree, run_fault_case, run_tree_case, sample, shrink, OpSet, Program, Repro, TreeStats,
};
use ia_prng::Prng;

struct Options {
    seeds: u64,
    start: u64,
    ops_min: usize,
    ops_max: usize,
    fault_every: u64,
    tree: bool,
    depth: usize,
    fleet: bool,
    threads: usize,
    out: PathBuf,
    replay: Option<PathBuf>,
    demo_mutant: bool,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut o = Options {
            seeds: 100,
            start: 0,
            ops_min: 4,
            ops_max: 40,
            fault_every: 10,
            tree: false,
            depth: 2,
            fleet: false,
            threads: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(8),
            out: PathBuf::from("target/conform"),
            replay: None,
            demo_mutant: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut num = |name: &str| -> Result<u64, String> {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("{name} needs a numeric argument"))
            };
            match a.as_str() {
                "--seeds" => o.seeds = num("--seeds")?,
                "--start" => o.start = num("--start")?,
                "--ops-min" => o.ops_min = num("--ops-min")? as usize,
                "--ops-max" => o.ops_max = num("--ops-max")? as usize,
                "--fault-every" => o.fault_every = num("--fault-every")?.max(1),
                "--tree" => o.tree = true,
                "--depth" => o.depth = num("--depth")?.max(1) as usize,
                "--fleet" => o.fleet = true,
                "--threads" => o.threads = num("--threads")?.max(1) as usize,
                "--out" => o.out = PathBuf::from(args.next().ok_or("--out needs a path")?),
                "--replay" => {
                    o.replay = Some(PathBuf::from(args.next().ok_or("--replay needs a path")?))
                }
                "--demo-mutant" => o.demo_mutant = true,
                "--help" | "-h" => {
                    println!(
                        "usage: conform [--seeds N] [--start S] [--ops-min A] [--ops-max B]\n\
                         \u{20}              [--fault-every K] [--tree] [--depth D] [--out DIR]\n\
                         \u{20}              [--fleet] [--threads T] [--replay FILE] [--demo-mutant]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if o.ops_min == 0 || o.ops_max < o.ops_min {
            return Err("need 0 < ops-min <= ops-max".into());
        }
        Ok(o)
    }
}

/// Writes a repro file and prints where, plus the shrunken listing.
fn report_failure(out: &Path, tag: &str, repro: &Repro, detail: &str) {
    println!("FAIL [{tag}] {detail}");
    let shrunk = &repro.program;
    println!(
        "  shrunk to {} ops / {} instructions:",
        shrunk.ops.len(),
        shrunk.compile().code.len()
    );
    for op in &shrunk.ops {
        println!("    {op:?}");
    }
    if let Err(e) = std::fs::create_dir_all(out) {
        println!("  (cannot create {}: {e})", out.display());
        return;
    }
    let path = out.join(format!("{tag}.conf"));
    match std::fs::write(&path, repro.to_conf(&[detail])) {
        Ok(()) => println!("  repro written to {}", path.display()),
        Err(e) => println!("  (cannot write {}: {e})", path.display()),
    }
    // Flight recording of the shrunk repro: the last ia-obs events (trap
    // dispatches, layer enter/exit, slices, injected faults) beside the
    // repro, for post-mortem without a replay.
    let flight_path = out.join(format!("{tag}.flight.txt"));
    match std::fs::write(&flight_path, ia_conform::flight::record_flight(repro)) {
        Ok(()) => println!("  flight recording written to {}", flight_path.display()),
        Err(e) => println!("  (cannot write {}: {e})", flight_path.display()),
    }
}

fn replay(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let repro = Repro::from_conf(&text)?;
    println!(
        "replaying {}: seed {}, {} ops{}{}",
        path.display(),
        repro.program.seed,
        repro.program.ops.len(),
        repro.fault.map(|f| format!(", {f}")).unwrap_or_default(),
        repro.tree.map(|t| format!(", {t}")).unwrap_or_default()
    );
    println!("{}", ia_vm::disassemble(&repro.program.compile()));
    let verdict = match (repro.fault, repro.tree) {
        (Some(case), _) => run_fault_case(&repro.program, case),
        (None, Some(case)) => run_tree_case(&repro.program, case).map(|stats| {
            println!(
                "  tree: {} leaves explored, {} faults injected",
                stats.leaves, stats.injected
            );
        }),
        (None, None) => check_program(&repro.program),
    };
    match verdict {
        Ok(()) => {
            println!("PASS: no divergence on replay");
            Ok(())
        }
        Err(d) => Err(d),
    }
}

/// The acceptance demo: wrap a deliberately broken agent, catch it, and
/// shrink the evidence to a tiny listing.
fn demo_mutant(out: &Path) -> Result<(), String> {
    use ia_conform::check_client_equiv;
    use ia_conform::mutant::ConsoleDropMutant;
    let mut failing =
        |p: &Program| check_client_equiv(p, || vec![ConsoleDropMutant::boxed(2)], true).is_err();
    let broken = (0..256)
        .map(|seed| sample(seed, 30, OpSet::ALL))
        .find(|p| failing(p))
        .ok_or("mutant never caught — oracle is broken")?;
    let detail = check_client_equiv(&broken, || vec![ConsoleDropMutant::boxed(2)], true)
        .expect_err("just failed");
    println!("mutant caught on seed {}: {detail}", broken.seed);
    let small = shrink(&broken, &mut failing);
    let repro = Repro {
        program: small.clone(),
        fault: None,
        tree: None,
    };
    report_failure(out, "demo-mutant", &repro, &detail);
    println!("{}", ia_vm::disassemble(&small.compile()));
    let insns = small.compile().code.len();
    if insns > 30 {
        return Err(format!("shrunk repro still {insns} instructions"));
    }
    println!("OK: caught and shrunk to {insns} instructions");
    Ok(())
}

fn main() -> ExitCode {
    let o = match Options::parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("conform: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &o.replay {
        return match replay(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(d) => {
                println!("FAIL: {d}");
                ExitCode::FAILURE
            }
        };
    }
    if o.demo_mutant {
        return match demo_mutant(&o.out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(d) => {
                println!("FAIL: {d}");
                ExitCode::FAILURE
            }
        };
    }

    // Fleet mode: every seed's program becomes one tenant in a
    // multi-threaded work-stealing fleet; each tenant's complete
    // Observable must match its solo serial-oracle run bit for bit.
    if o.fleet {
        return match ia_conform::check_fleet(o.start, o.seeds, o.threads, o.ops_min, o.ops_max) {
            Ok(stats) => {
                println!(
                    "conform --fleet: {} tenants ({}..{}) on {} threads, {} turns, {} steals, 0 divergences",
                    stats.tenants,
                    o.start,
                    o.start + o.seeds,
                    stats.threads,
                    stats.turns,
                    stats.steals
                );
                ExitCode::SUCCESS
            }
            Err((seed, detail)) => {
                println!("FAIL [seed-{seed}-fleet] {detail}");
                ExitCode::FAILURE
            }
        };
    }

    // Tree mode is its own sweep: per seed, branch the world at every
    // fault site up to the frontier and check every leaf, instead of the
    // linear oracle/soundness/fault pipeline.
    if o.tree {
        let mut failures = 0u64;
        let mut stats = TreeStats::default();
        for seed in o.start..o.start + o.seeds {
            let mut rng = Prng::new(seed);
            let nops = rng.range_usize(o.ops_min, o.ops_max + 1);
            let program = sample(seed, nops, OpSet::ALL);
            match check_tree(&program, o.depth) {
                Ok(s) => {
                    stats.cases += s.cases;
                    stats.leaves += s.leaves;
                    stats.injected += s.injected;
                }
                Err((case, detail)) => {
                    failures += 1;
                    let mut failing = |p: &Program| run_tree_case(p, case).is_err();
                    let small = shrink(&program, &mut failing);
                    let repro = Repro {
                        program: small,
                        fault: None,
                        tree: Some(case),
                    };
                    report_failure(&o.out, &format!("seed-{seed}-tree"), &repro, &detail);
                }
            }
        }
        println!(
            "conform --tree: {} seeds ({}..{}), depth {}, {} cases, {} leaves, {} faults injected, {} failures",
            o.seeds,
            o.start,
            o.start + o.seeds,
            o.depth,
            stats.cases,
            stats.leaves,
            stats.injected,
            failures
        );
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut failures = 0u64;
    let mut fault_cases = 0u64;
    for seed in o.start..o.start + o.seeds {
        let mut rng = Prng::new(seed);
        let nops = rng.range_usize(o.ops_min, o.ops_max + 1);
        let program = sample(seed, nops, OpSet::ALL);

        if let Err(detail) = check_program(&program) {
            failures += 1;
            let mut failing = |p: &Program| check_program(p).is_err();
            let small = shrink(&program, &mut failing);
            let repro = Repro {
                program: small,
                fault: None,
                tree: None,
            };
            report_failure(&o.out, &format!("seed-{seed}"), &repro, &detail);
            continue;
        }

        if let Err(detail) = check_soundness(&program) {
            failures += 1;
            let mut failing = |p: &Program| check_soundness(p).is_err();
            let small = shrink(&program, &mut failing);
            let repro = Repro {
                program: small,
                fault: None,
                tree: None,
            };
            report_failure(&o.out, &format!("seed-{seed}-soundness"), &repro, &detail);
            continue;
        }

        if let Err(detail) = check_flow_soundness(&program) {
            failures += 1;
            let mut failing = |p: &Program| check_flow_soundness(p).is_err();
            let small = shrink(&program, &mut failing);
            let repro = Repro {
                program: small,
                fault: None,
                tree: None,
            };
            report_failure(&o.out, &format!("seed-{seed}-flow"), &repro, &detail);
            continue;
        }

        if seed % o.fault_every == 0 {
            fault_cases += ia_conform::fault_schedule(&program).len() as u64;
            if let Err((case, detail)) = check_faults(&program) {
                failures += 1;
                let mut failing = |p: &Program| run_fault_case(p, case).is_err();
                let small = shrink(&program, &mut failing);
                let repro = Repro {
                    program: small,
                    fault: Some(case),
                    tree: None,
                };
                report_failure(&o.out, &format!("seed-{seed}-fault"), &repro, &detail);
            }
            // Flow containment must also hold under every fault schedule:
            // fabricated errors may suppress flows, never invent them.
            for case in ia_conform::fault_schedule(&program) {
                if let Err(detail) = check_flow_faults(&program, &case) {
                    failures += 1;
                    let mut failing = |p: &Program| check_flow_faults(p, &case).is_err();
                    let small = shrink(&program, &mut failing);
                    let repro = Repro {
                        program: small,
                        fault: Some(case),
                        tree: None,
                    };
                    report_failure(&o.out, &format!("seed-{seed}-flowfault"), &repro, &detail);
                    break;
                }
            }
        }
    }
    println!(
        "conform: {} seeds ({}..{}), {} fault cases, {} failures",
        o.seeds,
        o.start,
        o.start + o.seeds,
        fault_cases,
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
