//! BENCH_2: the paper-§6-shaped interposition overhead table.
//!
//! The paper's evaluation reports the *per-call cost of interposition* —
//! what one trap costs beneath each kind of agent, beyond the bare kernel
//! cost. This module reproduces that shape on the simulator: for each
//! agent configuration (no agent, a batchable pass-through observer, the
//! call tracer, the encrypting filesystem, and the sandbox) it measures the
//! modelled per-call microseconds of `getpid()`, `read()` of 1 KB, and
//! `write()` of 1 KB, and reports the overhead over the bare row.
//!
//! The measurement is virtual-time differencing, exactly as Table 3-5:
//! run the same micro loop at two lengths, subtract the exact instruction
//! time, and divide by the iteration delta — program setup, agent startup
//! and loop overhead all cancel.
//!
//! A second section attributes the `getpid()` cost per *layer* using the
//! ia-obs metrics registry from a recorder-enabled run: exclusive virtual
//! ns per call for the kernel, the interpose redirection machinery, and
//! each agent layer.

use ia_agents::{
    CryptAgent, FlowGuardAgent, FlowPolicy, PassThrough, SandboxAgent, SandboxPolicy, TraceAgent,
};
use ia_interpose::{Agent, InterposedRouter};
use ia_kernel::{Kernel, KernelBuilder, I486_25};
use ia_obs::report::{json_escape, json_header};
use ia_workloads::micro::{self, MicroCall};
use std::fmt::Write as _;

/// The agent configurations of the table, in row order. `flowguard` is
/// the information-flow guard under the policy a statically-clean image
/// earns: no interests at all, so its rows measure the pay-per-use floor.
pub const CONFIGS: [&str; 6] = [
    "bare",
    "pass_through",
    "trace",
    "crypt",
    "sandbox",
    "flowguard",
];

/// The calls of the table, in column order.
pub const CALLS: [MicroCall; 3] = [MicroCall::Getpid, MicroCall::Read1k, MicroCall::Write1k];

/// Short column label for a table call.
#[must_use]
pub fn call_label(call: MicroCall) -> &'static str {
    match call {
        MicroCall::Getpid => "getpid",
        MicroCall::Read1k => "read_1k",
        MicroCall::Write1k => "write_1k",
        _ => "?",
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Column label.
    pub call: &'static str,
    /// Modelled µs per call under this configuration.
    pub us_per_call: f64,
    /// µs over the bare row's same column (0 for the bare row itself).
    pub overhead_us: f64,
    /// Set when the number is not an overhead measurement of the kernel
    /// path at all — e.g. an agent that reimplements the call under its
    /// own cost model — and must not be compared against the bare row.
    pub artifact: Option<&'static str>,
}

/// The measurement-artifact annotation for a cell, if any.
#[must_use]
pub fn artifact_for(config: &str, call: &'static str) -> Option<&'static str> {
    // Crypt serves writes from the agent itself: the cell measures the
    // agent's own cost model, not kernel-path overhead, and comes out
    // *below* the bare row.
    (config == "crypt" && call == "write_1k").then_some("reimplements write; not comparable")
}

/// One configuration row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub config: &'static str,
    /// One cell per entry of [`CALLS`].
    pub cells: Vec<Cell>,
}

/// Per-layer attribution of the `getpid()` cost under one configuration,
/// from the ia-obs metrics registry.
#[derive(Debug, Clone)]
pub struct LayerRow {
    /// Configuration label.
    pub config: &'static str,
    /// Layer name ("kernel", "interpose", or the agent's name).
    pub layer: String,
    /// Layer entries observed.
    pub count: u64,
    /// Exclusive virtual ns per entry.
    pub virt_ns_per_call: u64,
    /// Exclusive host ns per entry (wall time on the measuring machine;
    /// noisy, reported for scale only).
    pub host_ns_per_call: u64,
}

/// The whole BENCH_2 document.
#[derive(Debug, Clone)]
pub struct Bench2 {
    /// The overhead table.
    pub rows: Vec<Row>,
    /// Per-layer `getpid()` attribution.
    pub layers: Vec<LayerRow>,
}

/// The agent chain for a configuration. Fresh instances per run: agent
/// state (trace logs, crypt descriptors) must not leak between runs.
fn agents_for(config: &str) -> Vec<Box<dyn Agent>> {
    match config {
        "bare" => vec![],
        "pass_through" => vec![PassThrough::boxed() as Box<dyn Agent>],
        "trace" => vec![Box::new(TraceAgent::with_log(b"/dev/null").0)],
        "crypt" => vec![CryptAgent::boxed(b"/tmp", b"k3y")],
        "sandbox" => vec![SandboxAgent::new(SandboxPolicy::default()).0],
        "flowguard" => vec![FlowGuardAgent::new(FlowPolicy::clean()).0 as Box<dyn Agent>],
        other => panic!("unknown config {other}"),
    }
}

/// Runs the micro loop for `call` under `config`, returning
/// `(virtual ns, total insns)`; `recorder` optionally enables ia-obs.
fn run_loop(call: MicroCall, config: &str, n: u64, recorder: Option<usize>) -> (u64, u64, Kernel) {
    let mut k = KernelBuilder::new().build();
    if let Some(cap) = recorder {
        k.obs.enable(cap);
    }
    micro::setup(&mut k);
    let pid = k.spawn_image(&micro::loop_image(call, n), &[b"m"], b"m");
    let mut router = InterposedRouter::new();
    for agent in agents_for(config) {
        ia_interpose::wrap_process(&mut k, &mut router, pid, agent, &[]);
    }
    let out = k.run_with(&mut router);
    assert_eq!(
        out,
        ia_kernel::RunOutcome::AllExited,
        "{config}/{}",
        call_label(call)
    );
    (k.clock.elapsed_ns(), k.total_insns, k)
}

/// Modelled µs per call by two-length differencing (see module docs).
///
/// The difference is computed *signed*: an agent that serves a call from
/// its own cost model (crypt's write path) can legitimately come out
/// below the exact instruction time, and clamping that to zero (as a
/// `saturating_sub` here once did) silently misstated the artifact cell
/// instead of letting it go negative and be annotated.
fn measure(call: MicroCall, config: &str) -> f64 {
    let n1 = 64;
    let n2 = 192;
    let (e1, i1, _) = run_loop(call, config, n1, None);
    let (e2, i2, _) = run_loop(call, config, n2, None);
    let d = i128::from(e2) - i128::from(e1) - i128::from((i2 - i1) * I486_25.insn_ns);
    d as f64 / f64::from((n2 - n1) as u32) / 1000.0
}

/// Measures the full table plus the per-layer attribution section.
#[must_use]
pub fn run_all() -> Bench2 {
    let mut rows: Vec<Row> = Vec::new();
    for config in CONFIGS {
        let cells = CALLS
            .iter()
            .map(|&call| {
                let us = measure(call, config);
                let base = rows.first().map_or(us, |r: &Row| {
                    r.cells
                        .iter()
                        .find(|c| c.call == call_label(call))
                        .map_or(us, |c| c.us_per_call)
                });
                Cell {
                    call: call_label(call),
                    us_per_call: us,
                    overhead_us: us - base,
                    artifact: artifact_for(config, call_label(call)),
                }
            })
            .collect();
        rows.push(Row { config, cells });
    }

    // Per-layer attribution: one recorder-enabled getpid run per config.
    let mut layers = Vec::new();
    let nr = ia_abi::Sysno::Getpid.number();
    for config in CONFIGS {
        let (_, _, k) = run_loop(MicroCall::Getpid, config, 256, Some(1024));
        for (layer, row_nr, stat) in k.obs.metrics().rows {
            if row_nr != nr || stat.count == 0 {
                continue;
            }
            layers.push(LayerRow {
                config,
                layer,
                count: stat.count,
                virt_ns_per_call: stat.virt_ns / stat.count,
                host_ns_per_call: stat.host_ns / stat.count,
            });
        }
    }
    Bench2 { rows, layers }
}

/// Renders the §6-shaped table as aligned text.
#[must_use]
pub fn render_text(b: &Bench2) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "BENCH_2: per-call interposition overhead, i486 profile (modelled µs/call)"
    );
    let _ = write!(s, "{:<14}", "config");
    for call in CALLS {
        let _ = write!(s, " {:>10} {:>10}", call_label(call), "(+over)");
    }
    s.push('\n');
    for row in &b.rows {
        let _ = write!(s, "{:<14}", row.config);
        for cell in &row.cells {
            let mark = if cell.artifact.is_some() { "*" } else { " " };
            let _ = write!(
                s,
                " {:>9.1}{mark} {:>+10.1}",
                cell.us_per_call, cell.overhead_us
            );
        }
        s.push('\n');
    }
    for row in &b.rows {
        for cell in &row.cells {
            if let Some(note) = cell.artifact {
                let _ = writeln!(s, "* {}/{}: {note}", row.config, cell.call);
            }
        }
    }
    let _ = writeln!(
        s,
        "\nper-layer getpid() attribution (exclusive virtual ns/call):"
    );
    let _ = writeln!(
        s,
        "{:<14} {:<14} {:>8} {:>14} {:>12}",
        "config", "layer", "count", "virt-ns/call", "host-ns/call"
    );
    for l in &b.layers {
        let _ = writeln!(
            s,
            "{:<14} {:<14} {:>8} {:>14} {:>12}",
            l.config, l.layer, l.count, l.virt_ns_per_call, l.host_ns_per_call
        );
    }
    s
}

/// Renders the `BENCH_2.json` document.
#[must_use]
pub fn render_json(b: &Bench2) -> String {
    let mut s = json_header("bench", "BENCH_2");
    s.push_str(
        "  \"description\": \"per-agent per-call interposition overhead \
         (paper section 6 shape), modelled microseconds per call\",\n",
    );
    s.push_str("  \"machine_profile\": \"i486_25\",\n");
    s.push_str("  \"calls\": [");
    for (i, call) in CALLS.iter().enumerate() {
        let _ = write!(
            s,
            "\"{}\"{}",
            json_escape(call_label(*call)),
            if i + 1 < CALLS.len() { ", " } else { "" }
        );
    }
    s.push_str("],\n  \"rows\": [\n");
    for (i, row) in b.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"config\": \"{}\", \"cells\": [",
            json_escape(row.config)
        );
        for (j, c) in row.cells.iter().enumerate() {
            let artifact = c.artifact.map_or(String::new(), |a| {
                format!(", \"artifact\": \"{}\"", json_escape(a))
            });
            let _ = write!(
                s,
                "{{\"call\": \"{}\", \"us_per_call\": {:.3}, \"overhead_us\": {:.3}{artifact}}}{}",
                json_escape(c.call),
                c.us_per_call,
                c.overhead_us,
                if j + 1 < row.cells.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(s, "]}}{}", if i + 1 < b.rows.len() { "," } else { "" });
    }
    s.push_str("  ],\n  \"layers_getpid\": [\n");
    for (i, l) in b.layers.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"config\": \"{}\", \"layer\": \"{}\", \"count\": {}, \
             \"virt_ns_per_call\": {}, \"host_ns_per_call\": {}}}{}",
            json_escape(l.config),
            json_escape(&l.layer),
            l.count,
            l.virt_ns_per_call,
            l.host_ns_per_call,
            if i + 1 < b.layers.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench2_has_expected_shape_and_sane_ordering() {
        let b = run_all();
        assert_eq!(b.rows.len(), CONFIGS.len());
        for row in &b.rows {
            assert_eq!(row.cells.len(), CALLS.len());
        }
        let cell = |config: &str, call: &str| {
            b.rows
                .iter()
                .find(|r| r.config == config)
                .unwrap()
                .cells
                .iter()
                .find(|c| c.call == call)
                .unwrap()
                .clone()
        };
        // The bare row has zero overhead by construction.
        for call in CALLS {
            assert_eq!(cell("bare", call_label(call)).overhead_us, 0.0);
        }
        // Every interposed config costs at least the bare configuration
        // for getpid (the full-interest chains intercept everything).
        for config in &CONFIGS[1..] {
            let c = cell(config, "getpid");
            assert!(
                c.overhead_us >= 0.0,
                "{config} getpid overhead {:.3} < 0",
                c.overhead_us
            );
        }
        // The ALL-interest tracer takes every getpid through the full
        // per-call upcall; the batchable observer amortises interception
        // over vectored upcalls, so it must be cheaper per call. Crypt
        // registers interest only in the calls it mediates, so pay-per-use
        // makes its getpid row match the bare row (the paper's §4 bypass
        // argument) — its overhead shows up in the read column instead.
        // (The sandbox mediates getpid too, so it has no bypass to ride.)
        let pass = cell("pass_through", "getpid").us_per_call;
        assert!(
            cell("trace", "getpid").us_per_call >= pass - 1e-9,
            "tracer cheaper than the vectored observer"
        );
        let bare_getpid = cell("bare", "getpid").us_per_call;
        let crypt_getpid = cell("crypt", "getpid").us_per_call;
        assert!(
            crypt_getpid - bare_getpid < pass - bare_getpid + 1e-9,
            "crypt getpid should ride the pay-per-use bypass"
        );
        // Crypt decrypts on the read path through the agent: its read
        // overhead must be positive. (Its write path is *cheaper* than
        // the kernel's — the agent reimplements the call and charges its
        // own cost model — so the write column is deliberately not
        // constrained here; the cell carries the artifact annotation.)
        assert!(
            cell("crypt", "read_1k").overhead_us > 0.0,
            "crypt read overhead should be positive"
        );
        // The clean-policy flow guard has no interests: every column must
        // sit on the bare row exactly (virtual time is deterministic).
        for call in CALLS {
            let c = cell("flowguard", call_label(call));
            assert!(
                c.overhead_us.abs() < 1e-9,
                "flowguard {} overhead {:.3} != 0 under a clean policy",
                c.call,
                c.overhead_us
            );
        }
        assert_eq!(
            cell("crypt", "write_1k").artifact,
            Some("reimplements write; not comparable")
        );
        let annotated: Vec<(&str, &str)> = b
            .rows
            .iter()
            .flat_map(|r| {
                r.cells
                    .iter()
                    .filter(|c| c.artifact.is_some())
                    .map(move |c| (r.config, c.call))
            })
            .collect();
        assert_eq!(
            annotated,
            vec![("crypt", "write_1k")],
            "exactly one artifact cell"
        );
        // Signed differencing may produce negative cells, but only the
        // annotated artifact cell is allowed to be one: everything else
        // is a real kernel-path measurement and must be non-negative.
        let negative: Vec<(&str, &str)> = b
            .rows
            .iter()
            .flat_map(|r| {
                r.cells
                    .iter()
                    .filter(|c| c.overhead_us < -1e-9)
                    .map(move |c| (r.config, c.call))
            })
            .collect();
        for neg in &negative {
            assert_eq!(
                *neg,
                ("crypt", "write_1k"),
                "unexpected negative overhead cell"
            );
        }
        // Layer attribution: every config has a kernel layer; the
        // ALL-interest configs also show the interpose machinery on the
        // getpid path.
        for config in CONFIGS {
            assert!(
                b.layers
                    .iter()
                    .any(|l| l.config == config && l.layer == "kernel"),
                "{config} missing kernel layer"
            );
        }
        for config in ["pass_through", "trace"] {
            assert!(
                b.layers
                    .iter()
                    .any(|l| l.config == config && l.layer == "interpose"),
                "{config} missing interpose layer"
            );
        }
        // JSON document sanity.
        let j = render_json(&b);
        assert!(j.contains("\"bench\": \"BENCH_2\""));
        assert!(j.contains("\"artifact\": \"reimplements write; not comparable\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = render_text(&b);
        assert!(t.contains("per-layer"));
        assert!(t.contains("* crypt/write_1k: reimplements write; not comparable"));
    }
}
