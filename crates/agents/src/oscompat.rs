//! The `oscompat` agent — "Emulation of Other Operating Systems" (§1.4).
//!
//! "Alternate system call implementations can be used to concurrently run
//! binaries from variant operating systems on the same platform."
//!
//! Two emulation personalities are provided:
//!
//! * [`OsCompatAgent::legacy_bsd`] — runs binaries that use *obsolete*
//!   4.3BSD trap numbers our kernel dropped (`creat`, `time`, the old
//!   two-argument `wait`), translating each into its modern equivalent.
//!   This needs argument and result rewriting, not just number remapping.
//! * [`OsCompatAgent::foreign`] — a "foreign OS" whose entire trap table
//!   sits at an offset (the HP-UX-on-Mach shape), remapped wholesale at
//!   the numeric layer.

use ia_abi::{OpenFlags, RawArgs, Sysno, Timeval};
use ia_interpose::{Agent, InterestSet, SysCtx};
use ia_kernel::SysOutcome;
use ia_toolkit::{Scratch, SymCtx};

/// Obsolete 4.3BSD trap numbers the legacy personality understands.
pub mod legacy {
    /// `creat(path, mode)` — old call 8.
    pub const CREAT: u32 = 8;
    /// `time(tloc)` — old call 13.
    pub const TIME: u32 = 13;
    /// Two-value `wait()` — old call 84 (the 4.3BSD `owait`).
    pub const OWAIT: u32 = 84;
}

/// Which personality the agent emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Personality {
    LegacyBsd,
    Foreign { offset: u32 },
}

/// The OS-emulation agent.
pub struct OsCompatAgent {
    personality: Personality,
    scratch: Scratch,
}

impl OsCompatAgent {
    /// Emulates obsolete 4.3BSD calls on the modern interface.
    #[must_use]
    pub fn legacy_bsd() -> Box<OsCompatAgent> {
        Box::new(OsCompatAgent {
            personality: Personality::LegacyBsd,
            scratch: Scratch::new(),
        })
    }

    /// Emulates a foreign OS whose trap numbers are `native + offset`.
    /// Offsets must keep the foreign table below 256 (the interception
    /// vector's width), as on the real 4.3BSD trap table.
    #[must_use]
    pub fn foreign(offset: u32) -> Box<OsCompatAgent> {
        Box::new(OsCompatAgent {
            personality: Personality::Foreign { offset },
            scratch: Scratch::new(),
        })
    }
}

impl Agent for OsCompatAgent {
    fn name(&self) -> &'static str {
        match self.personality {
            Personality::LegacyBsd => "oscompat-legacy-bsd",
            Personality::Foreign { .. } => "oscompat-foreign",
        }
    }

    fn interests(&self) -> InterestSet {
        let mut s = InterestSet::new();
        match self.personality {
            Personality::LegacyBsd => {
                s.add(legacy::CREAT);
                s.add(legacy::TIME);
                s.add(legacy::OWAIT);
            }
            Personality::Foreign { offset } => {
                s.add_range(offset, offset.saturating_add(255));
            }
        }
        s
    }

    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        match self.personality {
            Personality::Foreign { offset } => {
                // Pure number translation: foreign = native + offset.
                ctx.down(nr - offset, args)
            }
            Personality::LegacyBsd => {
                let mut sym = SymCtx::new(ctx);
                self.scratch.reset();
                match nr {
                    legacy::CREAT => {
                        // creat(path, mode) == open(path, WRONLY|CREAT|TRUNC, mode)
                        let flags = u64::from(
                            OpenFlags::O_WRONLY | OpenFlags::O_CREAT | OpenFlags::O_TRUNC,
                        );
                        sym.down_args(Sysno::Open, [args[0], flags, args[1], 0, 0, 0])
                    }
                    legacy::TIME => {
                        // time(tloc): seconds since the epoch in r0, also
                        // stored through tloc when non-null.
                        let Ok(tv_addr) = self
                            .scratch
                            .reserve(&mut sym, <Timeval as ia_abi::wire::Wire>::WIRE_SIZE)
                        else {
                            return SysOutcome::Done(Err(ia_abi::Errno::ENOMEM));
                        };
                        let out = sym.down_args(Sysno::Gettimeofday, [tv_addr, 0, 0, 0, 0, 0]);
                        match out {
                            SysOutcome::Done(Ok(_)) => {
                                let Ok(tv) = sym.read_struct::<Timeval>(tv_addr) else {
                                    return SysOutcome::Done(Err(ia_abi::Errno::EFAULT));
                                };
                                if args[0] != 0 {
                                    let bytes = (tv.sec as u64).to_le_bytes();
                                    if let Err(e) = sym.write_bytes(args[0], &bytes) {
                                        return SysOutcome::Done(Err(e));
                                    }
                                }
                                SysOutcome::Done(Ok([tv.sec as u64, 0]))
                            }
                            other => other,
                        }
                    }
                    legacy::OWAIT => {
                        // owait(): status comes back in the *second result
                        // register* instead of through a pointer.
                        let Ok(status_addr) = self.scratch.reserve(&mut sym, 8) else {
                            return SysOutcome::Done(Err(ia_abi::Errno::ENOMEM));
                        };
                        let out = sym.down_args(Sysno::Wait4, [0, status_addr, 0, 0, 0, 0]);
                        match out {
                            SysOutcome::Done(Ok([pid, _])) => {
                                let status = sym
                                    .read_bytes(status_addr, 8)
                                    .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                                    .unwrap_or(0);
                                SysOutcome::Done(Ok([pid, status]))
                            }
                            other => other,
                        }
                    }
                    other => ctx.down(other, args),
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(OsCompatAgent {
            personality: self.personality,
            scratch: self.scratch.deep_clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    #[test]
    fn legacy_creat_and_time_work() {
        // A "legacy binary": uses creat (8) and time (13).
        let src = r#"
            .data
            path: .asciz "/tmp/legacy.out"
            text: .asciz "old world"
            .text
            main:
                la r0, path
                li r1, 420
                sys 8           ; creat(path, 0644)
                mov r3, r0
                mov r0, r3
                la r1, text
                li r2, 9
                sys write
                mov r0, r3
                sys close
                li r0, 0
                sys 13          ; time(NULL) -> seconds in r0
                ; exit(seconds != 0)
                li r1, 0
                sltu r0, r1, r0
                sys exit
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"legacy"], b"legacy");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, OsCompatAgent::legacy_bsd());
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(k.read_file(b"/tmp/legacy.out").unwrap(), b"old world");
        assert_eq!(
            k.exit_status(pid),
            Some(ia_abi::signal::wait_status_exited(1)),
            "time returned nonzero seconds"
        );
    }

    #[test]
    fn legacy_owait_returns_status_in_second_register() {
        let src = r#"
            main:
                sys fork
                jz r0, child
                sys 84          ; owait() -> (pid, status)
                ; exit(status >> 8): the child's code
                li r6, 8
                shr r0, r2, r6
                sys exit
            child:
                li r0, 9
                sys exit
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"legacy"], b"legacy");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, OsCompatAgent::legacy_bsd());
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(
            k.exit_status(pid),
            Some(ia_abi::signal::wait_status_exited(9))
        );
    }

    #[test]
    fn foreign_personality_offsets_whole_table() {
        let src = r#"
            .data
            msg: .asciz "HPUX"
            .text
            main:
                li r0, 1
                la r1, msg
                li r2, 4
                sys 204         ; write at +200
                li r0, 0
                sys 201         ; exit at +200
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"hpux"], b"hpux");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, OsCompatAgent::foreign(200));
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "HPUX");
    }
}
