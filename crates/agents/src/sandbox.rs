//! The `sandbox` agent — a "protected environment for running untrusted
//! binaries" (§1.4).
//!
//! "A wrapper environment ... that allows untrusted, possibly malicious,
//! binaries to be run within a restricted environment that monitors and
//! emulates the actions they take, possibly without actually performing
//! them, and limits the resources they can use in such a way that the
//! untrusted binaries are unaware of the restrictions."
//!
//! The policy supports hidden subtrees (`ENOENT`, as if absent), read-only
//! subtrees, write-quota and process-count limits, and call denial for
//! `fork`/`execve`/`kill`/sockets. Denied mutations are *emulated*: the
//! client sees a plausible result while nothing happens — set
//! [`SandboxPolicy::emulate_writes`].

use std::sync::{Arc, Mutex};

use ia_abi::{Errno, OpenFlags, Sysno};
use ia_interpose::InterestSet;
use ia_kernel::SysOutcome;
use ia_toolkit::{SymCtx, Symbolic, SymbolicSyscall};

/// An interactive ruling on an attempted operation — the paper's
/// "interactive decisions made by human beings during the protected
/// execution". The decider sees each would-be violation before the policy's
/// default applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ruling {
    /// Let the operation proceed for real.
    Allow,
    /// Refuse it (`EPERM`).
    Deny,
    /// Pretend it succeeded without performing it.
    Emulate,
}

/// A callback consulted on each policy hit: `(call, path) -> Ruling`.
pub type Decider = Arc<dyn Fn(&str, &[u8]) -> Ruling + Send + Sync>;

/// What the sandbox caught.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The call that violated policy.
    pub call: &'static str,
    /// The pathname involved, if any.
    pub path: Vec<u8>,
    /// What the client was told.
    pub result: &'static str,
}

/// Sandbox policy.
#[derive(Debug, Clone, Default)]
pub struct SandboxPolicy {
    /// Subtrees that appear not to exist.
    pub hidden: Vec<Vec<u8>>,
    /// Subtrees where any mutation is denied.
    pub readonly: Vec<Vec<u8>>,
    /// If non-empty, the only subtrees where mutation is allowed.
    pub writable_only: Vec<Vec<u8>>,
    /// Deny `fork`/`vfork`.
    pub deny_fork: bool,
    /// Deny `execve`.
    pub deny_exec: bool,
    /// Deny `kill` aimed at other processes.
    pub deny_kill_others: bool,
    /// Deny socket creation and rendezvous.
    pub deny_sockets: bool,
    /// Total bytes the client may write (quota).
    pub max_write_bytes: Option<u64>,
    /// When true, denied mutations *pretend to succeed* instead of
    /// returning an error — monitoring-and-emulating mode.
    pub emulate_writes: bool,
    /// If set, the only system calls the client may issue at all; anything
    /// outside the set is refused with `EPERM` before its method runs.
    /// `exit` and `sigreturn` are always allowed (a client that cannot exit
    /// would spin forever). [`SandboxAgent::from_footprint`] fills this with
    /// the statically inferred footprint of the binary.
    pub allowed_calls: Option<InterestSet>,
}

impl SandboxPolicy {
    /// True when some rule needs to inspect pathnames (or consult an
    /// interactive decider), so every call that might carry a path must be
    /// intercepted and the interests cannot be narrowed below `ALL`.
    fn path_sensitive(&self) -> bool {
        !self.hidden.is_empty()
            || !self.readonly.is_empty()
            || !self.writable_only.is_empty()
            || self.emulate_writes
    }

    /// The calls a handler must still see even when the allow-list lets
    /// them pass: denial flags and the write quota act *on allowed calls*.
    fn must_see(&self) -> InterestSet {
        let mut s = InterestSet::new();
        if self.max_write_bytes.is_some() {
            s.add_sys(Sysno::Write);
        }
        if self.deny_fork {
            s.add_sys(Sysno::Fork);
            s.add_sys(Sysno::Vfork);
        }
        if self.deny_exec {
            s.add_sys(Sysno::Execve);
        }
        if self.deny_kill_others {
            s.add_sys(Sysno::Kill);
        }
        if self.deny_sockets {
            s.add_sys(Sysno::Socket);
            s.add_sys(Sysno::Socketpair);
        }
        s
    }

    /// A restrictive default: everything read-only, no fork/exec/sockets.
    #[must_use]
    pub fn locked_down() -> SandboxPolicy {
        SandboxPolicy {
            readonly: vec![b"/".to_vec()],
            deny_fork: true,
            deny_exec: true,
            deny_kill_others: true,
            deny_sockets: true,
            ..SandboxPolicy::default()
        }
    }

    fn under(prefixes: &[Vec<u8>], path: &[u8]) -> bool {
        prefixes.iter().any(|p| {
            path == p.as_slice()
                || (path.starts_with(p)
                    && (p.as_slice() == b"/" || path.get(p.len()) == Some(&b'/')))
        })
    }

    /// True if `path` is hidden.
    #[must_use]
    pub fn is_hidden(&self, path: &[u8]) -> bool {
        Self::under(&self.hidden, path)
    }

    /// True if mutating `path` is forbidden.
    #[must_use]
    pub fn is_write_denied(&self, path: &[u8]) -> bool {
        if !self.writable_only.is_empty() && !Self::under(&self.writable_only, path) {
            return true;
        }
        Self::under(&self.readonly, path)
    }
}

/// Host-side view of the violations the sandbox recorded.
#[derive(Debug, Clone, Default)]
pub struct SandboxHandle {
    violations: Arc<Mutex<Vec<Violation>>>,
    written: Arc<Mutex<u64>>,
}

impl SandboxHandle {
    /// What the client tried and was refused (or fooled about).
    #[must_use]
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.lock().unwrap().clone()
    }

    /// Bytes the client actually wrote.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        *self.written.lock().unwrap()
    }
}

/// The sandbox agent.
#[derive(Clone)]
pub struct Sandbox {
    /// The active policy.
    pub policy: SandboxPolicy,
    violations: Arc<Mutex<Vec<Violation>>>,
    written: Arc<Mutex<u64>>,
    decider: Option<Decider>,
}

/// Public constructor pairing agent and handle.
pub struct SandboxAgent;

impl SandboxAgent {
    /// Creates a sandbox with `policy`, returning the loadable agent and
    /// the host handle.
    #[must_use]
    #[allow(clippy::new_ret_no_self)] // factory: returns (agent, handle)
    pub fn new(policy: SandboxPolicy) -> (Box<Symbolic<Sandbox>>, SandboxHandle) {
        let handle = SandboxHandle::default();
        (
            Box::new(Symbolic::new(Sandbox {
                policy,
                violations: handle.violations.clone(),
                written: handle.written.clone(),
                decider: None,
            })),
            handle,
        )
    }

    /// Infers a least-privilege policy from the static syscall footprint of
    /// `image` (see `ia-analyze`): only the calls the binary can provably
    /// issue are allowed, and fork/exec/socket/kill are denied outright
    /// when the footprint cannot contain them. Returns the agent, the host
    /// handle, and the footprint the policy was derived from.
    ///
    /// Soundness inherits from the analyzer: the footprint over-approximates
    /// the dynamic behaviour — including control seized through signal
    /// handlers or corrupted `ret` slots — so a benign binary is never
    /// blocked by the allow-list; when the analyzer had to widen to ⊤ (an
    /// indirect syscall number, or a `sigreturn` whose forged context could
    /// resume anywhere) the inferred policy allows everything rather than
    /// guessing — derive a manual policy for such binaries.
    #[must_use]
    pub fn from_footprint(
        image: &ia_vm::Image,
    ) -> (Box<Symbolic<Sandbox>>, SandboxHandle, ia_analyze::Footprint) {
        let fp = ia_analyze::footprint(image);
        let mut allowed = fp.set;
        allowed.add_sys(Sysno::Exit);
        allowed.add_sys(Sysno::Sigreturn);
        let may = |calls: &[Sysno]| calls.iter().any(|&c| allowed.contains(c.number()));
        let policy = SandboxPolicy {
            allowed_calls: Some(allowed),
            deny_fork: !may(&[Sysno::Fork, Sysno::Vfork]),
            deny_exec: !may(&[Sysno::Execve]),
            deny_sockets: !may(&[
                Sysno::Socket,
                Sysno::Socketpair,
                Sysno::Bind,
                Sysno::Connect,
                Sysno::Accept,
                Sysno::Listen,
            ]),
            deny_kill_others: !may(&[Sysno::Kill]),
            ..SandboxPolicy::default()
        };
        let (agent, handle) = SandboxAgent::new(policy);
        (agent, handle, fp)
    }

    /// Like [`SandboxAgent::new`], with an interactive decider consulted
    /// for every would-be violation — the paper's human-in-the-loop
    /// protected execution.
    #[must_use]
    pub fn with_decider(
        policy: SandboxPolicy,
        decider: impl Fn(&str, &[u8]) -> Ruling + Send + Sync + 'static,
    ) -> (Box<Symbolic<Sandbox>>, SandboxHandle) {
        let handle = SandboxHandle::default();
        (
            Box::new(Symbolic::new(Sandbox {
                policy,
                violations: handle.violations.clone(),
                written: handle.written.clone(),
                decider: Some(Arc::new(decider)),
            })),
            handle,
        )
    }
}

impl Sandbox {
    fn violate(&self, call: &'static str, path: &[u8], result: &'static str) {
        self.violations.lock().unwrap().push(Violation {
            call,
            path: path.to_vec(),
            result,
        });
    }

    /// Asks the interactive decider (when present), else applies policy.
    fn ruling(&self, call: &str, path: &[u8]) -> Ruling {
        match &self.decider {
            Some(d) => d(call, path),
            None if self.policy.emulate_writes => Ruling::Emulate,
            None => Ruling::Deny,
        }
    }

    /// Applies the ruling for a policy hit. `None` means the operation was
    /// interactively allowed and must proceed for real; `Some(out)` is the
    /// outcome to return instead (emulated success or denial).
    fn gate(&mut self, call: &'static str, path: &[u8]) -> Option<SysOutcome> {
        match self.ruling(call, path) {
            Ruling::Allow => {
                self.violate(call, path, "allowed");
                None
            }
            Ruling::Emulate => {
                self.violate(call, path, "emulated");
                Some(SysOutcome::Done(Ok([0, 0])))
            }
            Ruling::Deny => {
                self.violate(call, path, "EPERM");
                Some(SysOutcome::Done(Err(Errno::EPERM)))
            }
        }
    }

    /// Shared gate for single-pathname mutations.
    fn gate_path_write(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        call: &'static str,
        sys: Sysno,
        path_addr: u64,
        args: [u64; 2],
    ) -> SysOutcome {
        let path = match ctx.read_path(path_addr) {
            Ok(p) => p,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        if self.policy.is_hidden(&path) {
            self.violate(call, &path, "ENOENT");
            return SysOutcome::Done(Err(Errno::ENOENT));
        }
        if self.policy.is_write_denied(&path) {
            if let Some(out) = self.gate(call, &path) {
                return out;
            }
        }
        ctx.down_args(sys, [path_addr, args[0], args[1], 0, 0, 0])
    }

    /// Shared gate for read-only pathname references (hide check only).
    fn gate_path_read(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        call: &'static str,
        sys: Sysno,
        path_addr: u64,
        args: [u64; 2],
    ) -> SysOutcome {
        let path = match ctx.read_path(path_addr) {
            Ok(p) => p,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        if self.policy.is_hidden(&path) {
            self.violate(call, &path, "ENOENT");
            return SysOutcome::Done(Err(Errno::ENOENT));
        }
        ctx.down_args(sys, [path_addr, args[0], args[1], 0, 0, 0])
    }
}

impl SymbolicSyscall for Sandbox {
    fn name(&self) -> &'static str {
        "sandbox"
    }

    fn interests(&self) -> InterestSet {
        // A pure allow-list policy (the `from_footprint` shape) only ever
        // acts on calls *outside* the allow-list, plus the handful its
        // denial flags and quota police. Registering exactly those keeps
        // in-footprint calls on the bypass/batching path — a from_footprint
        // sandbox must not suppress vectored upcalls (or pay per-call
        // interception) for calls the binary is entitled to. Path-sensitive
        // rules and interactive deciders still need to see everything.
        match &self.policy.allowed_calls {
            Some(allowed) if !self.policy.path_sensitive() && self.decider.is_none() => {
                allowed.complement().union(&self.policy.must_see())
            }
            // The sandbox must see everything it polices; reads of unhidden
            // files pass through at full interception cost — safety over
            // speed.
            _ => InterestSet::ALL,
        }
    }

    fn intercept(
        &mut self,
        _ctx: &mut SymCtx<'_, '_>,
        nr: u32,
        _args: ia_abi::RawArgs,
    ) -> Option<SysOutcome> {
        let allowed = self.policy.allowed_calls.as_ref()?;
        // exit and sigreturn are unconditionally permitted: the kernel
        // retries a refused exit forever, and a handler that cannot
        // sigreturn wedges the client.
        if nr == Sysno::Exit.number() || nr == Sysno::Sigreturn.number() || allowed.contains(nr) {
            return None;
        }
        let call = Sysno::from_u32(nr).map_or("syscall", Sysno::name);
        self.violate(call, b"", "EPERM");
        Some(SysOutcome::Done(Err(Errno::EPERM)))
    }

    fn sys_open(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        flags: u64,
        mode: u64,
    ) -> SysOutcome {
        let p = match ctx.read_path(path) {
            Ok(p) => p,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        if self.policy.is_hidden(&p) {
            self.violate("open", &p, "ENOENT");
            return SysOutcome::Done(Err(Errno::ENOENT));
        }
        let wants_write = OpenFlags::new(flags as u32).writable()
            || flags & u64::from(OpenFlags::O_CREAT | OpenFlags::O_TRUNC) != 0;
        if wants_write && self.policy.is_write_denied(&p) {
            // Emulation can't fake a descriptor usefully: an interactive
            // Allow proceeds, anything else denies outright.
            if self.ruling("open", &p) == Ruling::Allow {
                self.violate("open", &p, "allowed");
            } else {
                self.violate("open", &p, "EPERM");
                return SysOutcome::Done(Err(Errno::EPERM));
            }
        }
        ctx.down_args(Sysno::Open, [path, flags, mode, 0, 0, 0])
    }

    fn sys_write(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        if let Some(quota) = self.policy.max_write_bytes {
            if *self.written.lock().unwrap() + nbyte > quota {
                self.violate("write", b"", "EDQUOT");
                return SysOutcome::Done(Err(Errno::EDQUOT));
            }
        }
        let out = ctx.down_args(Sysno::Write, [fd, buf, nbyte, 0, 0, 0]);
        if let SysOutcome::Done(Ok([n, _])) = out {
            *self.written.lock().unwrap() += n;
        }
        out
    }

    fn sys_unlink(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.gate_path_write(ctx, "unlink", Sysno::Unlink, path, [0, 0])
    }

    fn sys_truncate(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, length: u64) -> SysOutcome {
        self.gate_path_write(ctx, "truncate", Sysno::Truncate, path, [length, 0])
    }

    fn sys_chmod(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.gate_path_write(ctx, "chmod", Sysno::Chmod, path, [mode, 0])
    }

    fn sys_chown(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, uid: u64, gid: u64) -> SysOutcome {
        self.gate_path_write(ctx, "chown", Sysno::Chown, path, [uid, gid])
    }

    fn sys_mkdir(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.gate_path_write(ctx, "mkdir", Sysno::Mkdir, path, [mode, 0])
    }

    fn sys_rmdir(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.gate_path_write(ctx, "rmdir", Sysno::Rmdir, path, [0, 0])
    }

    fn sys_mkfifo(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.gate_path_write(ctx, "mkfifo", Sysno::Mkfifo, path, [mode, 0])
    }

    fn sys_mknod(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        mode: u64,
        dev: u64,
    ) -> SysOutcome {
        self.gate_path_write(ctx, "mknod", Sysno::Mknod, path, [mode, dev])
    }

    fn sys_utimes(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, times: u64) -> SysOutcome {
        self.gate_path_write(ctx, "utimes", Sysno::Utimes, path, [times, 0])
    }

    fn sys_stat(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, statbuf: u64) -> SysOutcome {
        self.gate_path_read(ctx, "stat", Sysno::Stat, path, [statbuf, 0])
    }

    fn sys_lstat(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, statbuf: u64) -> SysOutcome {
        self.gate_path_read(ctx, "lstat", Sysno::Lstat, path, [statbuf, 0])
    }

    fn sys_access(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.gate_path_read(ctx, "access", Sysno::Access, path, [mode, 0])
    }

    fn sys_readlink(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        buf: u64,
        bufsize: u64,
    ) -> SysOutcome {
        self.gate_path_read(ctx, "readlink", Sysno::Readlink, path, [buf, bufsize])
    }

    fn sys_chdir(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.gate_path_read(ctx, "chdir", Sysno::Chdir, path, [0, 0])
    }

    fn sys_rename(&mut self, ctx: &mut SymCtx<'_, '_>, from: u64, to: u64) -> SysOutcome {
        let (pf, pt) = match (ctx.read_path(from), ctx.read_path(to)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return SysOutcome::Done(Err(e)),
        };
        if self.policy.is_hidden(&pf) || self.policy.is_hidden(&pt) {
            self.violate("rename", &pf, "ENOENT");
            return SysOutcome::Done(Err(Errno::ENOENT));
        }
        if self.policy.is_write_denied(&pf) || self.policy.is_write_denied(&pt) {
            if let Some(out) = self.gate("rename", &pf) {
                return out;
            }
        }
        ctx.down_args(Sysno::Rename, [from, to, 0, 0, 0, 0])
    }

    fn sys_link(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, newpath: u64) -> SysOutcome {
        let (pf, pt) = match (ctx.read_path(path), ctx.read_path(newpath)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return SysOutcome::Done(Err(e)),
        };
        if self.policy.is_hidden(&pf) || self.policy.is_hidden(&pt) {
            self.violate("link", &pf, "ENOENT");
            return SysOutcome::Done(Err(Errno::ENOENT));
        }
        if self.policy.is_write_denied(&pt) {
            if let Some(out) = self.gate("link", &pt) {
                return out;
            }
        }
        ctx.down_args(Sysno::Link, [path, newpath, 0, 0, 0, 0])
    }

    fn sys_symlink(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        contents: u64,
        linkpath: u64,
    ) -> SysOutcome {
        let p = match ctx.read_path(linkpath) {
            Ok(p) => p,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        if self.policy.is_write_denied(&p) {
            if let Some(out) = self.gate("symlink", &p) {
                return out;
            }
        }
        ctx.down_args(Sysno::Symlink, [contents, linkpath, 0, 0, 0, 0])
    }

    fn sys_fork(&mut self, ctx: &mut SymCtx<'_, '_>) -> SysOutcome {
        if self.policy.deny_fork {
            self.violate("fork", b"", "EPROCLIM");
            return SysOutcome::Done(Err(Errno::EPROCLIM));
        }
        ctx.down_args(Sysno::Fork, [0; 6])
    }

    fn sys_vfork(&mut self, ctx: &mut SymCtx<'_, '_>) -> SysOutcome {
        if self.policy.deny_fork {
            self.violate("vfork", b"", "EPROCLIM");
            return SysOutcome::Done(Err(Errno::EPROCLIM));
        }
        ctx.down_args(Sysno::Vfork, [0; 6])
    }

    fn sys_execve(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        argv: u64,
        envp: u64,
    ) -> SysOutcome {
        if self.policy.deny_exec {
            let p = ctx.read_path(path).unwrap_or_default();
            self.violate("execve", &p, "EPERM");
            return SysOutcome::Done(Err(Errno::EPERM));
        }
        self.gate_path_read(ctx, "execve", Sysno::Execve, path, [argv, envp])
    }

    fn sys_kill(&mut self, ctx: &mut SymCtx<'_, '_>, pid: u64, sig: u64) -> SysOutcome {
        if self.policy.deny_kill_others && pid as i64 != i64::from(ctx.pid()) {
            self.violate("kill", b"", "EPERM");
            return SysOutcome::Done(Err(Errno::EPERM));
        }
        ctx.down_args(Sysno::Kill, [pid, sig, 0, 0, 0, 0])
    }

    fn sys_socket(&mut self, ctx: &mut SymCtx<'_, '_>, d: u64, t: u64, p: u64) -> SysOutcome {
        if self.policy.deny_sockets {
            self.violate("socket", b"", "EACCES");
            return SysOutcome::Done(Err(Errno::EACCES));
        }
        ctx.down_args(Sysno::Socket, [d, t, p, 0, 0, 0])
    }

    fn sys_socketpair(&mut self, ctx: &mut SymCtx<'_, '_>, d: u64, t: u64, p: u64) -> SysOutcome {
        if self.policy.deny_sockets {
            self.violate("socketpair", b"", "EACCES");
            return SysOutcome::Done(Err(Errno::EACCES));
        }
        ctx.down_args(Sysno::Socketpair, [d, t, p, 0, 0, 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{Kernel, KernelBuilder, RunOutcome};

    fn run_sandboxed(src: &str, policy: SandboxPolicy) -> (Kernel, SandboxHandle) {
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        k.write_file(b"/etc/secret", b"password").unwrap();
        k.write_file(b"/etc/public", b"hello").unwrap();
        let mut router = InterposedRouter::new();
        let (agent, handle) = SandboxAgent::new(policy);
        ia_interpose::spawn_with_agent(&mut k, &mut router, agent, &[], &img, &[b"evil"], b"evil");
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        (k, handle)
    }

    #[test]
    fn hidden_paths_appear_absent() {
        let (_, handle) = run_sandboxed(
            r#"
            .data
            path: .asciz "/etc/secret"
            .text
            main:
                la r0, path
                li r1, 0
                li r2, 0
                sys open
                mov r0, r1      ; errno
                sys exit
            "#,
            SandboxPolicy {
                hidden: vec![b"/etc/secret".to_vec()],
                ..SandboxPolicy::default()
            },
        );
        let v = handle.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].call, "open");
        assert_eq!(v[0].result, "ENOENT");
    }

    #[test]
    fn readonly_denies_destruction_but_allows_reads() {
        let (mut k, handle) = run_sandboxed(
            r#"
            .data
            path: .asciz "/etc/public"
            buf:  .space 16
            .text
            main:
                la r0, path
                sys unlink          ; denied
                la r0, path
                li r1, 0
                li r2, 0
                sys open            ; allowed (read)
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 16
                sys read
                li r0, 0
                sys exit
            "#,
            SandboxPolicy {
                readonly: vec![b"/etc".to_vec()],
                ..SandboxPolicy::default()
            },
        );
        assert!(k.read_file(b"/etc/public").is_ok(), "file survived");
        assert_eq!(handle.violations().len(), 1);
        assert_eq!(handle.violations()[0].call, "unlink");
    }

    #[test]
    fn emulation_mode_pretends_success() {
        let (mut k, handle) = run_sandboxed(
            r#"
            .data
            path: .asciz "/etc/public"
            .text
            main:
                la r0, path
                sys unlink
                mov r0, r1          ; errno: 0 if "succeeded"
                sys exit
            "#,
            SandboxPolicy {
                readonly: vec![b"/etc".to_vec()],
                emulate_writes: true,
                ..SandboxPolicy::default()
            },
        );
        assert!(k.read_file(b"/etc/public").is_ok(), "nothing was deleted");
        assert_eq!(
            k.exit_status(1),
            Some(ia_abi::signal::wait_status_exited(0)),
            "client believes the unlink succeeded"
        );
        assert_eq!(handle.violations()[0].result, "emulated");
    }

    #[test]
    fn fork_denied_under_policy() {
        let (_, handle) = run_sandboxed(
            r#"
            main:
                sys fork
                mov r0, r1
                sys exit
            "#,
            SandboxPolicy {
                deny_fork: true,
                ..SandboxPolicy::default()
            },
        );
        assert_eq!(handle.violations()[0].call, "fork");
    }

    #[test]
    fn interactive_decider_rules_per_operation() {
        // The "human" allows unlinking /etc/tmpjunk but denies everything
        // else — per-operation interactive decisions.
        let src = r#"
            .data
            junk: .asciz "/etc/tmpjunk"
            conf: .asciz "/etc/keep.conf"
            .text
            main:
                la r0, junk
                sys unlink
                la r0, conf
                sys unlink
                mov r0, r1      ; errno of the second unlink
                sys exit
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        k.write_file(b"/etc/tmpjunk", b"x").unwrap();
        k.write_file(b"/etc/keep.conf", b"x").unwrap();
        let mut router = InterposedRouter::new();
        let (agent, handle) = SandboxAgent::with_decider(
            SandboxPolicy {
                readonly: vec![b"/etc".to_vec()],
                ..SandboxPolicy::default()
            },
            |call, path| {
                if call == "unlink" && path == b"/etc/tmpjunk" {
                    Ruling::Allow
                } else {
                    Ruling::Deny
                }
            },
        );
        ia_interpose::spawn_with_agent(&mut k, &mut router, agent, &[], &img, &[b"m"], b"m");
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert!(k.read_file(b"/etc/tmpjunk").is_err(), "allowed unlink ran");
        assert!(
            k.read_file(b"/etc/keep.conf").is_ok(),
            "denied unlink did not"
        );
        assert_eq!(
            k.exit_status(1),
            Some(ia_abi::signal::wait_status_exited(Errno::EPERM.code() as u8))
        );
        let results: Vec<&str> = handle.violations().iter().map(|v| v.result).collect();
        let results: Vec<String> = results.iter().map(|s| s.to_string()).collect();
        assert_eq!(results, vec!["allowed".to_string(), "EPERM".to_string()]);
    }

    #[test]
    fn allowed_calls_blocks_everything_outside_the_set() {
        // The list permits write but not getpid: the getpid is refused with
        // EPERM before its method runs, and exit still works.
        let (k, handle) = run_sandboxed(
            r#"
            .data
            msg: .asciz "ok"
            .text
            main:
                li r0, 1
                la r1, msg
                li r2, 2
                sys write
                sys getpid
                mov r0, r1      ; errno of getpid
                sys exit
            "#,
            SandboxPolicy {
                allowed_calls: Some(InterestSet::of(&[Sysno::Write])),
                ..SandboxPolicy::default()
            },
        );
        assert_eq!(k.console.output_string(), "ok", "allowed call ran");
        assert_eq!(
            k.exit_status(1),
            Some(ia_abi::signal::wait_status_exited(Errno::EPERM.code() as u8)),
            "blocked call returned EPERM"
        );
        let v = handle.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].call, "getpid");
        assert_eq!(v[0].result, "EPERM");
    }

    #[test]
    fn from_footprint_derives_a_least_privilege_policy() {
        let img = ia_vm::assemble(
            r#"
            .data
            msg: .asciz "hi"
            .text
            main:
                li r0, 1
                la r1, msg
                li r2, 2
                sys write
                li r0, 0
                sys exit
            "#,
        )
        .unwrap();
        let (agent, _handle, fp) = SandboxAgent::from_footprint(&img);
        assert!(fp.exact);
        assert_eq!(fp.syscalls(), vec![Sysno::Exit, Sysno::Write]);
        let policy = &agent.inner.policy;
        assert!(policy.deny_fork && policy.deny_exec && policy.deny_sockets);
        let allowed = policy.allowed_calls.as_ref().unwrap();
        assert!(allowed.contains(Sysno::Write.number()));
        assert!(allowed.contains(Sysno::Exit.number()));
        assert!(!allowed.contains(Sysno::Open.number()));

        // And the binary runs unhindered under its own inferred policy.
        let mut k = KernelBuilder::new().build();
        let mut router = InterposedRouter::new();
        let (agent, handle, _) = SandboxAgent::from_footprint(&img);
        ia_interpose::spawn_with_agent(&mut k, &mut router, agent, &[], &img, &[b"m"], b"m");
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "hi");
        assert!(handle.violations().is_empty(), "no false positives");
    }

    #[test]
    fn allow_list_policies_narrow_their_interests() {
        // Pure allow-list: in-set calls are NOT intercepted (they ride the
        // bypass/batching path), out-of-set calls are, and policed calls
        // stay visible even when allowed.
        let (agent, _) = SandboxAgent::new(SandboxPolicy {
            allowed_calls: Some(InterestSet::of(&[Sysno::Read, Sysno::Write, Sysno::Exit])),
            max_write_bytes: Some(100),
            deny_fork: true,
            ..SandboxPolicy::default()
        });
        let interests = agent.inner.interests();
        assert!(!interests.contains(Sysno::Read.number()), "read bypasses");
        assert!(
            interests.contains(Sysno::Write.number()),
            "quota needs write"
        );
        assert!(
            interests.contains(Sysno::Fork.number()),
            "deny_fork needs fork"
        );
        assert!(
            interests.contains(Sysno::Getpid.number()),
            "out-of-set seen"
        );

        // Path rules (and deciders) force full interception.
        let (agent, _) = SandboxAgent::new(SandboxPolicy {
            allowed_calls: Some(InterestSet::of(&[Sysno::Read])),
            hidden: vec![b"/etc".to_vec()],
            ..SandboxPolicy::default()
        });
        assert_eq!(agent.inner.interests(), InterestSet::ALL);
        let (agent, _) = SandboxAgent::with_decider(
            SandboxPolicy {
                allowed_calls: Some(InterestSet::of(&[Sysno::Read])),
                ..SandboxPolicy::default()
            },
            |_, _| Ruling::Deny,
        );
        assert_eq!(agent.inner.interests(), InterestSet::ALL);
        // No allow-list at all: unchanged, ALL.
        let (agent, _) = SandboxAgent::new(SandboxPolicy::default());
        assert_eq!(agent.inner.interests(), InterestSet::ALL);
    }

    #[test]
    fn write_quota_is_enforced() {
        let (k, handle) = run_sandboxed(
            r#"
            .data
            msg: .asciz "0123456789"
            .text
            main:
                li r12, 5
            loop:
                jz r12, done
                li r0, 1
                la r1, msg
                li r2, 10
                sys write
                addi r12, r12, -1
                jmp loop
            done:
                li r0, 0
                sys exit
            "#,
            SandboxPolicy {
                max_write_bytes: Some(25),
                ..SandboxPolicy::default()
            },
        );
        assert_eq!(handle.bytes_written(), 20, "two full writes fit under 25");
        assert_eq!(k.console.output_string().len(), 20);
        assert!(handle
            .violations()
            .iter()
            .any(|v| v.call == "write" && v.result == "EDQUOT"));
    }
}
