//! `reproduce` — prints every table of the paper's evaluation section,
//! regenerated from the simulation.
//!
//! ```text
//! cargo run -p ia-bench --release --bin reproduce            # everything
//! cargo run -p ia-bench --release --bin reproduce table-3-2  # one table
//! cargo run -p ia-bench --release --bin reproduce -- --json  # BENCH_{1,2,3}.json
//! cargo run -p ia-bench --release --bin reproduce -- --json2 # BENCH_2.json only
//! cargo run -p ia-bench --release --bin reproduce -- --json3 # BENCH_3.json only
//! cargo run -p ia-bench --release --bin reproduce -- --smoke # CI gate
//! ```

use ia_bench::{
    ablation_pay_per_use, dfs_trace_comparison, hostbench, overhead, render_ablation, render_dfs,
    render_table_3_1, render_table_3_4, render_table_3_5, render_timing, snapbench, table_3_1,
    table_3_2, table_3_3, table_3_4, table_3_5,
};

/// Largest tolerated drop of the smoke scenario's throughput below the
/// committed baseline before CI fails.
const SMOKE_TOLERANCE: f64 = 0.20;

/// Extracts the committed `traps_per_sec` of the smoke scenario (sliced
/// scheduler, fast path on) from the `BENCH_1.json` text. Hand-rolled:
/// the workspace builds offline with no serialization dependency, and the
/// document is our own line-per-scenario writer's output.
fn baseline_traps_per_sec(json: &str) -> Option<f64> {
    json.lines()
        .find(|l| {
            l.contains(&format!("\"name\": \"{}\"", hostbench::SMOKE_SCENARIO))
                && l.contains("\"sched\": \"sliced\"")
                && l.contains("\"fast_path\": true")
        })
        .and_then(|l| {
            let rest = l.split("\"traps_per_sec\": ").nth(1)?;
            rest.trim_end_matches(['}', ',', ' ']).parse().ok()
        })
}

/// Compares a fresh run of the smoke scenario against the committed
/// baseline; exits non-zero on a regression beyond [`SMOKE_TOLERANCE`].
fn smoke() {
    let committed = match std::fs::read_to_string("BENCH_1.json") {
        Ok(text) => baseline_traps_per_sec(&text),
        Err(e) => {
            eprintln!("smoke: cannot read BENCH_1.json: {e}");
            std::process::exit(1);
        }
    };
    let Some(committed) = committed else {
        eprintln!(
            "smoke: no {} (sliced, fast-path) row in BENCH_1.json",
            hostbench::SMOKE_SCENARIO
        );
        std::process::exit(1);
    };
    let live = hostbench::run_smoke();
    let floor = committed * (1.0 - SMOKE_TOLERANCE);
    println!(
        "smoke: {} (sliced, fast-path): {:.0} traps/s live vs {:.0} committed (floor {:.0})",
        hostbench::SMOKE_SCENARIO,
        live.traps_per_sec,
        committed,
        floor,
    );
    if live.traps_per_sec < floor {
        eprintln!(
            "smoke: FAIL — trap fast path regressed more than {:.0}% below the committed baseline",
            SMOKE_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("smoke: ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    if args.iter().any(|a| a == "--json") {
        // Host-throughput mode: measure the interpreter hot path under both
        // schedulers and emit the machine-readable baseline.
        let json = hostbench::render_json(&hostbench::run_all());
        print!("{json}");
        if let Err(e) = std::fs::write("BENCH_1.json", &json) {
            eprintln!("warning: could not write BENCH_1.json: {e}");
        }
        // Per-agent syscall overhead table (paper §6 shape), from the
        // ia-obs metrics registry.
        let json2 = overhead::render_json(&overhead::run_all());
        if let Err(e) = std::fs::write("BENCH_2.json", &json2) {
            eprintln!("warning: could not write BENCH_2.json: {e}");
        }
        // Snapshot cost vs VFS size and branch-based txn sessions.
        let json3 = snapbench::render_json(&snapbench::run_all());
        if let Err(e) = std::fs::write("BENCH_3.json", &json3) {
            eprintln!("warning: could not write BENCH_3.json: {e}");
        }
        return;
    }

    if args.iter().any(|a| a == "--json2") {
        // Just the per-agent overhead table — virtual-time measurement,
        // cheap and deterministic.
        let json2 = overhead::render_json(&overhead::run_all());
        print!("{json2}");
        if let Err(e) = std::fs::write("BENCH_2.json", &json2) {
            eprintln!("warning: could not write BENCH_2.json: {e}");
        }
        return;
    }

    if args.iter().any(|a| a == "--json3") {
        // Just the snapshot-cost document — much cheaper than the full
        // throughput sweep, and the one CI re-measures per push.
        let json3 = snapbench::render_json(&snapbench::run_all());
        print!("{json3}");
        if let Err(e) = std::fs::write("BENCH_3.json", &json3) {
            eprintln!("warning: could not write BENCH_3.json: {e}");
        }
        return;
    }

    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!("Interposition Agents (Jones, SOSP '93) — reproduction report");
    println!("=============================================================\n");

    if want("table-3-1") {
        println!("{}", render_table_3_1(&table_3_1()));
    }
    if want("table-3-2") {
        println!(
            "{}",
            render_timing(
                "Table 3-2: Time to format my dissertation (VAX 6250 profile)",
                "paper: 151.7 s base; timex +0.5 s, trace +3.5 s (2.5%), union +5.0 s (3.5%)",
                &table_3_2()
            )
        );
    }
    if want("table-3-3") {
        println!(
            "{}",
            render_timing(
                "Table 3-3: Time to make 8 programs (25 MHz i486 profile)",
                "paper: 16.0 s base; timex +19%, union +82%, trace +107%",
                &table_3_3()
            )
        );
    }
    if want("table-3-4") {
        println!("{}", render_table_3_4(&table_3_4()));
    }
    if want("table-3-5") {
        println!("{}", render_table_3_5(&table_3_5()));
    }
    if want("dfs-trace") {
        println!("{}", render_dfs(&dfs_trace_comparison()));
    }
    if want("ablation") {
        println!("{}", render_ablation(&ablation_pay_per_use()));
    }
}
