//! The `time_symbolic` agent (§3.5.1.1).
//!
//! "The interposition agent, time_symbolic, intercepts each system call,
//! decodes each call and arguments, and calls C++ virtual procedures
//! corresponding to each system call. These procedures just take the
//! default action for each system call ... This allows the minimum toolkit
//! overhead for each intercepted system call to be easily measured."
//!
//! It is literally the [`SymbolicSyscall`] trait with nothing overridden:
//! every call decodes through the symbolic dispatcher and takes its
//! default pass-through body. Table 3-5's "with agent" column runs under
//! this agent.

use ia_toolkit::{Symbolic, SymbolicSyscall};

/// The null symbolic agent: full interception, default behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeSymbolic;

impl TimeSymbolic {
    /// Boxed, adapter-wrapped form ready for the agent loader.
    #[must_use]
    pub fn boxed() -> Box<Symbolic<TimeSymbolic>> {
        Box::new(Symbolic::new(TimeSymbolic))
    }
}

impl SymbolicSyscall for TimeSymbolic {
    fn name(&self) -> &'static str {
        "time_symbolic"
    }
    // Everything else: inherited defaults. That is the whole point.
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    #[test]
    fn intercepts_everything_changes_nothing() {
        let src = r#"
            .data
            path: .asciz "/tmp/f"
            .text
            main:
                la r0, path
                li r1, 0x601
                li r2, 420
                sys open
                mov r3, r0
                mov r0, r3
                sys close
                la r0, path
                sys unlink
                li r0, 0
                sys exit
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, TimeSymbolic::boxed());
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(router.stats.intercepted, 4);
        assert_eq!(router.stats.passthrough, 0);
        assert_eq!(k.exit_status(pid), Some(0));
    }

    #[test]
    fn per_call_overhead_is_intercept_plus_dispatch_plus_downcall() {
        // Measure getpid with and without the agent; the difference should
        // be the paper's 67 µs floor (30 intercept + 37 downcall) plus the
        // virtual dispatch.
        let src = "main: sys getpid\n li r0,0\n sys exit\n";
        let img = ia_vm::assemble(src).unwrap();

        let mut plain = KernelBuilder::new().build();
        plain.spawn_image(&img, &[b"t"], b"t");
        plain.run_to_completion();

        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, TimeSymbolic::boxed());
        k.run_with(&mut router);

        let delta = k.clock.elapsed_ns() - plain.clock.elapsed_ns();
        // Per intercepted call: trap interception, chain virtual dispatch,
        // symbolic decode/dispatch, and the downcall — the paper's "about
        // 140 to 210 µs" per symbolic-toolkit call. Plus one agent
        // teardown at process exit.
        let per_call = k.profile.intercept_ns
            + k.profile.virtual_call_ns
            + k.profile.symbolic_dispatch_ns
            + k.profile.downcall_ns;
        assert!((140_000..=210_000).contains(&per_call), "paper's range");
        // Two intercepted calls (getpid + exit).
        assert_eq!(
            delta,
            2 * per_call + k.profile.agent_exit_ns,
            "exactly the modelled overhead"
        );
    }
}
