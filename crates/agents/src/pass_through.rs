//! A fully transparent observe-only agent that intercepts *every* call
//! but accepts them all as vectored upcalls — the cheapest possible
//! full-coverage interposition, and the benchmark floor for the vectored
//! upcall machinery (BENCH_2's `pass_through` configuration).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ia_abi::RawArgs;
use ia_interpose::{Agent, BatchCall, InterestSet, SysCtx};
use ia_kernel::SysOutcome;

/// Observes every system call without changing any of them. Declares every
/// number batchable, so under the vectored-upcall path consecutive
/// same-number calls reach it as one [`Agent::syscall_batch`]; calls that
/// still arrive individually (e.g. when stacked under a non-batchable
/// agent) are passed straight down.
#[derive(Default)]
pub struct PassThrough {
    batches: Arc<AtomicU64>,
    calls: Arc<AtomicU64>,
}

impl PassThrough {
    /// A boxed instance, ready for the loader.
    #[must_use]
    pub fn boxed() -> Box<PassThrough> {
        Box::default()
    }

    /// `(vectored upcalls received, calls observed in them)`. Counters are
    /// shared across forked clones.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.batches.load(Ordering::Relaxed),
            self.calls.load(Ordering::Relaxed),
        )
    }

    /// A detached clone sharing the same counters — keep it to read them
    /// after the original has been moved into a router chain.
    #[must_use]
    pub fn probe(&self) -> PassThrough {
        PassThrough {
            batches: self.batches.clone(),
            calls: self.calls.clone(),
        }
    }
}

impl Agent for PassThrough {
    fn name(&self) -> &'static str {
        "pass_through"
    }

    fn interests(&self) -> InterestSet {
        InterestSet::ALL
    }

    fn batch_interests(&self) -> InterestSet {
        InterestSet::ALL
    }

    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        self.calls.fetch_add(1, Ordering::Relaxed);
        ctx.down(nr, args)
    }

    fn syscall_batch(&mut self, _ctx: &mut SysCtx<'_>, _nr: u32, calls: &[BatchCall]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.calls.fetch_add(calls.len() as u64, Ordering::Relaxed);
    }

    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(PassThrough {
            batches: self.batches.clone(),
            calls: self.calls.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    #[test]
    fn observes_every_call_in_batches_without_changing_behaviour() {
        // Loop counter lives in r10: syscall returns clobber r0..r2.
        let src = "
main:   li r10, 70
loop:   addi r10, r10, -1
        sys getpid
        jnz r10, loop
        li r0, 0
        sys exit
";
        let img = ia_vm::assemble(src).unwrap();

        let mut bare = KernelBuilder::new().build();
        bare.spawn_image(&img, &[b"t"], b"t");
        assert_eq!(bare.run_to_completion(), RunOutcome::AllExited);

        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        let agent = PassThrough::boxed();
        let (batches_c, calls_c) = (agent.batches.clone(), agent.calls.clone());
        ia_interpose::wrap_process(&mut k, &mut router, pid, agent, &[]);
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);

        // All 70 getpids observed in far fewer upcalls. The final exit is
        // intercepted but never completes (NoReturn), so it is not part of
        // any vector.
        assert_eq!(calls_c.load(Ordering::Relaxed), 70);
        assert!(
            batches_c.load(Ordering::Relaxed) <= 5,
            "vectored: {} upcalls for 70 calls",
            batches_c.load(Ordering::Relaxed)
        );
        assert_eq!(router.stats.intercepted, 71);
        assert_eq!(
            bare.total_syscalls, k.total_syscalls,
            "behaviour unchanged under the observer"
        );
    }
}
