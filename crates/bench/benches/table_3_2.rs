//! Criterion bench for Table 3-2: the dissertation-formatting workload
//! under each agent (host wall-clock of the whole simulation; the virtual
//! times are printed by `reproduce`).

use criterion::{criterion_group, criterion_main, Criterion};
use ia_kernel::VAX_6250;
use ia_workloads::{run_workload, AgentKind, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_3_2_scribe");
    g.sample_size(10);
    for agent in AgentKind::TABLE_ROWS {
        g.bench_function(agent.name(), |b| {
            b.iter(|| {
                let stats = run_workload(Workload::Scribe, VAX_6250, agent);
                assert_eq!(stats.outcome, ia_kernel::RunOutcome::AllExited);
                stats.virtual_secs
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
