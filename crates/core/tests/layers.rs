//! Tests of the toolkit layers in isolation: scratch staging, the
//! directory-object machinery, and the descriptor table's dup/close
//! tracking in `FsAgent`.

use ia_abi::{DirEntry, Errno, Sysno};
use ia_interpose::InterposedRouter;
use ia_kernel::{KernelBuilder, RunOutcome};
use ia_toolkit::{
    obj_ref, DirObject, Directory, FsAgent, ObjRef, OpenObject, PathIntent, Pathname, PathnameSet,
    Scratch, SymCtx, Symbolic,
};
use std::sync::{Arc, Mutex};

/// A pathname-set that wraps every opened file in a counting object, to
/// observe the descriptor-table plumbing.
#[derive(Clone, Default)]
struct Counting {
    events: Arc<Mutex<Vec<String>>>,
}

struct CountingPathname {
    inner: ia_toolkit::DefaultPathname,
    events: Arc<Mutex<Vec<String>>>,
}

struct CountingObject {
    events: Arc<Mutex<Vec<String>>>,
}

impl PathnameSet for Counting {
    fn getpn(
        &mut self,
        _ctx: &mut SymCtx<'_, '_>,
        path: &[u8],
        _intent: PathIntent,
        scratch: &Scratch,
    ) -> Box<dyn Pathname> {
        Box::new(CountingPathname {
            inner: ia_toolkit::DefaultPathname::new(path, scratch.clone()),
            events: self.events.clone(),
        })
    }
}

impl Pathname for CountingPathname {
    fn path(&self) -> &[u8] {
        self.inner.path()
    }
    fn scratch(&self) -> &Scratch {
        self.inner.scratch()
    }
    fn clone_pathname(&self) -> Box<dyn Pathname> {
        Box::new(CountingPathname {
            inner: self.inner.clone(),
            events: self.events.clone(),
        })
    }
    fn open(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        flags: u64,
        mode: u64,
    ) -> (ia_kernel::SysOutcome, Option<ObjRef>) {
        let (out, _) = self.inner.open(ctx, flags, mode);
        let obj = obj_ref(CountingObject {
            events: self.events.clone(),
        });
        (out, Some(obj))
    }
}

impl OpenObject for CountingObject {
    fn obj_name(&self) -> &'static str {
        "counting"
    }
    fn read(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        buf: u64,
        n: u64,
    ) -> ia_kernel::SysOutcome {
        self.events.lock().unwrap().push(format!("read fd{fd}"));
        ctx.down_args(Sysno::Read, [fd, buf, n, 0, 0, 0])
    }
    fn close(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> ia_kernel::SysOutcome {
        self.events
            .lock()
            .unwrap()
            .push(format!("final-close fd{fd}"));
        ctx.down_args(Sysno::Close, [fd, 0, 0, 0, 0, 0])
    }
    fn clone_object(&self) -> Box<dyn OpenObject> {
        Box::new(CountingObject {
            events: self.events.clone(),
        })
    }
}

#[test]
fn dup_shares_the_open_object_and_only_the_last_close_is_final() {
    // Program: open, dup, read via both, close one (no final), close the
    // other (final).
    let src = r#"
        .data
        path: .asciz "/tmp/f"
        buf:  .space 8
        .text
        main:
            la r0, path
            li r1, 0
            li r2, 0
            sys open
            mov r10, r0
            mov r0, r10
            sys dup
            mov r11, r0
            mov r0, r10
            la r1, buf
            li r2, 4
            sys read
            mov r0, r11
            la r1, buf
            li r2, 4
            sys read
            mov r0, r10
            sys close
            mov r0, r11
            sys close
            li r0, 0
            sys exit
    "#;
    let mut k = KernelBuilder::new().build();
    k.write_file(b"/tmp/f", b"datadata").unwrap();
    let img = ia_vm::assemble(src).unwrap();
    let pid = k.spawn_image(&img, &[b"c"], b"c");
    let counting = Counting::default();
    let events = counting.events.clone();
    let mut router = InterposedRouter::new();
    router.push_agent(
        pid,
        Box::new(Symbolic::new(FsAgent::new("counting", counting))),
    );
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);

    let ev = events.lock().unwrap().clone();
    let reads = ev.iter().filter(|e| e.starts_with("read")).count();
    let finals = ev.iter().filter(|e| e.starts_with("final-close")).count();
    assert_eq!(
        reads, 2,
        "both descriptors routed through the one object: {ev:?}"
    );
    assert_eq!(
        finals, 1,
        "only the last close is the object's close: {ev:?}"
    );
}

/// A fixed in-memory directory iterator for DirObject tests.
struct FixedDir {
    names: Vec<&'static str>,
    pos: usize,
}

impl Directory for FixedDir {
    fn next_direntry(&mut self, _ctx: &mut SymCtx<'_, '_>) -> Result<Option<DirEntry>, Errno> {
        let e = self
            .names
            .get(self.pos)
            .map(|n| DirEntry::new(100 + self.pos as u64, n.as_bytes().to_vec()));
        self.pos += 1;
        Ok(e)
    }
    fn rewind(&mut self, _ctx: &mut SymCtx<'_, '_>) -> Result<(), Errno> {
        self.pos = 0;
        Ok(())
    }
    fn clone_dir(&self) -> Box<dyn Directory> {
        Box::new(FixedDir {
            names: self.names.clone(),
            pos: self.pos,
        })
    }
}

/// Drives a DirObject directly with a real kernel context.
fn with_ctx<R>(f: impl FnOnce(&mut SymCtx<'_, '_>) -> R) -> R {
    let mut k = KernelBuilder::new().build();
    let img = ia_vm::assemble("main: halt\n").unwrap();
    let pid = k.spawn_image(&img, &[b"t"], b"t");
    let mut below: Vec<Box<dyn ia_interpose::Agent>> = Vec::new();
    let mut raw = ia_interpose::SysCtx::new(&mut k, pid, &mut below, 0);
    let mut sym = SymCtx::new(&mut raw);
    f(&mut sym)
}

#[test]
fn dirobject_paginates_with_pushback_and_basep() {
    with_ctx(|ctx| {
        let dir = FixedDir {
            names: vec!["alpha", "beta", "gamma", "delta-very-long-name"],
            pos: 0,
        };
        let mut obj = DirObject::new(Box::new(dir));
        // A buffer that fits about two records forces pagination.
        let buf = 0x4000;
        let basep = 0x5000;
        let mut all = Vec::new();
        let mut last_base = 0;
        loop {
            let out = obj.getdirentries(ctx, 0, buf, 40, basep);
            let ia_kernel::SysOutcome::Done(Ok([n, _])) = out else {
                panic!("getdirentries failed: {out:?}")
            };
            if n == 0 {
                break;
            }
            let bytes = ctx.read_bytes(buf, n as usize).unwrap();
            for e in DirEntry::decode_stream(&bytes).unwrap() {
                all.push(String::from_utf8(e.name).unwrap());
            }
            // basep reports the offset *before* this batch, monotonically.
            let base = ctx.read_bytes(basep, 8).unwrap();
            let base = u64::from_le_bytes(base.try_into().unwrap());
            assert!(base >= last_base);
            last_base = base;
        }
        assert_eq!(all, vec!["alpha", "beta", "gamma", "delta-very-long-name"]);
    });
}

#[test]
fn dirobject_rewinds_on_lseek_zero() {
    with_ctx(|ctx| {
        let dir = FixedDir {
            names: vec!["one", "two"],
            pos: 0,
        };
        let mut obj = DirObject::new(Box::new(dir));
        let buf = 0x4000;
        let first = obj.getdirentries(ctx, 0, buf, 512, 0);
        assert!(matches!(first, ia_kernel::SysOutcome::Done(Ok([n, _])) if n > 0));
        // Drain.
        let end = obj.getdirentries(ctx, 0, buf, 512, 0);
        assert!(matches!(end, ia_kernel::SysOutcome::Done(Ok([0, _]))));
        // Rewind and read again.
        let r = obj.lseek(ctx, 0, 0, 0);
        assert!(matches!(r, ia_kernel::SysOutcome::Done(Ok(_))));
        let again = obj.getdirentries(ctx, 0, buf, 512, 0);
        assert!(matches!(again, ia_kernel::SysOutcome::Done(Ok([n, _])) if n > 0));
        // Non-zero seeks on directories are rejected.
        let bad = obj.lseek(ctx, 0, 8, 0);
        assert!(matches!(
            bad,
            ia_kernel::SysOutcome::Done(Err(Errno::EINVAL))
        ));
    });
}

#[test]
fn scratch_stages_strings_and_respects_capacity() {
    with_ctx(|ctx| {
        let scratch = Scratch::new();
        let a = scratch.write_cstr(ctx, b"/first/path").unwrap();
        let b = scratch.write_cstr(ctx, b"/second").unwrap();
        assert_ne!(a, b, "distinct staging slots");
        assert_eq!(ctx.read_path(a).unwrap(), b"/first/path");
        assert_eq!(ctx.read_path(b).unwrap(), b"/second");
        // Reset reuses the space.
        scratch.reset();
        let c = scratch.write_cstr(ctx, b"/third").unwrap();
        assert_eq!(c, a, "bump pointer rewound");
        // Exhaustion is ENOMEM, not a crash.
        scratch.reset();
        let huge = vec![0u8; ia_toolkit::SCRATCH_SIZE as usize + 1];
        assert_eq!(scratch.write(ctx, &huge), Err(Errno::ENOMEM));
    });
}

#[test]
fn scratch_region_is_client_visible_memory() {
    // The staging area really lives in the client's address space: bytes
    // written by the toolkit are readable at the same addresses through
    // the process's memory.
    with_ctx(|ctx| {
        let scratch = Scratch::new();
        let addr = scratch.write(ctx, b"shared-with-client").unwrap();
        let direct = ctx.read_bytes(addr, 18).unwrap();
        assert_eq!(direct, b"shared-with-client");
    });
}
