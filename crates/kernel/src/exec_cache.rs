//! The digest-keyed image cache behind `spawn` and `execve(2)`.
//!
//! Decoding a 12-byte-per-insn image and re-running the [`ExecGate`] lint on
//! every exec is pure waste under fork/exec storms (make8 re-execs the same
//! eight binaries over and over). [`ExecCache`] memoizes the whole
//! prepare-to-execute pipeline — parse, gate verdict, decoded
//! `Arc<Vec<Insn>>`, and the fused program — keyed by the image bytes'
//! content digest *and the gate generation*.
//!
//! The gate generation is the staleness defense: [`Kernel::set_exec_gate`]
//! and [`Kernel::clear_exec_gate`] bump it (and drop every entry), so a gate
//! installed after an image was cached still vetoes it — a cached verdict
//! from another gate's era can never be replayed. Digest collisions are
//! handled by keeping the exact source bytes in each entry and comparing
//! them on lookup: simulated user input never gets to alias another image.
//!
//! [`ExecGate`]: crate::kernel::ExecGate
//! [`Kernel::set_exec_gate`]: crate::Kernel::set_exec_gate
//! [`Kernel::clear_exec_gate`]: crate::Kernel::clear_exec_gate

use std::collections::HashMap;
use std::sync::Arc;

use ia_abi::Errno;
use ia_vm::{FusedProgram, Image, Insn};

/// A fully prepared executable: the parsed image (for segment loading and
/// gate re-checks), the decoded code every process running these bytes
/// shares, and the fused program the sliced engine executes.
#[derive(Debug)]
pub struct PreparedImage {
    /// The parsed image, for `load_into` and entry point.
    pub image: Image,
    /// Decoded code, shared across processes (`Process::code`).
    pub code: Arc<Vec<Insn>>,
    /// Superinstruction rewrite of `code` (`Process::fused`).
    pub fused: Arc<FusedProgram>,
}

impl PreparedImage {
    /// Decodes nothing — takes an already-parsed image and derives the
    /// shared code and fused program once.
    #[must_use]
    pub fn prepare(image: Image) -> PreparedImage {
        let code = Arc::new(image.code.clone());
        let fused = Arc::new(FusedProgram::fuse(&code));
        PreparedImage { image, code, fused }
    }
}

/// One memoized prepare outcome: the exact source bytes (collision guard),
/// the gate generation the verdict was computed under, and the outcome —
/// including negative verdicts (`ENOEXEC`, gate refusals), so a rejected
/// image doesn't get re-linted per exec either.
#[derive(Debug)]
struct Entry {
    bytes: Vec<u8>,
    gate_gen: u64,
    outcome: Result<Arc<PreparedImage>, Errno>,
}

/// The cache proper. Host-side bookkeeping, like `FastPathStats`: never
/// part of the virtual-time model and never captured by snapshots —
/// reconstructing an entry is always semantically free.
#[derive(Debug, Default)]
pub struct ExecCache {
    map: HashMap<u64, Vec<Entry>>,
    gate_gen: u64,
    /// Execs served from the cache.
    pub hits: u64,
    /// Execs that had to decode (and lint) from scratch.
    pub misses: u64,
}

/// FNV-1a over the image bytes — the same digest family the VFS uses for
/// content digests, applied to one byte slice.
#[must_use]
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ExecCache {
    /// Entry-count bound; past it the cache resets rather than evicting
    /// piecemeal (images are small and storms reuse few distinct binaries).
    const MAX_IMAGES: usize = 256;

    /// The current gate generation (for tests asserting invalidation).
    #[must_use]
    pub fn gate_gen(&self) -> u64 {
        self.gate_gen
    }

    /// Looks up the prepare outcome for `bytes` under the current gate
    /// generation, counting a hit on success.
    pub fn lookup(&mut self, bytes: &[u8]) -> Option<Result<Arc<PreparedImage>, Errno>> {
        let digest = content_digest(bytes);
        let entries = self.map.get(&digest)?;
        let entry = entries
            .iter()
            .find(|e| e.gate_gen == self.gate_gen && e.bytes == bytes)?;
        self.hits += 1;
        Some(match &entry.outcome {
            Ok(p) => Ok(Arc::clone(p)),
            Err(e) => Err(*e),
        })
    }

    /// Memoizes a freshly computed prepare outcome, counting the miss.
    pub fn insert(&mut self, bytes: &[u8], outcome: Result<Arc<PreparedImage>, Errno>) {
        self.misses += 1;
        if self.map.len() >= Self::MAX_IMAGES {
            self.map.clear();
        }
        self.map
            .entry(content_digest(bytes))
            .or_default()
            .push(Entry {
                bytes: bytes.to_vec(),
                gate_gen: self.gate_gen,
                outcome,
            });
    }

    /// Called whenever the exec gate changes: bumps the generation so no
    /// stale verdict can match, and drops the now-unreachable entries.
    pub fn note_gate_change(&mut self) {
        self.gate_gen += 1;
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_bytes(marker: u64) -> Vec<u8> {
        Image {
            entry: 0,
            code: vec![Insn::Li(0, marker), Insn::Halt],
            data: Vec::new(),
        }
        .to_bytes()
    }

    fn prepare_ok(bytes: &[u8]) -> Result<Arc<PreparedImage>, Errno> {
        Ok(Arc::new(PreparedImage::prepare(
            Image::from_bytes(bytes).unwrap(),
        )))
    }

    #[test]
    fn hit_returns_the_same_shared_code() {
        let mut c = ExecCache::default();
        let bytes = image_bytes(7);
        assert!(c.lookup(&bytes).is_none());
        c.insert(&bytes, prepare_ok(&bytes));
        let a = c.lookup(&bytes).unwrap().unwrap();
        let b = c.lookup(&bytes).unwrap().unwrap();
        assert!(Arc::ptr_eq(&a.code, &b.code));
        assert!(Arc::ptr_eq(&a.fused, &b.fused));
        assert_eq!((c.hits, c.misses), (2, 1));
    }

    #[test]
    fn negative_verdicts_are_cached_too() {
        let mut c = ExecCache::default();
        c.insert(b"not an image", Err(Errno::ENOEXEC));
        assert!(matches!(
            c.lookup(b"not an image"),
            Some(Err(Errno::ENOEXEC))
        ));
    }

    #[test]
    fn gate_change_invalidates_everything() {
        let mut c = ExecCache::default();
        let bytes = image_bytes(7);
        c.insert(&bytes, prepare_ok(&bytes));
        assert!(c.lookup(&bytes).is_some());
        c.note_gate_change();
        assert_eq!(c.gate_gen(), 1);
        assert!(c.lookup(&bytes).is_none(), "stale verdict must not replay");
    }

    #[test]
    fn colliding_digests_are_separated_by_bytes() {
        // Force a collision by inserting under the same digest bucket: two
        // different byte strings that the cache must never conflate, even
        // if their digests were to collide.
        let mut c = ExecCache::default();
        let a = image_bytes(1);
        let b = image_bytes(2);
        c.insert(&a, prepare_ok(&a));
        c.insert(&b, prepare_ok(&b));
        let pa = c.lookup(&a).unwrap().unwrap();
        let pb = c.lookup(&b).unwrap().unwrap();
        assert_ne!(pa.image, pb.image);
    }
}
