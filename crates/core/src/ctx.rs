//! The toolkit's call context: a typed veneer over the raw downcall
//! context with client-memory accessors.

use ia_abi::types::MAXPATHLEN;
use ia_abi::wire::Wire;
use ia_abi::{Errno, RawArgs, SysResult, Sysno};
use ia_interpose::SysCtx;
use ia_kernel::SysOutcome;

/// Context passed to toolkit-level methods.
///
/// Wraps the mechanism-level [`SysCtx`] with conveniences every layer
/// needs: reading and writing the client's memory (the agent shares the
/// client's address space) and making typed downcalls.
pub struct SymCtx<'a, 'b> {
    /// The raw mechanism context.
    pub raw: &'a mut SysCtx<'b>,
}

impl<'a, 'b> SymCtx<'a, 'b> {
    /// Wraps a raw context.
    pub fn new(raw: &'a mut SysCtx<'b>) -> SymCtx<'a, 'b> {
        SymCtx { raw }
    }

    /// The client pid.
    #[must_use]
    pub fn pid(&self) -> ia_kernel::Pid {
        self.raw.pid
    }

    /// True when this trap is a restart of a call that blocked.
    #[must_use]
    pub fn is_retry(&self) -> bool {
        self.raw.restarts > 0
    }

    /// Current virtual wall-clock time.
    #[must_use]
    pub fn now(&self) -> ia_abi::Timeval {
        self.raw.now()
    }

    /// The active machine cost profile.
    #[must_use]
    pub fn profile(&self) -> ia_kernel::MachineProfile {
        self.raw.kernel.profile
    }

    /// Charges toolkit work to the virtual clock (and the client's system
    /// time) — how layer-crossing costs from Table 3-4 are modelled.
    pub fn charge(&mut self, ns: u64) {
        self.raw.kernel.clock.advance_ns(ns);
        if let Ok(p) = self.raw.kernel.proc_mut(self.raw.pid) {
            p.usage.sys_ns += ns;
        }
    }

    // ---- client memory ---------------------------------------------------

    /// Reads a NUL-terminated pathname from client memory.
    pub fn read_path(&mut self, addr: u64) -> Result<Vec<u8>, Errno> {
        let p = self.raw.kernel.proc(self.raw.pid)?;
        p.mem.read_cstr(addr, MAXPATHLEN)
    }

    /// Reads raw bytes from client memory.
    pub fn read_bytes(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, Errno> {
        let p = self.raw.kernel.proc(self.raw.pid)?;
        Ok(p.mem.read_bytes(addr, len)?.to_vec())
    }

    /// Writes raw bytes into client memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Errno> {
        let p = self.raw.kernel.proc_mut(self.raw.pid)?;
        p.mem.write_bytes(addr, bytes)
    }

    /// Reads a wire structure from client memory.
    pub fn read_struct<T: Wire>(&mut self, addr: u64) -> Result<T, Errno> {
        let p = self.raw.kernel.proc(self.raw.pid)?;
        p.mem.read_struct(addr)
    }

    /// Writes a wire structure into client memory.
    pub fn write_struct<T: Wire>(&mut self, addr: u64, v: &T) -> Result<(), Errno> {
        let p = self.raw.kernel.proc_mut(self.raw.pid)?;
        p.mem.write_struct(addr, v)
    }

    // ---- downcalls ---------------------------------------------------------

    /// Invokes the next instance of the system interface.
    pub fn down_args(&mut self, nr: Sysno, args: RawArgs) -> SysOutcome {
        self.raw.down(nr.number(), args)
    }

    /// Invokes with a raw (possibly foreign) trap number.
    pub fn down_raw(&mut self, nr: u32, args: RawArgs) -> SysOutcome {
        self.raw.down(nr, args)
    }

    /// Downcall that must complete (agent-internal use where blocking makes
    /// no sense); maps a `Block` outcome to `EAGAIN`.
    pub fn down_done(&mut self, nr: Sysno, args: RawArgs) -> SysResult {
        match self.down_args(nr, args) {
            SysOutcome::Done(r) => r,
            SysOutcome::NoReturn => Ok([0, 0]),
            SysOutcome::Block(_) => Err(Errno::EAGAIN),
        }
    }
}
