//! Host wall-clock bench for Table 3-4's low-level operations, measured
//! against the Rust substrate: direct kernel dispatch, routed dispatch
//! with a pass-through agent (the intercept), and stacked downcalls.

use ia_agents::TimeSymbolic;
use ia_bench::harness::case;
use ia_interpose::InterposedRouter;
use ia_kernel::{KernelBuilder, SyscallRouter};

fn main() {
    let img = ia_vm::assemble("main: halt\n").unwrap();
    let nr = ia_abi::Sysno::Getpid.number();
    const GROUP: &str = "table_3_4_low_level";
    const SAMPLES: usize = 30;

    {
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"m"], b"m");
        case(GROUP, "kernel_syscall_direct", SAMPLES, || {
            k.syscall(pid, nr, [0; 6])
        });
    }

    {
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"m"], b"m");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, TimeSymbolic::boxed());
        case(GROUP, "intercepted_one_agent", SAMPLES, || {
            router.route(&mut k, pid, nr, [0; 6], 0)
        });
    }

    {
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"m"], b"m");
        let mut router = InterposedRouter::new();
        for _ in 0..3 {
            router.push_agent(pid, TimeSymbolic::boxed());
        }
        case(GROUP, "intercepted_three_agents", SAMPLES, || {
            router.route(&mut k, pid, nr, [0; 6], 0)
        });
    }

    {
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"m"], b"m");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, ia_agents::Timex::boxed(1)); // narrow interests
        case(GROUP, "passthrough_uninterested_agent", SAMPLES, || {
            router.route(&mut k, pid, nr, [0; 6], 0)
        });
    }
}
