//! The filesystem-agent base: composes the pathname, descriptor, open
//! object and directory layers into one [`SymbolicSyscall`] implementation.
//!
//! This is the shape the `union` and `dfs_trace` agents are built on in
//! the paper: "built using toolkit objects for pathnames, directories, and
//! descriptors, as well as the symbolic system call and lower levels of
//! the toolkit". An agent supplies a [`PathnameSet`]; the base routes
//!
//! * every pathname-using call through [`PathnameSet::getpn`] and the
//!   resulting [`Pathname`](crate::path::Pathname) object,
//! * every descriptor-using call through the descriptor table to the
//!   [`OpenObject`](crate::object::OpenObject) installed when the
//!   descriptor was opened (descriptors without an agent object pass
//!   straight down),
//! * `dup`/`dup2`/`fcntl(F_DUPFD)` so duplicated descriptors share one
//!   reference-counted object, and `close` so the last reference releases
//!   it.

use std::collections::HashMap;

use ia_abi::{FcntlCmd, Sysno};
use ia_interpose::InterestSet;
use ia_kernel::SysOutcome;

use crate::ctx::SymCtx;
use crate::object::{clone_descriptor_table, ObjRef};
use crate::path::{PathIntent, PathnameSet};
use crate::scratch::Scratch;
use crate::symbolic::{minimum_interests, SymbolicSyscall};

/// The composite filesystem agent.
pub struct FsAgent<P: PathnameSet> {
    /// The name-space policy object.
    pub set: P,
    /// Agent-side objects behind descriptors (only descriptors the policy
    /// chose to interpose on appear here).
    pub descriptors: HashMap<u64, ObjRef>,
    /// Staging memory in the client address space.
    pub scratch: Scratch,
    name: &'static str,
}

impl<P: PathnameSet> FsAgent<P> {
    /// Wraps a pathname-set policy.
    pub fn new(name: &'static str, set: P) -> FsAgent<P> {
        FsAgent {
            set,
            descriptors: HashMap::new(),
            scratch: Scratch::new(),
            name,
        }
    }

    fn getpn(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        addr: u64,
        intent: PathIntent,
    ) -> Result<Box<dyn crate::path::Pathname>, ia_abi::Errno> {
        self.scratch.reset();
        // Routing through the pathname layer costs: getpn, the pathname
        // object's virtual dispatch, and string staging.
        let cost = ctx.profile().path_layer_ns;
        ctx.charge(cost);
        let path = ctx.read_path(addr)?;
        Ok(self.set.getpn(ctx, &path, intent, &self.scratch))
    }

    fn obj(&self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> Option<ObjRef> {
        // Descriptor-table lookup plus open-object dispatch.
        let cost = ctx.profile().desc_layer_ns;
        ctx.charge(cost);
        self.descriptors.get(&fd).cloned()
    }

    /// Routes a one-path call through the pathname layer.
    fn path_call(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        addr: u64,
        intent: PathIntent,
        f: impl FnOnce(&mut dyn crate::path::Pathname, &mut SymCtx<'_, '_>) -> SysOutcome,
    ) -> SysOutcome {
        match self.getpn(ctx, addr, intent) {
            Ok(mut pn) => f(pn.as_mut(), ctx),
            Err(e) => SysOutcome::Done(Err(e)),
        }
    }

    /// Routes a two-path call (link/rename) through two pathname objects.
    fn path2_call(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        a: u64,
        b: u64,
        intents: (PathIntent, PathIntent),
        f: impl FnOnce(
            &mut dyn crate::path::Pathname,
            &mut dyn crate::path::Pathname,
            &mut SymCtx<'_, '_>,
        ) -> SysOutcome,
    ) -> SysOutcome {
        let mut pa = match self.getpn(ctx, a, intents.0) {
            Ok(p) => p,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        // Second getpn must not reset scratch (the first string may be
        // staged already) — getpn resets, so resolve b via the set
        // directly.
        let pb = match ctx.read_path(b) {
            Ok(path) => self.set.getpn(ctx, &path, intents.1, &self.scratch),
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let mut pb = pb;
        f(pa.as_mut(), pb.as_mut(), ctx)
    }
}

impl<P: PathnameSet + Clone + 'static> Clone for FsAgent<P> {
    fn clone(&self) -> Self {
        FsAgent {
            set: self.set.clone(),
            descriptors: clone_descriptor_table(&self.descriptors),
            scratch: self.scratch.deep_clone(),
            name: self.name,
        }
    }
}

impl<P: PathnameSet + Clone + 'static> SymbolicSyscall for FsAgent<P> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn interests(&self) -> InterestSet {
        // Pathname calls, descriptor calls, descriptor lifecycle, and the
        // process lifecycle minimum.
        let mut s = minimum_interests();
        for &sys in ia_abi::sysno::ALL_SYSCALLS {
            if sys.uses_pathname() || sys.uses_descriptor() {
                s.add_sys(sys);
            }
        }
        for sys in [
            Sysno::Open,
            Sysno::Close,
            Sysno::Dup,
            Sysno::Dup2,
            Sysno::Fcntl,
        ] {
            s.add_sys(sys);
        }
        s
    }

    fn init(&mut self, ctx: &mut SymCtx<'_, '_>, args: &[Vec<u8>]) {
        self.set.init(ctx, args);
    }

    fn init_child(&mut self, ctx: &mut SymCtx<'_, '_>) {
        // The inherited scratch base stays valid: fork copied the address
        // space. Only the policy object gets a child hook.
        self.set.init_child(ctx);
    }

    fn signal_handler(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        sig: ia_abi::Signal,
    ) -> ia_interpose::SignalVerdict {
        self.set.signal_handler(ctx, sig)
    }

    // ---- pathname-routed calls -----------------------------------------

    fn sys_open(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        flags: u64,
        mode: u64,
    ) -> SysOutcome {
        let intent = if flags & u64::from(ia_abi::OpenFlags::O_CREAT) != 0 {
            PathIntent::Create
        } else {
            PathIntent::Lookup
        };
        let mut pn = match self.getpn(ctx, path, intent) {
            Ok(p) => p,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let (out, obj) = pn.open(ctx, flags, mode);
        if let (SysOutcome::Done(Ok([fd, _])), Some(obj)) = (&out, obj) {
            self.descriptors.insert(*fd, obj);
        }
        out
    }

    fn sys_stat(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, statbuf: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.stat(ctx, statbuf)
        })
    }

    fn sys_lstat(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, statbuf: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.lstat(ctx, statbuf)
        })
    }

    fn sys_access(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.access(ctx, mode)
        })
    }

    fn sys_chmod(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| pn.chmod(ctx, mode))
    }

    fn sys_chown(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, uid: u64, gid: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.chown(ctx, uid, gid)
        })
    }

    fn sys_unlink(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Remove, |pn, ctx| pn.unlink(ctx))
    }

    fn sys_readlink(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        buf: u64,
        bufsize: u64,
    ) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.readlink(ctx, buf, bufsize)
        })
    }

    fn sys_truncate(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, length: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.truncate(ctx, length)
        })
    }

    fn sys_utimes(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, times: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.utimes(ctx, times)
        })
    }

    fn sys_chdir(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| pn.chdir(ctx))
    }

    fn sys_chroot(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| pn.chroot(ctx))
    }

    fn sys_mkdir(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Create, |pn, ctx| pn.mkdir(ctx, mode))
    }

    fn sys_rmdir(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Remove, |pn, ctx| pn.rmdir(ctx))
    }

    fn sys_mknod(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        mode: u64,
        dev: u64,
    ) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Create, |pn, ctx| {
            pn.mknod(ctx, mode, dev)
        })
    }

    fn sys_mkfifo(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, mode: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Create, |pn, ctx| {
            pn.mkfifo(ctx, mode)
        })
    }

    fn sys_execve(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: u64,
        argv: u64,
        envp: u64,
    ) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.execve(ctx, argv, envp)
        })
    }

    fn sys_link(&mut self, ctx: &mut SymCtx<'_, '_>, path: u64, newpath: u64) -> SysOutcome {
        self.path2_call(
            ctx,
            path,
            newpath,
            (PathIntent::Lookup, PathIntent::Create),
            |a, b, ctx| a.link(ctx, b),
        )
    }

    fn sys_rename(&mut self, ctx: &mut SymCtx<'_, '_>, from: u64, to: u64) -> SysOutcome {
        self.path2_call(
            ctx,
            from,
            to,
            (PathIntent::Remove, PathIntent::Create),
            |a, b, ctx| a.rename(ctx, b),
        )
    }

    fn sys_symlink(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        contents: u64,
        linkpath: u64,
    ) -> SysOutcome {
        self.path_call(ctx, linkpath, PathIntent::Create, |pn, ctx| {
            pn.symlink(ctx, contents)
        })
    }

    fn sys_bind(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, path: u64, _len: u64) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Create, |pn, ctx| {
            pn.sock_bind(ctx, fd)
        })
    }

    fn sys_connect(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        path: u64,
        _len: u64,
    ) -> SysOutcome {
        self.path_call(ctx, path, PathIntent::Lookup, |pn, ctx| {
            pn.sock_connect(ctx, fd)
        })
    }

    // ---- descriptor-routed calls -----------------------------------------

    fn sys_read(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().read(ctx, fd, buf, nbyte),
            None => ctx.down_args(Sysno::Read, [fd, buf, nbyte, 0, 0, 0]),
        }
    }

    fn sys_write(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().write(ctx, fd, buf, nbyte),
            None => ctx.down_args(Sysno::Write, [fd, buf, nbyte, 0, 0, 0]),
        }
    }

    fn sys_lseek(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        offset: u64,
        whence: u64,
    ) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().lseek(ctx, fd, offset, whence),
            None => ctx.down_args(Sysno::Lseek, [fd, offset, whence, 0, 0, 0]),
        }
    }

    fn sys_fstat(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, statbuf: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().fstat(ctx, fd, statbuf),
            None => ctx.down_args(Sysno::Fstat, [fd, statbuf, 0, 0, 0, 0]),
        }
    }

    fn sys_ioctl(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        request: u64,
        argp: u64,
    ) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().ioctl(ctx, fd, request, argp),
            None => ctx.down_args(Sysno::Ioctl, [fd, request, argp, 0, 0, 0]),
        }
    }

    fn sys_ftruncate(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, length: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().ftruncate(ctx, fd, length),
            None => ctx.down_args(Sysno::Ftruncate, [fd, length, 0, 0, 0, 0]),
        }
    }

    fn sys_fsync(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().fsync(ctx, fd),
            None => ctx.down_args(Sysno::Fsync, [fd, 0, 0, 0, 0, 0]),
        }
    }

    fn sys_fchmod(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, mode: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().fchmod(ctx, fd, mode),
            None => ctx.down_args(Sysno::Fchmod, [fd, mode, 0, 0, 0, 0]),
        }
    }

    fn sys_fchown(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, uid: u64, gid: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().fchown(ctx, fd, uid, gid),
            None => ctx.down_args(Sysno::Fchown, [fd, uid, gid, 0, 0, 0]),
        }
    }

    fn sys_flock(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, operation: u64) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().flock(ctx, fd, operation),
            None => ctx.down_args(Sysno::Flock, [fd, operation, 0, 0, 0, 0]),
        }
    }

    fn sys_getdirentries(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        buf: u64,
        nbytes: u64,
        basep: u64,
    ) -> SysOutcome {
        match self.obj(ctx, fd) {
            Some(o) => o.lock().unwrap().getdirentries(ctx, fd, buf, nbytes, basep),
            None => ctx.down_args(Sysno::Getdirentries, [fd, buf, nbytes, basep, 0, 0]),
        }
    }

    // ---- descriptor lifecycle --------------------------------------------

    fn sys_close(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        match self.descriptors.remove(&fd) {
            Some(o) => {
                // Only the last reference performs the object's close
                // behaviour; earlier closes still close the descriptor.
                if std::sync::Arc::strong_count(&o) == 1 {
                    o.lock().unwrap().close(ctx, fd)
                } else {
                    ctx.down_args(Sysno::Close, [fd, 0, 0, 0, 0, 0])
                }
            }
            None => ctx.down_args(Sysno::Close, [fd, 0, 0, 0, 0, 0]),
        }
    }

    fn sys_dup(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        let out = ctx.down_args(Sysno::Dup, [fd, 0, 0, 0, 0, 0]);
        if let SysOutcome::Done(Ok([newfd, _])) = out {
            if let Some(o) = self.obj(ctx, fd) {
                self.descriptors.insert(newfd, o);
            }
        }
        out
    }

    fn sys_dup2(&mut self, ctx: &mut SymCtx<'_, '_>, from: u64, to: u64) -> SysOutcome {
        let out = ctx.down_args(Sysno::Dup2, [from, to, 0, 0, 0, 0]);
        if let SysOutcome::Done(Ok(_)) = out {
            self.descriptors.remove(&to);
            if let Some(o) = self.obj(ctx, from) {
                self.descriptors.insert(to, o);
            }
        }
        out
    }

    fn sys_fcntl(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, cmd: u64, arg: u64) -> SysOutcome {
        let out = ctx.down_args(Sysno::Fcntl, [fd, cmd, arg, 0, 0, 0]);
        if FcntlCmd::from_u32(cmd as u32) == Ok(FcntlCmd::DupFd) {
            if let SysOutcome::Done(Ok([newfd, _])) = out {
                if let Some(o) = self.obj(ctx, fd) {
                    self.descriptors.insert(newfd, o);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{DefaultPathname, Pathname};
    use crate::symbolic::Symbolic;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    /// A pathname set that redirects every reference under `/virtual` to
    /// `/real` — a miniature "customizable filesystem view".
    #[derive(Debug, Clone, Default)]
    struct Redirect;

    impl PathnameSet for Redirect {
        fn set_name(&self) -> &'static str {
            "redirect"
        }
        fn getpn(
            &mut self,
            _ctx: &mut SymCtx<'_, '_>,
            path: &[u8],
            _intent: PathIntent,
            scratch: &Scratch,
        ) -> Box<dyn Pathname> {
            let rewritten = if let Some(rest) = path.strip_prefix(b"/virtual".as_ref()) {
                let mut p = b"/real".to_vec();
                p.extend_from_slice(rest);
                p
            } else {
                path.to_vec()
            };
            Box::new(DefaultPathname::new(rewritten, scratch.clone()))
        }
    }

    #[test]
    fn name_space_rewrite_is_transparent_to_the_client() {
        let src = r#"
            .data
            vpath: .asciz "/virtual/data.txt"
            buf:   .space 32
            .text
            main:
                la r0, vpath
                li r1, 0
                li r2, 0
                sys open
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 32
                sys read
                mov r2, r0
                li r0, 1
                la r1, buf
                sys write
                li r0, 0
                sys exit
        "#;
        let mut k = KernelBuilder::new().build();
        k.mkdir_p(b"/real").unwrap();
        k.write_file(b"/real/data.txt", b"relocated!").unwrap();
        let img = ia_vm::assemble(src).unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        router.push_agent(
            pid,
            Box::new(Symbolic::new(FsAgent::new("redirect", Redirect))),
        );
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "relocated!");
    }

    #[test]
    fn stat_and_unlink_follow_the_rewrite() {
        let src = r#"
            .data
            vpath: .asciz "/virtual/gone.txt"
            st:    .space 96
            .text
            main:
                la r0, vpath
                la r1, st
                sys stat
                mov r10, r0         ; stat result (0 ok)
                la r0, vpath
                sys unlink
                add r10, r10, r0    ; + unlink result
                ; both succeeded iff r10 == 0
                seq r0, r10, r11    ; r11 == 0
                xor r0, r0, r12     ; keep as bool
                sys exit
        "#;
        let mut k = KernelBuilder::new().build();
        k.mkdir_p(b"/real").unwrap();
        k.write_file(b"/real/gone.txt", b"x").unwrap();
        let img = ia_vm::assemble(src).unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        router.push_agent(
            pid,
            Box::new(Symbolic::new(FsAgent::new("redirect", Redirect))),
        );
        k.run_with(&mut router);
        // The real file is gone even though the client named /virtual.
        assert!(k.read_file(b"/real/gone.txt").is_err());
        let _ = pid;
    }
}
