//! Agents across `fork` and `execve`: the chain follows the process tree
//! (as it must, since on Mach the agent lived in the forked address
//! space), and agent semantics hold for children and exec'd images.

use ia_agents::{CryptAgent, TimeSymbolic, Timex, TraceAgent, UnionAgent};
use ia_interpose::{spawn_with_agent, wrap_process, InterposedRouter};
use ia_kernel::{KernelBuilder, RunOutcome};
use ia_vm::assemble;

#[test]
fn timex_shift_is_inherited_by_children() {
    // Parent and child both read the clock; both exit with (sec & 0xff).
    // Under timex both see the same shifted time.
    let src = r#"
        .data
        tv: .space 16
        .text
        main:
            sys fork
            jz r0, child
            li r0, 0
            li r1, 0
            li r2, 0
            li r3, 0
            sys wait4
        child:
            la r0, tv
            li r1, 0
            sys gettimeofday
            la r1, tv
            ld r0, (r1)
            li r6, 255
            and r0, r0, r6
            sys exit
    "#;
    let run = |offset: Option<i64>| -> (u8, u8) {
        let mut k = KernelBuilder::new().build();
        let img = assemble(src).unwrap();
        let parent = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        if let Some(off) = offset {
            wrap_process(&mut k, &mut router, parent, Timex::boxed(off), &[]);
        }
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        let p = (k.exit_status(parent).unwrap() >> 8) as u8;
        let c = (k.exit_status(parent + 1).unwrap() >> 8) as u8;
        (p, c)
    };
    let (p0, c0) = run(None);
    let (p1, c1) = run(Some(100));
    assert_eq!(p1, p0.wrapping_add(100), "parent shifted");
    assert_eq!(c1, c0.wrapping_add(100), "forked child inherited the shift");
}

#[test]
fn trace_follows_the_whole_process_tree_across_exec() {
    let mut k = KernelBuilder::new().build();
    let tool = assemble(
        r#"
        .data
        p: .asciz "/tmp/from-tool"
        .text
        main:
            la r0, p
            li r1, 0x601
            li r2, 420
            sys open
            sys close
            li r0, 0
            sys exit
        "#,
    )
    .unwrap();
    k.install_image(b"/bin/tool", &tool).unwrap();
    let parent = assemble(
        r#"
        .data
        path: .asciz "/bin/tool"
        .text
        main:
            sys fork
            jz r0, child
            li r0, 0
            li r1, 0
            li r2, 0
            li r3, 0
            sys wait4
            li r0, 0
            sys exit
        child:
            la r0, path
            li r1, 0
            li r2, 0
            sys execve
            li r0, 1
            sys exit
        "#,
    )
    .unwrap();
    let mut router = InterposedRouter::new();
    let (agent, handle) = TraceAgent::with_log(b"/tmp/tree.trace");
    spawn_with_agent(
        &mut k,
        &mut router,
        Box::new(agent),
        &[],
        &parent,
        &[b"p"],
        b"p",
    );
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    let text = handle.text();
    assert!(text.contains("fork()"), "{text}");
    assert!(text.contains(r#"execve("/bin/tool""#), "{text}");
    assert!(
        text.contains(r#"open("/tmp/from-tool""#),
        "the exec'd image's calls are still traced:\n{text}"
    );
}

#[test]
fn crypt_state_survives_fork_without_corruption() {
    // Parent writes the first half, forked child appends the second half;
    // the whole file deciphers correctly afterwards.
    let src = r#"
        .data
        path: .asciz "/vault/shared"
        a: .asciz "first-half|"
        b: .asciz "second-half"
        .text
        main:
            la r0, path
            li r1, 0x601
            li r2, 420
            sys open
            mov r10, r0
            mov r0, r10
            la r1, a
            li r2, 11
            sys write
            sys fork
            jz r0, child
            li r0, 0
            li r1, 0
            li r2, 0
            li r3, 0
            sys wait4
            mov r0, r10
            sys close
            li r0, 0
            sys exit
        child:
            mov r0, r10
            la r1, b
            li r2, 11
            sys write
            li r0, 0
            sys exit
    "#;
    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/vault").unwrap();
    let img = assemble(src).unwrap();
    let pid = k.spawn_image(&img, &[b"c"], b"c");
    let mut router = InterposedRouter::new();
    router.push_agent(pid, CryptAgent::boxed(b"/vault", b"kk"));
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    let mut at_rest = k.read_file(b"/vault/shared").unwrap();
    assert_eq!(at_rest.len(), 22);
    ia_agents::crypt::apply_keystream(b"kk", 0, &mut at_rest);
    assert_eq!(at_rest, b"first-half|second-half");
}

#[test]
fn union_view_holds_for_exece_binaries_found_through_the_view() {
    // The binary itself is found through the union: exec("/view/tool").
    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/bin2").unwrap();
    let tool = assemble(
        r#"
        .data
        m: .asciz "ran-via-view"
        .text
        main:
            li r0, 1
            la r1, m
            li r2, 12
            sys write
            li r0, 0
            sys exit
        "#,
    )
    .unwrap();
    k.install_image(b"/bin2/tool", &tool).unwrap();
    let launcher = assemble(
        r#"
        .data
        path: .asciz "/view/tool"
        .text
        main:
            la r0, path
            li r1, 0
            li r2, 0
            sys execve
            li r0, 9
            sys exit
        "#,
    )
    .unwrap();
    let mut router = InterposedRouter::new();
    let pid = spawn_with_agent(
        &mut k,
        &mut router,
        UnionAgent::boxed(&[b"/view=/bin:/bin2"]),
        &[],
        &launcher,
        &[b"l"],
        b"l",
    );
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "ran-via-view");
    assert_eq!(k.exit_status(pid), Some(0));
}

#[test]
fn deep_fork_trees_keep_one_chain_per_process() {
    // Three generations; every process carries (and drops) its own chain.
    let src = r#"
        main:
            sys fork
            jz r0, gen2
        reap:
            li r0, 0
            li r1, 0
            li r2, 0
            li r3, 0
            sys wait4
            li r0, 0
            sys exit
        gen2:
            sys fork
            jz r0, gen3
            jmp reap
        gen3:
            li r0, 0
            sys exit
    "#;
    let mut k = KernelBuilder::new().build();
    let img = assemble(src).unwrap();
    let pid = k.spawn_image(&img, &[b"g"], b"g");
    let mut router = InterposedRouter::new();
    router.push_agent(pid, TimeSymbolic::boxed());
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(router.stats.chains_forked, 2, "one clone per fork");
    for p in [pid, pid + 1, pid + 2] {
        assert!(!router.has_chain(p), "chain for {p} cleaned up");
    }
}
