//! Pipe buffers.
//!
//! A [`Pipe`] is the byte channel behind both anonymous `pipe(2)` pairs and
//! named FIFOs: a bounded ring buffer plus reader/writer endpoint counts.
//! The buffer itself never blocks — it reports `WouldBlock`, and the kernel
//! turns that into scheduling.

use std::collections::VecDeque;

/// Capacity of a pipe buffer, matching the historical 4.3BSD 4 KB pipe size.
pub const PIPE_CAPACITY: usize = 4096;

/// Identifier of a pipe buffer within a [`PipeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipeId(pub u64);

/// Outcome of a non-blocking pipe transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeIo {
    /// Bytes moved.
    Done(usize),
    /// Nothing could move now; caller should block and retry.
    WouldBlock,
    /// Reading: all writers gone and buffer drained (EOF).
    /// Writing: all readers gone (the kernel raises `SIGPIPE`/`EPIPE`).
    Hangup,
}

/// A single pipe: ring buffer plus endpoint accounting.
#[derive(Debug, Clone)]
pub struct Pipe {
    buf: VecDeque<u8>,
    readers: u32,
    writers: u32,
}

impl Pipe {
    fn new() -> Pipe {
        Pipe {
            buf: VecDeque::with_capacity(PIPE_CAPACITY),
            readers: 0,
            writers: 0,
        }
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Free space remaining.
    #[must_use]
    pub fn space(&self) -> usize {
        PIPE_CAPACITY - self.buf.len()
    }

    /// Live read endpoints.
    #[must_use]
    pub fn readers(&self) -> u32 {
        self.readers
    }

    /// Live write endpoints.
    #[must_use]
    pub fn writers(&self) -> u32 {
        self.writers
    }

    /// Attempts to read up to `want` bytes into `out`.
    pub fn read(&mut self, out: &mut Vec<u8>, want: usize) -> PipeIo {
        if self.buf.is_empty() {
            return if self.writers == 0 {
                PipeIo::Hangup
            } else {
                PipeIo::WouldBlock
            };
        }
        let n = want.min(self.buf.len());
        out.extend(self.buf.drain(..n));
        PipeIo::Done(n)
    }

    /// Attempts to write as much of `data` as fits.
    ///
    /// 4.3BSD semantics: writes of at most the pipe capacity are atomic — if
    /// the whole datum does not fit, nothing is transferred and the writer
    /// blocks. Larger writes transfer in capacity-sized pieces.
    pub fn write(&mut self, data: &[u8]) -> PipeIo {
        if self.readers == 0 {
            return PipeIo::Hangup;
        }
        if data.is_empty() {
            return PipeIo::Done(0);
        }
        if data.len() <= PIPE_CAPACITY {
            if self.space() < data.len() {
                return PipeIo::WouldBlock;
            }
            self.buf.extend(data);
            PipeIo::Done(data.len())
        } else {
            let n = self.space().min(data.len());
            if n == 0 {
                return PipeIo::WouldBlock;
            }
            self.buf.extend(&data[..n]);
            PipeIo::Done(n)
        }
    }
}

/// The table of live pipe buffers.
///
/// Entries are reference-counted by endpoint: the kernel registers reader
/// and writer endpoints as descriptors are created, duplicated and closed,
/// and the buffer is reclaimed when both counts reach zero.
#[derive(Debug, Clone, Default)]
pub struct PipeTable {
    pipes: std::collections::HashMap<u64, Pipe>,
    next: u64,
}

impl PipeTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// Allocates a fresh pipe with zero endpoints.
    pub fn create(&mut self) -> PipeId {
        let id = self.next;
        self.next += 1;
        self.pipes.insert(id, Pipe::new());
        PipeId(id)
    }

    /// Number of live pipes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    /// True when no pipes are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// Borrows a pipe.
    #[must_use]
    pub fn get(&self, id: PipeId) -> Option<&Pipe> {
        self.pipes.get(&id.0)
    }

    /// Mutably borrows a pipe.
    pub fn get_mut(&mut self, id: PipeId) -> Option<&mut Pipe> {
        self.pipes.get_mut(&id.0)
    }

    /// Registers a new read endpoint.
    pub fn add_reader(&mut self, id: PipeId) {
        if let Some(p) = self.pipes.get_mut(&id.0) {
            p.readers += 1;
        }
    }

    /// Registers a new write endpoint.
    pub fn add_writer(&mut self, id: PipeId) {
        if let Some(p) = self.pipes.get_mut(&id.0) {
            p.writers += 1;
        }
    }

    /// Drops a read endpoint, reclaiming the buffer if it was the last
    /// endpoint of either kind.
    pub fn drop_reader(&mut self, id: PipeId) {
        if let Some(p) = self.pipes.get_mut(&id.0) {
            p.readers = p.readers.saturating_sub(1);
            if p.readers == 0 && p.writers == 0 {
                self.pipes.remove(&id.0);
            }
        }
    }

    /// Drops a write endpoint, reclaiming the buffer if it was the last.
    pub fn drop_writer(&mut self, id: PipeId) {
        if let Some(p) = self.pipes.get_mut(&id.0) {
            p.writers = p.writers.saturating_sub(1);
            if p.readers == 0 && p.writers == 0 {
                self.pipes.remove(&id.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_endpoints() -> (PipeTable, PipeId) {
        let mut t = PipeTable::new();
        let id = t.create();
        t.add_reader(id);
        t.add_writer(id);
        (t, id)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (mut t, id) = table_with_endpoints();
        let p = t.get_mut(id).unwrap();
        assert_eq!(p.write(b"hello"), PipeIo::Done(5));
        let mut out = Vec::new();
        assert_eq!(p.read(&mut out, 16), PipeIo::Done(5));
        assert_eq!(out, b"hello");
    }

    #[test]
    fn empty_pipe_with_writer_blocks_reader() {
        let (mut t, id) = table_with_endpoints();
        let p = t.get_mut(id).unwrap();
        let mut out = Vec::new();
        assert_eq!(p.read(&mut out, 1), PipeIo::WouldBlock);
    }

    #[test]
    fn eof_when_writers_gone() {
        let (mut t, id) = table_with_endpoints();
        let _ = t.get_mut(id).unwrap().write(b"x");
        t.drop_writer(id);
        let p = t.get_mut(id).unwrap();
        let mut out = Vec::new();
        assert_eq!(p.read(&mut out, 4), PipeIo::Done(1));
        assert_eq!(p.read(&mut out, 4), PipeIo::Hangup);
    }

    #[test]
    fn write_to_readerless_pipe_hangs_up() {
        let (mut t, id) = table_with_endpoints();
        t.drop_reader(id);
        assert_eq!(t.get_mut(id).unwrap().write(b"x"), PipeIo::Hangup);
    }

    #[test]
    fn small_writes_are_atomic() {
        let (mut t, id) = table_with_endpoints();
        let p = t.get_mut(id).unwrap();
        let fill = vec![0u8; PIPE_CAPACITY - 10];
        assert_eq!(p.write(&fill), PipeIo::Done(PIPE_CAPACITY - 10));
        // A 20-byte write does not fit: nothing is transferred.
        assert_eq!(p.write(&[1u8; 20]), PipeIo::WouldBlock);
        assert_eq!(p.len(), PIPE_CAPACITY - 10);
    }

    #[test]
    fn huge_writes_transfer_partially() {
        let (mut t, id) = table_with_endpoints();
        let p = t.get_mut(id).unwrap();
        let big = vec![7u8; PIPE_CAPACITY * 2];
        assert_eq!(p.write(&big), PipeIo::Done(PIPE_CAPACITY));
        assert_eq!(p.write(&big), PipeIo::WouldBlock);
    }

    #[test]
    fn buffer_reclaimed_when_endpoints_gone() {
        let (mut t, id) = table_with_endpoints();
        assert_eq!(t.len(), 1);
        t.drop_reader(id);
        assert_eq!(t.len(), 1, "writer still live");
        t.drop_writer(id);
        assert_eq!(t.len(), 0);
        assert!(t.get(id).is_none());
    }

    #[test]
    fn dup_endpoints_keep_pipe_alive() {
        let (mut t, id) = table_with_endpoints();
        t.add_reader(id); // dup of the read end
        t.drop_reader(id);
        t.drop_writer(id);
        assert_eq!(t.len(), 1, "dup'd reader still holds the pipe");
        t.drop_reader(id);
        assert_eq!(t.len(), 0);
    }
}
