//! The `union` agent (§3.3.3) — union directories.
//!
//! "The union agent implements union directories, which provide the
//! ability to view the contents of lists of actual directories as if their
//! contents were merged into single union directories."
//!
//! Exactly as in the paper, the agent is three small pieces on top of the
//! toolkit:
//!
//! 1. a derived pathname object ([`UnionSet::getpn`]) that maps names
//!    under a union mount onto the member directory that holds them,
//! 2. a derived directory object ([`UnionDirectory`]) whose
//!    `next_direntry()` iterates the members' contents in turn (using the
//!    underlying `next_direntry` machinery) while suppressing duplicates,
//! 3. an `init` routine that accepts mount specifications
//!    (`/virtual=/member1:/member2`) from the agent command line.
//!
//! Everything else — all 18 pathname calls, all 20 descriptor calls — is
//! inherited from the toolkit.

use ia_abi::{DirEntry, Errno, FileMode, OpenFlags, Stat, Sysno};
use ia_kernel::SysOutcome;
use ia_toolkit::{
    obj_ref, DefaultDirectory, DefaultPathname, DirObject, Directory, FsAgent, ObjRef, PathIntent,
    Pathname, PathnameSet, Scratch, SymCtx, Symbolic,
};

/// One union mount: a virtual directory backed by an ordered member list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionMount {
    /// The virtual directory name (absolute).
    pub virtual_dir: Vec<u8>,
    /// Member directories, first member has priority.
    pub members: Vec<Vec<u8>>,
}

impl UnionMount {
    /// Parses `"/virtual=/a:/b:/c"`.
    #[must_use]
    pub fn parse(spec: &[u8]) -> Option<UnionMount> {
        let eq = spec.iter().position(|&c| c == b'=')?;
        let virtual_dir = spec[..eq].to_vec();
        let members: Vec<Vec<u8>> = spec[eq + 1..]
            .split(|&c| c == b':')
            .filter(|m| !m.is_empty())
            .map(<[u8]>::to_vec)
            .collect();
        if virtual_dir.is_empty() || members.is_empty() {
            return None;
        }
        Some(UnionMount {
            virtual_dir,
            members,
        })
    }

    /// If `path` lies under this mount, the suffix below the mount point
    /// (empty for the mount point itself).
    #[must_use]
    pub fn suffix_of<'p>(&self, path: &'p [u8]) -> Option<&'p [u8]> {
        let rest = path.strip_prefix(self.virtual_dir.as_slice())?;
        match rest.first() {
            None => Some(rest),
            Some(b'/') => Some(&rest[1..]),
            Some(_) => None,
        }
    }
}

/// The union pathname-set: holds the mount table.
#[derive(Debug, Clone, Default)]
pub struct UnionSet {
    /// Mount table, longest virtual prefix first.
    pub mounts: Vec<UnionMount>,
}

impl UnionSet {
    fn add_mount(&mut self, m: UnionMount) {
        self.mounts.push(m);
        self.mounts
            .sort_by_key(|m| std::cmp::Reverse(m.virtual_dir.len()));
    }

    /// True if `path` (staged at a scratch address) names an existing
    /// object; also reports whether it is a directory. Each member is
    /// resolved *and* permission-checked, as the paper's union pathname
    /// lookup does when deciding which member serves a reference.
    fn probe(ctx: &mut SymCtx<'_, '_>, scratch: &Scratch, path: &[u8]) -> Option<(bool, Stat)> {
        let addr = scratch.write_cstr(ctx, path).ok()?;
        let stbuf = scratch
            .reserve(ctx, <Stat as ia_abi::wire::Wire>::WIRE_SIZE)
            .ok()?;
        match ctx.down_args(Sysno::Lstat, [addr, stbuf, 0, 0, 0, 0]) {
            SysOutcome::Done(Ok(_)) => {
                let st: Stat = ctx.read_struct(stbuf).ok()?;
                let is_dir = st.mode & FileMode::S_IFMT == FileMode::S_IFDIR;
                // Readability decides whether this member may serve.
                let readable = matches!(
                    ctx.down_args(Sysno::Access, [addr, 4, 0, 0, 0, 0]),
                    SysOutcome::Done(Ok(_))
                );
                if !readable {
                    return None;
                }
                Some((is_dir, st))
            }
            _ => None,
        }
    }
}

impl PathnameSet for UnionSet {
    fn set_name(&self) -> &'static str {
        "union"
    }

    fn init(&mut self, _ctx: &mut SymCtx<'_, '_>, args: &[Vec<u8>]) {
        for a in args {
            if let Some(m) = UnionMount::parse(a) {
                self.add_mount(m);
            }
        }
    }

    fn getpn(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: &[u8],
        intent: PathIntent,
        scratch: &Scratch,
    ) -> Box<dyn Pathname> {
        let Some(mount) = self
            .mounts
            .iter()
            .find(|m| m.suffix_of(path).is_some())
            .cloned()
        else {
            return Box::new(DefaultPathname::new(path, scratch.clone()));
        };
        let suffix = mount.suffix_of(path).expect("matched above").to_vec();

        // Candidate paths, in member priority order.
        let candidates: Vec<Vec<u8>> = mount
            .members
            .iter()
            .map(|m| {
                let mut p = m.clone();
                if !suffix.is_empty() {
                    p.push(b'/');
                    p.extend_from_slice(&suffix);
                }
                p
            })
            .collect();

        // Which members actually hold the object, and is it a directory?
        let mut existing: Vec<(Vec<u8>, bool)> = Vec::new();
        for c in &candidates {
            if let Some((is_dir, _)) = Self::probe(ctx, scratch, c) {
                existing.push((c.clone(), is_dir));
            }
        }

        let all_dirs = !existing.is_empty() && existing.iter().all(|(_, d)| *d);
        if all_dirs && !existing.is_empty() && (suffix.is_empty() || existing.len() > 1) {
            // The union mount point, or a subdirectory present in several
            // members: opening it must merge.
            let dirs: Vec<Vec<u8>> = existing.iter().map(|(p, _)| p.clone()).collect();
            return Box::new(UnionDirPathname {
                primary: dirs[0].clone(),
                members: dirs,
                scratch: scratch.clone(),
            });
        }

        let chosen = match intent {
            PathIntent::Create => existing
                .first()
                .map_or_else(|| candidates[0].clone(), |(p, _)| p.clone()),
            PathIntent::Lookup | PathIntent::Remove => existing
                .first()
                .map_or_else(|| candidates[0].clone(), |(p, _)| p.clone()),
        };
        Box::new(DefaultPathname::new(chosen, scratch.clone()))
    }
}

/// Pathname object for a union *directory*: opens every member and merges.
struct UnionDirPathname {
    primary: Vec<u8>,
    members: Vec<Vec<u8>>,
    scratch: Scratch,
}

impl Pathname for UnionDirPathname {
    fn path(&self) -> &[u8] {
        &self.primary
    }

    fn scratch(&self) -> &Scratch {
        &self.scratch
    }

    fn clone_pathname(&self) -> Box<dyn Pathname> {
        Box::new(UnionDirPathname {
            primary: self.primary.clone(),
            members: self.members.clone(),
            scratch: self.scratch.deep_clone(),
        })
    }

    fn open(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        flags: u64,
        _mode: u64,
    ) -> (SysOutcome, Option<ObjRef>) {
        if OpenFlags::new(flags as u32).writable() {
            return (SysOutcome::Done(Err(Errno::EISDIR)), None);
        }
        // Open every member directory; the first fd is the client's.
        let mut fds = Vec::new();
        for m in &self.members {
            let addr = match self.scratch.write_cstr(ctx, m) {
                Ok(a) => a,
                Err(e) => return (SysOutcome::Done(Err(e)), None),
            };
            match ctx.down_args(Sysno::Open, [addr, 0, 0, 0, 0, 0]) {
                SysOutcome::Done(Ok([fd, _])) => fds.push(fd),
                // A member may vanish between probe and open: skip it.
                SysOutcome::Done(Err(_)) => {}
                other => return (other, None),
            }
        }
        if fds.is_empty() {
            return (SysOutcome::Done(Err(Errno::ENOENT)), None);
        }
        let primary = fds[0];
        let dir = UnionDirectory::new(&fds, self.scratch.clone());
        let obj = obj_ref(UnionDirObject {
            inner: DirObject::new(Box::new(dir)),
            member_fds: fds,
        });
        (SysOutcome::Done(Ok([primary, 0])), Some(obj))
    }
}

/// Logical merged directory: iterates each member's entries in priority
/// order, suppressing duplicate names, via the toolkit's `next_direntry`
/// machinery.
pub struct UnionDirectory {
    members: Vec<DefaultDirectory>,
    current: usize,
    seen: std::collections::HashSet<Vec<u8>>,
}

impl UnionDirectory {
    /// Builds the merged view over already-open member directory fds.
    #[must_use]
    pub fn new(fds: &[u64], scratch: Scratch) -> UnionDirectory {
        UnionDirectory {
            members: fds
                .iter()
                .map(|&fd| DefaultDirectory::new(fd, scratch.clone()))
                .collect(),
            current: 0,
            seen: std::collections::HashSet::new(),
        }
    }
}

impl Directory for UnionDirectory {
    fn dir_name(&self) -> &'static str {
        "union-directory"
    }

    fn next_direntry(&mut self, ctx: &mut SymCtx<'_, '_>) -> Result<Option<DirEntry>, Errno> {
        // "And yes, that iteration itself is accomplished via the
        // underlying next_direntry implementations."
        while self.current < self.members.len() {
            match self.members[self.current].next_direntry(ctx)? {
                Some(e) => {
                    let dup = !self.seen.insert(e.name.clone());
                    let dot = e.name == b"." || e.name == b"..";
                    if dup || (dot && self.current > 0) {
                        continue;
                    }
                    return Ok(Some(e));
                }
                None => self.current += 1,
            }
        }
        Ok(None)
    }

    fn rewind(&mut self, ctx: &mut SymCtx<'_, '_>) -> Result<(), Errno> {
        for m in &mut self.members {
            m.rewind(ctx)?;
        }
        self.current = 0;
        self.seen.clear();
        Ok(())
    }

    fn clone_dir(&self) -> Box<dyn Directory> {
        Box::new(UnionDirectory {
            members: self
                .members
                .iter()
                // A cloned member iterator restarts its buffering; the
                // kernel-side offset is shared via the inherited
                // descriptor anyway.
                .map(|m| DefaultDirectory::new(m.fd, Scratch::new()))
                .collect(),
            current: self.current,
            seen: self.seen.clone(),
        })
    }
}

/// Open object for a union directory: the merged iterator plus cleanup of
/// the hidden member descriptors on final close.
struct UnionDirObject {
    inner: DirObject,
    member_fds: Vec<u64>,
}

impl ia_toolkit::OpenObject for UnionDirObject {
    fn obj_name(&self) -> &'static str {
        "union-dir-object"
    }

    fn getdirentries(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        buf: u64,
        nbytes: u64,
        basep: u64,
    ) -> SysOutcome {
        self.inner.getdirentries(ctx, fd, buf, nbytes, basep)
    }

    fn lseek(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, offset: u64, whence: u64) -> SysOutcome {
        self.inner.lseek(ctx, fd, offset, whence)
    }

    fn close(&mut self, ctx: &mut SymCtx<'_, '_>, _fd: u64) -> SysOutcome {
        let mut out = SysOutcome::Done(Ok([0, 0]));
        for &fd in &self.member_fds {
            let r = ctx.down_args(Sysno::Close, [fd, 0, 0, 0, 0, 0]);
            if matches!(r, SysOutcome::Done(Err(_))) {
                out = r;
            }
        }
        out
    }

    fn clone_object(&self) -> Box<dyn ia_toolkit::OpenObject> {
        Box::new(UnionDirObject {
            inner: self.inner.clone_dirobject(),
            member_fds: self.member_fds.clone(),
        })
    }
}

/// The ready-to-load union agent.
pub struct UnionAgent;

impl UnionAgent {
    /// Builds the agent from mount specs (`/virtual=/a:/b`).
    #[must_use]
    pub fn boxed(specs: &[&[u8]]) -> Box<Symbolic<FsAgent<UnionSet>>> {
        let mut set = UnionSet::default();
        for s in specs {
            if let Some(m) = UnionMount::parse(s) {
                set.add_mount(m);
            }
        }
        Box::new(Symbolic::new(FsAgent::new("union", set)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{Kernel, KernelBuilder, RunOutcome};

    /// Builds the two-member fixture from the paper's motivation: distinct
    /// source and object directories appearing as one.
    fn fixture() -> Kernel {
        let mut k = KernelBuilder::new().build();
        k.mkdir_p(b"/src").unwrap();
        k.mkdir_p(b"/obj").unwrap();
        k.write_file(b"/src/main.c", b"int main(){}").unwrap();
        k.write_file(b"/src/util.c", b"void util(){}").unwrap();
        k.write_file(b"/obj/main.o", b"OBJ-MAIN").unwrap();
        // Present in both members: the first member must win.
        k.write_file(b"/src/Makefile", b"from-src").unwrap();
        k.write_file(b"/obj/Makefile", b"from-obj").unwrap();
        k
    }

    fn with_union(k: &mut Kernel, src: &str) -> (RunOutcome, InterposedRouter) {
        let img = ia_vm::assemble(src).unwrap();
        let pid = k.spawn_image(&img, &[b"c"], b"c");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, UnionAgent::boxed(&[b"/u=/src:/obj"]));
        let out = k.run_with(&mut router);
        (out, router)
    }

    #[test]
    fn mount_spec_parsing() {
        let m = UnionMount::parse(b"/u=/a:/b:/c").unwrap();
        assert_eq!(m.virtual_dir, b"/u");
        assert_eq!(m.members.len(), 3);
        assert!(UnionMount::parse(b"nonsense").is_none());
        assert!(UnionMount::parse(b"/u=").is_none());
        assert_eq!(m.suffix_of(b"/u").unwrap(), b"");
        assert_eq!(m.suffix_of(b"/u/x/y").unwrap(), b"x/y");
        assert!(m.suffix_of(b"/usr").is_none());
        assert!(m.suffix_of(b"/v/x").is_none());
    }

    #[test]
    fn files_resolve_through_members() {
        let mut k = fixture();
        let (out, _) = with_union(
            &mut k,
            r#"
            .data
            p1: .asciz "/u/main.c"
            p2: .asciz "/u/main.o"
            buf: .space 32
            .text
            main:
                la r0, p1
                li r1, 0
                li r2, 0
                sys open
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 32
                sys read
                mov r2, r0
                li r0, 1
                la r1, buf
                sys write
                ; and a file that only exists in the second member
                la r0, p2
                li r1, 0
                li r2, 0
                sys open
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 32
                sys read
                mov r2, r0
                li r0, 1
                la r1, buf
                sys write
                li r0, 0
                sys exit
            "#,
        );
        assert_eq!(out, RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "int main(){}OBJ-MAIN");
    }

    #[test]
    fn first_member_shadows_duplicates() {
        let mut k = fixture();
        let (out, _) = with_union(
            &mut k,
            r#"
            .data
            p: .asciz "/u/Makefile"
            buf: .space 32
            .text
            main:
                la r0, p
                li r1, 0
                li r2, 0
                sys open
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 32
                sys read
                mov r2, r0
                li r0, 1
                la r1, buf
                sys write
                li r0, 0
                sys exit
            "#,
        );
        assert_eq!(out, RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "from-src");
    }

    #[test]
    fn getdirentries_merges_and_dedups() {
        // List /u and print every entry name separated by newlines.
        let mut k = fixture();
        let (out, _) = with_union(
            &mut k,
            r#"
            .data
            p:    .asciz "/u"
            buf:  .space 2048
            .text
            main:
                la r0, p
                li r1, 0
                li r2, 0
                sys open
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 2048
                li r3, 0
                sys getdirentries
                ; r0 = bytes; walk records printing names
                la  r10, buf        ; cursor
                add r11, r10, r0    ; end
            walk:
                sltu r6, r10, r11
                jz  r6, done
                ld  r4, 8(r10)      ; reclen(u16)+namlen(u16) packed
                li  r6, 0xffff
                and r5, r4, r6      ; reclen
                li  r6, 16
                shr r4, r4, r6
                li  r6, 0xffff
                and r4, r4, r6      ; namlen
                ; write(1, r10+12, namlen)
                li  r0, 1
                addi r1, r10, 12
                mov r2, r4
                sys write
                ; write newline
                la  r1, nl
                li  r2, 1
                li  r0, 1
                sys write
                add r10, r10, r5
                jmp walk
            done:
                li r0, 0
                sys exit
            .data
            nl: .asciz "\n"
            "#,
        );
        assert_eq!(out, RunOutcome::AllExited);
        let text = k.console.output_string();
        let names: Vec<&str> = text.lines().collect();
        assert!(names.contains(&"main.c"), "{names:?}");
        assert!(names.contains(&"util.c"), "{names:?}");
        assert!(names.contains(&"main.o"), "{names:?}");
        assert_eq!(
            names.iter().filter(|n| **n == "Makefile").count(),
            1,
            "duplicate suppressed: {names:?}"
        );
        assert_eq!(names.iter().filter(|n| **n == ".").count(), 1);
        assert_eq!(names.iter().filter(|n| **n == "..").count(), 1);
    }

    #[test]
    fn stat_and_unlink_hit_owning_member() {
        let mut k = fixture();
        let (out, _) = with_union(
            &mut k,
            r#"
            .data
            p: .asciz "/u/main.o"
            st: .space 96
            .text
            main:
                la r0, p
                la r1, st
                sys stat
                mov r10, r0
                la r0, p
                sys unlink
                add r0, r0, r10
                sys exit
            "#,
        );
        assert_eq!(out, RunOutcome::AllExited);
        assert_eq!(
            k.exit_status(1),
            Some(ia_abi::signal::wait_status_exited(0)),
            "stat and unlink both succeeded"
        );
        assert!(k.read_file(b"/obj/main.o").is_err(), "removed from /obj");
        assert!(k.read_file(b"/src/main.c").is_ok(), "others untouched");
    }

    #[test]
    fn creations_go_to_first_member() {
        let mut k = fixture();
        let (_, _) = with_union(
            &mut k,
            r#"
            .data
            p: .asciz "/u/new.txt"
            t: .asciz "hi"
            .text
            main:
                la r0, p
                li r1, 0x601
                li r2, 420
                sys open
                mov r3, r0
                mov r0, r3
                la r1, t
                li r2, 2
                sys write
                mov r0, r3
                sys close
                li r0, 0
                sys exit
            "#,
        );
        assert_eq!(k.read_file(b"/src/new.txt").unwrap(), b"hi");
        assert!(k.read_file(b"/obj/new.txt").is_err());
    }

    #[test]
    fn paths_outside_mounts_untouched() {
        let mut k = fixture();
        let (out, _) = with_union(
            &mut k,
            r#"
            .data
            p: .asciz "/src/main.c"
            st: .space 96
            .text
            main:
                la r0, p
                la r1, st
                sys stat
                sys exit
            "#,
        );
        assert_eq!(out, RunOutcome::AllExited);
        assert_eq!(
            k.exit_status(1),
            Some(ia_abi::signal::wait_status_exited(0))
        );
    }
}
