//! The `.conf` repro format: a failing (usually shrunken) program, plus
//! the fault case that exposed it, as a line-oriented text file that
//! `conform --replay` re-executes bit-for-bit.
//!
//! ```text
//! # any number of comment lines
//! seed 42
//! fault read 5 2          # optional: syscall errno-code every
//! tree write 5 2          # optional: syscall errno-code depth
//! op create_write 1 2
//! op fork_wait 0 7
//! ```

use ia_abi::Errno;

use crate::fault::FaultCase;
use crate::gen::{ConfOp, Program};
use crate::tree::TreeCase;

/// A replayable reproducer: the program and, when the failure came from
/// fault injection (linear or tree mode), the case that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The (minimized) program.
    pub program: Program,
    /// The linear fault case to apply on replay, if any.
    pub fault: Option<FaultCase>,
    /// The tree-exploration case to replay, if any.
    pub tree: Option<TreeCase>,
}

fn op_fields(op: &ConfOp) -> (&'static str, u32, u32) {
    use ConfOp::*;
    match *op {
        Echo { payload } => ("echo", payload.into(), 0),
        CreateWrite { file, payload } => ("create_write", file.into(), payload.into()),
        AppendWrite { file, payload } => ("append_write", file.into(), payload.into()),
        ReadEcho { file } => ("read_echo", file.into(), 0),
        StatFile { file } => ("stat_file", file.into(), 0),
        QueryIds => ("query_ids", 0, 0),
        TimeOfDay => ("time_of_day", 0, 0),
        MkdirRmdir => ("mkdir_rmdir", 0, 0),
        LinkUnlink { file } => ("link_unlink", file.into(), 0),
        SymlinkEcho { file } => ("symlink_echo", file.into(), 0),
        RenameShuffle { file } => ("rename_shuffle", file.into(), 0),
        ChmodCycle { file } => ("chmod_cycle", file.into(), 0),
        ChdirStat { file } => ("chdir_stat", file.into(), 0),
        DupShuffle { file } => ("dup_shuffle", file.into(), 0),
        TruncateShort { file, len } => ("truncate_short", file.into(), len.into()),
        PipeEcho { payload } => ("pipe_echo", payload.into(), 0),
        SelectPipe { payload } => ("select_pipe", payload.into(), 0),
        SocketEcho { payload } => ("socket_echo", payload.into(), 0),
        ForkWait { payload, status } => ("fork_wait", payload.into(), status.into()),
        ForkExecWait => ("fork_exec_wait", 0, 0),
        AlarmHandler { delay_us } => ("alarm_handler", delay_us.into(), 0),
        SelectSleep { timeout_us } => ("select_sleep", timeout_us.into(), 0),
        KillHandler => ("kill_handler", 0, 0),
        Burn { iters } => ("burn", iters.into(), 0),
    }
}

#[allow(clippy::cast_possible_truncation)]
fn op_parse(name: &str, a: u32, bfield: u32) -> Option<ConfOp> {
    use ConfOp::*;
    let b8 = bfield as u8;
    let a8 = a as u8;
    let a16 = a as u16;
    Some(match name {
        "echo" => Echo { payload: a8 },
        "create_write" => CreateWrite {
            file: a8,
            payload: b8,
        },
        "append_write" => AppendWrite {
            file: a8,
            payload: b8,
        },
        "read_echo" => ReadEcho { file: a8 },
        "stat_file" => StatFile { file: a8 },
        "query_ids" => QueryIds,
        "time_of_day" => TimeOfDay,
        "mkdir_rmdir" => MkdirRmdir,
        "link_unlink" => LinkUnlink { file: a8 },
        "symlink_echo" => SymlinkEcho { file: a8 },
        "rename_shuffle" => RenameShuffle { file: a8 },
        "chmod_cycle" => ChmodCycle { file: a8 },
        "chdir_stat" => ChdirStat { file: a8 },
        "dup_shuffle" => DupShuffle { file: a8 },
        "truncate_short" => TruncateShort { file: a8, len: b8 },
        "pipe_echo" => PipeEcho { payload: a8 },
        "select_pipe" => SelectPipe { payload: a8 },
        "socket_echo" => SocketEcho { payload: a8 },
        "fork_wait" => ForkWait {
            payload: a8,
            status: b8,
        },
        "fork_exec_wait" => ForkExecWait,
        "alarm_handler" => AlarmHandler { delay_us: a16 },
        "select_sleep" => SelectSleep { timeout_us: a16 },
        "kill_handler" => KillHandler,
        "burn" => Burn { iters: a16 },
        _ => return None,
    })
}

impl Repro {
    /// Renders the repro as `.conf` text. `comments` become leading `#`
    /// lines (e.g. the divergence description).
    #[must_use]
    pub fn to_conf(&self, comments: &[&str]) -> String {
        let mut out = String::from("# ia-conform repro\n");
        for c in comments {
            for line in c.lines() {
                out.push_str(&format!("# {line}\n"));
            }
        }
        out.push_str(&format!("seed {}\n", self.program.seed));
        if let Some(f) = self.fault {
            out.push_str(&format!(
                "fault {} {} {}\n",
                f.target.name(),
                f.errno.code(),
                f.every
            ));
        }
        if let Some(t) = self.tree {
            out.push_str(&format!(
                "tree {} {} {}\n",
                t.target.name(),
                t.errno.code(),
                t.depth
            ));
        }
        for op in &self.program.ops {
            let (name, a, b) = op_fields(op);
            out.push_str(&format!("op {name} {a} {b}\n"));
        }
        out
    }

    /// Parses `.conf` text.
    pub fn from_conf(text: &str) -> Result<Repro, String> {
        let mut seed: Option<u64> = None;
        let mut fault: Option<FaultCase> = None;
        let mut tree: Option<TreeCase> = None;
        let mut ops = Vec::new();
        // `fault` and `tree` share the `<syscall> <errno-code> <n>` shape.
        fn case_fields<'t>(
            toks: &mut impl Iterator<Item = &'t str>,
            err: &impl Fn(&str) -> String,
        ) -> Result<(ia_abi::Sysno, Errno, u64), String> {
            let name = toks.next().ok_or_else(|| err("missing syscall"))?;
            let target = ia_abi::sysno::ALL_SYSCALLS
                .iter()
                .copied()
                .find(|s| s.name() == name)
                .ok_or_else(|| err("unknown syscall"))?;
            let code: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad errno code"))?;
            let errno = Errno::from_code(code).ok_or_else(|| err("unknown errno"))?;
            let n: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad count"))?;
            Ok((target, errno, n))
        }
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}: {line:?}", lineno + 1);
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some("seed") => {
                    let v = toks.next().ok_or_else(|| err("missing value"))?;
                    seed = Some(v.parse().map_err(|_| err("bad seed"))?);
                }
                Some("fault") => {
                    let (target, errno, every) = case_fields(&mut toks, &err)?;
                    fault = Some(FaultCase {
                        target,
                        errno,
                        every: every.max(2),
                    });
                }
                Some("tree") => {
                    let (target, errno, depth) = case_fields(&mut toks, &err)?;
                    tree = Some(TreeCase {
                        target,
                        errno,
                        depth: usize::try_from(depth).map_err(|_| err("bad depth"))?,
                    });
                }
                Some("op") => {
                    let name = toks.next().ok_or_else(|| err("missing op name"))?;
                    let a: u32 = toks.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                    let b: u32 = toks.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                    ops.push(op_parse(name, a, b).ok_or_else(|| err("unknown op"))?);
                }
                _ => return Err(err("unknown directive")),
            }
        }
        Ok(Repro {
            program: Program {
                seed: seed.ok_or("missing `seed` line")?,
                ops,
            },
            fault,
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{sample, OpSet};
    use ia_abi::Sysno;

    #[test]
    fn conf_round_trips_every_op() {
        let program = sample(123, 200, OpSet::ALL);
        let repro = Repro {
            program,
            fault: Some(FaultCase {
                target: Sysno::Read,
                errno: Errno::EIO,
                every: 2,
            }),
            tree: None,
        };
        let text = repro.to_conf(&["console: bare=\"x\" vs wrapped=\"\""]);
        let back = Repro::from_conf(&text).unwrap();
        assert_eq!(back, repro);
    }

    #[test]
    fn conf_with_tree_case_round_trips() {
        let repro = Repro {
            program: sample(9, 12, OpSet::FS_CLIENT),
            fault: None,
            tree: Some(TreeCase {
                target: Sysno::Write,
                errno: Errno::EIO,
                depth: 2,
            }),
        };
        let text = repro.to_conf(&[]);
        assert!(text.contains("tree write"));
        assert_eq!(Repro::from_conf(&text).unwrap(), repro);
    }

    #[test]
    fn conf_without_fault_round_trips() {
        let repro = Repro {
            program: sample(5, 10, OpSet::FS_CLIENT),
            fault: None,
            tree: None,
        };
        assert_eq!(Repro::from_conf(&repro.to_conf(&[])).unwrap(), repro);
    }

    #[test]
    fn bad_lines_are_rejected_with_location() {
        assert!(Repro::from_conf("bogus 1").unwrap_err().contains("line 1"));
        assert!(Repro::from_conf("seed 1\nop no_such_op 0 0")
            .unwrap_err()
            .contains("line 2"));
    }
}
