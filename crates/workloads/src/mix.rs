//! Seeded random syscall-mix programs, for property testing and extra
//! benchmarks.
//!
//! Given a seed, [`random_program`] generates a deterministic program
//! performing a random sequence of filesystem and process operations. The
//! key property these support: *transparency* — a program must produce
//! identical observable behaviour with and without a pass-through agent.

use ia_abi::{OpenFlags, Sysno};
use ia_kernel::Kernel;
use ia_prng::Prng;
use ia_vm::{Image, ProgramBuilder};

/// Operations the generator may emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    WriteConsole,
    CreateWriteClose,
    OpenReadClose,
    StatFile,
    Getpid,
    Gettimeofday,
    MkdirRmdir,
    LinkUnlink,
    Burn,
}

/// Generates a deterministic random program of `ops` operations.
///
/// The program touches only files under `/tmp/mix/`, writes progress
/// markers to the console, and exits 0.
#[must_use]
pub fn random_program(seed: u64, ops: usize) -> Image {
    let mut rng = Prng::new(seed);
    let mut b = ProgramBuilder::new();
    let buf = b.data_space(256);
    let statbuf = b.data_space(128);

    // A pool of file paths the program works with.
    let paths: Vec<u64> = (0..4)
        .map(|i| b.data_asciz(format!("/tmp/mix/f{i}.dat").as_bytes()))
        .collect();
    let link_path = b.data_asciz(b"/tmp/mix/hardlink");
    let dir_path = b.data_asciz(b"/tmp/mix/subdir");
    let payloads: Vec<(u64, usize)> = (0..4)
        .map(|i| {
            let s = format!("payload-{i}-{seed}");
            (b.data_asciz(s.as_bytes()), s.len())
        })
        .collect();

    b.entry_here();
    for _ in 0..ops {
        let op = match rng.below(9) {
            0 => Op::WriteConsole,
            1 => Op::CreateWriteClose,
            2 => Op::OpenReadClose,
            3 => Op::StatFile,
            4 => Op::Getpid,
            5 => Op::Gettimeofday,
            6 => Op::MkdirRmdir,
            7 => Op::LinkUnlink,
            _ => Op::Burn,
        };
        let f = rng.range_usize(0, paths.len());
        let (payload, plen) = *rng.pick(&payloads);
        match op {
            Op::WriteConsole => {
                b.li(0, 1);
                b.la(1, payload);
                b.li(2, plen as u64);
                b.sys(Sysno::Write);
            }
            Op::CreateWriteClose => {
                b.la(0, paths[f]);
                b.li(
                    1,
                    u64::from(OpenFlags::O_WRONLY | OpenFlags::O_CREAT | OpenFlags::O_TRUNC),
                );
                b.li(2, 0o644);
                b.sys(Sysno::Open);
                b.mov(12, 0);
                b.mov(0, 12);
                b.la(1, payload);
                b.li(2, plen as u64);
                b.sys(Sysno::Write);
                b.mov(0, 12);
                b.sys(Sysno::Close);
            }
            Op::OpenReadClose => {
                b.la(0, paths[f]);
                b.li(1, 0);
                b.li(2, 0);
                b.sys(Sysno::Open);
                b.mov(12, 0);
                b.mov(0, 12);
                b.la(1, buf);
                b.li(2, 64);
                b.sys(Sysno::Read);
                // Echo what we read so transparency checks cover data.
                b.mov(2, 0);
                b.li(0, 1);
                b.la(1, buf);
                b.sys(Sysno::Write);
                b.mov(0, 12);
                b.sys(Sysno::Close);
            }
            Op::StatFile => {
                b.la(0, paths[f]);
                b.la(1, statbuf);
                b.sys(Sysno::Stat);
            }
            Op::Getpid => b.sys(Sysno::Getpid),
            Op::Gettimeofday => {
                b.la(0, statbuf);
                b.li(1, 0);
                b.sys(Sysno::Gettimeofday);
            }
            Op::MkdirRmdir => {
                b.la(0, dir_path);
                b.li(1, 0o755);
                b.sys(Sysno::Mkdir);
                b.la(0, dir_path);
                b.sys(Sysno::Rmdir);
            }
            Op::LinkUnlink => {
                b.la(0, paths[f]);
                b.la(1, link_path);
                b.sys(Sysno::Link);
                b.la(0, link_path);
                b.sys(Sysno::Unlink);
            }
            Op::Burn => b.burn(rng.range_u64(5, 50)),
        }
    }
    b.li(0, 0);
    b.sys(Sysno::Exit);
    b.build()
}

/// Prepares the filesystem for mix programs.
pub fn setup(k: &mut Kernel) {
    k.mkdir_p(b"/tmp/mix").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_kernel::{KernelBuilder, RunOutcome};

    #[test]
    fn same_seed_same_program() {
        let a = random_program(42, 30);
        let b = random_program(42, 30);
        assert_eq!(a, b);
        let c = random_program(43, 30);
        assert_ne!(a, c);
    }

    #[test]
    fn random_programs_run_to_completion() {
        for seed in 0..10 {
            let mut k = KernelBuilder::new().build();
            setup(&mut k);
            k.spawn_image(&random_program(seed, 40), &[b"mix"], b"mix");
            assert_eq!(k.run_to_completion(), RunOutcome::AllExited, "seed {seed}");
        }
    }
}
