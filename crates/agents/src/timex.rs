//! The `timex` agent — "changes the apparent time of day" (§3.3.1).
//!
//! The paper's smallest agent: 35 statements, two routines — a derived
//! `gettimeofday()` and an `init()` parsing the desired offset from the
//! agent's command line. This version is the same shape: one overridden
//! trait method plus `init`, inheriting every other behaviour.

use ia_abi::{Sysno, Timeval};
use ia_interpose::InterestSet;
use ia_kernel::SysOutcome;
use ia_toolkit::{minimum_interests, SymCtx, Symbolic, SymbolicSyscall};

/// Shifts the time the client observes by a fixed number of seconds.
#[derive(Debug, Clone, Default)]
pub struct Timex {
    /// "Difference between real and funky time", per the paper's comment.
    pub offset: i64,
}

impl Timex {
    /// A timex shifting by `offset` seconds.
    #[must_use]
    pub fn new(offset: i64) -> Timex {
        Timex { offset }
    }

    /// Boxed, adapter-wrapped form ready for the agent loader.
    #[must_use]
    pub fn boxed(offset: i64) -> Box<Symbolic<Timex>> {
        Box::new(Symbolic::new(Timex::new(offset)))
    }
}

impl SymbolicSyscall for Timex {
    fn name(&self) -> &'static str {
        "timex"
    }

    /// "timex ... interposes on only the bare minimum plus gettimeofday".
    fn interests(&self) -> InterestSet {
        let mut s = minimum_interests();
        s.add_sys(Sysno::Gettimeofday);
        s
    }

    /// Accepts the desired effective offset, e.g. `+3600` or `-86400`.
    fn init(&mut self, _ctx: &mut SymCtx<'_, '_>, args: &[Vec<u8>]) {
        if let Some(first) = args.first() {
            if let Ok(s) = std::str::from_utf8(first) {
                if let Ok(v) = s.trim_start_matches('+').parse::<i64>() {
                    self.offset = v;
                }
            }
        }
    }

    fn sys_gettimeofday(&mut self, ctx: &mut SymCtx<'_, '_>, tp: u64, tzp: u64) -> SysOutcome {
        let ret = ctx.down_args(Sysno::Gettimeofday, [tp, tzp, 0, 0, 0, 0]);
        if let SysOutcome::Done(Ok(_)) = ret {
            if tp != 0 {
                if let Ok(mut tv) = ctx.read_struct::<Timeval>(tp) {
                    tv.sec += self.offset;
                    let _ = ctx.write_struct(tp, &tv);
                }
            }
        }
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    const PROG: &str = r#"
        .data
        tv: .space 16
        .text
        main:
            la  r0, tv
            li  r1, 0
            sys gettimeofday
            ; exit(sec & 0xff) so the test can see the shifted time
            la  r1, tv
            ld  r0, (r1)
            li  r6, 255
            and r0, r0, r6
            sys exit
    "#;

    fn observed_sec(offset: Option<i64>) -> (u8, i64) {
        let mut k = KernelBuilder::new().build();
        let img = ia_vm::assemble(PROG).unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        let mut router = InterposedRouter::new();
        if let Some(off) = offset {
            router.push_agent(pid, Timex::boxed(off));
        }
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        let status = k.exit_status(pid).unwrap();
        ((status >> 8) as u8, k.clock.now().sec)
    }

    #[test]
    fn shifts_observed_time_by_offset() {
        let (plain, real) = observed_sec(None);
        let (shifted, real2) = observed_sec(Some(100));
        // Virtual clocks in both runs should essentially agree; timex runs
        // charge a few extra syscall-costs, not whole seconds.
        assert_eq!(real, real2);
        assert_eq!(
            shifted,
            ((i64::from(plain) + 100) & 0xff) as u8,
            "client sees time + 100"
        );
    }

    #[test]
    fn init_parses_agent_argument() {
        let mut k = KernelBuilder::new().build();
        let img = ia_vm::assemble(PROG).unwrap();
        let mut router = InterposedRouter::new();
        let pid = ia_interpose::spawn_with_agent(
            &mut k,
            &mut router,
            Timex::boxed(0),
            &[b"+100".to_vec()],
            &img,
            &[b"t"],
            b"t",
        );
        k.run_with(&mut router);
        let status = k.exit_status(pid).unwrap();
        let plain = k.clock.now().sec; // roughly; just check the offset appeared
        let _ = plain;
        assert_ne!(status, 0);
    }

    #[test]
    fn negative_offsets_supported() {
        let (plain, _) = observed_sec(None);
        let (shifted, _) = observed_sec(Some(-5));
        assert_eq!(shifted, ((i64::from(plain) - 5) & 0xff) as u8);
    }
}
