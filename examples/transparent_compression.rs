//! Transparent data compression and encryption (§1.4, Figure 1-3):
//! stacked agents give `/archive` compressed-and-encrypted storage while
//! the client sees ordinary plaintext files.
//!
//! ```text
//! cargo run --example transparent_compression
//! ```

use interposition_agents::agents::zip::rle_decompress;
use interposition_agents::agents::{crypt::apply_keystream, CryptAgent, ZipAgent};
use interposition_agents::interpose::{wrap_process, InterposedRouter};
use interposition_agents::kernel::KernelBuilder;
use interposition_agents::vm::assemble;

const CLIENT: &str = r#"
    .data
    path: .asciz "/archive/report.txt"
    buf:  .space 256
    .text
    main:
        ; write 200 'A's — highly compressible plaintext
        la  r10, buf
        li  r5, 200
        li  r6, 65
    fill:
        jz  r5, writeit
        stb r6, (r10)
        addi r10, r10, 1
        addi r5, r5, -1
        jmp fill
    writeit:
        la r0, path
        li r1, 0x601
        li r2, 420
        sys open
        mov r3, r0
        mov r0, r3
        la r1, buf
        li r2, 200
        sys write
        mov r0, r3
        sys close
        ; read it back and print the first 20 bytes
        la r0, path
        li r1, 0
        li r2, 0
        sys open
        mov r3, r0
        mov r0, r3
        la r1, buf
        li r2, 256
        sys read
        li r2, 20
        li r0, 1
        la r1, buf
        sys write
        li r0, 0
        sys exit
"#;

fn main() {
    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/archive").unwrap();
    let image = assemble(CLIENT).expect("assembles");
    let pid = k.spawn_image(&image, &[b"client"], b"client");

    // Stack: the client sees plaintext; zip compresses; crypt enciphers
    // what zip stores. (Wrapped bottom-up: crypt first, zip on top.)
    let mut router = InterposedRouter::new();
    wrap_process(
        &mut k,
        &mut router,
        pid,
        CryptAgent::boxed(b"/archive", b"k3y"),
        &[],
    );
    wrap_process(&mut k, &mut router, pid, ZipAgent::boxed(b"/archive"), &[]);

    let outcome = k.run_with(&mut router);
    println!("outcome: {outcome:?}");
    println!("client read back:  {:?} ...", k.console.output_string());

    let at_rest = k.read_file(b"/archive/report.txt").unwrap();
    println!("\nplaintext size:    200 bytes");
    println!(
        "stored size:       {} bytes (compressed, then enciphered)",
        at_rest.len()
    );
    println!(
        "stored bytes:      {:02x?} ...",
        &at_rest[..at_rest.len().min(16)]
    );

    // Manually undo the two layers to prove what is on "disk".
    let mut deciphered = at_rest;
    apply_keystream(b"k3y", 0, &mut deciphered);
    let inflated = rle_decompress(&deciphered).expect("valid RLE under the cipher");
    println!(
        "after decipher + inflate: {} bytes, all 'A': {}",
        inflated.len(),
        inflated.iter().all(|&b| b == b'A')
    );
}
