//! Information-flow interposition, end to end: a program launders a
//! labelled secret through registers, a staging buffer, and a fork before
//! pushing it out a socket — and a structurally identical twin does the
//! same dance with public data.
//!
//! Static taint analysis over the two images tells them apart: the
//! exfiltrator's socket write is flagged with the exact source→sink
//! chain, while the benign twin analyzes flow-clean. The derived policy
//! is pay-per-use in the paper's sense — the guard interposes on the
//! dirty image and blocks the leak at the socket, and on the clean image
//! it registers no interests at all, so every call takes the kernel's
//! fast path untouched.
//!
//! ```text
//! cargo run --example exfiltrate
//! ```

use interposition_agents::agents::{FlowGuardAgent, FlowMode, FlowPolicy};
use interposition_agents::analyze::analyze_image;
use interposition_agents::analyze::flow::{analyze_flow, FlowSpec};
use interposition_agents::interpose::{spawn_with_agent, Agent, InterposedRouter};
use interposition_agents::kernel::{KernelBuilder, RunOutcome};
use interposition_agents::workloads::exfil;

fn main() {
    let spec = FlowSpec::new().label("secret", &[b"/secret"]);

    // --- static analysis: same shape, different verdicts -----------------
    for (name, img) in [
        ("exfiltrator", exfil::exfil_image()),
        ("benign twin", exfil::benign_image()),
    ] {
        let fa = analyze_flow(&img, &analyze_image(&img), &spec);
        println!("{name}: clean={}", fa.is_clean());
        for f in fa.findings.iter().filter(|f| f.kind == "flow") {
            println!("  insn {:>3}: {}", f.at.unwrap_or(0), f.message);
        }
    }

    // --- enforce: the guard blocks the leak at the socket ----------------
    let img = exfil::exfil_image();
    let fa = analyze_flow(&img, &analyze_image(&img), &spec);
    let (agent, handle) = FlowGuardAgent::new(FlowPolicy::from_flow(&fa, FlowMode::Enforce));
    let mut k = KernelBuilder::new().build();
    exfil::setup(&mut k);
    let mut router = InterposedRouter::new();
    spawn_with_agent(&mut k, &mut router, agent, &[], &img, &[b"exfil"], b"exfil");
    let outcome = k.run_with(&mut router);
    println!("\nexfiltrator under FlowGuard: {outcome:?}");
    for v in handle.violations() {
        println!(
            "  blocked: pid {} insn {} labels {:#x} -> {}",
            v.pid, v.site, v.labels, v.target
        );
    }
    assert!(!handle.violations().is_empty(), "the leak was not blocked");

    // --- pay-per-use: the clean twin costs nothing per call --------------
    let img = exfil::benign_image();
    let fa = analyze_flow(&img, &analyze_image(&img), &spec);
    let policy = FlowPolicy::from_flow(&fa, FlowMode::Enforce);
    let (agent, handle) = FlowGuardAgent::new(policy);
    println!(
        "\nbenign twin policy interests empty (zero per-call cost): {}",
        agent.interests().is_empty()
    );
    let mut k = KernelBuilder::new().build();
    exfil::setup(&mut k);
    let mut router = InterposedRouter::new();
    spawn_with_agent(&mut k, &mut router, agent, &[], &img, &[b"ok"], b"ok");
    let outcome = k.run_with(&mut router);
    println!(
        "benign twin ran: {outcome:?}, violations: {}",
        handle.violations().len()
    );
    assert_eq!(outcome, RunOutcome::AllExited);
}
