//! The per-seed tenant workload: a small, fully deterministic program
//! whose observable behavior depends only on its seed.
//!
//! Every tenant runs a loop mixing syscall traffic (open/write/getpid)
//! with pure compute, writes a per-seed banner to the console, and exits
//! with a seed-derived status — so the `Observable` (console bytes, exit
//! status, VFS digest, virtual clock, instruction count) differs between
//! seeds but is identical between a solo run and a fleet run of the same
//! seed. That makes these images the currency of the determinism tests,
//! the smoke gate, and the scaling benchmark.

use ia_abi::Sysno;
use ia_agents::{PassThrough, TimeSymbolic};
use ia_interpose::Agent;
use ia_prng::Prng;
use ia_vm::{Image, ProgramBuilder};

/// Builds the deterministic workload image for `seed`.
#[must_use]
pub fn tenant_image(seed: u64) -> Image {
    let mut rng = Prng::new(seed ^ 0xf1ee_7000);
    let iters = rng.range_u64(24, 96);
    let burn = rng.range_u64(64, 512);
    let status = rng.below(64);
    let banner = format!("tenant {seed:016x} iters {iters}\n");

    let mut b = ProgramBuilder::new();
    let msg = b.data_asciz(banner.as_bytes());
    let msg_len = banner.len() as u64;
    let wpath = b.data_asciz(b"/tmp/tenant.out");

    b.entry_here();
    // Private scratch file (COW: the write diverges this tenant's VFS
    // from the shared base).
    b.la(0, wpath);
    b.li(1, 0x601); // O_WRONLY | O_CREAT | O_TRUNC
    b.li(2, 0o644);
    b.sys(Sysno::Open);
    b.mov(12, 0); // fd

    b.li(13, iters);
    let top = b.here();
    let done = b.new_label();
    b.jz(13, done);
    b.mov(0, 12);
    b.la(1, msg);
    b.li(2, msg_len);
    b.sys(Sysno::Write);
    b.sys(Sysno::Getpid);
    b.burn(burn); // seed-sized compute between syscalls
    b.addi(13, 13, -1);
    b.jmp(top);
    b.bind(done);

    // Banner to the console (part of the client-visible Observable).
    b.li(0, 1);
    b.la(1, msg);
    b.li(2, msg_len);
    b.sys(Sysno::Write);
    b.mov(0, 12);
    b.sys(Sysno::Close);
    b.li(0, status);
    b.sys(Sysno::Exit);
    b.build()
}

/// The standard tenant agent chain: a symbolic time agent under a
/// batchable full-coverage observer — representative interposition load
/// (both the chain-walk and the vectored-upcall paths stay exercised).
#[must_use]
pub fn tenant_agents() -> Vec<Box<dyn Agent>> {
    vec![
        TimeSymbolic::boxed(),
        PassThrough::boxed() as Box<dyn Agent>,
    ]
}

/// An agent-free chain, for measuring the interposition-less floor.
#[must_use]
pub fn bare_agents() -> Vec<Box<dyn Agent>> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_seed_deterministic_and_distinct() {
        let a = tenant_image(7);
        let b = tenant_image(7);
        let c = tenant_image(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
