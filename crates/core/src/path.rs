//! Layer 2 (name side) — *pathnames* and the *pathname set*.
//!
//! "The key to both of these interrelated classes is the `getpn()`
//! operation, which looks up a pathname string and resolves it to a
//! reference to a pathname object. The default implementation of all the
//! `pathname_set` system call methods simply resolves their pathname
//! strings to pathname objects using `getpn()` and then invokes the
//! corresponding pathname method on the resulting object."
//!
//! [`PathnameSet::getpn`] is the single point an agent overrides to
//! rearrange the whole name space (the `union` agent), or to observe every
//! name reference (the `dfs_trace` agent). [`Pathname`] carries the
//! per-object operations with defaults that stage the (possibly rewritten)
//! string in scratch memory and call down.

use ia_abi::Sysno;
use ia_kernel::SysOutcome;

use crate::ctx::SymCtx;
use crate::object::ObjRef;
use crate::scratch::Scratch;

/// Why a pathname is being resolved — agents sometimes treat lookups for
/// creation differently from lookups of existing objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathIntent {
    /// The object will be read or examined.
    Lookup,
    /// The call may create the final component (`open(O_CREAT)`, `mkdir`,
    /// `symlink`, rename/link targets, ...).
    Create,
    /// The call removes the final component (`unlink`, `rmdir`, rename
    /// source).
    Remove,
}

/// A resolved pathname object.
///
/// The default behaviour of every method stages [`Pathname::path`] — which
/// an agent may have rewritten — into client scratch memory and performs
/// the operation on the next instance of the interface.
pub trait Pathname {
    /// The (possibly rewritten) pathname string this object stands for.
    fn path(&self) -> &[u8];

    /// The scratch region used to stage rewritten strings.
    fn scratch(&self) -> &Scratch;

    /// Deep clone (for forked children's agent copies).
    fn clone_pathname(&self) -> Box<dyn Pathname>;

    /// Stages the pathname and returns its client-space address.
    fn stage(&self, ctx: &mut SymCtx<'_, '_>) -> Result<u64, ia_abi::Errno> {
        self.scratch().write_cstr(ctx, self.path())
    }

    /// `open(flags, mode)`. May return an [`ObjRef`] to interpose on the
    /// descriptor's operations (the paper's `OPEN_OBJECT_CLASS **oo` out
    /// parameter).
    fn open(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        flags: u64,
        mode: u64,
    ) -> (SysOutcome, Option<ObjRef>) {
        let addr = match self.stage(ctx) {
            Ok(a) => a,
            Err(e) => return (SysOutcome::Done(Err(e)), None),
        };
        (
            ctx.down_args(Sysno::Open, [addr, flags, mode, 0, 0, 0]),
            None,
        )
    }

    /// `stat(statbuf)`
    fn stat(&mut self, ctx: &mut SymCtx<'_, '_>, statbuf: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Stat, [statbuf, 0])
    }

    /// `lstat(statbuf)`
    fn lstat(&mut self, ctx: &mut SymCtx<'_, '_>, statbuf: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Lstat, [statbuf, 0])
    }

    /// `access(mode)`
    fn access(&mut self, ctx: &mut SymCtx<'_, '_>, mode: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Access, [mode, 0])
    }

    /// `chmod(mode)`
    fn chmod(&mut self, ctx: &mut SymCtx<'_, '_>, mode: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Chmod, [mode, 0])
    }

    /// `chown(uid, gid)`
    fn chown(&mut self, ctx: &mut SymCtx<'_, '_>, uid: u64, gid: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Chown, [uid, gid])
    }

    /// `unlink()`
    fn unlink(&mut self, ctx: &mut SymCtx<'_, '_>) -> SysOutcome {
        self.simple(ctx, Sysno::Unlink, [0, 0])
    }

    /// `readlink(buf, bufsize)`
    fn readlink(&mut self, ctx: &mut SymCtx<'_, '_>, buf: u64, bufsize: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Readlink, [buf, bufsize])
    }

    /// `truncate(length)`
    fn truncate(&mut self, ctx: &mut SymCtx<'_, '_>, length: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Truncate, [length, 0])
    }

    /// `utimes(times)`
    fn utimes(&mut self, ctx: &mut SymCtx<'_, '_>, times: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Utimes, [times, 0])
    }

    /// `chdir()`
    fn chdir(&mut self, ctx: &mut SymCtx<'_, '_>) -> SysOutcome {
        self.simple(ctx, Sysno::Chdir, [0, 0])
    }

    /// `chroot()`
    fn chroot(&mut self, ctx: &mut SymCtx<'_, '_>) -> SysOutcome {
        self.simple(ctx, Sysno::Chroot, [0, 0])
    }

    /// `mkdir(mode)`
    fn mkdir(&mut self, ctx: &mut SymCtx<'_, '_>, mode: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Mkdir, [mode, 0])
    }

    /// `rmdir()`
    fn rmdir(&mut self, ctx: &mut SymCtx<'_, '_>) -> SysOutcome {
        self.simple(ctx, Sysno::Rmdir, [0, 0])
    }

    /// `mknod(mode, dev)`
    fn mknod(&mut self, ctx: &mut SymCtx<'_, '_>, mode: u64, dev: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Mknod, [mode, dev])
    }

    /// `mkfifo(mode)`
    fn mkfifo(&mut self, ctx: &mut SymCtx<'_, '_>, mode: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Mkfifo, [mode, 0])
    }

    /// `execve(argv, envp)`
    fn execve(&mut self, ctx: &mut SymCtx<'_, '_>, argv: u64, envp: u64) -> SysOutcome {
        self.simple(ctx, Sysno::Execve, [argv, envp])
    }

    /// `link(newpath)` — create `new` as another name for this object.
    fn link(&mut self, ctx: &mut SymCtx<'_, '_>, new: &mut dyn Pathname) -> SysOutcome {
        let a = match self.stage(ctx) {
            Ok(a) => a,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let b = match new.stage(ctx) {
            Ok(b) => b,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        ctx.down_args(Sysno::Link, [a, b, 0, 0, 0, 0])
    }

    /// `rename(to)`
    fn rename(&mut self, ctx: &mut SymCtx<'_, '_>, to: &mut dyn Pathname) -> SysOutcome {
        let a = match self.stage(ctx) {
            Ok(a) => a,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let b = match to.stage(ctx) {
            Ok(b) => b,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        ctx.down_args(Sysno::Rename, [a, b, 0, 0, 0, 0])
    }

    /// `symlink(contents)` — create this pathname as a symlink holding
    /// `contents` (an address in client memory, passed through untouched:
    /// link contents are uninterpreted).
    fn symlink(&mut self, ctx: &mut SymCtx<'_, '_>, contents: u64) -> SysOutcome {
        let addr = match self.stage(ctx) {
            Ok(a) => a,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        ctx.down_args(Sysno::Symlink, [contents, addr, 0, 0, 0, 0])
    }

    /// `bind(fd)` / `connect(fd)` — socket rendezvous through this name.
    fn sock_bind(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        let addr = match self.stage(ctx) {
            Ok(a) => a,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        ctx.down_args(Sysno::Bind, [fd, addr, 0, 0, 0, 0])
    }

    /// See [`Pathname::sock_bind`].
    fn sock_connect(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        let addr = match self.stage(ctx) {
            Ok(a) => a,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        ctx.down_args(Sysno::Connect, [fd, addr, 0, 0, 0, 0])
    }

    /// Shared helper: stage the path into arg 0 and call down with two
    /// extra arguments.
    fn simple(&mut self, ctx: &mut SymCtx<'_, '_>, sys: Sysno, extra: [u64; 2]) -> SysOutcome {
        match self.stage(ctx) {
            Ok(addr) => ctx.down_args(sys, [addr, extra[0], extra[1], 0, 0, 0]),
            Err(e) => SysOutcome::Done(Err(e)),
        }
    }
}

/// The default pathname: the string itself, untransformed.
#[derive(Debug, Clone)]
pub struct DefaultPathname {
    path: Vec<u8>,
    scratch: Scratch,
}

impl DefaultPathname {
    /// Builds the identity pathname object.
    #[must_use]
    pub fn new(path: impl Into<Vec<u8>>, scratch: Scratch) -> DefaultPathname {
        DefaultPathname {
            path: path.into(),
            scratch,
        }
    }
}

impl Pathname for DefaultPathname {
    fn path(&self) -> &[u8] {
        &self.path
    }
    fn scratch(&self) -> &Scratch {
        &self.scratch
    }
    fn clone_pathname(&self) -> Box<dyn Pathname> {
        Box::new(self.clone())
    }
}

/// The pathname-set: the object that owns name-space policy.
///
/// Agents override [`PathnameSet::getpn`] to rewrite, multiplex or record
/// name references; the rest of the toolkit routes every pathname-using
/// system call through it.
#[allow(unused_variables)]
pub trait PathnameSet: Send {
    /// Diagnostic name.
    fn set_name(&self) -> &'static str {
        "pathname-set"
    }

    /// Resolves a pathname string to a pathname object.
    fn getpn(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        path: &[u8],
        intent: PathIntent,
        scratch: &Scratch,
    ) -> Box<dyn Pathname> {
        Box::new(DefaultPathname::new(path, scratch.clone()))
    }

    /// Agent command-line initialization.
    fn init(&mut self, ctx: &mut SymCtx<'_, '_>, args: &[Vec<u8>]) {}

    /// Fork hook for the child's copy.
    fn init_child(&mut self, ctx: &mut SymCtx<'_, '_>) {}

    /// Upward signal path.
    fn signal_handler(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        sig: ia_abi::Signal,
    ) -> ia_interpose::SignalVerdict {
        ia_interpose::SignalVerdict::Deliver
    }
}
