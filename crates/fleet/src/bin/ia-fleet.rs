//! `ia-fleet` — drive N tenant kernels across a work-stealing host pool.
//!
//! ```text
//! ia-fleet [--tenants N] [--threads T] [--seed S] [--quantum Q]
//!          [--pool P] [--bare] [--json]
//! ia-fleet --smoke
//! ```
//!
//! The default mode spins up `N` tenants (deterministic per-seed
//! workloads drawn from a pool of `P` distinct images installed in the
//! shared base), drives them to completion, and prints spin-up latency
//! and aggregate throughput.
//!
//! `--smoke` is the CI gate: 256 tenants, solo-vs-fleet determinism spot
//! checks, and a self-calibrating scaling ratio — aggregate throughput at
//! `min(8, host cores)` threads must reach at least `0.7 ×` linear over
//! the single-threaded run of the same fleet.

use std::process::ExitCode;
use std::time::Instant;

use ia_fleet::{solo_observable, workload, Fleet, FleetBase, Tenant};
use ia_interpose::Agent;

/// Tenant agent chains for the run.
fn agents_for(bare: bool) -> Vec<Box<dyn Agent>> {
    if bare {
        workload::bare_agents()
    } else {
        workload::tenant_agents()
    }
}

/// Builds the shared base with `pool` distinct tenant binaries installed.
fn build_base(pool: usize) -> FleetBase {
    let mut base = FleetBase::new();
    for p in 0..pool {
        base.install_image(
            format!("/bin/t{p}").as_bytes(),
            &workload::tenant_image(p as u64),
        );
    }
    base
}

/// Spins up `tenants` tenants over `base` (image `i % pool`), returning
/// them plus the mean spin-up nanoseconds.
fn spawn_all(base: &FleetBase, tenants: usize, pool: usize, bare: bool) -> (Vec<Tenant>, f64) {
    let start = Instant::now();
    let fleet: Vec<Tenant> = (0..tenants)
        .map(|i| {
            let path = format!("/bin/t{}", i % pool);
            Tenant::spawn_path(base, i, path.as_bytes(), &[b"tenant"], agents_for(bare))
        })
        .collect();
    let ns = start.elapsed().as_nanos() as f64 / tenants.max(1) as f64;
    (fleet, ns)
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn smoke() -> ExitCode {
    const TENANTS: usize = 256;
    const POOL: usize = 16;
    let threads = host_threads().min(8);
    let base = build_base(POOL);

    // Determinism spot check: every 32nd tenant solo vs in-fleet. The
    // solo reference runs on a *private* base built identically to the
    // shared one (same image pool, its own exec cache) — base content is
    // part of the Observable (VFS digest, file counts), so it must match.
    let (tenants, _) = spawn_all(&base, TENANTS, POOL, false);
    let (results, par) = Fleet::new(threads).run(tenants);
    for id in (0..TENANTS).step_by(32) {
        let solo_base = build_base(POOL);
        let path = format!("/bin/t{}", id % POOL);
        let (outcome, obs) = solo_observable(
            &solo_base,
            path.as_bytes(),
            &[b"tenant"],
            workload::tenant_agents(),
            u64::MAX,
        );
        if results[id].outcome != outcome || results[id].obs != obs {
            eprintln!("smoke: FAIL tenant {id} diverged from its solo run");
            return ExitCode::FAILURE;
        }
    }

    // Scaling ratio: same fleet at 1 thread vs `threads`.
    let (serial_tenants, _) = spawn_all(&base, TENANTS, POOL, false);
    let (_, ser) = Fleet::new(1).run(serial_tenants);
    let ratio = par.syscalls_per_sec() / ser.syscalls_per_sec().max(1e-9);
    let floor = 0.7 * threads as f64;
    println!(
        "smoke: {} tenants, {} threads, {:.0} syscalls/s parallel vs {:.0} serial (ratio {ratio:.2}, floor {floor:.2})",
        TENANTS,
        threads,
        par.syscalls_per_sec(),
        ser.syscalls_per_sec(),
    );
    if threads > 1 && ratio < floor {
        eprintln!("smoke: FAIL scaling ratio {ratio:.2} under the {floor:.2} floor");
        return ExitCode::FAILURE;
    }
    println!("smoke: ok (determinism x8, scaling gate)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        return smoke();
    }

    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let tenants = flag("--tenants", 1_000) as usize;
    let threads = flag("--threads", host_threads().min(8) as u64) as usize;
    let seed = flag("--seed", 0x1af1_ee75_eed5);
    let quantum = flag("--quantum", 50_000);
    let pool = (flag("--pool", 16) as usize).clamp(1, tenants.max(1));
    let bare = args.iter().any(|a| a == "--bare");
    let json = args.iter().any(|a| a == "--json");

    let base = build_base(pool);
    let (fleet_tenants, spin_up_ns) = spawn_all(&base, tenants, pool, bare);
    let (results, report) = Fleet::new(threads)
        .seed(seed)
        .quantum(quantum)
        .run(fleet_tenants);

    let exited = results
        .iter()
        .filter(|r| r.outcome == ia_kernel::RunOutcome::AllExited)
        .count();
    let (hits, misses) = (base.exec_cache.hits(), base.exec_cache.misses());
    if json {
        println!(
            "{{\"tenants\": {}, \"threads\": {}, \"spin_up_ns_per_tenant\": {:.0}, \
             \"wall_ms\": {:.1}, \"syscalls_per_sec\": {:.0}, \"insns_per_sec\": {:.0}, \
             \"turns\": {}, \"steals\": {}, \"exec_cache\": {{\"hits\": {hits}, \"misses\": {misses}}}}}",
            report.tenants,
            report.threads,
            spin_up_ns,
            report.wall_ns as f64 / 1e6,
            report.syscalls_per_sec(),
            report.insns_per_sec(),
            report.total_turns,
            report.steals,
        );
    } else {
        println!(
            "fleet: {} tenants on {} threads",
            report.tenants, report.threads
        );
        println!("  spin-up:   {spin_up_ns:.0} ns/tenant");
        println!("  wall:      {:.1} ms", report.wall_ns as f64 / 1e6);
        println!(
            "  syscalls:  {} ({:.0}/s)",
            report.total_syscalls,
            report.syscalls_per_sec()
        );
        println!(
            "  insns:     {} ({:.0}/s)",
            report.total_insns,
            report.insns_per_sec()
        );
        println!("  turns:     {} (quantum {quantum})", report.total_turns);
        println!("  steals:    {}", report.steals);
        println!("  exec cache: {hits} hits / {misses} misses");
        println!("  exited:    {exited}/{}", report.tenants);
    }
    if exited != report.tenants {
        eprintln!(
            "fleet: {} tenants did not run to exit",
            report.tenants - exited
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
