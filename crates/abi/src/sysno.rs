//! The system call table.
//!
//! Numbers follow the 4.3BSD lineage (`syscalls.master`) for every call the
//! paper names; a handful of obsolete variants (old `creat`, `time`, `stime`,
//! ...) are dropped and a few later-BSD numbers (`getdirentries`, `setsid`)
//! are kept at their historical slots. The paper's observation that drives
//! the toolkit design — *many calls, few abstractions* — is encoded here as
//! [`Sysno::pathname_args`] and [`Sysno::descriptor_args`]: the toolkit's
//! pathname and descriptor layers route every call through those
//! classifications instead of special-casing each call.

/// A system call number in the simulated 4.3BSD interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variants are the standard 4.3BSD call names
#[repr(u32)]
pub enum Sysno {
    Exit = 1,
    Fork = 2,
    Read = 3,
    Write = 4,
    Open = 5,
    Close = 6,
    Wait4 = 7,
    Link = 9,
    Unlink = 10,
    Chdir = 12,
    Fchdir = 13,
    Mknod = 14,
    Chmod = 15,
    Chown = 16,
    Sbrk = 17,
    Lseek = 19,
    Getpid = 20,
    Setuid = 23,
    Getuid = 24,
    Geteuid = 25,
    Accept = 30,
    Access = 33,
    Sync = 36,
    Kill = 37,
    Stat = 38,
    Getppid = 39,
    Lstat = 40,
    Dup = 41,
    Pipe = 42,
    Getegid = 43,
    Sigaction = 46,
    Getgid = 47,
    Sigprocmask = 48,
    Sigpending = 52,
    Ioctl = 54,
    Symlink = 57,
    Readlink = 58,
    Execve = 59,
    Umask = 60,
    Chroot = 61,
    Fstat = 62,
    Vfork = 66,
    Getpgrp = 81,
    Setpgid = 82,
    Setitimer = 83,
    Getitimer = 86,
    Getdtablesize = 89,
    Dup2 = 90,
    Fcntl = 92,
    Select = 93,
    Fsync = 95,
    Setpriority = 96,
    Socket = 97,
    Connect = 98,
    Getpriority = 100,
    Sigreturn = 103,
    Bind = 104,
    Listen = 106,
    Sigsuspend = 111,
    Gettimeofday = 116,
    Getrusage = 117,
    Readv = 120,
    Writev = 121,
    Settimeofday = 122,
    Fchown = 123,
    Fchmod = 124,
    Setreuid = 126,
    Setregid = 127,
    Rename = 128,
    Truncate = 129,
    Ftruncate = 130,
    Flock = 131,
    Mkfifo = 132,
    Socketpair = 135,
    Mkdir = 136,
    Rmdir = 137,
    Utimes = 138,
    Adjtime = 140,
    Setsid = 147,
    Setgid = 181,
    Getdirentries = 196,
}

/// Every call in the interface, in numeric order. The table's length is the
/// paper's "large number of different system calls".
pub const ALL_SYSCALLS: &[Sysno] = &[
    Sysno::Exit,
    Sysno::Fork,
    Sysno::Read,
    Sysno::Write,
    Sysno::Open,
    Sysno::Close,
    Sysno::Wait4,
    Sysno::Link,
    Sysno::Unlink,
    Sysno::Chdir,
    Sysno::Fchdir,
    Sysno::Mknod,
    Sysno::Chmod,
    Sysno::Chown,
    Sysno::Sbrk,
    Sysno::Lseek,
    Sysno::Getpid,
    Sysno::Setuid,
    Sysno::Getuid,
    Sysno::Geteuid,
    Sysno::Accept,
    Sysno::Access,
    Sysno::Sync,
    Sysno::Kill,
    Sysno::Stat,
    Sysno::Getppid,
    Sysno::Lstat,
    Sysno::Dup,
    Sysno::Pipe,
    Sysno::Getegid,
    Sysno::Sigaction,
    Sysno::Getgid,
    Sysno::Sigprocmask,
    Sysno::Sigpending,
    Sysno::Ioctl,
    Sysno::Symlink,
    Sysno::Readlink,
    Sysno::Execve,
    Sysno::Umask,
    Sysno::Chroot,
    Sysno::Fstat,
    Sysno::Vfork,
    Sysno::Getpgrp,
    Sysno::Setpgid,
    Sysno::Setitimer,
    Sysno::Getitimer,
    Sysno::Getdtablesize,
    Sysno::Dup2,
    Sysno::Fcntl,
    Sysno::Select,
    Sysno::Fsync,
    Sysno::Setpriority,
    Sysno::Socket,
    Sysno::Connect,
    Sysno::Getpriority,
    Sysno::Sigreturn,
    Sysno::Bind,
    Sysno::Listen,
    Sysno::Sigsuspend,
    Sysno::Gettimeofday,
    Sysno::Getrusage,
    Sysno::Readv,
    Sysno::Writev,
    Sysno::Settimeofday,
    Sysno::Fchown,
    Sysno::Fchmod,
    Sysno::Setreuid,
    Sysno::Setregid,
    Sysno::Rename,
    Sysno::Truncate,
    Sysno::Ftruncate,
    Sysno::Flock,
    Sysno::Mkfifo,
    Sysno::Socketpair,
    Sysno::Mkdir,
    Sysno::Rmdir,
    Sysno::Utimes,
    Sysno::Adjtime,
    Sysno::Setsid,
    Sysno::Setgid,
    Sysno::Getdirentries,
];

impl Sysno {
    /// Recovers a [`Sysno`] from a raw trap number.
    #[must_use]
    pub fn from_u32(n: u32) -> Option<Sysno> {
        ALL_SYSCALLS.iter().copied().find(|s| *s as u32 == n)
    }

    /// The raw trap number.
    #[must_use]
    pub fn number(self) -> u32 {
        self as u32
    }

    /// The call's name as printed by tracing agents.
    #[must_use]
    pub fn name(self) -> &'static str {
        use Sysno::*;
        match self {
            Exit => "exit",
            Fork => "fork",
            Read => "read",
            Write => "write",
            Open => "open",
            Close => "close",
            Wait4 => "wait4",
            Link => "link",
            Unlink => "unlink",
            Chdir => "chdir",
            Fchdir => "fchdir",
            Mknod => "mknod",
            Chmod => "chmod",
            Chown => "chown",
            Sbrk => "sbrk",
            Lseek => "lseek",
            Getpid => "getpid",
            Setuid => "setuid",
            Getuid => "getuid",
            Geteuid => "geteuid",
            Accept => "accept",
            Access => "access",
            Sync => "sync",
            Kill => "kill",
            Stat => "stat",
            Getppid => "getppid",
            Lstat => "lstat",
            Dup => "dup",
            Pipe => "pipe",
            Getegid => "getegid",
            Sigaction => "sigaction",
            Getgid => "getgid",
            Sigprocmask => "sigprocmask",
            Sigpending => "sigpending",
            Ioctl => "ioctl",
            Symlink => "symlink",
            Readlink => "readlink",
            Execve => "execve",
            Umask => "umask",
            Chroot => "chroot",
            Fstat => "fstat",
            Vfork => "vfork",
            Getpgrp => "getpgrp",
            Setpgid => "setpgid",
            Setitimer => "setitimer",
            Getitimer => "getitimer",
            Getdtablesize => "getdtablesize",
            Dup2 => "dup2",
            Fcntl => "fcntl",
            Select => "select",
            Fsync => "fsync",
            Setpriority => "setpriority",
            Socket => "socket",
            Connect => "connect",
            Getpriority => "getpriority",
            Sigreturn => "sigreturn",
            Bind => "bind",
            Listen => "listen",
            Sigsuspend => "sigsuspend",
            Gettimeofday => "gettimeofday",
            Getrusage => "getrusage",
            Readv => "readv",
            Writev => "writev",
            Settimeofday => "settimeofday",
            Fchown => "fchown",
            Fchmod => "fchmod",
            Setreuid => "setreuid",
            Setregid => "setregid",
            Rename => "rename",
            Truncate => "truncate",
            Ftruncate => "ftruncate",
            Flock => "flock",
            Mkfifo => "mkfifo",
            Socketpair => "socketpair",
            Mkdir => "mkdir",
            Rmdir => "rmdir",
            Utimes => "utimes",
            Adjtime => "adjtime",
            Setsid => "setsid",
            Setgid => "setgid",
            Getdirentries => "getdirentries",
        }
    }

    /// Number of meaningful argument registers.
    #[must_use]
    pub fn nargs(self) -> usize {
        use Sysno::*;
        match self {
            Fork | Vfork | Getpid | Getppid | Getuid | Geteuid | Getgid | Getegid | Sync | Pipe
            | Sigpending | Getpgrp | Getdtablesize | Setsid => 0,
            Exit | Unlink | Chdir | Fchdir | Close | Sbrk | Setuid | Dup | Umask | Chroot
            | Fsync | Sigsuspend | Rmdir | Setgid | Sigreturn | Listen => 1,
            Link | Chmod | Access | Kill | Stat | Lstat | Sigprocmask | Symlink | Setpgid
            | Dup2 | Getitimer | Gettimeofday | Settimeofday | Fchmod | Setreuid | Setregid
            | Rename | Truncate | Ftruncate | Flock | Mkfifo | Mkdir | Utimes | Adjtime
            | Getrusage | Getpriority => 2,
            Read | Write | Open | Mknod | Chown | Lseek | Sigaction | Ioctl | Readlink | Execve
            | Fstat | Setitimer | Fcntl | Fchown | Readv | Writev | Socket | Setpriority
            | Accept | Connect | Bind | Socketpair => 3,
            Wait4 | Getdirentries => 4,
            Select => 5,
        }
    }

    /// Argument positions that carry a pointer to a NUL-terminated pathname.
    ///
    /// This is the paper's set of "calls with knowledge of pathnames": the
    /// toolkit's `pathname_set` layer interposes on exactly these calls and
    /// routes each named object through `getpn()`.
    #[must_use]
    pub fn pathname_args(self) -> &'static [usize] {
        use Sysno::*;
        match self {
            Open | Unlink | Chdir | Mknod | Chmod | Chown | Access | Stat | Lstat | Readlink
            | Execve | Chroot | Truncate | Mkfifo | Mkdir | Rmdir | Utimes => &[0],
            Link | Rename => &[0, 1],
            // symlink(contents, linkpath): only the *link* being created is a
            // pathname in the namespace; the contents are uninterpreted.
            Symlink => &[1],
            _ => &[],
        }
    }

    /// Argument positions that carry an open file descriptor.
    ///
    /// These are the paper's "calls that use descriptors": the toolkit's
    /// `descriptor_set` layer routes each through the descriptor table to an
    /// `open_object`.
    #[must_use]
    pub fn descriptor_args(self) -> &'static [usize] {
        use Sysno::*;
        match self {
            Read | Write | Close | Fchdir | Lseek | Ioctl | Fstat | Dup | Fcntl | Fsync
            | Fchown | Fchmod | Ftruncate | Flock | Readv | Writev | Getdirentries | Accept
            | Connect | Bind | Listen => &[0],
            Dup2 => &[0], // the second argument names a *slot*, not an open object
            _ => &[],
        }
    }

    /// True when the call takes at least one pathname argument.
    #[must_use]
    pub fn uses_pathname(self) -> bool {
        !self.pathname_args().is_empty()
    }

    /// True when the call takes at least one descriptor argument.
    #[must_use]
    pub fn uses_descriptor(self) -> bool {
        !self.descriptor_args().is_empty()
    }
}

impl std::fmt::Display for Sysno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_is_sorted_and_unique() {
        let nums: Vec<u32> = ALL_SYSCALLS.iter().map(|s| s.number()).collect();
        let mut sorted = nums.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            nums, sorted,
            "ALL_SYSCALLS must be sorted and duplicate-free"
        );
    }

    #[test]
    fn from_u32_round_trips() {
        for &s in ALL_SYSCALLS {
            assert_eq!(Sysno::from_u32(s.number()), Some(s));
        }
        assert_eq!(Sysno::from_u32(0), None);
        assert_eq!(Sysno::from_u32(9999), None);
    }

    #[test]
    fn paper_named_calls_have_bsd_numbers() {
        assert_eq!(Sysno::Exit.number(), 1);
        assert_eq!(Sysno::Fork.number(), 2);
        assert_eq!(Sysno::Read.number(), 3);
        assert_eq!(Sysno::Write.number(), 4);
        assert_eq!(Sysno::Open.number(), 5);
        assert_eq!(Sysno::Execve.number(), 59);
        assert_eq!(Sysno::Gettimeofday.number(), 116);
        assert_eq!(Sysno::Getdirentries.number(), 196);
    }

    #[test]
    fn pathname_classification_matches_paper_shape() {
        // The paper counts 30 pathname calls and 48 descriptor calls on full
        // 4.3BSD; our curated interface keeps the same *structure* (a large
        // interface, a small abstraction set) at reduced width.
        let path_calls: Vec<Sysno> = ALL_SYSCALLS
            .iter()
            .copied()
            .filter(|s| s.uses_pathname())
            .collect();
        let desc_calls: Vec<Sysno> = ALL_SYSCALLS
            .iter()
            .copied()
            .filter(|s| s.uses_descriptor())
            .collect();
        assert!(path_calls.len() >= 18, "got {}", path_calls.len());
        assert!(desc_calls.len() >= 20, "got {}", desc_calls.len());
        // Overlap exists (the paper: "eight of which use both") — here none
        // of the curated calls takes both a path and a descriptor, but the
        // sets must at least be non-overlapping subsets of the table.
        let set: HashSet<u32> = path_calls.iter().map(|s| s.number()).collect();
        for d in &desc_calls {
            assert!(Sysno::from_u32(d.number()).is_some());
            let _ = set.contains(&d.number());
        }
    }

    #[test]
    fn nargs_bounded_by_register_count() {
        for &s in ALL_SYSCALLS {
            assert!(s.nargs() <= 6);
            for &p in s.pathname_args() {
                assert!(p < s.nargs(), "{s}: pathname arg index out of range");
            }
            for &d in s.descriptor_args() {
                assert!(d < s.nargs(), "{s}: descriptor arg index out of range");
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = ALL_SYSCALLS.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ALL_SYSCALLS.len());
    }
}
