//! Process-management system calls.

use std::sync::Arc;

use ia_abi::signal::WaitStatus;
use ia_abi::types::MAXPATHLEN;
use ia_abi::{Errno, FileMode, RawArgs, Rusage};
use ia_vm::VmState;

use super::{done, SysOutcome};
use crate::kernel::{push_args, Kernel, WakeEvent};
use crate::process::{Pid, ProcState, WaitChannel};

/// `wait4` option: don't block.
pub const WNOHANG: u64 = 1;

impl Kernel {
    /// `fork()` — duplicate the calling process. Returns the child pid to
    /// the parent; the child resumes with 0 in `r0`.
    pub(crate) fn sys_fork(&mut self, pid: Pid) -> SysOutcome {
        if let Err(e) = self.proc(pid) {
            return SysOutcome::err(e);
        }
        let child_pid = {
            let p = self.next_pid;
            self.next_pid += 1;
            p
        };
        // `fork_child` copies only the parent's written memory regions and
        // gives the child a 0 return value in its registers.
        let child = self.proc(pid).expect("checked above").fork_child(child_pid);
        // Shared open files gain a reference per inherited descriptor.
        let shared: Vec<_> = child.fds.iter().map(|(_, e)| e.file).collect();
        for f in shared {
            self.files.incref(f);
        }
        self.procs.insert(child_pid, child);
        self.run_queue.insert(child_pid);
        SysOutcome::Done(Ok([u64::from(child_pid), 0]))
    }

    /// `execve(path, argv, envp)` — replace the process image.
    ///
    /// This performs the full sequence the paper's toolkit had to
    /// reimplement (§3.5.1.2): read the program file, verify execute
    /// permission, close close-on-exec descriptors, reset caught signals,
    /// clear the address space, load the image, push the arguments, and
    /// transfer control.
    pub(crate) fn sys_execve(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r: Result<(), Errno> = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            let node = self.fs.get(ino)?;
            let cred = self.proc(pid)?.cred();
            if !node.permits(cred, 1) {
                return Err(Errno::EACCES);
            }
            if node.as_file().is_none() {
                return Err(Errno::EACCES);
            }
            let setuid_owner = if node.meta.perm & FileMode::S_ISUID != 0 {
                Some(node.meta.uid)
            } else {
                None
            };
            let setgid_group = if node.meta.perm & FileMode::S_ISGID != 0 {
                Some(node.meta.gid)
            } else {
                None
            };
            let size = node.size() as usize;
            let now = self.clock.now();
            let bytes = self.fs.read_at(ino, 0, size, now)?;
            // Parse + gate + decode + fuse through the digest-keyed cache:
            // an exec storm over the same binary pays for all four once.
            let prepared = self.prepare_exec(&bytes)?;

            // Decode argv (a NULL-terminated pointer array) before the
            // address space is destroyed.
            let mut argv: Vec<Vec<u8>> = Vec::new();
            if args[1] != 0 {
                let mem = &self.proc(pid)?.mem;
                for i in 0..64u64 {
                    let ptr = mem.read_u64(args[1] + i * 8)?;
                    if ptr == 0 {
                        break;
                    }
                    argv.push(mem.read_cstr(ptr, MAXPATHLEN)?);
                }
            }
            if argv.is_empty() {
                argv.push(path.clone());
            }

            // Point of no return.
            let cloexec = self.proc_mut(pid)?.fds.drain_cloexec();
            for e in cloexec {
                self.release_file(e.file);
            }
            let p = self.proc_mut(pid)?;
            p.sig.reset_for_exec();
            p.sig.suspend_saved = None;
            p.select_deadline = None;
            p.itimer = None;
            prepared.image.load_into(&mut p.mem)?;
            p.code = Arc::clone(&prepared.code);
            p.fused = Arc::clone(&prepared.fused);
            p.vm = VmState::new(prepared.image.entry, p.mem.size());
            let argv_refs: Vec<&[u8]> = argv.iter().map(Vec::as_slice).collect();
            push_args(&mut p.vm, &mut p.mem, &argv_refs)?;
            p.name = path.rsplit(|&c| c == b'/').next().unwrap_or(&path).to_vec();
            if let Some(uid) = setuid_owner {
                p.euid = uid;
            }
            if let Some(gid) = setgid_group {
                p.egid = gid;
            }
            Ok(())
        })();
        match r {
            Ok(()) => SysOutcome::NoReturn,
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `_exit(status)`
    pub(crate) fn sys_exit(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        self.terminate(pid, ia_abi::signal::wait_status_exited(args[0] as u8));
        SysOutcome::NoReturn
    }

    /// `wait4(pid, status, options, rusage)` → pid of the reaped child
    pub(crate) fn sys_wait4(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let want = args[0] as i64;
        let children: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.ppid == pid)
            .filter(|p| want <= 0 || p.pid as i64 == want)
            .map(|p| p.pid)
            .collect();
        if children.is_empty() {
            return SysOutcome::err(Errno::ECHILD);
        }
        let mut zombies: Vec<Pid> = children
            .iter()
            .copied()
            .filter(|c| matches!(self.procs[c].state, ProcState::Zombie(_)))
            .collect();
        zombies.sort_unstable();
        let Some(child) = zombies.first().copied() else {
            if args[2] & WNOHANG != 0 {
                return SysOutcome::ok1(0);
            }
            return SysOutcome::Block(WaitChannel::Child);
        };
        let reaped = self.procs.remove(&child).expect("listed");
        let ProcState::Zombie(status) = reaped.state else {
            unreachable!("filtered for zombies")
        };
        self.exit_log.insert(child, status);
        let ru: Rusage = reaped.rusage(self.profile.insn_ns);
        let r = (|| {
            let p = self.proc_mut(pid)?;
            if args[1] != 0 {
                p.mem.write_u64(args[1], u64::from(status))?;
            }
            if args[3] != 0 {
                p.mem.write_struct(args[3], &ru)?;
            }
            Ok([u64::from(child), 0])
        })();
        done(r)
    }

    /// `getpid()`
    pub(crate) fn sys_getpid(&mut self, pid: Pid) -> SysOutcome {
        SysOutcome::ok1(u64::from(pid))
    }

    /// `getppid()`
    pub(crate) fn sys_getppid(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.ppid)),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `getuid()`
    pub(crate) fn sys_getuid(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.uid)),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `geteuid()`
    pub(crate) fn sys_geteuid(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.euid)),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `getgid()`
    pub(crate) fn sys_getgid(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.gid)),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `getegid()`
    pub(crate) fn sys_getegid(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.egid)),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `setuid(uid)` — the superuser sets both ids; others may only revert
    /// the effective id to the real id.
    pub(crate) fn sys_setuid(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let uid = args[0] as u32;
        let r = (|| {
            let p = self.proc_mut(pid)?;
            if p.euid == 0 {
                p.uid = uid;
                p.euid = uid;
            } else if uid == p.uid {
                p.euid = uid;
            } else {
                return Err(Errno::EPERM);
            }
            Ok(())
        })();
        super::done0(r)
    }

    /// `setgid(gid)`
    pub(crate) fn sys_setgid(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let gid = args[0] as u32;
        let r = (|| {
            let p = self.proc_mut(pid)?;
            if p.euid == 0 {
                p.gid = gid;
                p.egid = gid;
            } else if gid == p.gid {
                p.egid = gid;
            } else {
                return Err(Errno::EPERM);
            }
            Ok(())
        })();
        super::done0(r)
    }

    /// `setreuid(ruid, euid)` — `u32::MAX` (-1) leaves a field unchanged.
    pub(crate) fn sys_setreuid(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let (ruid, euid) = (args[0] as u32, args[1] as u32);
        let r = (|| {
            let p = self.proc_mut(pid)?;
            let privileged = p.euid == 0;
            if ruid != u32::MAX {
                if !privileged && ruid != p.uid && ruid != p.euid {
                    return Err(Errno::EPERM);
                }
                p.uid = ruid;
            }
            if euid != u32::MAX {
                if !privileged && euid != p.uid && euid != p.euid {
                    return Err(Errno::EPERM);
                }
                p.euid = euid;
            }
            Ok(())
        })();
        super::done0(r)
    }

    /// `setregid(rgid, egid)`
    pub(crate) fn sys_setregid(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let (rgid, egid) = (args[0] as u32, args[1] as u32);
        let r = (|| {
            let p = self.proc_mut(pid)?;
            let privileged = p.euid == 0;
            if rgid != u32::MAX {
                if !privileged && rgid != p.gid && rgid != p.egid {
                    return Err(Errno::EPERM);
                }
                p.gid = rgid;
            }
            if egid != u32::MAX {
                if !privileged && egid != p.gid && egid != p.egid {
                    return Err(Errno::EPERM);
                }
                p.egid = egid;
            }
            Ok(())
        })();
        super::done0(r)
    }

    /// `getpgrp()`
    pub(crate) fn sys_getpgrp(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(u64::from(p.pgrp)),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `setpgid(pid, pgrp)` — a process may move itself or its children.
    pub(crate) fn sys_setpgid(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let target = if args[0] == 0 { pid } else { args[0] as Pid };
        let pgrp = if args[1] == 0 { target } else { args[1] as Pid };
        let r = (|| {
            let t = self.procs.get(&target).ok_or(Errno::ESRCH)?;
            if target != pid && t.ppid != pid {
                return Err(Errno::EPERM);
            }
            self.procs.get_mut(&target).expect("checked").pgrp = pgrp;
            Ok(())
        })();
        super::done0(r)
    }

    /// `setsid()` — become a process-group leader with a fresh group.
    pub(crate) fn sys_setsid(&mut self, pid: Pid) -> SysOutcome {
        let r = (|| {
            let p = self.proc_mut(pid)?;
            if p.pgrp == pid {
                return Err(Errno::EPERM);
            }
            p.pgrp = pid;
            Ok([u64::from(pid), 0])
        })();
        done(r)
    }

    /// `getpriority(which, who)` — process scope only.
    pub(crate) fn sys_getpriority(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let who = if args[1] == 0 { pid } else { args[1] as Pid };
        match self.procs.get(&who) {
            Some(p) => SysOutcome::ok1(p.priority as u64),
            None => SysOutcome::err(Errno::ESRCH),
        }
    }

    /// `setpriority(which, who, prio)` — only the superuser may raise
    /// priority (lower the nice value).
    pub(crate) fn sys_setpriority(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let who = if args[1] == 0 { pid } else { args[1] as Pid };
        let prio = (args[2] as i64 as i32).clamp(-20, 20);
        let r = (|| {
            let caller_euid = self.proc(pid)?.euid;
            let t = self.procs.get_mut(&who).ok_or(Errno::ESRCH)?;
            if prio < t.priority && caller_euid != 0 {
                return Err(Errno::EACCES);
            }
            t.priority = prio;
            Ok(())
        })();
        super::done0(r)
    }

    /// Decodes a wait-status word, re-exported convenience for tools.
    #[must_use]
    pub fn decode_wait_status(status: u32) -> Option<WaitStatus> {
        WaitStatus::decode(status)
    }
}

// Waking parents is done by `terminate`; wait4's Block(Child) channel is
// matched against `WakeEvent::ChildOf` in the scheduler.
#[allow(unused_imports)]
use WakeEvent as _WakeEventDocAnchor;
