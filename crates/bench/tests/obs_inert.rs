//! Differential proof that the ia-obs hooks are observably inert: running
//! a workload with the flight recorder + metrics enabled must produce a
//! bit-identical [`Observable`] snapshot (client view, virtual clock,
//! instruction and syscall totals) to the bare run. The hooks sit on the
//! scheduler hot path, the kernel trap entry, and the agent chain
//! dispatch — any accidental clock charge or state mutation shows up here.

use ia_workloads::runner::{run_workload_observed, AgentKind, SchedKind, Workload};

const ALL_AGENTS: [AgentKind; 7] = [
    AgentKind::None,
    AgentKind::Timex,
    AgentKind::Trace,
    AgentKind::Union,
    AgentKind::TimeSymbolic,
    AgentKind::DfsTrace,
    AgentKind::Profile,
];

fn profile_for(w: Workload) -> ia_kernel::MachineProfile {
    match w {
        Workload::Scribe => ia_kernel::VAX_6250,
        Workload::Make8 => ia_kernel::I486_25,
    }
}

#[test]
fn recorder_is_observably_inert_across_workloads_and_agents() {
    for workload in [Workload::Scribe, Workload::Make8] {
        for agent in ALL_AGENTS {
            let profile = profile_for(workload);
            let (bare_stats, bare_obs) =
                run_workload_observed(workload, profile, agent, SchedKind::Sliced, None);
            let (rec_stats, rec_obs) =
                run_workload_observed(workload, profile, agent, SchedKind::Sliced, Some(512));
            assert_eq!(
                bare_obs, rec_obs,
                "observable snapshot diverged under the recorder \
                 ({workload:?} / {agent:?})"
            );
            assert_eq!(
                bare_stats.virtual_ns, rec_stats.virtual_ns,
                "virtual clock diverged under the recorder \
                 ({workload:?} / {agent:?})"
            );
            assert_eq!(bare_stats.console, rec_stats.console);
            assert_eq!(bare_stats.outcome, rec_stats.outcome);
            assert_eq!(bare_stats.intercepted, rec_stats.intercepted);
        }
    }
}

#[test]
fn recorder_is_inert_under_the_legacy_scheduler_too() {
    let (bare_stats, bare_obs) = run_workload_observed(
        Workload::Scribe,
        ia_kernel::VAX_6250,
        AgentKind::Trace,
        SchedKind::Legacy,
        None,
    );
    let (rec_stats, rec_obs) = run_workload_observed(
        Workload::Scribe,
        ia_kernel::VAX_6250,
        AgentKind::Trace,
        SchedKind::Legacy,
        Some(256),
    );
    assert_eq!(bare_obs, rec_obs);
    assert_eq!(bare_stats.virtual_ns, rec_stats.virtual_ns);
}
