//! Lint findings and report rendering (text and JSON).

use crate::flow::FlowAnalysis;
use crate::interp::SyscallSet;
use crate::ImageAnalysis;
use ia_abi::Sysno;
use ia_vm::{disasm_insn, Insn};
use std::fmt::Write as _;

/// Version stamp carried by every JSON document this module renders —
/// the workspace-wide stamp from [`ia_obs::report`], re-exported so
/// existing consumers keep their import path.
pub const SCHEMA_VERSION: u32 = ia_obs::report::SCHEMA_VERSION;

/// How bad a finding is. Errors describe code that faults (or jumps into the
/// void) on a reachable path; warnings are suspicious but survivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Will fault if the path executes.
    Error,
    /// Suspicious, or an error pattern in unreachable code.
    Warning,
}

impl Severity {
    /// Lowercase label used in both renderings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable kind slug (e.g. `"bad-branch-target"`).
    pub kind: &'static str,
    /// Instruction index the finding anchors to, if any.
    pub at: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

/// Renders a ±2-instruction disassembly excerpt around `at`, with a `>`
/// marker on the offending line.
fn excerpt(code: &[Option<Insn>], at: usize) -> String {
    let lo = at.saturating_sub(2);
    let hi = (at + 3).min(code.len());
    let mut out = String::new();
    for (i, slot) in code.iter().enumerate().take(hi).skip(lo) {
        let text = match slot {
            Some(insn) => disasm_insn(insn),
            None => "<undecodable>".to_string(),
        };
        let mark = if i == at { '>' } else { ' ' };
        let _ = writeln!(out, "  {mark} {i:5}: {text}");
    }
    out
}

/// Formats one site's syscall set for humans: names where known.
fn render_nrs(nrs: &SyscallSet) -> String {
    match nrs {
        SyscallSet::Top => "⊤ (any syscall)".to_string(),
        SyscallSet::Exact(vs) => {
            let names: Vec<String> = vs
                .iter()
                .map(|&v| match Sysno::from_u32(v) {
                    Some(s) => format!("{}({v})", s.name()),
                    None => format!("nosys({v})"),
                })
                .collect();
            names.join(", ")
        }
    }
}

/// Renders the full human-readable report.
#[must_use]
pub fn render_text(name: &str, a: &ImageAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: {} insns, {} data bytes, entry {}",
        a.code.len(),
        a.data_len,
        a.entry
    );

    let _ = writeln!(out, "\nsyscall sites ({}):", a.sites.len());
    for site in &a.sites {
        let _ = writeln!(out, "  insn {:5}: {}", site.at, render_nrs(&site.nrs));
    }

    let _ = writeln!(
        out,
        "\nfootprint: {}{}",
        if a.footprint.exact { "" } else { "⊤ — " },
        render_footprint(a)
    );

    let errors = a.count(Severity::Error);
    let warnings = a.count(Severity::Warning);
    let _ = writeln!(out, "\nfindings: {errors} error(s), {warnings} warning(s)");
    for f in &a.findings {
        match f.at {
            Some(at) => {
                let _ = writeln!(
                    out,
                    "\n{} [{}] at insn {at}: {}",
                    f.severity.label(),
                    f.kind,
                    f.message
                );
                out.push_str(&excerpt(&a.code, at));
            }
            None => {
                let _ = writeln!(out, "\n{} [{}]: {}", f.severity.label(), f.kind, f.message);
            }
        }
    }
    out
}

/// Short description of the inferred footprint.
#[must_use]
pub fn render_footprint(a: &ImageAnalysis) -> String {
    if !a.footprint.exact {
        return "all syscalls possible (the analyzer widened; the footprint-widened finding names the cause)"
            .to_string();
    }
    let names: Vec<String> = a
        .footprint
        .nrs
        .iter()
        .map(|&v| match Sysno::from_u32(v) {
            Some(s) => s.name().to_string(),
            None => format!("nosys({v})"),
        })
        .collect();
    names.join(", ")
}

/// Minimal JSON string escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a stable JSON document (hand-rolled; the workspace
/// deliberately has no serde dependency).
#[must_use]
pub fn render_json(name: &str, a: &ImageAnalysis) -> String {
    let mut out = ia_obs::report::json_header("image", name);
    let _ = writeln!(out, "  \"insns\": {},", a.code.len());
    let _ = writeln!(out, "  \"data_bytes\": {},", a.data_len);
    let _ = writeln!(out, "  \"entry\": {},", a.entry);
    let _ = writeln!(out, "  \"errors\": {},", a.count(Severity::Error));
    let _ = writeln!(out, "  \"warnings\": {},", a.count(Severity::Warning));

    let _ = writeln!(out, "  \"footprint\": {{");
    let _ = writeln!(out, "    \"exact\": {},", a.footprint.exact);
    let nrs: Vec<String> = a.footprint.nrs.iter().map(u32::to_string).collect();
    let _ = writeln!(out, "    \"numbers\": [{}],", nrs.join(", "));
    let names: Vec<String> = a
        .footprint
        .nrs
        .iter()
        .filter_map(|&v| Sysno::from_u32(v))
        .map(|s| format!("\"{}\"", s.name()))
        .collect();
    let _ = writeln!(out, "    \"names\": [{}]", names.join(", "));
    let _ = writeln!(out, "  }},");

    let _ = writeln!(out, "  \"sites\": [");
    for (i, site) in a.sites.iter().enumerate() {
        let nrs = match &site.nrs {
            SyscallSet::Top => "\"top\"".to_string(),
            SyscallSet::Exact(vs) => {
                let vs: Vec<String> = vs.iter().map(u32::to_string).collect();
                format!("[{}]", vs.join(", "))
            }
        };
        let comma = if i + 1 < a.sites.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"at\": {}, \"nrs\": {nrs}}}{comma}", site.at);
    }
    let _ = writeln!(out, "  ],");

    let _ = writeln!(out, "  \"findings\": [");
    for (i, f) in a.findings.iter().enumerate() {
        let at = match f.at {
            Some(at) => at.to_string(),
            None => "null".to_string(),
        };
        let comma = if i + 1 < a.findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"severity\": \"{}\", \"kind\": \"{}\", \"at\": {at}, \"message\": \"{}\"}}{comma}",
            f.severity.label(),
            f.kind,
            esc(&f.message)
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Renders one image's information-flow analysis as a stable JSON document
/// (same hand-rolled style as [`render_json`]).
#[must_use]
pub fn render_flow_json(name: &str, fa: &FlowAnalysis) -> String {
    let mut out = ia_obs::report::json_header("image", name);
    let _ = writeln!(out, "  \"clean\": {},", fa.is_clean());
    let _ = writeln!(out, "  \"widened\": {},", fa.widened);
    match &fa.cause {
        Some(c) => {
            let _ = writeln!(out, "  \"cause\": \"{}\",", esc(c));
        }
        None => {
            let _ = writeln!(out, "  \"cause\": null,");
        }
    }
    let labels: Vec<String> = fa
        .spec
        .labels
        .iter()
        .map(|l| format!("\"{}\"", esc(&l.name)))
        .collect();
    let _ = writeln!(out, "  \"labels\": [{}],", labels.join(", "));

    let _ = writeln!(out, "  \"sources\": [");
    for (i, s) in fa.sources.iter().enumerate() {
        let comma = if i + 1 < fa.sources.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"at\": {}, \"labels\": {}, \"call\": \"{}\"}}{comma}",
            s.at, s.labels, s.kind
        );
    }
    let _ = writeln!(out, "  ],");

    let _ = writeln!(out, "  \"sinks\": [");
    for (i, s) in fa.sinks.iter().enumerate() {
        let comma = if i + 1 < fa.sinks.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"at\": {}, \"data_labels\": {}, \"ambient_labels\": {}}}{comma}",
            s.at, s.data.labels, s.ambient.labels
        );
    }
    let _ = writeln!(out, "  ],");

    let _ = writeln!(out, "  \"findings\": [");
    for (i, f) in fa.findings.iter().enumerate() {
        let at = match f.at {
            Some(at) => at.to_string(),
            None => "null".to_string(),
        };
        let comma = if i + 1 < fa.findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"severity\": \"{}\", \"kind\": \"{}\", \"at\": {at}, \"message\": \"{}\"}}{comma}",
            f.severity.label(),
            f.kind,
            esc(&f.message)
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
