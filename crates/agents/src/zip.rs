//! The `zip` agent — "transparent data compression" (§1.4) and an example
//! of "logical devices implemented entirely in user space".
//!
//! Files under a configured subtree are stored run-length encoded. On
//! open, the agent inflates the file into an agent-side buffer; reads and
//! writes are served *from the agent* with no downcalls for data at all —
//! the open object is a logical device living in user space. On final
//! close of a dirty file, the buffer is deflated and written back.

use ia_abi::{Errno, OpenFlags, Stat, Sysno, Whence};
use ia_kernel::SysOutcome;
use ia_toolkit::{
    obj_ref, DefaultPathname, FsAgent, ObjRef, OpenObject, PathIntent, Pathname, PathnameSet,
    Scratch, SymCtx, Symbolic,
};

/// Escape byte for the RLE format.
const ESC: u8 = 0xFE;

/// Run-length encodes `data`: runs of four or more identical bytes become
/// `[ESC, len, byte]`; a literal `ESC` becomes `[ESC, 0, ESC]`.
#[must_use]
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        if run >= 4 || (b == ESC && run >= 1) {
            out.push(ESC);
            out.push(run as u8);
            out.push(b);
        } else {
            for _ in 0..run {
                out.push(b);
            }
        }
        i += run;
    }
    out
}

/// Inverse of [`rle_compress`].
pub fn rle_decompress(data: &[u8]) -> Result<Vec<u8>, Errno> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        if data[i] == ESC {
            if i + 2 >= data.len() {
                return Err(Errno::EIO);
            }
            let n = data[i + 1];
            let b = data[i + 2];
            if n == 0 {
                out.push(b);
            } else {
                out.extend(std::iter::repeat_n(b, n as usize));
            }
            i += 3;
        } else {
            out.push(data[i]);
            i += 1;
        }
    }
    Ok(out)
}

/// The compressing pathname-set.
#[derive(Debug, Clone)]
pub struct ZipSet {
    /// Subtree whose files are stored compressed.
    pub prefix: Vec<u8>,
}

impl PathnameSet for ZipSet {
    fn set_name(&self) -> &'static str {
        "zip"
    }

    fn getpn(
        &mut self,
        _ctx: &mut SymCtx<'_, '_>,
        path: &[u8],
        _intent: PathIntent,
        scratch: &Scratch,
    ) -> Box<dyn Pathname> {
        let under = path.starts_with(&self.prefix)
            && (path.len() == self.prefix.len() || path.get(self.prefix.len()) == Some(&b'/'));
        if under {
            Box::new(ZipPathname {
                inner: DefaultPathname::new(path, scratch.clone()),
            })
        } else {
            Box::new(DefaultPathname::new(path, scratch.clone()))
        }
    }
}

struct ZipPathname {
    inner: DefaultPathname,
}

impl Pathname for ZipPathname {
    fn path(&self) -> &[u8] {
        self.inner.path()
    }
    fn scratch(&self) -> &Scratch {
        self.inner.scratch()
    }
    fn clone_pathname(&self) -> Box<dyn Pathname> {
        Box::new(ZipPathname {
            inner: self.inner.clone(),
        })
    }

    fn open(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        flags: u64,
        mode: u64,
    ) -> (SysOutcome, Option<ObjRef>) {
        // The underlying file needs read+write access for inflate and
        // write-back regardless of the client's access mode.
        let fl = OpenFlags::new(flags as u32);
        let mut under_flags = flags & !u64::from(OpenFlags::O_ACCMODE);
        under_flags |= u64::from(OpenFlags::O_RDWR);
        let (out, _) = self.inner.open(ctx, under_flags, mode);
        let SysOutcome::Done(Ok([fd, _])) = out else {
            return (out, None);
        };
        // Inflate the current contents through downcalls.
        let mut packed = Vec::new();
        let scratch = self.inner.scratch().clone();
        if !fl.has(OpenFlags::O_TRUNC) {
            let Ok(buf) = scratch.reserve(ctx, 1024) else {
                return (SysOutcome::Done(Err(Errno::ENOMEM)), None);
            };
            loop {
                match ctx.down_args(Sysno::Read, [fd, buf, 1024, 0, 0, 0]) {
                    SysOutcome::Done(Ok([0, _])) => break,
                    SysOutcome::Done(Ok([n, _])) => {
                        if let Ok(chunk) = ctx.read_bytes(buf, n as usize) {
                            packed.extend(chunk);
                        }
                    }
                    SysOutcome::Done(Err(e)) => return (SysOutcome::Done(Err(e)), None),
                    other => return (other, None),
                }
            }
        }
        let data = match rle_decompress(&packed) {
            Ok(d) => d,
            Err(e) => return (SysOutcome::Done(Err(e)), None),
        };
        let obj = obj_ref(ZipObject {
            data,
            pos: if fl.has(OpenFlags::O_APPEND) {
                u64::MAX
            } else {
                0
            },
            dirty: false,
            readable: fl.readable(),
            writable: fl.writable(),
            scratch,
        });
        (SysOutcome::Done(Ok([fd, 0])), Some(obj))
    }
}

/// The in-agent logical file: all data lives here between open and close.
struct ZipObject {
    data: Vec<u8>,
    /// Logical position; `u64::MAX` means "append".
    pos: u64,
    dirty: bool,
    readable: bool,
    writable: bool,
    scratch: Scratch,
}

impl ZipObject {
    fn cur(&self) -> u64 {
        if self.pos == u64::MAX {
            self.data.len() as u64
        } else {
            self.pos
        }
    }
}

impl OpenObject for ZipObject {
    fn obj_name(&self) -> &'static str {
        "zip-object"
    }

    fn read(&mut self, ctx: &mut SymCtx<'_, '_>, _fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        if !self.readable {
            return SysOutcome::Done(Err(Errno::EBADF));
        }
        let pos = self.cur() as usize;
        if pos >= self.data.len() {
            return SysOutcome::Done(Ok([0, 0]));
        }
        let n = (nbyte as usize).min(self.data.len() - pos);
        if let Err(e) = ctx.write_bytes(buf, &self.data[pos..pos + n]) {
            return SysOutcome::Done(Err(e));
        }
        self.pos = (pos + n) as u64;
        SysOutcome::Done(Ok([n as u64, 0]))
    }

    fn write(&mut self, ctx: &mut SymCtx<'_, '_>, _fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        if !self.writable {
            return SysOutcome::Done(Err(Errno::EBADF));
        }
        let data = match ctx.read_bytes(buf, nbyte as usize) {
            Ok(d) => d,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let pos = self.cur() as usize;
        if pos + data.len() > self.data.len() {
            self.data.resize(pos + data.len(), 0);
        }
        self.data[pos..pos + data.len()].copy_from_slice(&data);
        self.pos = (pos + data.len()) as u64;
        self.dirty = true;
        SysOutcome::Done(Ok([data.len() as u64, 0]))
    }

    fn lseek(
        &mut self,
        _ctx: &mut SymCtx<'_, '_>,
        _fd: u64,
        offset: u64,
        whence: u64,
    ) -> SysOutcome {
        let base = match Whence::from_u32(whence as u32) {
            Ok(Whence::Set) => 0,
            Ok(Whence::Cur) => self.cur() as i64,
            Ok(Whence::End) => self.data.len() as i64,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let new = base + offset as i64;
        if new < 0 {
            return SysOutcome::Done(Err(Errno::EINVAL));
        }
        self.pos = new as u64;
        SysOutcome::Done(Ok([new as u64, 0]))
    }

    fn ftruncate(&mut self, _ctx: &mut SymCtx<'_, '_>, _fd: u64, length: u64) -> SysOutcome {
        if !self.writable {
            return SysOutcome::Done(Err(Errno::EINVAL));
        }
        self.data.resize(length as usize, 0);
        self.dirty = true;
        SysOutcome::Done(Ok([0, 0]))
    }

    fn fstat(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, statbuf: u64) -> SysOutcome {
        // Report the *logical* size, not the compressed size.
        let out = ctx.down_args(Sysno::Fstat, [fd, statbuf, 0, 0, 0, 0]);
        if let SysOutcome::Done(Ok(_)) = out {
            if let Ok(mut st) = ctx.read_struct::<Stat>(statbuf) {
                st.size = self.data.len() as u64;
                let _ = ctx.write_struct(statbuf, &st);
            }
        }
        out
    }

    fn close(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        if self.dirty {
            let packed = rle_compress(&self.data);
            let _ = ctx.down_args(Sysno::Ftruncate, [fd, 0, 0, 0, 0, 0]);
            let _ = ctx.down_args(Sysno::Lseek, [fd, 0, 0, 0, 0, 0]);
            let mut off = 0;
            while off < packed.len() {
                let chunk = &packed[off..(off + 1024).min(packed.len())];
                let Ok(addr) = self.scratch.write(ctx, chunk) else {
                    break;
                };
                match ctx.down_args(Sysno::Write, [fd, addr, chunk.len() as u64, 0, 0, 0]) {
                    SysOutcome::Done(Ok([n, _])) if n > 0 => off += n as usize,
                    _ => break,
                }
                self.scratch.reset();
            }
        }
        ctx.down_args(Sysno::Close, [fd, 0, 0, 0, 0, 0])
    }

    fn clone_object(&self) -> Box<dyn OpenObject> {
        Box::new(ZipObject {
            data: self.data.clone(),
            pos: self.pos,
            dirty: self.dirty,
            readable: self.readable,
            writable: self.writable,
            scratch: self.scratch.deep_clone(),
        })
    }
}

/// The ready-to-load compressing agent.
pub struct ZipAgent;

impl ZipAgent {
    /// Compresses everything under `prefix`.
    #[must_use]
    pub fn boxed(prefix: &[u8]) -> Box<Symbolic<FsAgent<ZipSet>>> {
        Box::new(Symbolic::new(FsAgent::new(
            "zip",
            ZipSet {
                prefix: prefix.to_vec(),
            },
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    #[test]
    fn rle_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"abc".to_vec(),
            vec![7; 1000],
            b"aaaabbbbccccd".to_vec(),
            vec![ESC, ESC, ESC],
            (0..=255u8).collect(),
            vec![0xFE, 4, 1, 0xFE],
        ];
        for c in cases {
            let packed = rle_compress(&c);
            assert_eq!(rle_decompress(&packed).unwrap(), c, "case {c:?}");
        }
        // Long runs actually shrink.
        assert!(rle_compress(&vec![0u8; 4096]).len() < 100);
        // Truncated stream is an error, not a panic.
        assert!(rle_decompress(&[ESC]).is_err());
        assert!(rle_decompress(&[ESC, 5]).is_err());
    }

    #[test]
    fn transparent_compression_round_trip() {
        let src = r#"
            .data
            path: .asciz "/arch/blob.bin"
            buf:  .space 64
            .text
            main:
                la r0, path
                li r1, 0x601
                li r2, 420
                sys open
                mov r3, r0
                ; write 48 'x' bytes (compressible)
                la  r1, buf
                li  r5, 48
                li  r6, 120     ; 'x'
                mov r10, r1
            fill:
                jz  r5, wr
                stb r6, (r10)
                addi r10, r10, 1
                addi r5, r5, -1
                jmp fill
            wr:
                mov r0, r3
                la  r1, buf
                li  r2, 48
                sys write
                mov r0, r3
                sys close
                ; read it back
                la r0, path
                li r1, 0
                li r2, 0
                sys open
                mov r3, r0
                mov r0, r3
                la r1, buf
                li r2, 64
                sys read
                mov r2, r0
                li r0, 1
                la r1, buf
                sys write
                mov r0, r3
                sys close
                li r0, 0
                sys exit
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        k.mkdir_p(b"/arch").unwrap();
        let pid = k.spawn_image(&img, &[b"z"], b"z");
        let mut router = InterposedRouter::new();
        router.push_agent(pid, ZipAgent::boxed(b"/arch"));
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);

        assert_eq!(k.console.output_string(), "x".repeat(48));
        let at_rest = k.read_file(b"/arch/blob.bin").unwrap();
        assert!(
            at_rest.len() < 48,
            "stored compressed ({} bytes)",
            at_rest.len()
        );
        assert_eq!(rle_decompress(&at_rest).unwrap(), vec![b'x'; 48]);
    }
}
