//! # ia-conform — deterministic syscall fuzzing + differential conformance
//!
//! The paper's central claim is *transparency*: an unmodified program
//! behaves identically with and without interposition agents (§3.1).
//! This crate turns that claim into systematic coverage:
//!
//! 1. [`gen`] — a seeded random-program generator over the full syscall
//!    surface (files, pipes, fork/exec/wait, signals, itimers, select,
//!    sockets, chdir/permissions) whose output always terminates, even
//!    under injected errors.
//! 2. [`oracle`] — a differential executor running each program under
//!    {bare, pass-through, batched, stacked} agents × {sliced, legacy}
//!    schedulers × {fast path on, off} and asserting the observables
//!    agree bit for bit.
//! 3. [`fault`] — systematic error injection at each interception point,
//!    asserting the kernel stays consistent (no leaked descriptors or
//!    pipes, wait converges, scheduler queues sane).
//! 4. [`shrink`] + [`trace`] — on failure, ddmin minimization and a
//!    replayable `.conf` file, so a CI failure reproduces locally with
//!    `cargo run -p ia-conform -- --replay file.conf`.
//! 5. [`soundness`] — cross-validation of the `ia-analyze` static
//!    analyzer: the trap numbers a program actually issues must be a
//!    subset of its statically inferred footprint, for every seed.
//!
//! [`mutant`] holds deliberately broken agents proving the oracle and
//! shrinker actually work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod fleet;
pub mod flight;
pub mod flowsound;
pub mod gen;
pub mod mutant;
pub mod oracle;
pub mod shrink;
pub mod soundness;
pub mod trace;
pub mod tree;

pub use fault::{check_faults, fault_schedule, run_fault_case, FaultCase, FaultInjector};
pub use fleet::{check_fleet, FleetStats};
pub use flowsound::{check_flow_faults, check_flow_soundness, flow_spec, static_flows};
pub use gen::{sample, ConfOp, OpSet, Program};
pub use oracle::{
    check_client_equiv, check_program, run_config, run_config_fast, run_stack, run_stack_fast,
    Observation, SchedKind, StackKind,
};
pub use shrink::shrink;
pub use soundness::{check_soundness, static_footprint, SyscallRecorder};
pub use trace::Repro;
pub use tree::{check_tree, run_tree_case, TreeCase, TreeStats};
