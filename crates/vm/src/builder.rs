//! A programmatic assembler: build images from Rust without writing
//! assembly text. The benchmark workloads use this to generate programs
//! with precisely controlled syscall mixes.

use std::collections::HashMap;

use ia_abi::Sysno;

use crate::image::{Image, DATA_BASE};
use crate::insn::{Insn, Reg};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental image builder with label fix-ups.
///
/// ```
/// use ia_vm::ProgramBuilder;
/// use ia_abi::Sysno;
///
/// let mut b = ProgramBuilder::new();
/// let msg = b.data_asciz(b"hello\n");
/// b.li(0, 1);          // fd
/// b.la(1, msg);        // buf
/// b.li(2, 6);          // len
/// b.sys(Sysno::Write);
/// b.li(0, 0);
/// b.sys(Sysno::Exit);
/// let image = b.build();
/// assert!(image.code.len() >= 8);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Insn>,
    data: Vec<u8>,
    entry: u64,
    labels: HashMap<Label, u64>,
    fixups: Vec<(usize, Label)>,
    next_label: usize,
}

impl ProgramBuilder {
    /// A fresh, empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    // ---- data segment ---------------------------------------------------

    /// Appends raw bytes to the data segment, returning their absolute
    /// address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends a NUL-terminated string, returning its address.
    pub fn data_asciz(&mut self, s: &[u8]) -> u64 {
        let addr = self.data_bytes(s);
        self.data.push(0);
        addr
    }

    /// Reserves `n` zero bytes, returning their address.
    pub fn data_space(&mut self, n: usize) -> u64 {
        let addr = DATA_BASE + self.data.len() as u64;
        self.data.extend(std::iter::repeat_n(0u8, n));
        addr
    }

    /// Appends a little-endian u64, returning its address.
    pub fn data_quad(&mut self, v: u64) -> u64 {
        self.data_bytes(&v.to_le_bytes())
    }

    // ---- labels -----------------------------------------------------------

    /// Creates an unbound label for forward references.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current code position.
    pub fn bind(&mut self, label: Label) {
        let prev = self.labels.insert(label, self.code.len() as u64);
        assert!(prev.is_none(), "label bound twice");
    }

    /// Creates a label bound right here.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Marks the current position as the entry point (defaults to 0).
    pub fn entry_here(&mut self) {
        self.entry = self.code.len() as u64;
    }

    // ---- instructions ----------------------------------------------------

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Insn) {
        self.code.push(i);
    }

    /// `rd ← imm`
    pub fn li(&mut self, rd: Reg, v: u64) {
        self.emit(Insn::Li(rd, v));
    }

    /// `rd ← address` (address from [`Self::data_asciz`] etc.)
    pub fn la(&mut self, rd: Reg, addr: u64) {
        self.emit(Insn::Li(rd, addr));
    }

    /// `rd ← rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Insn::Mov(rd, rs));
    }

    /// `rd ← rs + imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i64) {
        self.emit(Insn::Addi(rd, rs, imm));
    }

    /// `rd ← mem64[base + off]`
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i64) {
        self.emit(Insn::Ld(rd, base, off));
    }

    /// `mem64[base + off] ← rs`
    pub fn st(&mut self, base: Reg, rs: Reg, off: i64) {
        self.emit(Insn::St(base, rs, off));
    }

    fn branch(&mut self, label: Label, make: impl FnOnce(u64) -> Insn) {
        if let Some(&t) = self.labels.get(&label) {
            self.emit(make(t));
        } else {
            self.fixups.push((self.code.len(), label));
            self.emit(make(u64::MAX)); // patched in build()
        }
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, label: Label) {
        self.branch(label, Insn::Jmp);
    }

    /// Jump if `rs == 0`.
    pub fn jz(&mut self, rs: Reg, label: Label) {
        self.branch(label, move |t| Insn::Jz(rs, t));
    }

    /// Jump if `rs != 0`.
    pub fn jnz(&mut self, rs: Reg, label: Label) {
        self.branch(label, move |t| Insn::Jnz(rs, t));
    }

    /// Call a labelled procedure.
    pub fn call(&mut self, label: Label) {
        self.branch(label, Insn::Call);
    }

    /// Return from a procedure.
    pub fn ret(&mut self) {
        self.emit(Insn::Ret);
    }

    /// Loads the syscall number and traps.
    pub fn sys(&mut self, nr: Sysno) {
        self.li(7, u64::from(nr.number()));
        self.emit(Insn::Sys);
    }

    /// Traps with whatever is already in `r7` (for testing unknown numbers).
    pub fn sys_raw(&mut self) {
        self.emit(Insn::Sys);
    }

    /// Stops the machine (tests only; programs should `exit`).
    pub fn halt(&mut self) {
        self.emit(Insn::Halt);
    }

    /// A compute loop burning `n` iterations (2 instructions each), used by
    /// workloads to model CPU-bound phases.
    pub fn burn(&mut self, n: u64) {
        let reg: Reg = 11; // scratch, by convention untouched by helpers
        self.li(reg, n);
        let top = self.here();
        self.emit(Insn::Addi(reg, reg, -1));
        self.jnz(reg, top);
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolves fix-ups and produces the image.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound — a builder bug, not a
    /// runtime condition.
    #[must_use]
    pub fn build(mut self) -> Image {
        for (pos, label) in self.fixups {
            let target = *self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("unbound label {label:?}"));
            self.code[pos] = match self.code[pos] {
                Insn::Jmp(_) => Insn::Jmp(target),
                Insn::Jz(r, _) => Insn::Jz(r, target),
                Insn::Jnz(r, _) => Insn::Jnz(r, target),
                Insn::Call(_) => Insn::Call(target),
                other => other,
            };
        }
        Image {
            entry: self.entry,
            code: self.code,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{step, StepEvent, VmState};
    use crate::mem::AddressSpace;

    fn run_to_end(img: &Image) -> (VmState, StepEvent) {
        let mut vm = VmState::new(img.entry, 1 << 16);
        let mut mem = AddressSpace::new(1 << 16, 0);
        img.load_into(&mut mem).unwrap();
        loop {
            let ev = step(&mut vm, &mut mem, &img.code);
            if ev != StepEvent::Continue {
                return (vm, ev);
            }
        }
    }

    #[test]
    fn forward_references_are_patched() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.li(0, 1);
        b.jnz(0, end); // forward
        b.li(0, 99); // skipped
        b.bind(end);
        b.halt();
        let (vm, ev) = run_to_end(&b.build());
        assert_eq!(ev, StepEvent::Halted);
        assert_eq!(vm.regs[0], 1);
    }

    #[test]
    fn backward_references_resolve_immediately() {
        let mut b = ProgramBuilder::new();
        b.li(5, 3);
        let top = b.here();
        b.addi(5, 5, -1);
        b.jnz(5, top);
        b.halt();
        let (vm, _) = run_to_end(&b.build());
        assert_eq!(vm.regs[5], 0);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_build() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    fn data_helpers_compute_addresses() {
        let mut b = ProgramBuilder::new();
        let a = b.data_asciz(b"abc");
        let q = b.data_quad(77);
        let s = b.data_space(8);
        assert_eq!(a, DATA_BASE);
        assert_eq!(q, DATA_BASE + 4);
        assert_eq!(s, DATA_BASE + 12);
        b.halt();
        let img = b.build();
        assert_eq!(img.data.len(), 20);
        assert_eq!(&img.data[..4], b"abc\0");
    }

    #[test]
    fn burn_burns() {
        let mut b = ProgramBuilder::new();
        b.burn(100);
        b.halt();
        let (vm, ev) = run_to_end(&b.build());
        assert_eq!(ev, StepEvent::Halted);
        // li + 100 * (addi + jnz) + halt
        assert_eq!(vm.insns_retired, 1 + 200 + 1);
    }

    #[test]
    fn entry_here_moves_entry() {
        let mut b = ProgramBuilder::new();
        b.li(0, 1);
        b.entry_here();
        b.halt();
        let img = b.build();
        assert_eq!(img.entry, 1);
    }
}
