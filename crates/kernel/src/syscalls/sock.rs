//! Socket system calls (unix-domain style, rendezvous through the
//! filesystem name space).

use ia_abi::{Errno, OpenFlags, RawArgs};
use ia_vfs::InodeKind;

use super::{done, SysOutcome};
use crate::files::{FdEntry, FileKind};
use crate::kernel::{Kernel, WakeEvent};
use crate::process::{Pid, WaitChannel};

impl Kernel {
    fn install_sock_fd(&mut self, pid: Pid, sid: crate::files::SockId) -> Result<u64, Errno> {
        let idx = self
            .files
            .insert(FileKind::Socket(sid), OpenFlags::new(OpenFlags::O_RDWR));
        match self.proc_mut(pid)?.fds.alloc(
            0,
            FdEntry {
                file: idx,
                cloexec: false,
            },
        ) {
            Ok(fd) => Ok(fd),
            Err(e) => {
                self.release_file(idx);
                Err(e)
            }
        }
    }

    fn sock_of_fd(&self, pid: Pid, fd: u64) -> Result<crate::files::SockId, Errno> {
        let entry = self.proc(pid)?.fds.get(fd)?;
        match self.files.get(entry.file)?.kind {
            FileKind::Socket(sid) => Ok(sid),
            _ => Err(Errno::ENOTSOCK),
        }
    }

    /// `socket(domain, type, protocol)` — one local stream domain exists.
    pub(crate) fn sys_socket(&mut self, pid: Pid, _args: &RawArgs) -> SysOutcome {
        let sid = self.sockets.create();
        match self.install_sock_fd(pid, sid) {
            Ok(fd) => SysOutcome::ok1(fd),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `socketpair(domain, type, protocol)` → two connected descriptors.
    pub(crate) fn sys_socketpair(&mut self, pid: Pid, _args: &RawArgs) -> SysOutcome {
        let (a, b) = self.sockets.pair(&mut self.fs.pipes);
        let r = (|| {
            let fa = self.install_sock_fd(pid, a)?;
            match self.install_sock_fd(pid, b) {
                Ok(fb) => Ok([fa, fb]),
                Err(e) => {
                    let entry = self.proc_mut(pid)?.fds.remove(fa).expect("just allocated");
                    self.release_file(entry.file);
                    Err(e)
                }
            }
        })();
        done(r)
    }

    /// `bind(fd, path, 0)` — creates a socket node at `path`.
    pub(crate) fn sys_bind(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let sid = self.sock_of_fd(pid, args[0])?;
            let path = self.read_path(pid, args[1])?;
            let (dir, base) = self.resolve_parent_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            let umask = self.proc(pid)?.umask;
            let now = self.clock.now();
            let ino = self.fs.mksock(dir, &base, 0o777 & !umask, cred, now)?;
            self.sockets.bind(sid, ino)?;
            Ok(())
        })();
        super::done0(r)
    }

    /// `connect(fd, path, 0)` — synchronous connect to a listening socket.
    pub(crate) fn sys_connect(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let sid = self.sock_of_fd(pid, args[0])?;
            let path = self.read_path(pid, args[1])?;
            let ino = self.resolve_for(pid, &path)?;
            if !matches!(self.fs.get(ino)?.kind, InodeKind::Socket) {
                return Err(Errno::ECONNREFUSED);
            }
            let cred = self.proc(pid)?.cred();
            if !self.fs.get(ino)?.permits(cred, 2) {
                return Err(Errno::EACCES);
            }
            self.sockets.connect(sid, ino, &mut self.fs.pipes)?;
            // Wake any blocked acceptor.
            self.wakeups.push(WakeEvent::Sock(sid));
            Ok(())
        })();
        super::done0(r)
    }

    /// `listen(fd, backlog)`
    pub(crate) fn sys_listen(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let sid = self.sock_of_fd(pid, args[0])?;
            self.sockets.listen(sid, args[1] as usize)
        })();
        super::done0(r)
    }

    /// `accept(fd, addr, addrlen)` — blocks until a connection is queued.
    pub(crate) fn sys_accept(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let sid = match self.sock_of_fd(pid, args[0]) {
            Ok(s) => s,
            Err(e) => return SysOutcome::err(e),
        };
        match self.sockets.accept(sid) {
            Ok(Some(conn)) => match self.install_sock_fd(pid, conn) {
                Ok(fd) => SysOutcome::ok1(fd),
                Err(e) => SysOutcome::err(e),
            },
            Ok(None) => SysOutcome::Block(WaitChannel::SockAccept),
            Err(e) => SysOutcome::err(e),
        }
    }
}
