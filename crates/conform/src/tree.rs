//! Fault-**tree** exploration: branch the kernel at every injected fault
//! site and explore both continuations.
//!
//! The linear fault schedule ([`crate::fault`]) drives one trajectory per
//! case — every n-th call of one syscall fails. Tree mode instead treats
//! each intercepted call of the target syscall as a *decision site*: the
//! world is captured once as a [`WorldSnapshot`] template (O(1) for the
//! filesystem, thanks to structural sharing), and each leaf of the binary
//! decision tree — a distinct fault/pass assignment for the first
//! `depth` sites — runs in a world branched from that template by
//! [`restore_world`]. The injector follows the leaf's decision string;
//! sites beyond the explored frontier pass through.
//!
//! Every leaf is executed twice — sliced scheduler with the trap fast
//! path on, and the per-instruction legacy scheduler with it off — and
//! the two observables must agree bit for bit (the conformance oracle,
//! now under every fault pattern, not just the happy path). Every leaf
//! must terminate and leave the kernel quiescent, and the all-pass leaf
//! must be client-identical to a bare straight-line run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ia_abi::{Errno, RawArgs, Sysno};
use ia_interpose::{
    restore_world, snapshot_world, wrap_process, Agent, InterestSet, InterposedRouter, SysCtx,
    WorldSnapshot,
};
use ia_kernel::{
    run, run_legacy, Engine, Kernel, KernelBuilder, RunLimits, RunOutcome, SysOutcome,
};

use crate::gen::Program;
use crate::oracle::{describe_client_diff, describe_diff, Observation, SchedKind, StackKind};

/// One tree-mode exploration target, replayable from a `.conf` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCase {
    /// Syscall whose interceptions become decision sites.
    pub target: Sysno,
    /// Errno injected on the "fault" side of each decision.
    pub errno: Errno,
    /// Frontier: number of leading sites explored both ways.
    pub depth: usize,
}

impl std::fmt::Display for TreeCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tree {} x {} to depth {}",
            self.target.name(),
            self.errno.name(),
            self.depth
        )
    }
}

/// Counters from one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// (target, errno) pairs explored.
    pub cases: u64,
    /// Decision-tree leaves executed (each under both schedulers).
    pub leaves: u64,
    /// Faults actually injected across all leaves.
    pub injected: u64,
}

/// Decision-driven injector: the i-th intercepted call of `target`
/// (globally, across fork-inherited copies — the site counter is shared)
/// consults decision `i` of the leaf's schedule; sites beyond it pass.
struct TreeInjector {
    target: Sysno,
    errno: Errno,
    site: Arc<AtomicU64>,
    schedule: Arc<Mutex<Vec<bool>>>,
    injected: Arc<AtomicU64>,
}

impl Agent for TreeInjector {
    fn name(&self) -> &'static str {
        "tree-injector"
    }
    fn interests(&self) -> InterestSet {
        InterestSet::of(&[self.target])
    }
    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        let site = self.site.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .schedule
            .lock()
            .unwrap()
            .get(usize::try_from(site).unwrap_or(usize::MAX))
            .copied()
            .unwrap_or(false);
        if fault {
            self.injected.fetch_add(1, Ordering::Relaxed);
            let vnow = ctx.kernel.clock.elapsed_ns();
            ctx.kernel
                .obs
                .fault_injected(ctx.pid, nr, self.errno as u32, vnow);
            return SysOutcome::Done(Err(self.errno));
        }
        ctx.down(nr, args)
    }
    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(TreeInjector {
            target: self.target,
            errno: self.errno,
            site: self.site.clone(),
            schedule: self.schedule.clone(),
            injected: self.injected.clone(),
        })
    }
}

/// One scheduler configuration's world: the live kernel+router pair and
/// the pristine template every leaf branches from.
struct TreeWorld {
    k: Kernel,
    router: InterposedRouter,
    template: WorldSnapshot,
    sched: SchedKind,
    site: Arc<AtomicU64>,
    schedule: Arc<Mutex<Vec<bool>>>,
    injected: Arc<AtomicU64>,
}

impl TreeWorld {
    fn new(
        program: &Program,
        case: TreeCase,
        fast: bool,
        sched: SchedKind,
        engine: Engine,
    ) -> TreeWorld {
        let mut k = KernelBuilder::new().fast_path(fast).engine(engine).build();
        Program::setup(&mut k);
        let pid = k.spawn_image(&program.compile(), &[b"conform"], b"conform");
        let mut router = InterposedRouter::new();
        let site = Arc::new(AtomicU64::new(0));
        let schedule = Arc::new(Mutex::new(Vec::new()));
        let injected = Arc::new(AtomicU64::new(0));
        wrap_process(
            &mut k,
            &mut router,
            pid,
            Box::new(TreeInjector {
                target: case.target,
                errno: case.errno,
                site: site.clone(),
                schedule: schedule.clone(),
                injected: injected.clone(),
            }),
            &[],
        );
        // The template: everything is loaded but nothing has run. Restoring
        // it is the branch point for every leaf.
        let template = snapshot_world(&mut k, &mut router);
        TreeWorld {
            k,
            router,
            template,
            sched,
            site,
            schedule,
            injected,
        }
    }

    fn snapshot_id(&self) -> u64 {
        self.template.id()
    }

    /// Branches a fresh world off the template and runs one leaf to
    /// completion. Returns the observation and the number of decision
    /// sites the leaf actually passed through.
    fn run_leaf(&mut self, schedule: &[bool]) -> Result<(Observation, u64), String> {
        restore_world(&mut self.k, &mut self.router, &self.template);
        *self.schedule.lock().unwrap() = schedule.to_vec();
        self.site.store(0, Ordering::Relaxed);
        self.injected.store(0, Ordering::Relaxed);
        let limits = RunLimits {
            max_steps: crate::oracle::MAX_STEPS,
        };
        let outcome = match self.sched {
            SchedKind::Sliced => run(&mut self.k, &mut self.router, limits),
            SchedKind::Legacy => run_legacy(&mut self.k, &mut self.router, limits),
        };
        if outcome != RunOutcome::AllExited {
            return Err(format!("wedged the machine: {outcome:?}"));
        }
        let leaks = self.k.check_quiescent();
        if !leaks.is_empty() {
            return Err(format!("left kernel inconsistent: {leaks:?}"));
        }
        Ok((
            Observation {
                outcome,
                obs: self.k.observable(),
                leaks,
            },
            self.site.load(Ordering::Relaxed),
        ))
    }
}

fn show_schedule(s: &[bool]) -> String {
    if s.is_empty() {
        "-".into()
    } else {
        s.iter().map(|&f| if f { 'F' } else { 'p' }).collect()
    }
}

/// An injector following the maximally-faulted frontier path — used to
/// re-run a tree repro under the flight recorder so the recording shows
/// the injections.
#[must_use]
pub fn frontier_injector(case: TreeCase) -> Box<dyn Agent> {
    Box::new(TreeInjector {
        target: case.target,
        errno: case.errno,
        site: Arc::new(AtomicU64::new(0)),
        schedule: Arc::new(Mutex::new(vec![true; case.depth])),
        injected: Arc::new(AtomicU64::new(0)),
    })
}

/// Explores the decision tree for one (target, errno) pair. Leaves are
/// enumerated depth-first: each executed leaf contributes one child per
/// not-yet-decided site it passed through inside the frontier.
fn explore_case(
    program: &Program,
    case: TreeCase,
    bare: &Observation,
    stats: &mut TreeStats,
) -> Result<(), String> {
    let mut fast = TreeWorld::new(program, case, true, SchedKind::Sliced, Engine::Fused);
    let mut slow = TreeWorld::new(program, case, false, SchedKind::Legacy, Engine::Plain);
    let snap_ids = (fast.snapshot_id(), slow.snapshot_id());
    let ctx = move |schedule: &[bool], extra: &str| {
        format!(
            "[{case}, schedule {}, snapshots {}/{}] {extra}",
            show_schedule(schedule),
            snap_ids.0,
            snap_ids.1
        )
    };

    let mut pending: Vec<Vec<bool>> = vec![Vec::new()];
    while let Some(schedule) = pending.pop() {
        let (a, sites_a) = fast
            .run_leaf(&schedule)
            .map_err(|e| ctx(&schedule, &format!("sliced+fast {e}")))?;
        let (b, sites_b) = slow
            .run_leaf(&schedule)
            .map_err(|e| ctx(&schedule, &format!("legacy {e}")))?;
        if let Some(d) = describe_diff("sliced+fast", &a, "legacy", &b) {
            return Err(ctx(&schedule, &format!("scheduler divergence: {d}")));
        }
        if sites_a != sites_b {
            return Err(ctx(
                &schedule,
                &format!("decision sites diverged: sliced+fast={sites_a} vs legacy={sites_b}"),
            ));
        }
        if schedule.is_empty() {
            // The all-pass leaf is the straight-line program: interception
            // must be transparent to the client.
            if let Some(d) = describe_client_diff("bare", bare, "all-pass leaf", &a) {
                return Err(ctx(&schedule, &format!("transparency violation: {d}")));
            }
        }
        stats.leaves += 1;
        stats.injected += fast.injected.load(Ordering::Relaxed);
        // Branch: every undecided site this leaf passed through, up to the
        // frontier, spawns the sibling where that site faults instead.
        let reach = usize::try_from(sites_a).unwrap_or(usize::MAX);
        for i in schedule.len()..reach.min(case.depth) {
            let mut child = schedule.clone();
            child.resize(i, false);
            child.push(true);
            pending.push(child);
        }
    }
    stats.cases += 1;
    Ok(())
}

fn bare_observation(program: &Program) -> Result<Observation, String> {
    let bare = crate::oracle::run_stack(program, StackKind::Bare, SchedKind::Sliced);
    if bare.outcome != RunOutcome::AllExited || !bare.leaks.is_empty() {
        return Err(format!(
            "[bare] did not complete cleanly: {:?} {:?}",
            bare.outcome, bare.leaks
        ));
    }
    Ok(bare)
}

/// Explores one (target, errno, depth) case in isolation — the replay and
/// shrink entry point for tree repros.
pub fn run_tree_case(program: &Program, case: TreeCase) -> Result<TreeStats, String> {
    let bare = bare_observation(program)?;
    let mut stats = TreeStats::default();
    explore_case(program, case, &bare, &mut stats)?;
    Ok(stats)
}

/// Tree-explores every syscall on the program's surface × a representative
/// errno pair. The returned stats describe the whole forest; a failure
/// names the case that exposed it.
pub fn check_tree(program: &Program, depth: usize) -> Result<TreeStats, (TreeCase, String)> {
    let probe = TreeCase {
        target: Sysno::Exit,
        errno: Errno::EIO,
        depth,
    };
    let bare = bare_observation(program).map_err(|e| (probe, e))?;
    let mut stats = TreeStats::default();
    for target in program.syscall_surface() {
        for errno in [Errno::EIO, Errno::EPERM] {
            let case = TreeCase {
                target,
                errno,
                depth,
            };
            explore_case(program, case, &bare, &mut stats).map_err(|e| (case, e))?;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{sample, OpSet};

    #[test]
    fn tree_explores_expected_leaf_count() {
        // A file-op program with plenty of write sites: depth d with >= d
        // sites on every path gives exactly 2^d leaves.
        let p = sample(3, 12, OpSet::FS_CLIENT);
        let case = TreeCase {
            target: Sysno::Write,
            errno: Errno::EIO,
            depth: 2,
        };
        let stats = run_tree_case(&p, case).unwrap();
        assert_eq!(stats.leaves, 4, "binary tree of depth 2");
        assert!(stats.injected >= 2, "the faulted legs inject");
    }

    #[test]
    fn tree_holds_on_generated_programs() {
        for seed in [2, 7] {
            let p = sample(seed, 10, OpSet::ALL);
            let stats =
                check_tree(&p, 1).unwrap_or_else(|(case, d)| panic!("seed {seed}, {case}: {d}"));
            assert!(stats.leaves >= stats.cases, "at least the all-pass leaf");
        }
    }
}
