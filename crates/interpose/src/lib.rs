//! # ia-interpose — the system-call interception mechanism
//!
//! The simulated equivalent of the Mach 2.5 facilities the paper builds on:
//!
//! | Paper (Mach 2.5)          | Here                                      |
//! |---------------------------|-------------------------------------------|
//! | `task_set_emulation()`    | per-process [`InterestSet`] registration  |
//! | syscall redirection       | [`InterposedRouter`] in the scheduler     |
//! | `htg_unix_syscall()`      | [`SysCtx::down`]                          |
//! | agent loader program      | [`loader`]                                |
//! | agents forked with client | chain cloning + `init_child`              |
//!
//! An *agent* ([`Agent`]) is user code that both uses and provides the
//! system interface. Agents stack: each process carries a chain, traps
//! enter at the top, and every agent's `down()` reaches the next instance
//! below — another agent or the kernel (Figures 1-2 through 1-4).
//!
//! Interception is pay-per-use, as measured in the paper: a trap whose
//! number no agent registered interest in goes straight to the kernel with
//! zero added cost; an intercepted trap is charged the measured intercept
//! (30 µs) and downcall (37 µs) constants against the virtual clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod interest;
pub mod loader;
pub mod router;

pub use agent::{dispatch_chain, dispatch_chain_from, Agent, SignalVerdict, SysCtx};
pub use ia_kernel::BatchCall;
pub use interest::InterestSet;
pub use loader::{load_with_agent, spawn_with_agent, wrap_process};
pub use router::{
    restore_world, snapshot_world, InterposedRouter, RouterSnapshot, RouterStats, WorldSnapshot,
    BATCH_CAP,
};
