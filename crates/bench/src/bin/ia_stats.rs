//! `ia-stats` — the ia-obs observability report tool.
//!
//! ```text
//! cargo run -p ia-bench --release --bin ia-stats              # text report
//! cargo run -p ia-bench --release --bin ia-stats -- --json    # BENCH_2 JSON
//! cargo run -p ia-bench --release --bin ia-stats -- --fusion  # fusion histogram
//! cargo run -p ia-bench --release --bin ia-stats -- --selftest
//! ```
//!
//! The default and `--json` modes run the BENCH_2 measurement (the
//! paper-§6-shaped per-agent overhead table plus per-layer `getpid()`
//! attribution) and print it; `--json` prints the same document that
//! `reproduce --json` writes to `BENCH_2.json`.
//!
//! `--fusion` runs representative workloads on the fused engine and
//! prints a JSON histogram of executed superinstructions per family,
//! plus the exec-cache hit/miss counters — CI uploads it as an artifact.
//!
//! `--selftest` exercises the recorder and metrics invariants end to end
//! without any workload dependence — tier-1 runs it on every push.

use ia_abi::Sysno;
use ia_agents::Timex;
use ia_bench::overhead;
use ia_interpose::InterposedRouter;
use ia_kernel::{KernelBuilder, RunOutcome};
use ia_obs::report::{json_escape, render_events_text, render_metrics_json};
use ia_obs::{Event, Obs, Outcome};
use ia_workloads::micro::{self, MicroCall};
use ia_workloads::runner::{run_workload_observed, AgentKind, SchedKind, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--selftest") {
        selftest();
        println!("ia-stats selftest: ok");
        return;
    }
    if args.iter().any(|a| a == "--fusion") {
        print!("{}", render_fusion_json());
        return;
    }
    let b = overhead::run_all();
    if args.iter().any(|a| a == "--json") {
        print!("{}", overhead::render_json(&b));
    } else {
        print!("{}", overhead::render_text(&b));
        print!("{}", render_fast_stats());
    }
}

/// Runs a short probe with the trap fast path on — a `getpid()` loop (not
/// interposed by the timex chain, so it is answered in the VM loop) and a
/// `gettimeofday()` loop (interposed, so every call takes the slow path) —
/// and renders the kernel's per-`(pid, syscall)` hit/miss counters.
fn render_fast_stats() -> String {
    let mut k = KernelBuilder::new().build();
    micro::setup(&mut k);
    let mut router = InterposedRouter::new();
    for call in [MicroCall::Getpid, MicroCall::Gettimeofday] {
        let img = micro::loop_image(call, 256);
        let pid = k.spawn_image(&img, &[b"probe"], b"probe");
        ia_interpose::wrap_process(&mut k, &mut router, pid, Timex::boxed(3600), &[]);
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    }
    let mut s = String::from("\nfast path probe (getpid + gettimeofday loops under timex):\n");
    s.push_str("  pid  syscall            hits    misses\n");
    for ((pid, nr), (hits, misses)) in k.fast_stats.rows() {
        let name = Sysno::from_u32(nr).map_or_else(|| format!("nr{nr}"), |s| format!("{s:?}"));
        s.push_str(&format!("  {pid:<4} {name:<16} {hits:>6} {misses:>9}\n"));
    }
    s.push_str(&format!(
        "  total: {} answered in the VM loop, {} via full dispatch\n",
        k.fast_stats.hits(),
        k.fast_stats.misses()
    ));
    s
}

/// Runs representative workloads on the fused engine — a compute
/// countdown loop, a `getpid()` trap loop, and a fork/exec storm of one
/// installed tool — and renders the per-family superinstruction hit
/// histogram plus the exec-cache counters as a JSON document.
fn render_fusion_json() -> String {
    // The in-loop trap fast path would swallow single-process bursts via
    // the step-based lane; this histogram profiles the fused engine, so
    // force every slice through it.
    let mut k = KernelBuilder::new().fast_path(false).build();
    micro::setup(&mut k);

    // Compute loop: one pair from every arithmetic fusion family per
    // iteration (ld+alu, cmp+branch, addi+branch).
    let compute = ia_vm::assemble(
        r#"
        .data
        cell: .space 8
        .text
        main:
            la  r9, cell
            li  r13, 20000
        loop:
            ld  r5, (r9)
            add r5, r5, r13
            seq r4, r13, r14
            jnz r4, done
            addi r13, r13, -1
            jnz r13, loop
        done:
            li r0, 0
            sys exit
        "#,
    )
    .expect("compute loop assembles");
    k.spawn_image(&compute, &[b"compute"], b"compute");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);

    // Trap loop: li r7 + sys pairs.
    k.spawn_image(&micro::loop_image(MicroCall::Getpid, 2000), &[b"t"], b"t");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);

    // Exec storm: fork/exec the same installed tool, exercising the
    // digest-keyed image cache.
    let tool = ia_vm::assemble("main: li r0, 0\n sys exit\n").expect("tool assembles");
    k.install_image(b"/bin/tool", &tool).expect("tool installs");
    let driver = ia_vm::assemble(
        r#"
        .data
        path: .asciz "/bin/tool"
        .text
        main:
            li  r12, 8
        loop:
            jz  r12, fin
            sys fork
            jz  r0, child
            li  r0, 0
            li  r1, 0
            li  r2, 0
            li  r3, 0
            sys wait4
            addi r12, r12, -1
            jmp loop
        child:
            la  r0, path
            li  r1, 0
            li  r2, 0
            sys execve
            li  r0, 99
            sys exit
        fin:
            li r0, 0
            sys exit
        "#,
    )
    .expect("driver assembles");
    k.spawn_image(&driver, &[b"driver"], b"driver");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);

    let rows = k.fusion_stats.rows();
    let (cache_hits, cache_misses) = k.exec_cache_stats();
    let mut s = ia_obs::report::json_header("report", "fusion-histogram");
    s.push_str(
        "  \"description\": \"superinstructions executed per fusion family on \
         representative workloads (compute loop, getpid loop, exec storm)\",\n",
    );
    s.push_str("  \"histogram\": [\n");
    for (i, (family, hits)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"family\": \"{}\", \"hits\": {}}}{}\n",
            json_escape(family),
            hits,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"superinsns_executed\": {},\n",
        k.fusion_stats.total()
    ));
    s.push_str(&format!(
        "  \"exec_cache\": {{\"hits\": {cache_hits}, \"misses\": {cache_misses}}}\n"
    ));
    s.push_str("}\n");
    s
}

/// Checks the recorder, metrics, and report invariants; panics (non-zero
/// exit) on any violation.
fn selftest() {
    ring_buffer_invariants();
    layer_attribution_is_exclusive();
    json_escaper_round_trips();
    recorder_is_inert_on_a_real_workload();
    no_phantom_interpose_frames_on_bypassed_calls();
}

/// The ring keeps exactly the last `capacity` events, counts what it
/// dropped, and stamps strictly increasing sequence numbers.
fn ring_buffer_invariants() {
    let mut obs = Obs::new();
    assert!(!obs.is_enabled(), "fresh recorder must start disabled");
    obs.trap_dispatch(1, 20, 0, 0); // disabled: must be a no-op
    assert_eq!(obs.recorded(), 0, "disabled recorder recorded an event");

    obs.enable(4);
    for i in 0..7u32 {
        obs.trap_dispatch(1, i, 0, u64::from(i) * 10);
    }
    let events = obs.events();
    assert_eq!(events.len(), 4, "ring must hold exactly its capacity");
    assert_eq!(obs.recorded(), 7);
    assert_eq!(obs.dropped(), 3);
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq, "sequence numbers must increase");
        assert!(w[0].vclock_ns <= w[1].vclock_ns, "vclock must not regress");
    }
    match events[0].event {
        Event::TrapDispatch { nr, .. } => assert_eq!(nr, 3, "oldest surviving event"),
        ref other => panic!("unexpected event {other:?}"),
    }
}

/// Nested layer frames attribute exclusive time: the parent's per-call
/// cost must not include the child's.
fn layer_attribution_is_exclusive() {
    let mut obs = Obs::new();
    obs.enable(16);
    // outer runs 100ns total, inner 30ns of it.
    obs.layer_enter("outer", 1, 3, 1000);
    obs.layer_enter("inner", 1, 3, 1040);
    obs.layer_exit("inner", 1, 3, Outcome::Ok, 1070);
    obs.layer_exit("outer", 1, 3, Outcome::Ok, 1100);
    let snap = obs.metrics();
    let stat = |layer: &str| {
        snap.rows
            .iter()
            .find(|(l, nr, _)| l == layer && *nr == 3)
            .map(|(_, _, s)| s.clone())
            .unwrap_or_else(|| panic!("missing {layer} row"))
    };
    assert_eq!(stat("inner").virt_ns, 30);
    assert_eq!(stat("outer").virt_ns, 70, "outer must exclude inner's 30ns");
    assert_eq!(snap.layer_calls("outer"), 1);
    let json = render_metrics_json(&snap);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(render_events_text(&obs).contains("enter"));
}

/// The shared JSON escaper covers quotes, backslashes, and control bytes.
fn json_escaper_round_trips() {
    assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
    assert_eq!(json_escape(r"a\b"), r"a\\b");
    assert_eq!(json_escape("a\nb\tc\rd"), r"a\nb\tc\rd");
    assert_eq!(json_escape("\u{1}"), "\\u0001");
    assert_eq!(json_escape("plain"), "plain");
}

/// Enabling the recorder must not perturb the simulation: same virtual
/// clock and observable state as a bare run.
fn recorder_is_inert_on_a_real_workload() {
    let (bare, bare_obs) = run_workload_observed(
        Workload::Scribe,
        ia_kernel::VAX_6250,
        AgentKind::Trace,
        SchedKind::Sliced,
        None,
    );
    let (rec, rec_obs) = run_workload_observed(
        Workload::Scribe,
        ia_kernel::VAX_6250,
        AgentKind::Trace,
        SchedKind::Sliced,
        Some(256),
    );
    assert_eq!(bare.virtual_ns, rec.virtual_ns, "recorder moved the clock");
    assert_eq!(bare_obs, rec_obs, "recorder perturbed observable state");
}

/// A call no agent registered interest in must cross zero interposition
/// machinery: with the recorder on (which itself forces the slow
/// scheduler path), the flat dispatch table sends it straight to the
/// kernel, so the ring must contain no `interpose` frame for it.
fn no_phantom_interpose_frames_on_bypassed_calls() {
    let mut k = KernelBuilder::new().build();
    micro::setup(&mut k);
    let img = micro::loop_image(MicroCall::Getpid, 64);
    let pid = k.spawn_image(&img, &[b"st"], b"st");
    let mut router = InterposedRouter::new();
    // Timex registers interest only in gettimeofday; getpid is bypassed.
    ia_interpose::wrap_process(&mut k, &mut router, pid, Timex::boxed(60), &[]);
    k.obs.enable(8192);
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    let getpid = Sysno::Getpid.number();
    let mut dispatched = 0u64;
    for ev in k.obs.events() {
        match ev.event {
            Event::TrapDispatch { nr, .. } if nr == getpid => dispatched += 1,
            Event::LayerEnter { layer, nr, .. } | Event::LayerExit { layer, nr, .. } => {
                assert!(
                    !(nr == getpid && k.obs.layer_name(layer) == "interpose"),
                    "bypassed getpid produced a phantom interpose frame"
                );
            }
            _ => {}
        }
    }
    assert!(dispatched >= 64, "probe loop must actually have run");
    assert!(
        router.stats.passthrough >= 64,
        "bypassed calls must count as passthrough"
    );
}
