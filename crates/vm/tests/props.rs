//! Property tests for the machine substrate: instruction encoding, image
//! serialization, assembler/disassembler consistency, and interpreter
//! determinism.

use ia_vm::{assemble, disassemble, AddressSpace, Image, Insn, VmState};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = u8> {
    0u8..16
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (reg(), any::<u64>()).prop_map(|(r, v)| Insn::Li(r, v)),
        (reg(), reg()).prop_map(|(a, b)| Insn::Mov(a, b)),
        (reg(), reg(), -1024i64..1024).prop_map(|(a, b, o)| Insn::Ld(a, b, o)),
        (reg(), reg(), -1024i64..1024).prop_map(|(a, b, o)| Insn::St(a, b, o)),
        (reg(), reg(), -1024i64..1024).prop_map(|(a, b, o)| Insn::Ldb(a, b, o)),
        (reg(), reg(), -1024i64..1024).prop_map(|(a, b, o)| Insn::Stb(a, b, o)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Add(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Sub(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Mul(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Div(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Rem(a, b, c)),
        (reg(), reg(), any::<i64>()).prop_map(|(a, b, i)| Insn::Addi(a, b, i)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::And(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Or(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Xor(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Shl(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Shr(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Sltu(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Slt(a, b, c)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Insn::Seq(a, b, c)),
        (0u64..4096).prop_map(Insn::Jmp),
        (reg(), 0u64..4096).prop_map(|(r, t)| Insn::Jz(r, t)),
        (reg(), 0u64..4096).prop_map(|(r, t)| Insn::Jnz(r, t)),
        (0u64..4096).prop_map(Insn::Call),
        Just(Insn::Ret),
        Just(Insn::Sys),
        Just(Insn::Halt),
        Just(Insn::Nop),
    ]
}

proptest! {
    #[test]
    fn instruction_encoding_round_trips(i in insn()) {
        prop_assert_eq!(Insn::decode(&i.encode()), Some(i));
    }

    #[test]
    fn image_serialization_round_trips(
        code in proptest::collection::vec(insn(), 0..200),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let entry = if code.is_empty() { 0 } else { (code.len() / 2) as u64 };
        let img = Image { entry, code, data };
        prop_assert_eq!(Image::from_bytes(&img.to_bytes()).unwrap(), img);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_image_parser(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Image::from_bytes(&bytes);
    }

    #[test]
    fn interpreter_is_deterministic(
        code in proptest::collection::vec(insn(), 1..120),
        seed_regs in proptest::array::uniform16(any::<u64>()),
    ) {
        let run = || {
            let mut vm = VmState::new(0, 1 << 14);
            vm.regs = seed_regs;
            vm.regs[15] = 1 << 13; // sane stack pointer
            let mut mem = AddressSpace::new(1 << 14, 0);
            let mut trace = Vec::new();
            for _ in 0..300 {
                let ev = ia_vm::machine::step(&mut vm, &mut mem, &code);
                trace.push(format!("{ev:?}"));
                match ev {
                    ia_vm::StepEvent::Continue => {}
                    ia_vm::StepEvent::Syscall { .. } => {
                        // Answer every trap identically.
                        vm.apply_sysret(Ok([1, 2]));
                    }
                    _ => break,
                }
            }
            (vm.regs, vm.pc, vm.insns_retired, trace)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn disassembler_covers_every_instruction(code in proptest::collection::vec(insn(), 1..60)) {
        let img = Image { entry: 0, code: code.clone(), data: vec![] };
        let listing = disassemble(&img);
        // One line per instruction plus the header.
        prop_assert_eq!(listing.lines().count(), code.len() + 1);
    }

    /// Programs assembled from generated `li`/`add` pipelines compute what
    /// they should: the assembler, encoder and interpreter agree end to end.
    #[test]
    fn assemble_run_computes_sum(values in proptest::collection::vec(0u64..1_000_000, 1..20)) {
        let mut src = String::from("main:\n li r1, 0\n");
        for v in &values {
            src.push_str(&format!(" li r2, {v}\n add r1, r1, r2\n"));
        }
        src.push_str(" halt\n");
        let img = assemble(&src).unwrap();
        // Round-trip through bytes, as execve would.
        let img = Image::from_bytes(&img.to_bytes()).unwrap();
        let mut vm = VmState::new(img.entry, 1 << 14);
        let mut mem = AddressSpace::new(1 << 14, 0);
        img.load_into(&mut mem).unwrap();
        loop {
            match ia_vm::machine::step(&mut vm, &mut mem, &img.code) {
                ia_vm::StepEvent::Continue => {}
                ia_vm::StepEvent::Halted => break,
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        prop_assert_eq!(vm.regs[1], values.iter().sum::<u64>());
    }
}
