//! 4.3BSD error numbers.
//!
//! Values match `<sys/errno.h>` of 4.3BSD so that traced output and the
//! numeric syscall layer look like the real interface.

/// A 4.3BSD `errno` value as returned through the system interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the standard errno names
#[repr(u32)]
pub enum Errno {
    EPERM = 1,
    ENOENT = 2,
    ESRCH = 3,
    EINTR = 4,
    EIO = 5,
    ENXIO = 6,
    E2BIG = 7,
    ENOEXEC = 8,
    EBADF = 9,
    ECHILD = 10,
    EAGAIN = 11,
    ENOMEM = 12,
    EACCES = 13,
    EFAULT = 14,
    ENOTBLK = 15,
    EBUSY = 16,
    EEXIST = 17,
    EXDEV = 18,
    ENODEV = 19,
    ENOTDIR = 20,
    EISDIR = 21,
    EINVAL = 22,
    ENFILE = 23,
    EMFILE = 24,
    ENOTTY = 25,
    ETXTBSY = 26,
    EFBIG = 27,
    ENOSPC = 28,
    ESPIPE = 29,
    EROFS = 30,
    EMLINK = 31,
    EPIPE = 32,
    EDOM = 33,
    ERANGE = 34,
    EWOULDBLOCK = 35,
    EINPROGRESS = 36,
    EALREADY = 37,
    ENOTSOCK = 38,
    EDESTADDRREQ = 39,
    EMSGSIZE = 40,
    EPROTOTYPE = 41,
    ENOPROTOOPT = 42,
    EPROTONOSUPPORT = 43,
    ESOCKTNOSUPPORT = 44,
    EOPNOTSUPP = 45,
    EPFNOSUPPORT = 46,
    EAFNOSUPPORT = 47,
    EADDRINUSE = 48,
    EADDRNOTAVAIL = 49,
    ENETDOWN = 50,
    ENETUNREACH = 51,
    ENETRESET = 52,
    ECONNABORTED = 53,
    ECONNRESET = 54,
    ENOBUFS = 55,
    EISCONN = 56,
    ENOTCONN = 57,
    ESHUTDOWN = 58,
    ETOOMANYREFS = 59,
    ETIMEDOUT = 60,
    ECONNREFUSED = 61,
    ELOOP = 62,
    ENAMETOOLONG = 63,
    EHOSTDOWN = 64,
    EHOSTUNREACH = 65,
    ENOTEMPTY = 66,
    EPROCLIM = 67,
    EUSERS = 68,
    EDQUOT = 69,
    /// Not a real 4.3BSD errno: the kernel uses this internally to tell the
    /// scheduler a call would block and must be restarted when its wait
    /// channel fires. It never reaches applications.
    ERESTARTBLOCK = 1000,
}

impl Errno {
    /// The symbolic name, as `trace`-style agents print it.
    #[must_use]
    pub fn name(self) -> &'static str {
        use Errno::*;
        match self {
            EPERM => "EPERM",
            ENOENT => "ENOENT",
            ESRCH => "ESRCH",
            EINTR => "EINTR",
            EIO => "EIO",
            ENXIO => "ENXIO",
            E2BIG => "E2BIG",
            ENOEXEC => "ENOEXEC",
            EBADF => "EBADF",
            ECHILD => "ECHILD",
            EAGAIN => "EAGAIN",
            ENOMEM => "ENOMEM",
            EACCES => "EACCES",
            EFAULT => "EFAULT",
            ENOTBLK => "ENOTBLK",
            EBUSY => "EBUSY",
            EEXIST => "EEXIST",
            EXDEV => "EXDEV",
            ENODEV => "ENODEV",
            ENOTDIR => "ENOTDIR",
            EISDIR => "EISDIR",
            EINVAL => "EINVAL",
            ENFILE => "ENFILE",
            EMFILE => "EMFILE",
            ENOTTY => "ENOTTY",
            ETXTBSY => "ETXTBSY",
            EFBIG => "EFBIG",
            ENOSPC => "ENOSPC",
            ESPIPE => "ESPIPE",
            EROFS => "EROFS",
            EMLINK => "EMLINK",
            EPIPE => "EPIPE",
            EDOM => "EDOM",
            ERANGE => "ERANGE",
            EWOULDBLOCK => "EWOULDBLOCK",
            EINPROGRESS => "EINPROGRESS",
            EALREADY => "EALREADY",
            ENOTSOCK => "ENOTSOCK",
            EDESTADDRREQ => "EDESTADDRREQ",
            EMSGSIZE => "EMSGSIZE",
            EPROTOTYPE => "EPROTOTYPE",
            ENOPROTOOPT => "ENOPROTOOPT",
            EPROTONOSUPPORT => "EPROTONOSUPPORT",
            ESOCKTNOSUPPORT => "ESOCKTNOSUPPORT",
            EOPNOTSUPP => "EOPNOTSUPP",
            EPFNOSUPPORT => "EPFNOSUPPORT",
            EAFNOSUPPORT => "EAFNOSUPPORT",
            EADDRINUSE => "EADDRINUSE",
            EADDRNOTAVAIL => "EADDRNOTAVAIL",
            ENETDOWN => "ENETDOWN",
            ENETUNREACH => "ENETUNREACH",
            ENETRESET => "ENETRESET",
            ECONNABORTED => "ECONNABORTED",
            ECONNRESET => "ECONNRESET",
            ENOBUFS => "ENOBUFS",
            EISCONN => "EISCONN",
            ENOTCONN => "ENOTCONN",
            ESHUTDOWN => "ESHUTDOWN",
            ETOOMANYREFS => "ETOOMANYREFS",
            ETIMEDOUT => "ETIMEDOUT",
            ECONNREFUSED => "ECONNREFUSED",
            ELOOP => "ELOOP",
            ENAMETOOLONG => "ENAMETOOLONG",
            EHOSTDOWN => "EHOSTDOWN",
            EHOSTUNREACH => "EHOSTUNREACH",
            ENOTEMPTY => "ENOTEMPTY",
            EPROCLIM => "EPROCLIM",
            EUSERS => "EUSERS",
            EDQUOT => "EDQUOT",
            ERESTARTBLOCK => "ERESTARTBLOCK",
        }
    }

    /// Recovers an [`Errno`] from its numeric value, if it is one we define.
    #[must_use]
    pub fn from_code(code: u32) -> Option<Errno> {
        use Errno::*;
        const ALL: &[Errno] = &[
            EPERM,
            ENOENT,
            ESRCH,
            EINTR,
            EIO,
            ENXIO,
            E2BIG,
            ENOEXEC,
            EBADF,
            ECHILD,
            EAGAIN,
            ENOMEM,
            EACCES,
            EFAULT,
            ENOTBLK,
            EBUSY,
            EEXIST,
            EXDEV,
            ENODEV,
            ENOTDIR,
            EISDIR,
            EINVAL,
            ENFILE,
            EMFILE,
            ENOTTY,
            ETXTBSY,
            EFBIG,
            ENOSPC,
            ESPIPE,
            EROFS,
            EMLINK,
            EPIPE,
            EDOM,
            ERANGE,
            EWOULDBLOCK,
            EINPROGRESS,
            EALREADY,
            ENOTSOCK,
            EDESTADDRREQ,
            EMSGSIZE,
            EPROTOTYPE,
            ENOPROTOOPT,
            EPROTONOSUPPORT,
            ESOCKTNOSUPPORT,
            EOPNOTSUPP,
            EPFNOSUPPORT,
            EAFNOSUPPORT,
            EADDRINUSE,
            EADDRNOTAVAIL,
            ENETDOWN,
            ENETUNREACH,
            ENETRESET,
            ECONNABORTED,
            ECONNRESET,
            ENOBUFS,
            EISCONN,
            ENOTCONN,
            ESHUTDOWN,
            ETOOMANYREFS,
            ETIMEDOUT,
            ECONNREFUSED,
            ELOOP,
            ENAMETOOLONG,
            EHOSTDOWN,
            EHOSTUNREACH,
            ENOTEMPTY,
            EPROCLIM,
            EUSERS,
            EDQUOT,
            ERESTARTBLOCK,
        ];
        ALL.iter().copied().find(|e| e.code() == code)
    }

    /// The numeric errno value.
    #[must_use]
    pub fn code(self) -> u32 {
        self as u32
    }
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name(), self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_bsd_values() {
        assert_eq!(Errno::EPERM.code(), 1);
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EBADF.code(), 9);
        assert_eq!(Errno::EINVAL.code(), 22);
        assert_eq!(Errno::ELOOP.code(), 62);
        assert_eq!(Errno::ENOTEMPTY.code(), 66);
    }

    #[test]
    fn from_code_round_trips_every_variant() {
        for code in 1..=69u32 {
            let e = Errno::from_code(code).expect("contiguous errno range");
            assert_eq!(e.code(), code);
        }
        assert_eq!(Errno::from_code(1000), Some(Errno::ERESTARTBLOCK));
        assert_eq!(Errno::from_code(0), None);
        assert_eq!(Errno::from_code(70), None);
    }

    #[test]
    fn display_includes_name_and_code() {
        assert_eq!(Errno::ENOENT.to_string(), "ENOENT (2)");
    }
}
