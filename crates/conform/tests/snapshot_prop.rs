//! Property test: snapshot/branch/restore interleaved with random world
//! mutation.
//!
//! Two properties, over many seeds:
//!
//! 1. **Faithful restore** — restoring a [`KernelSnapshot`] brings the
//!    kernel's full [`Observable`] back bit-identically to what it was at
//!    capture time, no matter what ran in between (including restores of
//!    *other* snapshots: captures are immutable values, not cursors).
//! 2. **Branch isolation** — mutations in a branched world never leak
//!    into the trunk or into sibling branches, and the trunk finishes
//!    exactly as an unbranched run would.

use ia_conform::{sample, OpSet, Program};
use ia_interpose::InterposedRouter;
use ia_kernel::{run, Kernel, KernelBuilder, KernelSnapshot, Observable, RunLimits};
use ia_prng::Prng;

fn world(seed: u64) -> (Kernel, InterposedRouter) {
    let mut k = KernelBuilder::new().build();
    Program::setup(&mut k);
    let program = sample(seed, 10, OpSet::ALL);
    k.spawn_image(&program.compile(), &[b"prop"], b"prop");
    (k, InterposedRouter::new())
}

#[test]
fn restored_observable_is_bit_identical_to_capture_time() {
    for seed in 0..25u64 {
        let mut rng = Prng::new(seed);
        let (mut k, mut router) = world(seed);
        let mut snaps: Vec<(KernelSnapshot, Observable)> = Vec::new();
        for step in 0..60 {
            match rng.range_usize(0, 6) {
                0 => {
                    let path = format!("/home/p{}", rng.range_usize(0, 8));
                    let body = format!("s{seed}-t{step}");
                    k.write_file(path.as_bytes(), body.as_bytes()).unwrap();
                }
                1 => {
                    let dir = format!("/home/d{}", rng.range_usize(0, 4));
                    k.mkdir_p(dir.as_bytes()).unwrap();
                }
                2 => {
                    // Another process joins the world mid-history.
                    let p = sample(seed * 1000 + step, 4, OpSet::FS_CLIENT);
                    k.spawn_image(&p.compile(), &[b"extra"], b"extra");
                }
                3 => {
                    let steps = rng.range_usize(1, 300) as u64;
                    run(&mut k, &mut router, RunLimits { max_steps: steps });
                }
                4 => {
                    let obs = k.observable();
                    snaps.push((k.snapshot(), obs));
                }
                _ if !snaps.is_empty() => {
                    let i = rng.range_usize(0, snaps.len());
                    k.restore(&snaps[i].0);
                    assert_eq!(
                        k.observable(),
                        snaps[i].1,
                        "seed {seed} step {step}: restore of snapshot {i} diverged"
                    );
                }
                _ => {}
            }
        }
        // Old captures must still restore faithfully after everything
        // above (immutability of captures under later restores/mutation).
        for (i, (snap, obs)) in snaps.iter().enumerate() {
            k.restore(snap);
            assert_eq!(
                &k.observable(),
                obs,
                "seed {seed}: final re-restore of snapshot {i} diverged"
            );
        }
    }
}

#[test]
fn branch_mutations_never_leak_into_trunk_or_siblings() {
    for seed in 0..15u64 {
        let (mut k, mut router) = world(seed);
        // Advance the trunk into the middle of real execution.
        run(&mut k, &mut router, RunLimits { max_steps: 200 });
        let at_branch = k.observable();

        let mut b1 = k.branch();
        let mut b2 = k.branch();
        assert_eq!(b1.observable(), at_branch, "branch equals trunk at fork");
        assert_eq!(b2.observable(), at_branch, "branch equals trunk at fork");

        // Divergent futures: each branch gets its own marker file and a
        // different amount of further execution.
        b1.write_file(b"/home/only-in-b1", b"one").unwrap();
        let mut r1 = InterposedRouter::new();
        run(&mut b1, &mut r1, RunLimits { max_steps: 500 });
        b2.write_file(b"/home/only-in-b2", b"two").unwrap();
        let mut r2 = InterposedRouter::new();
        run(&mut b2, &mut r2, RunLimits { max_steps: 50 });

        // Trunk saw none of it.
        assert_eq!(
            k.observable(),
            at_branch,
            "seed {seed}: branch mutation leaked into the trunk"
        );
        // Siblings saw only their own marker.
        assert!(b1.read_file(b"/home/only-in-b1").is_ok());
        assert!(b1.read_file(b"/home/only-in-b2").is_err());
        assert!(b2.read_file(b"/home/only-in-b2").is_ok());
        assert!(b2.read_file(b"/home/only-in-b1").is_err());

        // And the trunk's future is what it would have been unbranched:
        // compare against a control world that never forked.
        let (mut control, mut control_router) = world(seed);
        run(
            &mut control,
            &mut control_router,
            RunLimits { max_steps: 200 },
        );
        k.run_with(&mut router);
        control.run_with(&mut control_router);
        assert_eq!(
            k.observable(),
            control.observable(),
            "seed {seed}: branching perturbed the trunk's future"
        );
    }
}
