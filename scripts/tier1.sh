#!/usr/bin/env sh
# Tier-1 verification (see ROADMAP.md): the release build plus the test
# suite, with no registry access required.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -q --workspace --release

# Conformance smoke sweep: differential oracle + fault schedules over
# generated programs. Failures drop .conf repro files in target/conform.
cargo run --release -p ia-conform -- --seeds 200
