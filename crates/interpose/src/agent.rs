//! The agent contract and the downcall context.

use ia_abi::{RawArgs, Signal};
use ia_kernel::{BatchCall, Kernel, Pid, SysOutcome};

use crate::interest::InterestSet;

/// What an agent decides about an incoming signal (the upward path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalVerdict {
    /// Pass the signal on (to the next agent above the application, or to
    /// the application itself).
    Deliver,
    /// Consume the signal: the application never sees it.
    Suppress,
    /// Replace the signal with another and continue delivery.
    Replace(Signal),
}

/// An interposition agent: user code that both uses and provides the system
/// interface.
///
/// This is the lowest-level contract — raw trap numbers and untyped numeric
/// argument vectors, the paper's *numeric system call layer* interface. The
/// `ia-toolkit` crate layers typed, object-structured interfaces on top;
/// almost no agent implements this trait directly.
///
/// Agents are [`Send`]: a tenant (kernel + router + chains) migrates
/// between host threads in the fleet's work-stealing pool, so no agent may
/// hold thread-pinned state (`Rc`, `RefCell`, raw pointers). State shared
/// between an agent and its forked clones or a host-side handle must use
/// `Arc<Mutex<…>>`/atomics — and such sharing must stay *within* one
/// tenant, or determinism is forfeit.
pub trait Agent: Send {
    /// Diagnostic name.
    fn name(&self) -> &'static str;

    /// The trap numbers this agent intercepts. Traps outside the union of
    /// all chained agents' interests bypass the chain entirely.
    fn interests(&self) -> InterestSet;

    /// One-time initialization when the agent is loaded around a process.
    /// `args` are the agent's own command-line arguments (the paper's
    /// `init(char *agentargv[])`).
    fn init(&mut self, _ctx: &mut SysCtx<'_>, _args: &[Vec<u8>]) {}

    /// Called on the child's copy of the agent after a `fork` of the client
    /// (the paper's `init_child()`).
    fn init_child(&mut self, _ctx: &mut SysCtx<'_>) {}

    /// An intercepted trap. `ctx.down(nr, args)` invokes the next instance
    /// of the system interface.
    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome;

    /// An incoming signal headed for the application (the upward path).
    fn signal_incoming(&mut self, _ctx: &mut SysCtx<'_>, _sig: Signal) -> SignalVerdict {
        SignalVerdict::Deliver
    }

    /// True when [`Agent::interests`] never changes over the agent's
    /// lifetime. The router compiles fixed-interest chains into a flat
    /// per-number dispatch table at install time; an agent whose interests
    /// can vary must return `false` so every trap re-queries `interests()`
    /// (and the in-loop fast path stays off for its process).
    fn interests_fixed(&self) -> bool {
        true
    }

    /// The trap numbers this agent accepts as *vectored upcalls*: instead
    /// of one [`Agent::syscall`] per trap, consecutive same-number traps
    /// are executed directly by the kernel and delivered afterwards as one
    /// [`Agent::syscall_batch`] with per-element results. A number is
    /// vectored only when *every* agent on the chain interested in it
    /// declares it batchable — agents that transform calls must not list
    /// numbers here, only observers should.
    fn batch_interests(&self) -> InterestSet {
        InterestSet::NONE
    }

    /// A vectored upcall: `calls` are consecutive traps of `nr` the kernel
    /// already executed, each with its raw arguments and applied result.
    /// Only invoked for numbers in [`Agent::batch_interests`].
    fn syscall_batch(&mut self, _ctx: &mut SysCtx<'_>, _nr: u32, _calls: &[BatchCall]) {}

    /// Clones the agent for a forked child.
    fn clone_box(&self) -> Box<dyn Agent>;
}

/// The context an agent executes in: the kernel below it, the client pid,
/// and the rest of the chain beneath it.
pub struct SysCtx<'a> {
    /// The kernel (the bottom instance of the interface). Agents may
    /// inspect it, but should reach it through [`SysCtx::down`] so stacked
    /// agents keep working.
    pub kernel: &'a mut Kernel,
    /// The client process this trap belongs to.
    pub pid: Pid,
    /// Agents below the current one.
    below: &'a mut [Box<dyn Agent>],
    /// How many times this trap has been restarted after blocking (0 on
    /// first delivery). Agents with entry-time side effects can use this to
    /// avoid double-logging restarts.
    pub restarts: u32,
}

impl<'a> SysCtx<'a> {
    /// Builds a context (used by the router and the loader).
    pub fn new(
        kernel: &'a mut Kernel,
        pid: Pid,
        below: &'a mut [Box<dyn Agent>],
        restarts: u32,
    ) -> SysCtx<'a> {
        SysCtx {
            kernel,
            pid,
            below,
            restarts,
        }
    }

    /// Invokes the next instance of the system interface below this agent —
    /// the simulated `htg_unix_syscall()`. Charges the measured downcall
    /// overhead (37 µs on the i486) to the virtual clock.
    pub fn down(&mut self, nr: u32, args: RawArgs) -> SysOutcome {
        let cost = self.kernel.profile.downcall_ns;
        self.kernel.clock.advance_ns(cost);
        if let Ok(p) = self.kernel.proc_mut(self.pid) {
            p.usage.sys_ns += cost;
        }
        dispatch_chain(self.kernel, self.pid, self.below, nr, args, self.restarts)
    }

    /// Like [`SysCtx::down`] with a symbolic call number.
    pub fn down_sys(&mut self, nr: ia_abi::Sysno, args: RawArgs) -> SysOutcome {
        self.down(nr.number(), args)
    }

    /// The current virtual time, for agents that log timestamps.
    #[must_use]
    pub fn now(&self) -> ia_abi::Timeval {
        self.kernel.clock.now()
    }
}

/// Dispatches a trap into `chain` (top first), skipping agents that did not
/// register interest in `nr`, bottoming out in the kernel. Each agent
/// method invocation is charged the virtual-dispatch cost from Table 3-4.
pub fn dispatch_chain(
    kernel: &mut Kernel,
    pid: Pid,
    chain: &mut [Box<dyn Agent>],
    nr: u32,
    args: RawArgs,
    restarts: u32,
) -> SysOutcome {
    for i in 0..chain.len() {
        if chain[i].interests().contains(nr) {
            return dispatch_chain_from(kernel, pid, chain, i, nr, args, restarts);
        }
    }
    kernel.syscall(pid, nr, args)
}

/// [`dispatch_chain`] entered directly at agent index `first` — the flat
/// dispatch table's fast entry. `first` must index the first agent whose
/// interests contain `nr` (or be past the end for a kernel-direct call);
/// the charging is identical to the scanning walk because skipped agents
/// cost nothing.
pub fn dispatch_chain_from(
    kernel: &mut Kernel,
    pid: Pid,
    chain: &mut [Box<dyn Agent>],
    first: usize,
    nr: u32,
    args: RawArgs,
    restarts: u32,
) -> SysOutcome {
    if first >= chain.len() {
        return kernel.syscall(pid, nr, args);
    }
    debug_assert!(
        chain[first].interests().contains(nr),
        "flat table pointed at an uninterested agent"
    );
    // The virtual-call cost is charged before the agent's obs
    // frame opens: it is paid by the *caller* crossing into the
    // agent, so it attributes to the calling layer.
    let vcost = kernel.profile.virtual_call_ns;
    kernel.clock.advance_ns(vcost);
    if let Ok(p) = kernel.proc_mut(pid) {
        p.usage.sys_ns += vcost;
    }
    let layer = chain[first].name();
    kernel
        .obs
        .layer_enter(layer, pid, nr, kernel.clock.elapsed_ns());
    let (cur, below) = chain.split_at_mut(first + 1);
    let mut ctx = SysCtx::new(kernel, pid, below, restarts);
    let out = cur[first].syscall(&mut ctx, nr, args);
    kernel
        .obs
        .layer_exit(layer, pid, nr, out.obs_outcome(), kernel.clock.elapsed_ns());
    out
}

/// Runs the upward signal path through `chain` (top agent closest to the
/// kernel is consulted *last*: the application-facing agent decides first).
///
/// Chain order note: the chain is stored top-first for downcalls (the
/// agent wrapped last sees traps first). Signals travel the other way —
/// from the kernel up — so the *bottom* agent sees them first.
pub fn signal_chain(
    kernel: &mut Kernel,
    pid: Pid,
    chain: &mut [Box<dyn Agent>],
    sig: Signal,
) -> Option<Signal> {
    let mut current = sig;
    for i in (0..chain.len()).rev() {
        let (cur, below) = chain.split_at_mut(i + 1);
        let mut ctx = SysCtx::new(kernel, pid, below, 0);
        match cur[i].signal_incoming(&mut ctx, current) {
            SignalVerdict::Deliver => {}
            SignalVerdict::Suppress => return None,
            SignalVerdict::Replace(s) => current = s,
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_abi::Sysno;
    use ia_kernel::KernelBuilder;

    /// Adds a fixed offset to gettimeofday's seconds — a micro-timex.
    struct Shift(i64);

    impl Agent for Shift {
        fn name(&self) -> &'static str {
            "shift"
        }
        fn interests(&self) -> InterestSet {
            InterestSet::of(&[Sysno::Gettimeofday])
        }
        fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
            let out = ctx.down(nr, args);
            if let SysOutcome::Done(Ok(_)) = out {
                if args[0] != 0 {
                    if let Ok(p) = ctx.kernel.proc_mut(ctx.pid) {
                        if let Ok(mut tv) = p.mem.read_struct::<ia_abi::Timeval>(args[0]) {
                            tv.sec += self.0;
                            let _ = p.mem.write_struct(args[0], &tv);
                        }
                    }
                }
            }
            out
        }
        fn clone_box(&self) -> Box<dyn Agent> {
            Box::new(Shift(self.0))
        }
    }

    fn setup() -> (Kernel, Pid) {
        let mut k = KernelBuilder::new().build();
        let img = ia_vm::assemble("main: halt\n").unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        (k, pid)
    }

    #[test]
    fn uninterested_traps_reach_kernel_directly() {
        let (mut k, pid) = setup();
        let mut chain: Vec<Box<dyn Agent>> = vec![Box::new(Shift(100))];
        let out = dispatch_chain(&mut k, pid, &mut chain, Sysno::Getpid.number(), [0; 6], 0);
        assert_eq!(out, SysOutcome::Done(Ok([u64::from(pid), 0])));
    }

    #[test]
    fn interested_trap_is_transformed() {
        let (mut k, pid) = setup();
        // Scratch space in the process for the timeval.
        let addr = 0x2000;
        let mut chain: Vec<Box<dyn Agent>> = vec![Box::new(Shift(3600))];
        let out = dispatch_chain(
            &mut k,
            pid,
            &mut chain,
            Sysno::Gettimeofday.number(),
            [addr, 0, 0, 0, 0, 0],
            0,
        );
        assert!(matches!(out, SysOutcome::Done(Ok(_))));
        let tv = k
            .proc(pid)
            .unwrap()
            .mem
            .read_struct::<ia_abi::Timeval>(addr)
            .unwrap();
        assert_eq!(tv.sec, k.clock.now().sec + 3600);
    }

    #[test]
    fn stacked_shifts_compose() {
        let (mut k, pid) = setup();
        let addr = 0x2000;
        let mut chain: Vec<Box<dyn Agent>> = vec![Box::new(Shift(10)), Box::new(Shift(100))];
        dispatch_chain(
            &mut k,
            pid,
            &mut chain,
            Sysno::Gettimeofday.number(),
            [addr, 0, 0, 0, 0, 0],
            0,
        );
        let tv = k
            .proc(pid)
            .unwrap()
            .mem
            .read_struct::<ia_abi::Timeval>(addr)
            .unwrap();
        assert_eq!(tv.sec, k.clock.now().sec + 110, "both agents applied");
    }

    #[test]
    fn downcall_charges_the_virtual_clock() {
        let (mut k, pid) = setup();
        let before = k.clock.elapsed_ns();
        let mut chain: Vec<Box<dyn Agent>> = vec![Box::new(Shift(1))];
        dispatch_chain(
            &mut k,
            pid,
            &mut chain,
            Sysno::Gettimeofday.number(),
            [0x2000, 0, 0, 0, 0, 0],
            0,
        );
        let delta = k.clock.elapsed_ns() - before;
        // virtual dispatch + downcall + the call's own base cost
        let min = k.profile.virtual_call_ns
            + k.profile.downcall_ns
            + k.profile.syscall_base_ns(Sysno::Gettimeofday);
        assert!(delta >= min, "charged {delta} < {min}");
    }

    struct Suppressor;
    impl Agent for Suppressor {
        fn name(&self) -> &'static str {
            "suppressor"
        }
        fn interests(&self) -> InterestSet {
            InterestSet::NONE
        }
        fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
            ctx.down(nr, args)
        }
        fn signal_incoming(&mut self, _: &mut SysCtx<'_>, sig: Signal) -> SignalVerdict {
            if sig == Signal::SIGTERM {
                SignalVerdict::Suppress
            } else if sig == Signal::SIGUSR1 {
                SignalVerdict::Replace(Signal::SIGUSR2)
            } else {
                SignalVerdict::Deliver
            }
        }
        fn clone_box(&self) -> Box<dyn Agent> {
            Box::new(Suppressor)
        }
    }

    #[test]
    fn signal_chain_suppresses_and_replaces() {
        let (mut k, pid) = setup();
        let mut chain: Vec<Box<dyn Agent>> = vec![Box::new(Suppressor)];
        assert_eq!(signal_chain(&mut k, pid, &mut chain, Signal::SIGTERM), None);
        assert_eq!(
            signal_chain(&mut k, pid, &mut chain, Signal::SIGUSR1),
            Some(Signal::SIGUSR2)
        );
        assert_eq!(
            signal_chain(&mut k, pid, &mut chain, Signal::SIGINT),
            Some(Signal::SIGINT)
        );
    }
}
