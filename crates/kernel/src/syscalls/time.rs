//! Time and resource-usage system calls.

use ia_abi::types::ItimerVal;
use ia_abi::{Errno, RawArgs, Timeval, Timezone};

use super::{done0, SysOutcome};
use crate::kernel::Kernel;
use crate::process::Pid;

impl Kernel {
    /// `gettimeofday(tp, tzp)` — the call the paper's `timex` agent
    /// interposes on.
    pub(crate) fn sys_gettimeofday(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let now = self.clock.now();
        let r = (|| {
            let p = self.proc_mut(pid)?;
            if args[0] != 0 {
                p.mem.write_struct(args[0], &now)?;
            }
            if args[1] != 0 {
                p.mem.write_struct(args[1], &Timezone::default())?;
            }
            Ok(())
        })();
        done0(r)
    }

    /// `settimeofday(tp, tzp)` — superuser only.
    pub(crate) fn sys_settimeofday(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            if self.proc(pid)?.euid != 0 {
                return Err(Errno::EPERM);
            }
            if args[0] != 0 {
                let tv = self.proc(pid)?.mem.read_struct::<Timeval>(args[0])?;
                self.clock.set_now(tv);
            }
            Ok(())
        })();
        done0(r)
    }

    /// `adjtime(delta, olddelta)` — applied instantly rather than skewed.
    pub(crate) fn sys_adjtime(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            if self.proc(pid)?.euid != 0 {
                return Err(Errno::EPERM);
            }
            let delta = self.proc(pid)?.mem.read_struct::<Timeval>(args[0])?;
            let now = self.clock.now();
            self.clock
                .set_now(Timeval::from_micros(now.as_micros() + delta.as_micros()));
            if args[1] != 0 {
                self.proc_mut(pid)?
                    .mem
                    .write_struct(args[1], &Timeval::default())?;
            }
            Ok(())
        })();
        done0(r)
    }

    /// `getitimer(which, value)` — `ITIMER_REAL` only.
    pub(crate) fn sys_getitimer(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            if args[0] != 0 {
                return Err(Errno::EINVAL);
            }
            let elapsed = self.clock.elapsed_ns();
            let p = self.proc(pid)?;
            let it = match p.itimer {
                Some((deadline, interval)) => ItimerVal {
                    value: Timeval::from_micros((deadline.saturating_sub(elapsed) / 1_000) as i64),
                    interval: Timeval::from_micros((interval / 1_000) as i64),
                },
                None => ItimerVal::default(),
            };
            self.proc_mut(pid)?.mem.write_struct(args[1], &it)
        })();
        done0(r)
    }

    /// `setitimer(which, value, ovalue)` — `ITIMER_REAL` only; expiry posts
    /// `SIGALRM`.
    pub(crate) fn sys_setitimer(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            if args[0] != 0 {
                return Err(Errno::EINVAL);
            }
            let elapsed = self.clock.elapsed_ns();
            let new = if args[1] != 0 {
                let it = self.proc(pid)?.mem.read_struct::<ItimerVal>(args[1])?;
                let value_ns = (it.value.as_micros().max(0) as u64) * 1_000;
                let interval_ns = (it.interval.as_micros().max(0) as u64) * 1_000;
                if value_ns == 0 {
                    None
                } else {
                    Some((elapsed + value_ns, interval_ns))
                }
            } else {
                None
            };
            let p = self.proc_mut(pid)?;
            let old = p.itimer;
            p.itimer = new;
            if let Some((deadline, _)) = new {
                self.timer_heap.push(std::cmp::Reverse((deadline, pid)));
            }
            if args[2] != 0 {
                let it = match old {
                    Some((deadline, interval)) => ItimerVal {
                        value: Timeval::from_micros(
                            (deadline.saturating_sub(elapsed) / 1_000) as i64,
                        ),
                        interval: Timeval::from_micros((interval / 1_000) as i64),
                    },
                    None => ItimerVal::default(),
                };
                self.proc_mut(pid)?.mem.write_struct(args[2], &it)?;
            }
            Ok(())
        })();
        done0(r)
    }

    /// `getrusage(who, rusage)` — `RUSAGE_SELF` (0) only.
    pub(crate) fn sys_getrusage(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            if args[0] != 0 {
                return Err(Errno::EINVAL);
            }
            let insn_ns = self.profile.insn_ns;
            let ru = self.proc(pid)?.rusage(insn_ns);
            self.proc_mut(pid)?.mem.write_struct(args[1], &ru)
        })();
        done0(r)
    }
}
