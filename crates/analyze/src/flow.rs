//! Flow-sensitive information-flow (taint) analysis over VM images.
//!
//! Layered on the CFG and the `Const/Range/Top` value interpreter: the
//! value fixpoint from [`crate::interp::run`] resolves addresses and trap
//! numbers, and a second worklist fixpoint propagates a [`Taint`] per
//! register — replaying the value transfer per instruction in lock-step so
//! every load, store and syscall site sees sound address bounds.
//!
//! *Sources* are bytes returned by `read`/`readlink` on paths matching a
//! [`FlowSpec`] label (or readable through inherited descriptors);
//! *sinks* are `write`/`writev` sites — statically the descriptor's peer
//! is rarely known, so every write-shaped site is recorded with the data
//! taint and the *ambient* (process-context) taint reaching it. Memory is
//! modelled as a flow-insensitive region map ([`MemTaint`]) plus a global
//! leak set, iterated chaotically with the per-block pass until stable —
//! this is what carries a child branch's post-`fork` writes to the parent
//! branch's reads and read-backs of previously written labelled bytes.
//!
//! The PR-3 gadget discipline applies unchanged: a `⊤` trap number, a site
//! that may invoke `sigreturn` or `sigaction`, or a reachable `ret`
//! (corruptible return slot) makes precise tracking unsound, so the
//! analysis **fails closed**: every sink gets [`Taint::TOP`] and a
//! `flow-widened` finding names the cause.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::EdgeKind;
use crate::domain::AbsVal;
use crate::interp::{self, RegState, SyscallSet};
use crate::report::{Finding, Severity};
use crate::taint::Taint;
use crate::ImageAnalysis;
use ia_abi::Sysno;
use ia_vm::{Image, Insn, DATA_BASE, SYS_NR_REG};

/// Widest address interval (bytes) a store/out-param may dirty, or a load
/// may collect taint from, before collapsing to "all of memory".
const RANGE_SLACK: u64 = 1 << 16;

/// Maximum distinct memory regions tracked before [`MemTaint`] folds
/// everything into its summary cell.
const SPAN_CAP: usize = 64;

/// One labelled data source: any path with a matching prefix carries the
/// label. Multiple prefixes let one label cover both an absolute path and
/// the relative spelling a program may use after `chdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowLabel {
    /// Human-readable label name (shown in findings).
    pub name: String,
    /// Path prefixes carrying this label (byte-wise prefix match).
    pub prefixes: Vec<Vec<u8>>,
}

/// The label specification an image is analyzed against. At most 64 labels
/// (one bit each); extra labels are ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowSpec {
    /// The labels, in bit order.
    pub labels: Vec<FlowLabel>,
    /// Labels already in the process context at entry (e.g. an exec'd
    /// child of a tainted parent).
    pub entry_ambient: u64,
    /// Labels readable through descriptors inherited at entry.
    pub inherited: u64,
}

impl FlowSpec {
    /// An empty specification (no labels: everything analyzes clean).
    #[must_use]
    pub fn new() -> FlowSpec {
        FlowSpec::default()
    }

    /// Builder-style: adds a label over `prefixes`, returns `self`.
    #[must_use]
    pub fn label(mut self, name: &str, prefixes: &[&[u8]]) -> FlowSpec {
        self.labels.push(FlowLabel {
            name: name.to_string(),
            prefixes: prefixes.iter().map(|p| p.to_vec()).collect(),
        });
        self
    }

    /// True when no labels are defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Mask with one bit per defined label.
    #[must_use]
    pub fn all_mask(&self) -> u64 {
        match self.labels.len() {
            0 => 0,
            n if n >= 64 => u64::MAX,
            n => (1u64 << n) - 1,
        }
    }

    /// Labels whose prefix matches `path`.
    #[must_use]
    pub fn match_path(&self, path: &[u8]) -> u64 {
        let mut mask = 0u64;
        for (i, l) in self.labels.iter().enumerate().take(64) {
            if l.prefixes.iter().any(|p| path.starts_with(p)) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Names for a label mask, in bit order.
    #[must_use]
    pub fn names(&self, mask: u64) -> Vec<String> {
        self.labels
            .iter()
            .enumerate()
            .take(64)
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, l)| l.name.clone())
            .collect()
    }
}

/// A source site: labelled bytes may enter the program here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFlow {
    /// Instruction index of the `SYS`.
    pub at: usize,
    /// Labels that may enter.
    pub labels: u64,
    /// Which call introduces them (`"open"`, `"read"`, `"readlink"`).
    pub kind: &'static str,
}

/// A sink site: every reachable `write`/`writev` site, with the taint
/// statically reaching it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkFlow {
    /// Instruction index of the `SYS`.
    pub at: usize,
    /// Taint of the bytes actually written (buffer contents + pointer).
    pub data: Taint,
    /// Ambient process-context taint at the site — the sound bound the
    /// dynamic oracle checks recorded per-process taint against.
    pub ambient: Taint,
}

/// Result of the information-flow analysis of one image against one spec.
#[derive(Debug, Clone)]
pub struct FlowAnalysis {
    /// The spec analyzed against.
    pub spec: FlowSpec,
    /// True when a gadget forced fail-closed widening: every sink is
    /// [`Taint::TOP`] and [`FlowAnalysis::ambient_at`] answers all labels.
    pub widened: bool,
    /// Why the analysis widened, when it did.
    pub cause: Option<String>,
    /// Source sites, ascending by instruction index.
    pub sources: Vec<SourceFlow>,
    /// Sink sites, ascending by instruction index.
    pub sinks: Vec<SinkFlow>,
    /// `flow` / `flow-widened` / `flow-unresolved-path` findings (only
    /// emitted when the spec defines labels).
    pub findings: Vec<Finding>,
}

impl FlowAnalysis {
    /// The label mask the process context may carry at sink `at` — the
    /// relation the dynamic-taint soundness oracle checks recorded events
    /// against. Answers the full mask when widened, and `0` for an
    /// instruction that is not a known sink (a sound analysis lists every
    /// dynamically reachable write site, so a miss is itself a violation).
    #[must_use]
    pub fn ambient_at(&self, at: usize) -> u64 {
        if self.widened {
            return u64::MAX;
        }
        self.sinks
            .iter()
            .find(|s| s.at == at)
            .map_or(0, |s| s.ambient.labels | s.data.labels)
    }

    /// True when no labelled data can reach any sink.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.widened
            && self
                .sinks
                .iter()
                .all(|s| s.data.is_clean() && s.ambient.is_clean())
    }
}

// ---------------------------------------------------------------------------
// Memory taint: flow-insensitive region map.
// ---------------------------------------------------------------------------

/// Taint of abstract memory regions, flow-insensitive (a store taints the
/// region for the rest of the analysis — memory taint only grows, which is
/// what makes the chaotic outer iteration converge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemTaint {
    /// Summary cell: taint of stores whose address could not be bounded
    /// (joined into every load).
    pub all: Taint,
    /// Bounded regions `[lo, hi)` with their taint.
    pub spans: Vec<(u64, u64, Taint)>,
}

impl MemTaint {
    /// Taint a load over `[lo, hi)` may observe.
    #[must_use]
    pub fn load(&self, lo: u64, hi: u64) -> Taint {
        let mut t = self.all;
        for &(slo, shi, st) in &self.spans {
            if slo < hi && lo < shi {
                t = t.join(st);
            }
        }
        t
    }

    /// Taint a load with unbounded address may observe.
    #[must_use]
    pub fn load_all(&self) -> Taint {
        self.spans
            .iter()
            .fold(self.all, |acc, &(_, _, st)| acc.join(st))
    }

    /// Records a store of `t` over `[lo, hi)`. Clean stores are no-ops
    /// (flow-insensitive memory never loses taint).
    pub fn store(&mut self, lo: u64, hi: u64, t: Taint) {
        if t.is_clean() || lo >= hi {
            return;
        }
        for span in &mut self.spans {
            if span.0 == lo && span.1 == hi {
                span.2 = span.2.join(t);
                return;
            }
        }
        if self.spans.len() >= SPAN_CAP {
            self.all = self.all.join(t);
        } else {
            self.spans.push((lo, hi, t));
        }
    }

    /// Records a store with unbounded address.
    pub fn store_all(&mut self, t: Taint) {
        self.all = self.all.join(t);
    }
}

// ---------------------------------------------------------------------------
// Dirty set: which data bytes a run may overwrite (gates const-string reads).
// ---------------------------------------------------------------------------

/// Address ranges the program may overwrite at runtime: every reachable
/// store plus every syscall out-parameter. A constant path string is only
/// trusted if its bytes provably stay clean.
#[derive(Debug, Default)]
struct DirtySet {
    all: bool,
    ranges: Vec<(u64, u64)>,
}

impl DirtySet {
    fn add(&mut self, lo: u64, hi: u64) {
        // Wide (even unbounded-above) intervals stay intervals: a widened
        // store like `[buf, u64::MAX)` can still never touch a path string
        // laid out *below* the buffer, and `clean` is exact on intervals.
        self.ranges.push((lo, hi));
    }

    fn add_all(&mut self) {
        self.all = true;
    }

    fn clean(&self, lo: u64, hi: u64) -> bool {
        !self.all && self.ranges.iter().all(|&(dlo, dhi)| dhi <= lo || hi <= dlo)
    }
}

/// Client-memory ranges syscall `nr` may write, given the abstract args.
/// Mirrors the kernel's out-parameter writes exactly; calls without
/// out-parameters (and unknown numbers, which fail `ENOSYS` untouched)
/// dirty nothing.
fn syscall_out_params(nr: u32, regs: &[AbsVal; 16], dirty: &mut DirtySet) {
    fn range(dirty: &mut DirtySet, base: AbsVal, len_hi: u64) {
        match base.bounds() {
            Some((lo, hi)) => dirty.add(lo, hi.saturating_add(len_hi)),
            None => dirty.add_all(),
        }
    }
    let arg = |i: usize| regs[i];
    let maybe_nonzero = |v: AbsVal| v != AbsVal::Const(0);
    let len_bound = |v: AbsVal| v.bounds().map(|(_, hi)| hi);
    match Sysno::from_u32(nr) {
        Some(Sysno::Read) | Some(Sysno::Readlink) => {
            range(dirty, arg(1), len_bound(arg(2)).unwrap_or(u64::MAX));
        }
        Some(Sysno::Readv) => dirty.add_all(), // targets come from iovec memory
        Some(Sysno::Getdirentries) => {
            range(dirty, arg(1), len_bound(arg(2)).unwrap_or(u64::MAX));
            if maybe_nonzero(arg(3)) {
                range(dirty, arg(3), 8);
            }
        }
        Some(Sysno::Stat) | Some(Sysno::Lstat) | Some(Sysno::Fstat) => range(dirty, arg(1), 256),
        Some(Sysno::Wait4) => {
            if maybe_nonzero(arg(1)) {
                range(dirty, arg(1), 8);
            }
            if maybe_nonzero(arg(3)) {
                range(dirty, arg(3), 256);
            }
        }
        Some(Sysno::Sigaction) if maybe_nonzero(arg(2)) => {
            range(dirty, arg(2), 64);
        }
        Some(Sysno::Gettimeofday) => {
            if maybe_nonzero(arg(0)) {
                range(dirty, arg(0), 16);
            }
            if maybe_nonzero(arg(1)) {
                range(dirty, arg(1), 16);
            }
        }
        Some(Sysno::Getitimer) => range(dirty, arg(1), 64),
        Some(Sysno::Setitimer) if maybe_nonzero(arg(2)) => {
            range(dirty, arg(2), 64);
        }
        Some(Sysno::Getrusage) => range(dirty, arg(1), 256),
        Some(Sysno::Select) => {
            for i in 1..=3 {
                if maybe_nonzero(arg(i)) {
                    range(dirty, arg(i), 8);
                }
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Per-block taint state.
// ---------------------------------------------------------------------------

/// Flow-sensitive taint state at a block boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FlowState {
    /// Taint per register.
    regs: [Taint; 16],
    /// Ambient (process-context) taint: joins every label the process may
    /// have read so far on this path.
    ambient: Taint,
    /// Labels whose source paths may have been opened so far on this path
    /// — what a subsequent `read` on an arbitrary descriptor may return.
    avail: u64,
}

impl FlowState {
    fn entry(spec: &FlowSpec) -> FlowState {
        FlowState {
            regs: [Taint::CLEAN; 16],
            ambient: Taint {
                labels: spec.entry_ambient,
                srcs: 0,
            },
            avail: 0,
        }
    }

    fn join(&self, other: &FlowState) -> FlowState {
        let mut regs = [Taint::CLEAN; 16];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = self.regs[i].join(other.regs[i]);
        }
        FlowState {
            regs,
            ambient: self.ambient.join(other.ambient),
            avail: self.avail | other.avail,
        }
    }
}

/// Source/sink/unresolved records, collected on the final (stable) pass.
#[derive(Default)]
struct FlowRec {
    sources: BTreeMap<usize, SourceFlow>,
    sinks: BTreeMap<usize, SinkFlow>,
    unresolved: BTreeSet<usize>,
}

impl FlowRec {
    fn source(&mut self, at: usize, labels: u64, kind: &'static str) {
        if labels == 0 {
            return;
        }
        self.sources
            .entry(at)
            .and_modify(|s| s.labels |= labels)
            .or_insert(SourceFlow { at, labels, kind });
    }

    fn sink(&mut self, at: usize, data: Taint, ambient: Taint) {
        let e = self.sinks.entry(at).or_insert(SinkFlow {
            at,
            data: Taint::CLEAN,
            ambient: Taint::CLEAN,
        });
        e.data = e.data.join(data);
        e.ambient = e.ambient.join(ambient);
    }
}

/// One taint-propagation pass: an inner worklist fixpoint over the blocks,
/// with the flow-insensitive globals (`mem`, `leak`) mutated live.
struct Pass<'a> {
    img: &'a Image,
    code: &'a [Option<Insn>],
    value: &'a interp::Analysis,
    spec: &'a FlowSpec,
    dirty: &'a DirtySet,
    /// Source-site ordinals: instruction index → bit for [`Taint::srcs`].
    ord: &'a BTreeMap<usize, usize>,
    mem: MemTaint,
    /// Labels (and their sources) possibly written *anywhere* — files,
    /// pipes, sockets, console — and hence readable back by any process.
    leak: Taint,
}

impl<'a> Pass<'a> {
    /// Reads the NUL-terminated constant string at abstract address `v`
    /// out of the image data, provided no reachable store or syscall
    /// out-parameter may overwrite it.
    fn const_path(&self, v: AbsVal) -> Option<Vec<u8>> {
        let AbsVal::Const(a) = v else { return None };
        let off = usize::try_from(a.checked_sub(DATA_BASE)?).ok()?;
        let data = &self.img.data;
        if off >= data.len() {
            return None;
        }
        let nul = data[off..].iter().position(|&b| b == 0)?;
        if !self.dirty.clean(a, a + nul as u64 + 1) {
            return None;
        }
        Some(data[off..off + nul].to_vec())
    }

    fn src_bit(&self, at: usize) -> usize {
        self.ord.get(&at).copied().unwrap_or(63)
    }

    /// Taint of a buffer `[base, base+len)` described by abstract values.
    fn load_range(&self, base: AbsVal, len: AbsVal) -> Taint {
        match (base.bounds(), len.bounds()) {
            (Some((blo, bhi)), Some((_, lhi)))
                if bhi.saturating_sub(blo).saturating_add(lhi) <= RANGE_SLACK =>
            {
                self.mem.load(blo, bhi.saturating_add(lhi))
            }
            _ => self.mem.load_all(),
        }
    }

    fn store_range(&mut self, base: AbsVal, len: AbsVal, t: Taint) {
        match (base.bounds(), len.bounds()) {
            (Some((blo, bhi)), Some((_, lhi)))
                if bhi.saturating_sub(blo).saturating_add(lhi) <= RANGE_SLACK =>
            {
                self.mem.store(blo, bhi.saturating_add(lhi), t);
            }
            _ => self.mem.store_all(t),
        }
    }

    /// Effect of the syscalls possible at one `SYS` site. `vst` is the
    /// value state *before* the instruction.
    fn sys_effect(
        &mut self,
        at: usize,
        vst: &RegState,
        fst: &mut FlowState,
        rec: &mut Option<&mut FlowRec>,
    ) {
        let nrs = match interp::site_values(vst.regs[SYS_NR_REG]) {
            SyscallSet::Exact(vs) => vs,
            // Widening was ruled out before the pass runs.
            SyscallSet::Top => Vec::new(),
        };
        for nr in nrs {
            match Sysno::from_u32(nr) {
                Some(Sysno::Open) => {
                    match self.const_path(vst.regs[0]) {
                        Some(path) => {
                            let m = self.spec.match_path(&path);
                            fst.avail |= m;
                            if let Some(rec) = rec.as_deref_mut() {
                                rec.source(at, m, "open");
                            }
                        }
                        None => {
                            // Unresolvable path: any labelled file may be
                            // opened here. Fail closed.
                            fst.avail |= self.spec.all_mask();
                            if let Some(rec) = rec.as_deref_mut() {
                                rec.unresolved.insert(at);
                                rec.source(at, self.spec.all_mask(), "open");
                            }
                        }
                    }
                }
                Some(Sysno::Read) | Some(Sysno::Readv) => {
                    let labels = fst.avail | self.spec.inherited;
                    let incoming = Taint::source(labels, self.src_bit(at)).join(self.leak);
                    if !incoming.is_clean() {
                        fst.ambient = fst.ambient.join(incoming);
                        if let Some(rec) = rec.as_deref_mut() {
                            rec.source(at, incoming.labels, "read");
                        }
                    }
                    // The kernel writes the read bytes into the buffer.
                    let t = incoming.join(fst.regs[1]);
                    if nr == Sysno::Read.number() {
                        self.store_range(vst.regs[1], vst.regs[2], t);
                    } else if !t.is_clean() {
                        self.mem.store_all(t); // iovec targets are indirect
                    }
                }
                Some(Sysno::Readlink) => {
                    let labels = match self.const_path(vst.regs[0]) {
                        Some(path) => self.spec.match_path(&path),
                        None => {
                            if let Some(rec) = rec.as_deref_mut() {
                                rec.unresolved.insert(at);
                            }
                            self.spec.all_mask()
                        }
                    };
                    let incoming = Taint::source(labels, self.src_bit(at));
                    if !incoming.is_clean() {
                        fst.ambient = fst.ambient.join(incoming);
                        if let Some(rec) = rec.as_deref_mut() {
                            rec.source(at, incoming.labels, "readlink");
                        }
                    }
                    self.store_range(vst.regs[1], vst.regs[2], incoming.join(fst.regs[1]));
                }
                Some(Sysno::Write) | Some(Sysno::Writev) => {
                    let data = if nr == Sysno::Write.number() {
                        self.load_range(vst.regs[1], vst.regs[2]).join(fst.regs[1])
                    } else {
                        self.mem.load_all().join(fst.regs[1])
                    };
                    // Whatever this process writes — to a file, pipe,
                    // socket or the console — may be read back later by
                    // any process: it joins the global leak set. The
                    // ambient component models the dynamic shim's
                    // process-level labelling of written bytes.
                    self.leak = self.leak.join(data).join(fst.ambient);
                    if let Some(rec) = rec.as_deref_mut() {
                        rec.sink(at, data, fst.ambient);
                    }
                }
                _ => {}
            }
        }
        // SYSRET clobbers r0/r1/r2 with kernel-produced counts and errnos.
        fst.regs[0] = Taint::CLEAN;
        fst.regs[1] = Taint::CLEAN;
        fst.regs[2] = Taint::CLEAN;
    }

    /// Taint transfer for one instruction; `vst` is the value state before
    /// the instruction (the caller replays [`interp::step_value`] after).
    fn step(
        &mut self,
        at: usize,
        insn: Insn,
        vst: &RegState,
        fst: &mut FlowState,
        rec: &mut Option<&mut FlowRec>,
    ) {
        use Insn::*;
        match insn {
            Li(rd, _) => fst.regs[rd as usize] = Taint::CLEAN,
            Mov(rd, rs) => fst.regs[rd as usize] = fst.regs[rs as usize],
            Addi(rd, rs, _) => fst.regs[rd as usize] = fst.regs[rs as usize],
            Ld(rd, rs, off) | Ldb(rd, rs, off) => {
                let width = if matches!(insn, Ld(..)) { 8 } else { 1 };
                let addr = vst.regs[rs as usize].add_signed(off);
                let loaded = match addr.bounds() {
                    Some((lo, hi)) if hi.saturating_sub(lo) <= RANGE_SLACK => {
                        self.mem.load(lo, hi.saturating_add(width))
                    }
                    _ => self.mem.load_all(),
                };
                fst.regs[rd as usize] = loaded.join(fst.regs[rs as usize]);
            }
            St(rd, rs, off) | Stb(rd, rs, off) => {
                let width = if matches!(insn, St(..)) { 8 } else { 1 };
                let addr = vst.regs[rd as usize].add_signed(off);
                let t = fst.regs[rs as usize].join(fst.regs[rd as usize]);
                match addr.bounds() {
                    Some((lo, hi)) if hi.saturating_sub(lo) <= RANGE_SLACK => {
                        self.mem.store(lo, hi.saturating_add(width), t);
                    }
                    _ => self.mem.store_all(t),
                }
            }
            Add(rd, rs, rt)
            | Sub(rd, rs, rt)
            | Mul(rd, rs, rt)
            | Div(rd, rs, rt)
            | Rem(rd, rs, rt)
            | And(rd, rs, rt)
            | Or(rd, rs, rt)
            | Xor(rd, rs, rt)
            | Shl(rd, rs, rt)
            | Shr(rd, rs, rt)
            | Sltu(rd, rs, rt)
            | Slt(rd, rs, rt)
            | Seq(rd, rs, rt) => {
                fst.regs[rd as usize] = fst.regs[rs as usize].join(fst.regs[rt as usize]);
            }
            Sys => self.sys_effect(at, vst, fst, rec),
            Jmp(_) | Jz(..) | Jnz(..) | Call(_) | Ret | Halt | Nop => {}
        }
    }

    /// Inner worklist fixpoint over the reachable blocks; returns nothing —
    /// the interesting outputs are the mutated `mem`/`leak` globals and,
    /// on the final pass, the filled recorder.
    fn run(&mut self, cfg: &crate::cfg::Cfg, entry_block: usize, mut rec: Option<&mut FlowRec>) {
        let nb = cfg.blocks.len();
        let mut in_flow: Vec<Option<FlowState>> = vec![None; nb];
        let mut work: VecDeque<usize> = VecDeque::new();
        in_flow[entry_block] = Some(FlowState::entry(self.spec));
        work.push_back(entry_block);
        while let Some(b) = work.pop_front() {
            // Only blocks the value analysis reached are walked; taint
            // roots mirror the value roots, so this always holds.
            let Some(vin) = &self.value.in_states[b] else {
                continue;
            };
            let mut vst = vin.clone();
            let mut fst = in_flow[b].clone().expect("queued block has a state");
            let block = &cfg.blocks[b];
            for (i, slot) in self
                .code
                .iter()
                .enumerate()
                .take(block.end)
                .skip(block.start)
            {
                let Some(insn) = slot else { break };
                self.step(i, *insn, &vst, &mut fst, &mut rec);
                interp::step_value(*insn, &mut vst);
            }
            for edge in &block.succs {
                let st = if edge.kind == EdgeKind::CallReturn {
                    // A callee may have shuffled anything anywhere; the
                    // value analysis already made the registers ⊤, and the
                    // taint follows suit.
                    FlowState {
                        regs: [Taint::TOP; 16],
                        ambient: fst.ambient,
                        avail: fst.avail,
                    }
                } else {
                    fst.clone()
                };
                let merged = match &in_flow[edge.to] {
                    None => st,
                    Some(old) => {
                        let m = old.join(&st);
                        if m == *old {
                            continue;
                        }
                        m
                    }
                };
                in_flow[edge.to] = Some(merged);
                work.push_back(edge.to);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Why precise flow tracking is unsound for this image, if it is.
fn widen_cause(a: &ImageAnalysis, value: &interp::Analysis) -> Option<String> {
    let may_invoke = |s: Sysno| -> bool {
        let nr = s.number();
        value.sites.iter().any(|site| match &site.nrs {
            SyscallSet::Top => true,
            SyscallSet::Exact(vs) => vs.contains(&nr),
        })
    };
    if value.sites.iter().any(|s| s.nrs == SyscallSet::Top) {
        return Some("a SYS site has an unresolved (⊤) trap number".to_string());
    }
    if may_invoke(Sysno::Sigreturn) {
        return Some("a site may invoke sigreturn (forgeable context restore)".to_string());
    }
    if may_invoke(Sysno::Sigaction) {
        return Some(
            "a site may install a signal handler (asynchronous control transfer)".to_string(),
        );
    }
    for (b, block) in a.cfg.blocks.iter().enumerate() {
        if value.in_states[b].is_some()
            && a.code[block.start..block.end]
                .iter()
                .any(|s| matches!(s, Some(Insn::Ret)))
        {
            return Some("a reachable ret may jump through a corruptible return slot".to_string());
        }
    }
    None
}

/// The fail-closed result: every reachable write-shaped (or unresolvable)
/// site becomes a ⊤-tainted sink.
fn widened_result(a: &ImageAnalysis, spec: &FlowSpec, cause: String) -> FlowAnalysis {
    let write_shaped = |nrs: &SyscallSet| match nrs {
        SyscallSet::Top => true,
        SyscallSet::Exact(vs) => vs
            .iter()
            .any(|&v| v == Sysno::Write.number() || v == Sysno::Writev.number()),
    };
    let sinks: Vec<SinkFlow> = a
        .sites
        .iter()
        .filter(|s| write_shaped(&s.nrs))
        .map(|s| SinkFlow {
            at: s.at,
            data: Taint::TOP,
            ambient: Taint::TOP,
        })
        .collect();
    let mut findings = Vec::new();
    if !spec.is_empty() {
        findings.push(Finding {
            severity: Severity::Warning,
            kind: "flow-widened",
            at: None,
            message: format!(
                "taint tracking failed closed to ⊤ ({} sink site(s) assume every label): {cause}",
                sinks.len()
            ),
        });
    }
    FlowAnalysis {
        spec: spec.clone(),
        widened: true,
        cause: Some(cause),
        sources: Vec::new(),
        sinks,
        findings,
    }
}

/// Runs the information-flow analysis of `img` (already analyzed as `a`)
/// against `spec`.
#[must_use]
pub fn analyze_flow(img: &Image, a: &ImageAnalysis, spec: &FlowSpec) -> FlowAnalysis {
    if a.code.is_empty() || a.entry >= a.code.len() {
        return widened_result(a, spec, "entry point out of range".to_string());
    }
    let entry_block = a.cfg.block_of[a.entry];
    let value = interp::run(&a.code, &a.cfg, &[(entry_block, RegState::at_entry())]);
    if let Some(cause) = widen_cause(a, &value) {
        return widened_result(a, spec, cause);
    }

    // Dirty pre-pass: every reachable store and syscall out-parameter.
    let mut dirty = DirtySet::default();
    for (b, block) in a.cfg.blocks.iter().enumerate() {
        let Some(vin) = &value.in_states[b] else {
            continue;
        };
        let mut vst = vin.clone();
        for slot in a.code[block.start..block.end].iter() {
            let Some(insn) = slot else { break };
            match *insn {
                Insn::St(rd, _, off) | Insn::Stb(rd, _, off) => {
                    let width = if matches!(insn, Insn::St(..)) { 8 } else { 1 };
                    match vst.regs[rd as usize].add_signed(off).bounds() {
                        Some((lo, hi)) => dirty.add(lo, hi.saturating_add(width)),
                        None => dirty.add_all(),
                    }
                }
                Insn::Sys => {
                    if let SyscallSet::Exact(vs) = interp::site_values(vst.regs[SYS_NR_REG]) {
                        for nr in vs {
                            syscall_out_params(nr, &vst.regs, &mut dirty);
                        }
                    }
                }
                _ => {}
            }
            interp::step_value(*insn, &mut vst);
        }
    }

    // Source-site ordinals by instruction order (bit positions in
    // `Taint::srcs`), saturating at 63.
    let ord: BTreeMap<usize, usize> = value
        .sites
        .iter()
        .enumerate()
        .map(|(i, s)| (s.at, i.min(63)))
        .collect();

    // Chaotic outer iteration: rerun the block fixpoint until the
    // flow-insensitive globals (memory taint, global leak set) stop
    // growing, then one recording pass with the stable globals.
    let mut mem = MemTaint::default();
    let mut leak = Taint::CLEAN;
    loop {
        let mut pass = Pass {
            img,
            code: &a.code,
            value: &value,
            spec,
            dirty: &dirty,
            ord: &ord,
            mem: mem.clone(),
            leak,
        };
        pass.run(&a.cfg, entry_block, None);
        if pass.mem == mem && pass.leak == leak {
            break;
        }
        mem = pass.mem;
        leak = pass.leak;
    }
    let mut rec = FlowRec::default();
    let mut pass = Pass {
        img,
        code: &a.code,
        value: &value,
        spec,
        dirty: &dirty,
        ord: &ord,
        mem,
        leak,
    };
    pass.run(&a.cfg, entry_block, Some(&mut rec));

    // Findings: a `flow` warning per sink whose *data* is tainted (the
    // exact source→sink chains), plus unresolved-path warnings. Only when
    // the spec defines labels — an empty spec analyzes trivially clean.
    let mut findings = Vec::new();
    if !spec.is_empty() {
        let site_of_src = |bit: usize| -> Vec<usize> {
            ord.iter()
                .filter(|&(_, &o)| o == bit)
                .map(|(&at, _)| at)
                .collect()
        };
        for sink in rec.sinks.values() {
            if sink.data.labels & spec.all_mask() == 0 {
                continue;
            }
            let names = spec.names(sink.data.labels).join(", ");
            let mut chain: Vec<usize> = (0..64)
                .filter(|&b| sink.data.srcs & (1 << b) != 0)
                .flat_map(site_of_src)
                .collect();
            chain.sort_unstable();
            chain.dedup();
            let chain_s: Vec<String> = chain.iter().map(|c| format!("insn {c}")).collect();
            findings.push(Finding {
                severity: Severity::Warning,
                kind: "flow",
                at: Some(sink.at),
                message: format!(
                    "labelled data [{names}] may flow to this write (sources: {})",
                    chain_s.join(", ")
                ),
            });
        }
        for &at in &rec.unresolved {
            findings.push(Finding {
                severity: Severity::Warning,
                kind: "flow-unresolved-path",
                at: Some(at),
                message: "path argument is not a provably constant string; \
                          assuming every label may match (fail closed)"
                    .to_string(),
            });
        }
    }

    FlowAnalysis {
        spec: spec.clone(),
        widened: false,
        cause: None,
        sources: rec.sources.into_values().collect(),
        sinks: rec.sinks.into_values().collect(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_image;
    use ia_vm::ProgramBuilder;

    fn spec2() -> FlowSpec {
        FlowSpec::new()
            .label("secret", &[b"/secret"])
            .label("aux", &[b"/aux"])
    }

    /// open("/secret/key"), read into buf, write buf to fd 1.
    fn exfil_like(path: &[u8], stage: bool) -> Image {
        let mut b = ProgramBuilder::new();
        let p = b.data_asciz(path);
        let buf = b.data_space(64);
        let stagebuf = b.data_space(64);
        b.entry_here();
        b.la(0, p);
        b.li(1, 0);
        b.li(2, 0);
        b.sys(ia_abi::Sysno::Open);
        b.mov(12, 0); // fd
        b.mov(0, 12);
        b.la(1, buf);
        b.li(2, 32);
        b.sys(ia_abi::Sysno::Read);
        if stage {
            // Register-shuffle + memory staging: copy buf → stagebuf.
            b.la(3, buf);
            b.la(4, stagebuf);
            b.emit(ia_vm::Insn::Ldb(5, 3, 0));
            b.mov(6, 5);
            b.emit(ia_vm::Insn::Stb(4, 6, 0));
            b.li(0, 1);
            b.la(1, stagebuf);
        } else {
            b.li(0, 1);
            b.la(1, buf);
        }
        b.li(2, 32);
        b.sys(ia_abi::Sysno::Write);
        b.li(0, 0);
        b.sys(ia_abi::Sysno::Exit);
        b.halt();
        b.build()
    }

    #[test]
    fn direct_flow_is_flagged_with_chain() {
        let img = exfil_like(b"/secret/key", false);
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &spec2());
        assert!(!f.widened);
        let tainted: Vec<&SinkFlow> = f.sinks.iter().filter(|s| !s.data.is_clean()).collect();
        assert_eq!(tainted.len(), 1, "exactly the exfil write: {:?}", f.sinks);
        assert_eq!(tainted[0].data.labels, 0b01, "secret label only");
        assert!(f.findings.iter().any(|x| x.kind == "flow"));
        // The chain names the read site (a source), not just the sink.
        let flow = f.findings.iter().find(|x| x.kind == "flow").unwrap();
        assert!(flow.message.contains("secret"), "{}", flow.message);
        assert!(!f.sources.is_empty());
    }

    #[test]
    fn staged_flow_through_memory_and_registers_is_flagged() {
        let img = exfil_like(b"/secret/key", true);
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &spec2());
        assert!(!f.widened);
        assert!(
            f.sinks.iter().any(|s| s.data.labels & 0b01 != 0),
            "staging through Ldb/Mov/Stb must not launder the taint"
        );
    }

    #[test]
    fn benign_path_is_clean() {
        let img = exfil_like(b"/public/note", false);
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &spec2());
        assert!(!f.widened);
        assert!(f.is_clean(), "sinks: {:?}", f.sinks);
        assert!(f.findings.is_empty());
    }

    #[test]
    fn empty_spec_emits_no_findings() {
        let img = exfil_like(b"/secret/key", false);
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &FlowSpec::new());
        assert!(f.findings.is_empty());
        assert!(f.is_clean());
    }

    #[test]
    fn loaded_path_fails_closed_to_all_labels() {
        // The open's path pointer comes from memory: unresolvable.
        let mut b = ProgramBuilder::new();
        let slot = b.data_quad(0x2000);
        let buf = b.data_space(32);
        b.entry_here();
        b.la(3, slot);
        b.emit(ia_vm::Insn::Ld(0, 3, 0));
        b.li(1, 0);
        b.li(2, 0);
        b.sys(ia_abi::Sysno::Open);
        b.mov(0, 0);
        b.la(1, buf);
        b.li(2, 8);
        b.sys(ia_abi::Sysno::Read);
        b.li(0, 1);
        b.la(1, buf);
        b.li(2, 8);
        b.sys(ia_abi::Sysno::Write);
        b.li(0, 0);
        b.sys(ia_abi::Sysno::Exit);
        b.halt();
        let img = b.build();
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &spec2());
        assert!(!f.widened);
        assert!(f.findings.iter().any(|x| x.kind == "flow-unresolved-path"));
        let sink = f
            .sinks
            .iter()
            .find(|s| !s.data.is_clean())
            .expect("tainted sink");
        assert_eq!(sink.data.labels & 0b11, 0b11, "both labels assumed");
    }

    #[test]
    fn sigaction_widens_fail_closed() {
        let mut b = ProgramBuilder::new();
        let act = b.data_quad(0);
        let buf = b.data_space(8);
        b.entry_here();
        b.li(0, 14);
        b.la(1, act);
        b.li(2, 0);
        b.sys(ia_abi::Sysno::Sigaction);
        b.li(0, 1);
        b.la(1, buf);
        b.li(2, 8);
        b.sys(ia_abi::Sysno::Write);
        b.li(0, 0);
        b.sys(ia_abi::Sysno::Exit);
        b.halt();
        let img = b.build();
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &spec2());
        assert!(f.widened);
        assert!(f.findings.iter().any(|x| x.kind == "flow-widened"));
        assert_eq!(f.ambient_at(usize::MAX), u64::MAX, "widened answers ⊤");
        assert!(f.sinks.iter().all(|s| s.data == Taint::TOP));
    }

    #[test]
    fn leak_and_readback_taints_unrelated_reads() {
        // open secret; read; write to fd 9 (some unlabeled file); then a
        // read on fd 10 — the written bytes may be read back, so the
        // second read is tainted and the final write is a flagged sink.
        let mut b = ProgramBuilder::new();
        let p = b.data_asciz(b"/secret/key");
        let buf = b.data_space(32);
        let buf2 = b.data_space(32);
        b.entry_here();
        b.la(0, p);
        b.li(1, 0);
        b.li(2, 0);
        b.sys(ia_abi::Sysno::Open);
        b.mov(0, 0);
        b.la(1, buf);
        b.li(2, 16);
        b.sys(ia_abi::Sysno::Read);
        b.li(0, 9);
        b.la(1, buf);
        b.li(2, 16);
        b.sys(ia_abi::Sysno::Write);
        b.li(0, 10);
        b.la(1, buf2);
        b.li(2, 16);
        b.sys(ia_abi::Sysno::Read);
        b.li(0, 1);
        b.la(1, buf2);
        b.li(2, 16);
        b.sys(ia_abi::Sysno::Write);
        b.li(0, 0);
        b.sys(ia_abi::Sysno::Exit);
        b.halt();
        let img = b.build();
        let a = analyze_image(&img);
        let f = analyze_flow(&img, &a, &spec2());
        assert!(!f.widened);
        let last_sink = f.sinks.last().expect("final write recorded");
        assert!(
            last_sink.data.labels & 0b01 != 0,
            "read-back of leaked bytes must stay tainted: {:?}",
            f.sinks
        );
    }

    #[test]
    fn inherited_descriptors_taint_reads() {
        let mut b = ProgramBuilder::new();
        let buf = b.data_space(16);
        b.entry_here();
        b.li(0, 0);
        b.la(1, buf);
        b.li(2, 8);
        b.sys(ia_abi::Sysno::Read);
        b.li(0, 1);
        b.la(1, buf);
        b.li(2, 8);
        b.sys(ia_abi::Sysno::Write);
        b.li(0, 0);
        b.sys(ia_abi::Sysno::Exit);
        b.halt();
        let img = b.build();
        let a = analyze_image(&img);
        let mut spec = spec2();
        spec.inherited = 0b10;
        let f = analyze_flow(&img, &a, &spec);
        assert!(f.sinks.iter().any(|s| s.data.labels & 0b10 != 0));
        let clean = analyze_flow(&img, &a, &spec2());
        assert!(clean.is_clean(), "no inherited labels → clean");
    }
}
