//! The measurement harness shared by tests, benches and the `reproduce`
//! binary: run a workload under a chosen agent, read the virtual clock.

use ia_agents::{DfsTraceAgent, ProfileAgent, TimeSymbolic, Timex, TraceAgent, UnionAgent};
use ia_interpose::InterposedRouter;
use ia_kernel::{KernelBuilder, MachineProfile, Observable, RunOutcome};

/// Which workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Format-my-dissertation (Table 3-2; VAX profile).
    Scribe,
    /// Make-8-programs (Table 3-3; i486 profile).
    Make8,
}

/// Which agent to interpose, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentKind {
    /// No interposition (the "None" rows).
    None,
    /// The time-shifting agent.
    Timex,
    /// The call-tracing agent.
    Trace,
    /// Union directories (mounted over the workload's directories).
    Union,
    /// The null full-interception symbolic agent.
    TimeSymbolic,
    /// File-reference tracing.
    DfsTrace,
    /// Call counting.
    Profile,
}

impl AgentKind {
    /// All kinds, table order.
    pub const TABLE_ROWS: [AgentKind; 4] = [
        AgentKind::None,
        AgentKind::Timex,
        AgentKind::Trace,
        AgentKind::Union,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::None => "None",
            AgentKind::Timex => "timex",
            AgentKind::Trace => "trace",
            AgentKind::Union => "union",
            AgentKind::TimeSymbolic => "time_symbolic",
            AgentKind::DfsTrace => "dfs_trace",
            AgentKind::Profile => "profile",
        }
    }
}

/// Which scheduler drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// The sliced hot-path scheduler (`ia_kernel::run`).
    Sliced,
    /// The per-instruction reference scheduler (`ia_kernel::run_legacy`).
    Legacy,
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Virtual elapsed seconds.
    pub virtual_secs: f64,
    /// Virtual elapsed nanoseconds — exact, for differential comparison.
    pub virtual_ns: u64,
    /// Total instructions retired across all processes.
    pub total_insns: u64,
    /// Total system calls dispatched at the kernel.
    pub syscalls: u64,
    /// Traps intercepted by agents.
    pub intercepted: u64,
    /// Traps that bypassed agents (pay-per-use).
    pub passthrough: u64,
    /// Scheduler outcome.
    pub outcome: RunOutcome,
    /// Everything the workload wrote to the console.
    pub console: Vec<u8>,
}

/// Union mount specs used when benchmarking the union agent: overlay the
/// workload's directories, so most calls traverse the agent.
fn union_specs(w: Workload) -> Vec<Vec<u8>> {
    match w {
        Workload::Scribe => vec![
            b"/home/mbj/diss=/home/mbj/diss:/usr/lib/scribe".to_vec(),
            b"/usr/lib/scribe/fonts=/usr/lib/scribe/fonts:/usr/share".to_vec(),
        ],
        Workload::Make8 => vec![b"/usr/src/proj=/usr/src/proj:/tmp".to_vec()],
    }
}

/// Runs `workload` on `profile` under `agent`, returning the statistics.
#[must_use]
pub fn run_workload(workload: Workload, profile: MachineProfile, agent: AgentKind) -> RunStats {
    run_workload_with(workload, profile, agent, SchedKind::Sliced)
}

/// [`run_workload`] with an explicit scheduler choice — the seam the
/// differential tests and the baseline benchmark use to compare the sliced
/// scheduler against the per-instruction reference implementation.
#[must_use]
pub fn run_workload_with(
    workload: Workload,
    profile: MachineProfile,
    agent: AgentKind,
    sched: SchedKind,
) -> RunStats {
    run_workload_observed(workload, profile, agent, sched, None).0
}

/// Like [`run_workload_with`], but optionally enables the ia-obs flight
/// recorder (with the given ring capacity) for the whole run and returns
/// the kernel's final [`Observable`] snapshot alongside the stats — the
/// seam the recorder-inertness differential test drives.
pub fn run_workload_observed(
    workload: Workload,
    profile: MachineProfile,
    agent: AgentKind,
    sched: SchedKind,
    recorder_capacity: Option<usize>,
) -> (RunStats, Observable) {
    let mut k = KernelBuilder::new().profile(profile).build();
    if let Some(cap) = recorder_capacity {
        k.obs.enable(cap);
    }
    let pid = match workload {
        Workload::Scribe => {
            crate::scribe::setup(&mut k);
            k.spawn_image(&crate::scribe::image(), &[b"scribe"], b"scribe")
        }
        Workload::Make8 => {
            crate::make8::setup(&mut k);
            crate::make8::spawn(&mut k)
        }
    };

    let mut router = InterposedRouter::new();
    match agent {
        AgentKind::None => {}
        AgentKind::Timex => {
            ia_interpose::wrap_process(&mut k, &mut router, pid, Timex::boxed(3600), &[]);
        }
        AgentKind::Trace => {
            let (a, _) = TraceAgent::new();
            ia_interpose::wrap_process(&mut k, &mut router, pid, Box::new(a), &[]);
        }
        AgentKind::Union => {
            let specs = union_specs(workload);
            let refs: Vec<&[u8]> = specs.iter().map(Vec::as_slice).collect();
            ia_interpose::wrap_process(&mut k, &mut router, pid, UnionAgent::boxed(&refs), &[]);
        }
        AgentKind::TimeSymbolic => {
            ia_interpose::wrap_process(&mut k, &mut router, pid, TimeSymbolic::boxed(), &[]);
        }
        AgentKind::DfsTrace => {
            let (a, _) = DfsTraceAgent::new();
            ia_interpose::wrap_process(&mut k, &mut router, pid, a, &[]);
        }
        AgentKind::Profile => {
            let (a, _) = ProfileAgent::new();
            ia_interpose::wrap_process(&mut k, &mut router, pid, Box::new(a), &[]);
        }
    }

    let outcome = match sched {
        SchedKind::Sliced => k.run_with(&mut router),
        SchedKind::Legacy => k.run_with_legacy(&mut router),
    };
    let stats = RunStats {
        virtual_secs: k.clock.elapsed_secs(),
        virtual_ns: k.clock.elapsed_ns(),
        total_insns: k.total_insns,
        syscalls: k.total_syscalls,
        intercepted: router.stats.intercepted,
        passthrough: router.stats.passthrough,
        outcome,
        console: k.console.output().to_vec(),
    };
    (stats, k.observable())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_kernel::{I486_25, VAX_6250};

    #[test]
    fn table_3_2_shape_holds() {
        // Paper: base 151.7 s; timex +0.5 s (0.3%), trace +3.5 s (2.5%),
        // union +5.0 s (3.5%). Require the ordering and the "practically
        // negligible" property (all under ~6%).
        let base = run_workload(Workload::Scribe, VAX_6250, AgentKind::None);
        assert_eq!(base.outcome, RunOutcome::AllExited);
        let timex = run_workload(Workload::Scribe, VAX_6250, AgentKind::Timex);
        let trace = run_workload(Workload::Scribe, VAX_6250, AgentKind::Trace);
        let union = run_workload(Workload::Scribe, VAX_6250, AgentKind::Union);
        let s = |r: &RunStats| (r.virtual_secs / base.virtual_secs - 1.0) * 100.0;
        assert!(s(&timex) > 0.0, "timex adds something: {:.2}%", s(&timex));
        assert!(
            s(&timex) < s(&trace) && s(&trace) < s(&union),
            "ordering timex < trace < union: {:.2} {:.2} {:.2}",
            s(&timex),
            s(&trace),
            s(&union)
        );
        assert!(s(&union) < 8.0, "all slowdowns small: {:.2}%", s(&union));
    }

    #[test]
    fn table_3_3_shape_holds() {
        // Paper: base 16.0 s; timex +19%, union +82%, trace +107%.
        let base = run_workload(Workload::Make8, I486_25, AgentKind::None);
        assert_eq!(base.outcome, RunOutcome::AllExited);
        let timex = run_workload(Workload::Make8, I486_25, AgentKind::Timex);
        let trace = run_workload(Workload::Make8, I486_25, AgentKind::Trace);
        let union = run_workload(Workload::Make8, I486_25, AgentKind::Union);
        let s = |r: &RunStats| (r.virtual_secs / base.virtual_secs - 1.0) * 100.0;
        assert!(
            s(&timex) > 5.0,
            "timex slowdown significant on fork-heavy work: {:.1}%",
            s(&timex)
        );
        assert!(
            s(&timex) < s(&union) && s(&union) < s(&trace),
            "ordering timex < union < trace: {:.1} {:.1} {:.1}",
            s(&timex),
            s(&union),
            s(&trace)
        );
        assert!(s(&trace) > 50.0, "trace slowdown large: {:.1}%", s(&trace));
    }
}
