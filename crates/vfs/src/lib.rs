//! # ia-vfs — the in-memory 4.3BSD-style filesystem substrate
//!
//! The paper's agents manipulate filesystem abstractions (pathnames,
//! directories, files, symbolic links, pipes, devices, permissions), so the
//! reproduction needs a kernel filesystem for the simulated kernel to serve.
//! This crate provides one: an in-memory UFS-shaped tree with
//!
//! * inodes for regular files, directories, symbolic links, character
//!   devices, FIFOs and sockets,
//! * hard links with link counting and deferred reclamation (an unlinked
//!   file survives while the kernel holds it open),
//! * owner/group/other permission bits checked against credentials,
//! * full path resolution with `..`, symlink following and `ELOOP` limits,
//! * pipe buffers shared by `pipe(2)` descriptors and named FIFOs.
//!
//! The crate is deliberately *clock-free* and *process-free*: callers pass
//! in the current [`ia_abi::Timeval`] and their credentials, making every
//! operation deterministic and independently testable. The kernel crate
//! layers open files, descriptors and blocking semantics on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod inode;
pub mod path;
pub mod pipe;
pub mod pstore;

pub use fs::{Fs, FsSnapshot, FsStats, Resolved};
pub use inode::{Cred, Ino, Inode, InodeKind, NodeMeta};
pub use path::{is_absolute, join, normalize, split_components};
pub use pipe::{Pipe, PipeId, PipeTable, PIPE_CAPACITY};
pub use pstore::{FileContent, PVec, CHUNK_SIZE};
