//! Interest sets: which trap numbers an agent intercepts.
//!
//! This is the registration half of the paper's numeric system call layer:
//! `register_interest(number)` and `register_interest_range(low, high)`.
//! The router unions the interests of every agent on a chain; traps outside
//! the union bypass the chain entirely — the "pay-per-use" property.

use ia_abi::Sysno;

/// Bitmap over trap numbers `0..256` (every 4.3BSD number fits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterestSet {
    bits: [u64; 4],
}

impl InterestSet {
    /// The empty set: nothing intercepted.
    pub const NONE: InterestSet = InterestSet { bits: [0; 4] };

    /// The full set: every trap intercepted.
    pub const ALL: InterestSet = InterestSet {
        bits: [u64::MAX; 4],
    };

    /// Creates an empty set.
    #[must_use]
    pub fn new() -> InterestSet {
        InterestSet::NONE
    }

    /// Registers interest in one trap number (`register_interest`).
    pub fn add(&mut self, nr: u32) {
        if nr < 256 {
            self.bits[(nr / 64) as usize] |= 1 << (nr % 64);
        }
    }

    /// Registers interest in an inclusive range (`register_interest_range`).
    pub fn add_range(&mut self, low: u32, high: u32) {
        for nr in low..=high.min(255) {
            self.add(nr);
        }
    }

    /// Registers interest in a symbolic call.
    pub fn add_sys(&mut self, s: Sysno) {
        self.add(s.number());
    }

    /// Builder-style: a set from symbolic calls.
    #[must_use]
    pub fn of(calls: &[Sysno]) -> InterestSet {
        let mut s = InterestSet::new();
        for &c in calls {
            s.add_sys(c);
        }
        s
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, nr: u32) -> bool {
        if nr < 256 {
            self.bits[(nr / 64) as usize] & (1 << (nr % 64)) != 0
        } else {
            // Out-of-table numbers are intercepted only by ALL-interest
            // agents (bit 255 proxies for "and everything beyond").
            self.bits[3] & (1 << 63) != 0
        }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &InterestSet) -> InterestSet {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] |= other.bits[i];
        }
        out
    }

    /// Set difference: everything in `self` that is not in `other`.
    ///
    /// Bit 255 keeps its "and everything beyond" proxy meaning: removing a
    /// number ≥ 256 from a set that has the proxy bit is not representable
    /// and is ignored (fail open *on interception* — the set stays a
    /// superset, which is the sound direction for interests).
    #[must_use]
    pub fn minus(&self, other: &InterestSet) -> InterestSet {
        let mut out = *self;
        for i in 0..4 {
            out.bits[i] &= !other.bits[i];
        }
        out
    }

    /// Set complement over the representable numbers `0..256` (the proxy
    /// bit 255 flips with the rest).
    #[must_use]
    pub fn complement(&self) -> InterestSet {
        InterestSet::ALL.minus(self)
    }

    /// True if nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Number of registered trap numbers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if every number in `other` is also in `self`.
    #[must_use]
    pub fn is_superset(&self, other: &InterestSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & b == *b)
    }

    /// Iterates the registered trap numbers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..256u32).filter(|&nr| self.contains(nr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_contains() {
        let mut s = InterestSet::new();
        assert!(s.is_empty());
        s.add_sys(Sysno::Gettimeofday);
        assert!(s.contains(116));
        assert!(!s.contains(117));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ranges_cover_inclusively() {
        let mut s = InterestSet::new();
        s.add_range(3, 6);
        for nr in 3..=6 {
            assert!(s.contains(nr));
        }
        assert!(!s.contains(2));
        assert!(!s.contains(7));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn all_contains_everything_including_unknown() {
        assert!(InterestSet::ALL.contains(0));
        assert!(InterestSet::ALL.contains(255));
        assert!(InterestSet::ALL.contains(9999));
        assert!(!InterestSet::NONE.contains(9999));
    }

    #[test]
    fn union_merges() {
        let a = InterestSet::of(&[Sysno::Read]);
        let b = InterestSet::of(&[Sysno::Write]);
        let u = a.union(&b);
        assert!(u.contains(3));
        assert!(u.contains(4));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn out_of_range_add_is_ignored() {
        let mut s = InterestSet::new();
        s.add(1000);
        assert!(s.is_empty());
    }

    #[test]
    fn minus_and_complement() {
        let abc = InterestSet::of(&[Sysno::Read, Sysno::Write, Sysno::Open]);
        let b = InterestSet::of(&[Sysno::Write]);
        let d = abc.minus(&b);
        assert!(d.contains(3) && d.contains(5) && !d.contains(4));
        assert_eq!(d.len(), 2);
        assert_eq!(abc.minus(&InterestSet::NONE), abc);
        assert!(abc.minus(&InterestSet::ALL).is_empty());

        let c = b.complement();
        assert!(!c.contains(4) && c.contains(3));
        assert_eq!(c.len(), 255);
        assert_eq!(c.union(&b), InterestSet::ALL);
        assert_eq!(InterestSet::NONE.complement(), InterestSet::ALL);
        // The proxy bit flips too: NONE's complement intercepts unknowns.
        assert!(InterestSet::NONE.complement().contains(9999));
    }

    #[test]
    fn superset_and_iter() {
        let small = InterestSet::of(&[Sysno::Read, Sysno::Write]);
        let big = small.union(&InterestSet::of(&[Sysno::Open]));
        assert!(big.is_superset(&small));
        assert!(!small.is_superset(&big));
        assert!(InterestSet::ALL.is_superset(&big));
        assert_eq!(small.iter().collect::<Vec<_>>(), vec![3, 4]);
    }
}
