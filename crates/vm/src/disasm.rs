//! Disassembler, for debugging tools and trace output.

use crate::image::Image;
use crate::insn::Insn;

/// Renders one instruction in assembler syntax.
#[must_use]
pub fn disasm_insn(i: &Insn) -> String {
    use Insn::*;
    match *i {
        Li(rd, v) => format!("li r{rd}, {v:#x}"),
        Mov(rd, rs) => format!("mov r{rd}, r{rs}"),
        Ld(rd, rs, off) => format!("ld r{rd}, {off}(r{rs})"),
        St(rd, rs, off) => format!("st r{rs}, {off}(r{rd})"),
        Ldb(rd, rs, off) => format!("ldb r{rd}, {off}(r{rs})"),
        Stb(rd, rs, off) => format!("stb r{rs}, {off}(r{rd})"),
        Add(rd, a, b) => format!("add r{rd}, r{a}, r{b}"),
        Sub(rd, a, b) => format!("sub r{rd}, r{a}, r{b}"),
        Mul(rd, a, b) => format!("mul r{rd}, r{a}, r{b}"),
        Div(rd, a, b) => format!("div r{rd}, r{a}, r{b}"),
        Rem(rd, a, b) => format!("rem r{rd}, r{a}, r{b}"),
        Addi(rd, rs, imm) => format!("addi r{rd}, r{rs}, {imm}"),
        And(rd, a, b) => format!("and r{rd}, r{a}, r{b}"),
        Or(rd, a, b) => format!("or r{rd}, r{a}, r{b}"),
        Xor(rd, a, b) => format!("xor r{rd}, r{a}, r{b}"),
        Shl(rd, a, b) => format!("shl r{rd}, r{a}, r{b}"),
        Shr(rd, a, b) => format!("shr r{rd}, r{a}, r{b}"),
        Sltu(rd, a, b) => format!("sltu r{rd}, r{a}, r{b}"),
        Slt(rd, a, b) => format!("slt r{rd}, r{a}, r{b}"),
        Seq(rd, a, b) => format!("seq r{rd}, r{a}, r{b}"),
        Jmp(t) => format!("jmp {t}"),
        Jz(rs, t) => format!("jz r{rs}, {t}"),
        Jnz(rs, t) => format!("jnz r{rs}, {t}"),
        Call(t) => format!("call {t}"),
        Ret => "ret".to_string(),
        Sys => "sys".to_string(),
        Halt => "halt".to_string(),
        Nop => "nop".to_string(),
    }
}

/// Produces a full listing of an image: entry, code with indices, and a
/// data-segment summary.
#[must_use]
pub fn disassemble(img: &Image) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "; entry = {}, {} insns, {} data bytes\n",
        img.entry,
        img.code.len(),
        img.data.len()
    ));
    for (i, insn) in img.code.iter().enumerate() {
        let marker = if i as u64 == img.entry { ">" } else { " " };
        out.push_str(&format!("{marker}{i:6}: {}\n", disasm_insn(insn)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn listing_marks_entry_and_counts() {
        let img = assemble("nop\nmain: li r0, 1\n sys exit\n").unwrap();
        let text = disassemble(&img);
        assert!(text.contains("entry = 1"));
        assert!(text.contains(">     1: li r0, 0x1"));
        assert!(text.contains("sys"));
    }

    #[test]
    fn store_prints_source_register_first() {
        assert_eq!(disasm_insn(&Insn::St(15, 3, 8)), "st r3, 8(r15)");
        assert_eq!(disasm_insn(&Insn::Ld(3, 15, 8)), "ld r3, 8(r15)");
    }
}
