//! End-to-end kernel tests: whole programs run through the scheduler with
//! the identity router (Figure 1-1 — no interposition).

use ia_abi::signal::{wait_status_exited, WaitStatus};
use ia_kernel::{Kernel, KernelBuilder, RunOutcome};
use ia_vm::assemble;

fn boot() -> Kernel {
    KernelBuilder::new().build()
}

fn run_program(k: &mut Kernel, src: &str) -> RunOutcome {
    let img = assemble(src).expect("assembles");
    k.spawn_image(&img, &[b"test"], b"test");
    k.run_to_completion()
}

#[test]
fn hello_world_reaches_console() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        msg: .asciz "hello, world\n"
        .text
        main:
            li  r0, 1
            la  r1, msg
            li  r2, 13
            sys write
            li  r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "hello, world\n");
}

#[test]
fn exit_status_recorded() {
    let mut k = boot();
    let img = assemble("main: li r0, 42\n sys exit\n").unwrap();
    let pid = k.spawn_image(&img, &[b"t"], b"t");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    assert_eq!(
        WaitStatus::decode(k.exit_status(pid).unwrap()),
        Some(WaitStatus::Exited(42))
    );
}

#[test]
fn file_create_write_read_back() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        path: .asciz "/tmp/out.txt"
        text: .asciz "persisted"
        buf:  .space 32
        .text
        main:
            la  r0, path
            li  r1, 0x601       ; O_WRONLY|O_CREAT|O_TRUNC
            li  r2, 420         ; 0644
            sys open
            mov r3, r0          ; fd
            mov r0, r3
            la  r1, text
            li  r2, 9
            sys write
            mov r0, r3
            sys close
            ; reopen and read back, echo to stdout
            la  r0, path
            li  r1, 0           ; O_RDONLY
            li  r2, 0
            sys open
            mov r3, r0
            mov r0, r3
            la  r1, buf
            li  r2, 32
            sys read
            mov r2, r0          ; bytes read
            li  r0, 1
            la  r1, buf
            sys write
            li  r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "persisted");
    assert_eq!(k.read_file(b"/tmp/out.txt").unwrap(), b"persisted");
}

#[test]
fn fork_and_wait_collects_status() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        status: .space 8
        child_msg:  .asciz "C"
        parent_msg: .asciz "P"
        .text
        main:
            sys fork
            jz  r0, child
            ; parent: wait for the child
            li  r0, 0           ; any child (0 <= 0 means any in our wait4)
            la  r1, status
            li  r2, 0
            li  r3, 0
            sys wait4
            li  r0, 1
            la  r1, parent_msg
            li  r2, 1
            sys write
            ; exit with the child's exit code from the status word
            li  r6, 8
            la  r1, status
            ld  r0, (r1)
            shr r0, r0, r6
            sys exit
        child:
            li  r0, 1
            la  r1, child_msg
            li  r2, 1
            sys write
            li  r0, 7
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    // Parent waited: child wrote first, then parent.
    assert_eq!(k.console.output_string(), "CP");
    // Parent's own exit status carries the child's code (7).
    let parent_pid = 1;
    assert_eq!(
        WaitStatus::decode(k.exit_status(parent_pid).unwrap()),
        Some(WaitStatus::Exited(7))
    );
}

#[test]
fn pipe_between_parent_and_child() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        msg: .asciz "through the pipe"
        buf: .space 64
        .text
        main:
            sys pipe
            mov r10, r0         ; read end
            mov r11, r2         ; write end (second return value)
            sys fork
            jz  r0, child
            ; parent: close write end, read, echo to stdout
            mov r0, r11
            sys close
            mov r0, r10
            la  r1, buf
            li  r2, 64
            sys read
            mov r2, r0
            li  r0, 1
            la  r1, buf
            sys write
            li r0, 0
            sys exit
        child:
            mov r0, r10
            sys close
            mov r0, r11
            la  r1, msg
            li  r2, 16
            sys write
            mov r0, r11
            sys close
            li  r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "through the pipe");
}

#[test]
fn execve_replaces_image() {
    let mut k = boot();
    let target = assemble(
        r#"
        .data
        msg: .asciz "I am the new image\n"
        .text
        main:
            li r0, 1
            la r1, msg
            li r2, 19
            sys write
            li r0, 5
            sys exit
        "#,
    )
    .unwrap();
    k.install_image(b"/bin/target", &target).unwrap();
    let img = assemble(
        r#"
        .data
        path: .asciz "/bin/target"
        .text
        main:
            la r0, path
            li r1, 0        ; argv = NULL
            li r2, 0
            sys execve
            ; never reached
            li r0, 99
            sys exit
        "#,
    )
    .unwrap();
    let pid = k.spawn_image(&img, &[b"loader"], b"loader");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "I am the new image\n");
    assert_eq!(k.exit_status(pid), Some(wait_status_exited(5)));
}

#[test]
fn fork_exec_wait_pipeline() {
    // The make-like shape: parent forks, child execs a tool, parent waits.
    let mut k = boot();
    let tool = assemble(
        r#"
        .data
        msg: .asciz "tool-ran "
        .text
        main:
            li r0, 1
            la r1, msg
            li r2, 9
            sys write
            li r0, 0
            sys exit
        "#,
    )
    .unwrap();
    k.install_image(b"/bin/tool", &tool).unwrap();
    let out = run_program(
        &mut k,
        r#"
        .data
        path: .asciz "/bin/tool"
        done: .asciz "done\n"
        .text
        main:
            li  r12, 3          ; run the tool three times
        loop:
            jz  r12, fin
            sys fork
            jz  r0, child
            li  r0, 0
            li  r1, 0
            li  r2, 0
            li  r3, 0
            sys wait4
            addi r12, r12, -1
            jmp loop
        child:
            la  r0, path
            li  r1, 0
            li  r2, 0
            sys execve
            li  r0, 1
            sys exit
        fin:
            li  r0, 1
            la  r1, done
            li  r2, 5
            sys write
            li  r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(
        k.console.output_string(),
        "tool-ran tool-ran tool-ran done\n"
    );
}

#[test]
fn signal_handler_runs_and_returns() {
    // Build with the ProgramBuilder for precise handler addresses.
    use ia_abi::Sysno;
    use ia_vm::ProgramBuilder;

    let mut b = ProgramBuilder::new();
    let act = b.data_space(16);
    let hmsg = b.data_asciz(b"H");
    let mmsg = b.data_asciz(b"M");

    let handler = b.new_label();
    let start = b.new_label();
    b.jmp(start);
    // Pad so the handler's code address is not 0 or 1 — those encode
    // SIG_DFL and SIG_IGN in the sigaction record.
    b.emit(ia_vm::Insn::Nop);

    // handler(sig in r0, ctx in r1): write "H", sigreturn(ctx)
    b.bind(handler);
    b.mov(10, 1); // save ctx
    b.li(0, 1);
    b.la(1, hmsg);
    b.li(2, 1);
    b.sys(Sysno::Write);
    b.mov(0, 10);
    b.sys(Sysno::Sigreturn);

    b.bind(start);
    b.entry_here();
    // act.handler = handler address
    // The numeric address of `handler`: 2 (after the jmp and the pad nop).
    b.li(3, 2);
    b.la(1, act);
    b.st(1, 3, 0);
    b.li(0, 30); // SIGUSR1
    b.la(1, act);
    b.li(2, 0);
    b.sys(Sysno::Sigaction);
    // kill(self, SIGUSR1)
    b.sys(Sysno::Getpid);
    b.li(1, 30);
    b.sys(Sysno::Kill);
    // write "M"
    b.li(0, 1);
    b.la(1, mmsg);
    b.li(2, 1);
    b.sys(Sysno::Write);
    b.li(0, 0);
    b.sys(Sysno::Exit);

    let img = b.build();
    let mut k = boot();
    k.spawn_image(&img, &[b"sig"], b"sig");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    assert_eq!(
        k.console.output_string(),
        "HM",
        "handler ran, then control returned to the main flow"
    );
}

#[test]
fn default_sigterm_kills() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        main:
            sys getpid
            li  r1, 15      ; SIGTERM
            sys kill
            ; would only be reached if the signal did not terminate us
            li  r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(
        WaitStatus::decode(k.exit_status(1).unwrap()),
        Some(WaitStatus::Signaled(ia_abi::Signal::SIGTERM))
    );
}

#[test]
fn divide_by_zero_raises_sigfpe() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        main:
            li r0, 1
            li r1, 0
            div r2, r0, r1
            li r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(
        WaitStatus::decode(k.exit_status(1).unwrap()),
        Some(WaitStatus::Signaled(ia_abi::Signal::SIGFPE))
    );
}

#[test]
fn gettimeofday_advances() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        tv1: .space 16
        tv2: .space 16
        .text
        main:
            la  r0, tv1
            li  r1, 0
            sys gettimeofday
            ; burn some time
            li  r10, 1000
        spin:
            addi r10, r10, -1
            jnz r10, spin
            la  r0, tv2
            li  r1, 0
            sys gettimeofday
            ; exit(tv2.sec >= tv1.sec)
            la  r1, tv1
            ld  r2, (r1)
            la  r1, tv2
            ld  r3, (r1)
            sltu r0, r2, r3
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    // 2000+ instructions at 5 µs each pushes past a second boundary... not
    // guaranteed, so accept either ordering but require monotonicity via
    // exit status 0 or 1 (never crash).
    let st = WaitStatus::decode(k.exit_status(1).unwrap()).unwrap();
    assert!(matches!(st, WaitStatus::Exited(0 | 1)));
}

#[test]
fn two_processes_interleave() {
    let mut k = boot();
    let a = assemble(
        r#"
        .data
        m: .asciz "a"
        .text
        main:
            li r12, 3
        l:  jz r12, e
            li r0, 1
            la r1, m
            li r2, 1
            sys write
            addi r12, r12, -1
            jmp l
        e:  li r0, 0
            sys exit
        "#,
    )
    .unwrap();
    let bsrc = r#"
        .data
        m: .asciz "b"
        .text
        main:
            li r12, 3
        l:  jz r12, e
            li r0, 1
            la r1, m
            li r2, 1
            sys write
            addi r12, r12, -1
            jmp l
        e:  li r0, 0
            sys exit
        "#;
    let b = assemble(bsrc).unwrap();
    k.spawn_image(&a, &[b"a"], b"a");
    k.spawn_image(&b, &[b"b"], b"b");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    let out = k.console.output_string();
    assert_eq!(out.matches('a').count(), 3);
    assert_eq!(out.matches('b').count(), 3);
    // Round-robin on syscalls interleaves them.
    assert!(out.contains("ab") || out.contains("ba"), "got {out}");
}

#[test]
fn getdirentries_lists_root() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        path: .asciz "/"
        buf:  .space 512
        base: .space 8
        .text
        main:
            la  r0, path
            li  r1, 0
            li  r2, 0
            sys open
            mov r3, r0
            mov r0, r3
            la  r1, buf
            li  r2, 512
            la  r3, base
            sys getdirentries
            ; exit(bytes > 0)
            li  r1, 0
            sltu r0, r1, r0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(
        WaitStatus::decode(k.exit_status(1).unwrap()),
        Some(WaitStatus::Exited(1))
    );
}

#[test]
fn sbrk_grows_heap() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        main:
            li  r0, 4096
            sys sbrk
            mov r10, r0         ; old break
            ; store at the new memory
            li  r3, 123
            st  r3, (r10)
            ld  r4, (r10)
            seq r0, r3, r4
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(
        WaitStatus::decode(k.exit_status(1).unwrap()),
        Some(WaitStatus::Exited(1))
    );
}

#[test]
fn orphan_grandchildren_are_reaped() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        main:
            sys fork
            jz  r0, child
            li  r0, 0
            li  r1, 0
            li  r2, 0
            li  r3, 0
            sys wait4
            li  r0, 0
            sys exit
        child:
            sys fork            ; grandchild becomes an orphan
            li  r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(k.running_count(), 0);
    assert!(k.pids().is_empty(), "no zombies linger");
}

#[test]
fn deadlock_detected_for_lone_pipe_reader() {
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        buf: .space 8
        .text
        main:
            sys pipe
            mov r10, r0
            ; read from the empty pipe while we still hold the write end:
            ; nobody will ever write -> deadlock
            mov r0, r10
            la  r1, buf
            li  r2, 8
            sys read
            li  r0, 0
            sys exit
        "#,
    );
    assert!(
        matches!(out, RunOutcome::Deadlock { ref blocked } if blocked == &vec![1]),
        "got {out:?}"
    );
}

#[test]
fn bulk_pipe_transfer_blocks_and_completes() {
    // The writer pushes 4x the pipe capacity; it must block repeatedly
    // while the reader drains, and every byte must arrive in order.
    let mut k = boot();
    let out = run_program(
        &mut k,
        r#"
        .data
        buf:  .space 1024
        obuf: .space 1024
        .text
        main:
            sys pipe
            mov r10, r0         ; read end
            mov r11, r2         ; write end
            sys fork
            jz r0, writer
            ; reader (parent): drain 16 KB, sum the bytes into r13
            mov r0, r11
            sys close
            li r13, 0           ; byte sum
            li r14, 16384       ; remaining
        rd: jz r14, rdone
            mov r0, r10
            la r1, buf
            li r2, 1024
            sys read
            jz r0, rdone        ; EOF early would be a bug; sum will show it
            sub r14, r14, r0
            ; add first byte of each chunk (all bytes equal per chunk)
            la r1, buf
            ldb r2, (r1)
            add r13, r13, r2
            jmp rd
        rdone:
            li r0, 0
            li r1, 0
            li r2, 0
            li r3, 0
            sys wait4
            ; exit(sum & 0xff): 16 chunks x value 7 = 112
            li r6, 255
            and r0, r13, r6
            sys exit
        writer:
            mov r0, r10
            sys close
            ; fill obuf with 7s
            la r1, obuf
            li r5, 1024
            li r6, 7
        fl: jz r5, wr
            stb r6, (r1)
            addi r1, r1, 1
            addi r5, r5, -1
            jmp fl
        wr: li r12, 16          ; 16 x 1 KB = 16 KB (4x capacity)
        wl: jz r12, wdone
            mov r0, r11
            la r1, obuf
            li r2, 1024
            sys write
            addi r12, r12, -1
            jmp wl
        wdone:
            mov r0, r11
            sys close
            li r0, 0
            sys exit
        "#,
    );
    assert_eq!(out, RunOutcome::AllExited);
    assert_eq!(
        WaitStatus::decode(k.exit_status(1).unwrap()),
        Some(WaitStatus::Exited(112)),
        "16 chunks of byte 7 arrived intact"
    );
}
