//! # ia-bench — regenerating every table and figure of the paper
//!
//! Each function reproduces one table from §3 of *Interposition Agents*;
//! the `reproduce` binary prints them in the paper's layout, and the
//! benches under `benches/` (built on [`harness`]) measure the same
//! scenarios in host wall-clock time.
//!
//! | Function | Paper table |
//! |---|---|
//! | [`table_3_1`] | Sizes of agents, measured in semicolons |
//! | [`table_3_2`] | Time to format my dissertation (VAX 6250) |
//! | [`table_3_3`] | Time to make 8 programs (25 MHz i486) |
//! | [`table_3_4`] | Performance of low-level operations |
//! | [`table_3_5`] | Performance of individual system calls |
//! | [`dfs_trace_comparison`] | §3.5.2 best-available-implementation study |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleetbench;
pub mod harness;
pub mod hostbench;
pub mod overhead;
pub mod snapbench;

use std::fmt::Write as _;

use ia_agents::TimeSymbolic;
use ia_interpose::InterposedRouter;
use ia_kernel::{KernelBuilder, MachineProfile, I486_25, VAX_6250};
use ia_workloads::micro::{self, MicroCall};
use ia_workloads::{run_workload, AgentKind, Workload};

/// One row of an agent-size table.
#[derive(Debug, Clone)]
pub struct SizeRow {
    /// Agent name.
    pub name: &'static str,
    /// Statements (semicolons) of toolkit code the agent reuses.
    pub toolkit_statements: usize,
    /// Statements specific to the agent.
    pub agent_statements: usize,
}

/// Counts statements in the spirit of the paper — "the actual metric used
/// was to count semicolons. For C and C++, this gives a better measure of
/// the actual number of statements present in the code than counting
/// lines". Rust is expression-oriented (match arms and tail expressions
/// carry no semicolon), so the closest equivalent counts semicolons *plus*
/// match arms, skipping comments, doc lines, and `#[cfg(test)]` modules.
#[must_use]
pub fn count_statements(source: &str) -> usize {
    let code = source.split("#[cfg(test)]").next().unwrap_or(source);
    code.lines()
        .map(str::trim_start)
        .filter(|l| !l.starts_with("//") && !l.starts_with("//!") && !l.starts_with("///"))
        .map(|l| {
            let semis = l.matches(';').count();
            // A match arm (`... => expr,` / `... => expr`) is a statement
            // that C would have written with a semicolon.
            let arm = usize::from(l.contains("=>"));
            semis + arm
        })
        .sum()
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/bench lives two levels down")
        .to_path_buf()
}

fn statements_in(rel_paths: &[&str]) -> usize {
    let root = workspace_root();
    rel_paths
        .iter()
        .map(|p| {
            let full = root.join(p);
            let src = std::fs::read_to_string(&full)
                .unwrap_or_else(|e| panic!("read {}: {e}", full.display()));
            count_statements(&src)
        })
        .sum()
}

/// Source files of the toolkit layers below the symbolic level (what the
/// paper counts as the 2467-statement reusable base for `timex`/`trace`).
pub const TOOLKIT_BASE_FILES: &[&str] = &[
    "crates/interpose/src/agent.rs",
    "crates/interpose/src/interest.rs",
    "crates/interpose/src/loader.rs",
    "crates/interpose/src/router.rs",
    "crates/core/src/ctx.rs",
    "crates/core/src/numeric.rs",
    "crates/core/src/scratch.rs",
    "crates/core/src/symbolic.rs",
];

/// The additional pathname/descriptor/open-object/directory layers the
/// `union` and `dfs_trace` agents also reuse (the paper's 3977 statements).
pub const TOOLKIT_FS_FILES: &[&str] = &[
    "crates/core/src/object.rs",
    "crates/core/src/path.rs",
    "crates/core/src/dir.rs",
    "crates/core/src/fsagent.rs",
];

/// Reproduces Table 3-1: sizes of agents in statements (semicolons).
#[must_use]
pub fn table_3_1() -> Vec<SizeRow> {
    let base = statements_in(TOOLKIT_BASE_FILES);
    let with_fs = base + statements_in(TOOLKIT_FS_FILES);
    vec![
        SizeRow {
            name: "timex",
            toolkit_statements: base,
            agent_statements: statements_in(&["crates/agents/src/timex.rs"]),
        },
        SizeRow {
            name: "trace",
            toolkit_statements: base,
            agent_statements: statements_in(&["crates/agents/src/trace.rs"]),
        },
        SizeRow {
            name: "union",
            toolkit_statements: with_fs,
            agent_statements: statements_in(&["crates/agents/src/union_agent.rs"]),
        },
    ]
}

/// One row of an application-timing table.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Agent row label ("None", "timex", ...).
    pub agent: &'static str,
    /// Virtual elapsed seconds.
    pub seconds: f64,
    /// Percent slowdown relative to the no-agent row.
    pub slowdown_pct: f64,
    /// Syscalls dispatched.
    pub syscalls: u64,
}

fn timing_table(workload: Workload, profile: MachineProfile) -> Vec<TimingRow> {
    let mut rows = Vec::new();
    let mut base = 0.0;
    for agent in AgentKind::TABLE_ROWS {
        let stats = run_workload(workload, profile, agent);
        if agent == AgentKind::None {
            base = stats.virtual_secs;
        }
        rows.push(TimingRow {
            agent: agent.name(),
            seconds: stats.virtual_secs,
            slowdown_pct: if base > 0.0 {
                (stats.virtual_secs / base - 1.0) * 100.0
            } else {
                0.0
            },
            syscalls: stats.syscalls,
        });
    }
    rows
}

/// Reproduces Table 3-2: formatting the dissertation on the VAX 6250.
#[must_use]
pub fn table_3_2() -> Vec<TimingRow> {
    timing_table(Workload::Scribe, VAX_6250)
}

/// Reproduces Table 3-3: making 8 programs on the 25 MHz i486.
#[must_use]
pub fn table_3_3() -> Vec<TimingRow> {
    timing_table(Workload::Make8, I486_25)
}

/// One row of the low-level operations table.
#[derive(Debug, Clone)]
pub struct LowLevelRow {
    /// Operation label, as in the paper.
    pub operation: &'static str,
    /// The paper's measured value in µs.
    pub paper_us: f64,
    /// The simulation's modelled value in µs.
    pub model_us: f64,
    /// Host nanoseconds per operation for our Rust substrate (a modern
    /// machine doing the analogous operation), for the record.
    pub host_ns: f64,
}

/// Reproduces Table 3-4: performance of the low-level operations that
/// implement interposition, on the i486 profile.
#[must_use]
pub fn table_3_4() -> Vec<LowLevelRow> {
    let p = I486_25;

    // Host-side analogues, measured with std::time.
    let host_call = host_measure(|| std::hint::black_box(plain_call(std::hint::black_box(7))));
    let host_virtual = {
        let obj: Box<dyn Callee> = Box::new(Impl);
        host_measure(|| std::hint::black_box(obj.call(std::hint::black_box(7))))
    };
    let (host_intercept, host_downcall) = host_interposition_costs();

    vec![
        LowLevelRow {
            operation: "C procedure call with 1 arg, result",
            paper_us: 1.22,
            model_us: p.call_ns as f64 / 1000.0,
            host_ns: host_call,
        },
        LowLevelRow {
            operation: "C++ virtual procedure call with 1 arg, result",
            paper_us: 1.94,
            model_us: p.virtual_call_ns as f64 / 1000.0,
            host_ns: host_virtual,
        },
        LowLevelRow {
            operation: "Intercept and return from system call",
            paper_us: 30.0,
            model_us: p.intercept_ns as f64 / 1000.0,
            host_ns: host_intercept,
        },
        LowLevelRow {
            operation: "htg_unix_syscall() overhead",
            paper_us: 37.0,
            model_us: p.downcall_ns as f64 / 1000.0,
            host_ns: host_downcall,
        },
    ]
}

#[inline(never)]
fn plain_call(x: u64) -> u64 {
    x.wrapping_mul(2654435761).rotate_left(7)
}

trait Callee {
    fn call(&self, x: u64) -> u64;
}

struct Impl;

impl Callee for Impl {
    #[inline(never)]
    fn call(&self, x: u64) -> u64 {
        plain_call(x)
    }
}

fn host_measure(mut f: impl FnMut() -> u64) -> f64 {
    const N: u32 = 200_000;
    let mut acc = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..N {
        acc = acc.wrapping_add(f());
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(N);
    std::hint::black_box(acc);
    ns
}

/// Host wall-clock cost of (a) dispatching one trap through the interposed
/// router with a full-interception null agent, minus the identity-router
/// cost — our "intercept and return"; and (b) one extra `down` crossing.
fn host_interposition_costs() -> (f64, f64) {
    const N: u32 = 40_000;
    let img = ia_vm::assemble("main: halt\n").expect("trivial image");

    // Direct kernel call timing.
    let mut k = KernelBuilder::new().build();
    let pid = k.spawn_image(&img, &[b"m"], b"m");
    let start = std::time::Instant::now();
    for _ in 0..N {
        let _ = k.syscall(pid, ia_abi::Sysno::Getpid.number(), [0; 6]);
    }
    let direct_ns = start.elapsed().as_nanos() as f64 / f64::from(N);

    // Through the router with one pass-through agent.
    let mut k = KernelBuilder::new().build();
    let pid = k.spawn_image(&img, &[b"m"], b"m");
    let mut router = InterposedRouter::new();
    router.push_agent(pid, TimeSymbolic::boxed());
    let start = std::time::Instant::now();
    for _ in 0..N {
        use ia_kernel::SyscallRouter;
        let _ = router.route(&mut k, pid, ia_abi::Sysno::Getpid.number(), [0; 6], 0);
    }
    let routed_ns = start.elapsed().as_nanos() as f64 / f64::from(N);

    let overhead = (routed_ns - direct_ns).max(0.0);
    // Split roughly as the paper does: interception vs the downcall leg.
    (overhead * 0.45, overhead * 0.55)
}

/// One row of the per-syscall table.
#[derive(Debug, Clone)]
pub struct SyscallRow {
    /// Call label, as printed in Table 3-5.
    pub operation: &'static str,
    /// Modelled µs without an agent.
    pub without_agent_us: f64,
    /// Modelled µs under the `time_symbolic` agent.
    pub with_agent_us: f64,
    /// The toolkit overhead (difference).
    pub overhead_us: f64,
}

/// Measures the virtual cost of one call of `call` by differencing two
/// loop lengths (cancelling program setup) and subtracting the exact
/// instruction time (cancelling loop overhead — negligible on the real
/// i486, but our per-instruction costs are deliberately inflated; see
/// `ia_kernel::clock`).
fn measure_micro(call: MicroCall, agent: bool, profile: MachineProfile) -> f64 {
    let run = |n: u64| -> (u64, u64) {
        let mut k = KernelBuilder::new().profile(profile).build();
        micro::setup(&mut k);
        let pid = k.spawn_image(&micro::loop_image(call, n), &[b"m"], b"m");
        let mut router = InterposedRouter::new();
        if agent {
            router.push_agent(pid, TimeSymbolic::boxed());
        }
        let out = k.run_with(&mut router);
        assert_eq!(out, ia_kernel::RunOutcome::AllExited, "{}", call.name());
        (k.clock.elapsed_ns(), k.total_insns)
    };
    let n1 = 64;
    let n2 = 192;
    let (e1, i1) = run(n1);
    let (e2, i2) = run(n2);
    // Signed difference: a `saturating_sub` here would clamp a
    // cheaper-than-instruction-time path to zero instead of reporting it.
    let d = i128::from(e2) - i128::from(e1) - i128::from((i2 - i1) * profile.insn_ns);
    d as f64 / f64::from((n2 - n1) as u32) / 1000.0
}

/// Reproduces Table 3-5: per-syscall cost without and with interposition,
/// on the i486 profile.
#[must_use]
pub fn table_3_5() -> Vec<SyscallRow> {
    MicroCall::ALL
        .iter()
        .map(|&call| {
            let without = measure_micro(call, false, I486_25);
            let with = measure_micro(call, true, I486_25);
            SyscallRow {
                operation: call.name(),
                without_agent_us: without,
                with_agent_us: with,
                overhead_us: with - without,
            }
        })
        .collect()
}

/// The §3.5.2 comparison: dfs_trace (agent-based file-reference tracing)
/// versus running untraced, on a file-intensive workload — the paper's
/// AFS-benchmark comparison showing agents trade performance for
/// structure.
#[derive(Debug, Clone)]
pub struct DfsComparison {
    /// Untraced virtual seconds.
    pub base_secs: f64,
    /// Traced virtual seconds.
    pub traced_secs: f64,
    /// Percent slowdown (paper: 64% for the agent, 3% for the kernel
    /// implementation it replicates).
    pub slowdown_pct: f64,
    /// Statements of agent-specific code (paper: 1584 vs the kernel
    /// implementation's 1627).
    pub agent_statements: usize,
}

/// Runs the dfs_trace comparison on the make8 workload.
#[must_use]
pub fn dfs_trace_comparison() -> DfsComparison {
    let base = run_workload(Workload::Make8, I486_25, AgentKind::None);
    let traced = run_workload(Workload::Make8, I486_25, AgentKind::DfsTrace);
    DfsComparison {
        base_secs: base.virtual_secs,
        traced_secs: traced.virtual_secs,
        slowdown_pct: (traced.virtual_secs / base.virtual_secs - 1.0) * 100.0,
        agent_statements: statements_in(&["crates/agents/src/dfs_trace.rs"]),
    }
}

// ---- rendering ---------------------------------------------------------

/// Renders Table 3-1 in the paper's layout.
#[must_use]
pub fn render_table_3_1(rows: &[SizeRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3-1: Sizes of agents, measured in semicolons");
    let _ = writeln!(
        out,
        "(paper: timex 35/2467, trace 1348/2467, union 166/3977)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>10}",
        "Agent", "Toolkit", "Agent", "Total"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>10}",
            r.name,
            r.toolkit_statements,
            r.agent_statements,
            r.toolkit_statements + r.agent_statements
        );
    }
    out
}

/// Renders a timing table (3-2 or 3-3).
#[must_use]
pub fn render_timing(title: &str, paper_note: &str, rows: &[TimingRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "({paper_note})\n");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>10}",
        "Agent", "Seconds", "% Slowdown", "Syscalls"
    );
    for r in rows {
        if r.agent == "None" {
            let _ = writeln!(
                out,
                "{:<12} {:>10.1} {:>12} {:>10}",
                r.agent, r.seconds, "-", r.syscalls
            );
        } else {
            let _ = writeln!(
                out,
                "{:<12} {:>10.1} {:>11.1}% {:>10}",
                r.agent, r.seconds, r.slowdown_pct, r.syscalls
            );
        }
    }
    out
}

/// Renders Table 3-4.
#[must_use]
pub fn render_table_3_4(rows: &[LowLevelRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3-4: Performance of low-level operations");
    let _ = writeln!(
        out,
        "(i486 profile; host column = this machine running the substrate)\n"
    );
    let _ = writeln!(
        out,
        "{:<48} {:>10} {:>10} {:>12}",
        "Operation", "paper µs", "model µs", "host ns"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<48} {:>10.2} {:>10.2} {:>12.1}",
            r.operation, r.paper_us, r.model_us, r.host_ns
        );
    }
    out
}

/// Renders Table 3-5.
#[must_use]
pub fn render_table_3_5(rows: &[SyscallRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3-5: Performance of individual system calls (i486)"
    );
    let _ = writeln!(
        out,
        "(paper anchors: getpid 25 µs, gettimeofday 47 µs, read 1K 370 µs, stat 892 µs;\n toolkit overhead 140-210 µs typical, ~10 ms for fork/execve)\n"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>12}",
        "Operation", "without µs", "with µs", "overhead µs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>12.0} {:>12.0} {:>12.0}",
            r.operation, r.without_agent_us, r.with_agent_us, r.overhead_us
        );
    }
    out
}

/// Renders the §3.5.2 comparison.
#[must_use]
pub fn render_dfs(cmp: &DfsComparison) -> String {
    format!(
        "DFSTrace comparison (§3.5.2), make-8-programs workload\n\
         (paper: agent-based tracing 64% slowdown vs 3.0% kernel-based; 1584 vs 1627 statements)\n\n\
         untraced: {:.1} s   dfs_trace: {:.1} s   slowdown: {:.1}%\n\
         agent-specific statements: {}\n",
        cmp.base_secs, cmp.traced_secs, cmp.slowdown_pct, cmp.agent_statements
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_counter_counts_semicolons_not_comments() {
        let src =
            "let a = 1; let b = 2;\n// not this; one\n/// nor; this\ncall();\nFoo => bar(),\n";
        assert_eq!(count_statements(src), 4, "3 semicolons + 1 match arm");
        let with_tests = "a();\n#[cfg(test)]\nmod tests { b(); c(); }\n";
        assert_eq!(count_statements(with_tests), 1, "test modules excluded");
    }

    #[test]
    fn table_3_1_shape() {
        let rows = table_3_1();
        assert_eq!(rows.len(), 3);
        let timex = &rows[0];
        let trace = &rows[1];
        let union = &rows[2];
        // The paper's size results: toolkit dominates simple agents; trace
        // is much larger than timex (proportional to the interface);
        // union's agent code stays small despite affecting 40+ calls.
        assert!(timex.agent_statements < 100, "{}", timex.agent_statements);
        assert!(
            trace.agent_statements > 3 * timex.agent_statements,
            "trace {} vs timex {}",
            trace.agent_statements,
            timex.agent_statements
        );
        assert!(
            timex.toolkit_statements > 5 * timex.agent_statements,
            "toolkit dominates: {} vs {}",
            timex.toolkit_statements,
            timex.agent_statements
        );
        assert!(union.toolkit_statements > trace.toolkit_statements);
        assert!(union.agent_statements < trace.agent_statements);
    }

    #[test]
    fn table_3_4_model_matches_paper_exactly() {
        for r in table_3_4() {
            let ratio = r.model_us / r.paper_us;
            assert!(
                (0.99..1.01).contains(&ratio),
                "{}: model {} vs paper {}",
                r.operation,
                r.model_us,
                r.paper_us
            );
        }
    }

    #[test]
    fn table_3_5_anchors_within_band() {
        let rows = table_3_5();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.operation == name)
                .unwrap_or_else(|| panic!("row {name}"))
                .clone()
        };
        let getpid = get("getpid()");
        assert!(
            (24.0..30.0).contains(&getpid.without_agent_us),
            "{getpid:?}"
        );
        assert!((140.0..220.0).contains(&getpid.overhead_us), "{getpid:?}");
        let read1k = get("read() 1K of data");
        assert!(
            (360.0..390.0).contains(&read1k.without_agent_us),
            "{read1k:?}"
        );
        let stat = get("stat()");
        assert!((880.0..910.0).contains(&stat.without_agent_us), "{stat:?}");
        let fstat = get("fstat()");
        assert!((84.0..90.0).contains(&fstat.without_agent_us), "{fstat:?}");
        let fork = get("fork(), wait(), _exit()");
        assert!(
            fork.overhead_us > 5_000.0,
            "fork under agents costs ~10+ms extra: {fork:?}"
        );
    }
}

/// One row of the pay-per-use ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: &'static str,
    /// Virtual seconds on make-8.
    pub seconds: f64,
    /// Traps intercepted.
    pub intercepted: u64,
    /// Traps bypassing the chain at zero cost.
    pub passthrough: u64,
}

/// Quantifies the pay-per-use design decision (DESIGN.md): the same
/// single-method agent (`timex`) costs dramatically less with a narrow
/// interest set than an equivalent agent registered for every trap —
/// "calls not intercepted by interposition agents go directly to the
/// underlying system and result in no additional overhead".
#[must_use]
pub fn ablation_pay_per_use() -> Vec<AblationRow> {
    let rows = [
        ("no agent", AgentKind::None),
        ("narrow interests (timex)", AgentKind::Timex),
        ("intercept-everything null", AgentKind::TimeSymbolic),
    ];
    rows.iter()
        .map(|&(label, kind)| {
            let stats = run_workload(Workload::Make8, I486_25, kind);
            AblationRow {
                config: label,
                seconds: stats.virtual_secs,
                intercepted: stats.intercepted,
                passthrough: stats.passthrough,
            }
        })
        .collect()
}

/// Renders the pay-per-use ablation.
#[must_use]
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: pay-per-use interception (make-8-programs, i486)"
    );
    let _ = writeln!(
        out,
        "(the design choice behind §3.4.2: \"agent overheads are of a pay-per-use nature\")\n"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>12} {:>12}",
        "Configuration", "Seconds", "Intercepted", "Passthrough"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>10.1} {:>12} {:>12}",
            r.config, r.seconds, r.intercepted, r.passthrough
        );
    }
    out
}
