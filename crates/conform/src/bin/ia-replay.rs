//! ia-replay: deterministic time-travel over the flight recorder.
//!
//! The flight recorder (ia-obs) stamps every scheduler decision — trap
//! dispatches, layer enter/exit, slices, signal deliveries — with a
//! monotone sequence number and the virtual clock. Because the whole
//! machine is deterministic, any window `[a, b)` of that event stream can
//! be *re-executed*: restore the nearest world snapshot taken at or
//! before `a`, run forward, and the recorder must emit the identical
//! events again. This binary records a seeded conform program with
//! periodic [`WorldSnapshot`]s, then proves exactly that.
//!
//! ```text
//! ia-replay --selftest                    # tier-1 gate: windows across seeds
//! ia-replay --seed 7 --from 120 --to 200  # replay one window, print events
//! ```
//!
//! Comparison is bit-identical on `(vclock_ns, event)` with layer ids
//! resolved to names: the recorder interns layer names in first-seen
//! order, so a replay that starts mid-stream may assign different
//! [`ia_obs::LayerId`]s to the same layers. Everything else in
//! [`ia_obs::Stamped`] is compared exactly, with sequence numbers offset
//! by the snapshot's tag. The replayed run must also reach the same
//! outcome and final [`Observable`] when the window extends to the end.

use std::process::ExitCode;

use ia_conform::{sample, OpSet, Program, StackKind};
use ia_interpose::{restore_world, snapshot_world, InterposedRouter, WorldSnapshot};
use ia_kernel::{run, Kernel, KernelBuilder, Observable, RunLimits, RunOutcome};
use ia_obs::{Obs, Stamped};

/// Ring capacity while recording: large enough that no selftest run ever
/// drops an event (drops would leave holes in the reference stream).
const RING: usize = 1 << 20;

/// One recorded run: the reference event stream (pre-rendered, since the
/// recording kernel's layer-name table dies with it), the periodic
/// snapshots tagged with the recorder sequence number at capture time,
/// and the final world for end-state checks.
struct Recording {
    /// `events[i]` has `seq == i` (the recording ring never drops).
    keys: Vec<String>,
    /// `(seq-at-capture, snapshot)`, ascending.
    snaps: Vec<(u64, WorldSnapshot)>,
    /// Step-chunk size the recorder ran with. Chunk boundaries are
    /// observable (an interrupted slice is accounted as two [`Slice`]
    /// events), so a replay must re-execute with the same chunking —
    /// snapshots sit on chunk boundaries, which keeps them aligned.
    ///
    /// [`Slice`]: ia_obs::Event::Slice
    chunk: u64,
    final_obs: Observable,
    outcome: RunOutcome,
}

fn build_world(program: &Program) -> (Kernel, InterposedRouter) {
    let mut k = KernelBuilder::new().build();
    k.obs.enable(RING);
    Program::setup(&mut k);
    let pid = k.spawn_image(&program.compile(), &[b"conform"], b"conform");
    let mut router = InterposedRouter::new();
    for a in StackKind::Stacked.agents() {
        ia_interpose::wrap_process(&mut k, &mut router, pid, a, &[]);
    }
    (k, router)
}

/// Renders one stamped event with layer ids resolved through `obs`, so
/// streams from recorders with different interning orders compare.
fn event_key(obs: &Obs, e: &Stamped) -> String {
    use ia_obs::Event::{LayerEnter, LayerExit};
    let body = match e.event {
        LayerEnter { layer, pid, nr } => {
            format!("enter {} pid={pid} nr={nr}", obs.layer_name(layer))
        }
        LayerExit {
            layer,
            pid,
            nr,
            outcome,
        } => format!(
            "exit {} pid={pid} nr={nr} {outcome:?}",
            obs.layer_name(layer)
        ),
        other => format!("{other:?}"),
    };
    format!("v={} {body}", e.vclock_ns)
}

/// Runs `program` to completion in `chunk`-step increments, snapshotting
/// the world at every chunk boundary (including step 0).
fn record(program: &Program, chunk: u64) -> Recording {
    let (mut k, mut router) = build_world(program);
    let mut snaps = Vec::new();
    let outcome = loop {
        snaps.push((k.obs.recorded(), snapshot_world(&mut k, &mut router)));
        match run(&mut k, &mut router, RunLimits { max_steps: chunk }) {
            RunOutcome::StepLimit => continue,
            other => break other,
        }
    };
    assert_eq!(k.obs.dropped(), 0, "recording ring too small for this run");
    let keys = k
        .obs
        .events()
        .iter()
        .map(|e| event_key(&k.obs, e))
        .collect();
    Recording {
        keys,
        snaps,
        chunk,
        final_obs: k.observable(),
        outcome,
    }
}

/// The replayed window plus end-state facts, for assertions and printing.
struct Replayed {
    /// Rendered events covering `[a, b)`, in order.
    window: Vec<String>,
    /// Which snapshot the replay started from.
    snap_id: u64,
    snap_seq: u64,
}

/// Re-executes the window `[a, b)` of `rec` from the nearest snapshot and
/// checks the regenerated stream against the reference, bit for bit.
fn replay_window(program: &Program, rec: &Recording, a: u64, b: u64) -> Result<Replayed, String> {
    let total = rec.keys.len() as u64;
    let b = b.min(total);
    if a >= b {
        return Err(format!("empty window [{a}, {b}) (stream has {total})"));
    }
    let (tag, snap) = rec
        .snaps
        .iter()
        .rev()
        .find(|(tag, _)| *tag <= a)
        .ok_or_else(|| format!("no snapshot at or before seq {a}"))?;

    // A fresh world, rewound to the snapshot. The recorder is not part of
    // the capture (observation must stay inert), so re-enabling it starts
    // a fresh stream whose seq 0 corresponds to reference seq `tag`.
    let (mut k, mut router) = build_world(program);
    restore_world(&mut k, &mut router, snap);
    k.obs.enable(RING);

    let need = b - tag;
    let mut outcome = RunOutcome::StepLimit;
    while k.obs.recorded() < need && outcome == RunOutcome::StepLimit {
        outcome = run(
            &mut k,
            &mut router,
            RunLimits {
                max_steps: rec.chunk,
            },
        );
    }
    if k.obs.recorded() < need {
        return Err(format!(
            "replay from snapshot {} (seq {tag}) stopped with {outcome:?} after {} events, \
             needed {need} to cover [{a}, {b})",
            snap.id(),
            k.obs.recorded()
        ));
    }
    // Replaying the tail must land in the recorded end state, not merely
    // pass through the right events.
    if b == total {
        while outcome == RunOutcome::StepLimit {
            outcome = run(
                &mut k,
                &mut router,
                RunLimits {
                    max_steps: rec.chunk,
                },
            );
        }
        if outcome != rec.outcome {
            return Err(format!(
                "replayed outcome {outcome:?} != recorded {:?}",
                rec.outcome
            ));
        }
        if k.observable() != rec.final_obs {
            return Err("replayed final observable differs from recording".into());
        }
    }

    let replayed = k.obs.events();
    let mut window = Vec::with_capacity((b - a) as usize);
    for seq in a..b {
        let got = &replayed[(seq - tag) as usize];
        if got.seq != seq - tag {
            return Err(format!(
                "replayed stream has a hole: expected local seq {}, got {}",
                seq - tag,
                got.seq
            ));
        }
        let (want_key, got_key) = (&rec.keys[seq as usize], event_key(&k.obs, got));
        if *want_key != got_key {
            return Err(format!(
                "window [{a}, {b}) diverged at seq {seq} (snapshot {}, local seq {}):\n  \
                 recorded: {want_key}\n  replayed: {got_key}",
                snap.id(),
                seq - tag
            ));
        }
        window.push(got_key);
    }
    Ok(Replayed {
        window,
        snap_id: snap.id(),
        snap_seq: *tag,
    })
}

/// The tier-1 gate: across several seeds, record with snapshots and
/// replay full tails, interior windows, and windows starting strictly
/// between snapshots. Everything must reproduce bit-identically.
fn selftest() -> Result<(), String> {
    let mut windows = 0u64;
    let mut events = 0u64;
    for seed in [1u64, 4, 11, 23] {
        let program = sample(seed, 18, OpSet::ALL);
        let rec = record(&program, 100);
        let total = rec.keys.len() as u64;
        if rec.snaps.len() < 2 {
            return Err(format!(
                "seed {seed}: only {} snapshot(s) — run too short to exercise time travel",
                rec.snaps.len()
            ));
        }
        let tags: Vec<u64> = rec.snaps.iter().map(|(t, _)| *t).collect();
        let mut cases: Vec<(u64, u64)> = Vec::new();
        for &t in &tags {
            cases.push((t, total)); // full tail from each snapshot
            cases.push((t, (t + 64).min(total))); // short interior window
            cases.push((t + 17, (t + 90).min(total))); // start between snapshots
        }
        for (a, b) in cases {
            if a >= b.min(total) {
                continue;
            }
            let r = replay_window(&program, &rec, a, b)?;
            windows += 1;
            events += r.window.len() as u64;
        }
        println!(
            "seed {seed}: {} events, {} snapshots, outcome {:?} — all windows reproduced",
            total,
            rec.snaps.len(),
            rec.outcome
        );
    }
    println!("ia-replay selftest: {windows} windows, {events} events compared, 0 divergences");
    Ok(())
}

struct Options {
    selftest: bool,
    seed: u64,
    ops: usize,
    chunk: u64,
    from: u64,
    to: u64,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut o = Options {
            selftest: false,
            seed: 7,
            ops: 24,
            chunk: 400,
            from: 0,
            to: u64::MAX,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut num = |name: &str| -> Result<u64, String> {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("{name} needs a numeric argument"))
            };
            match a.as_str() {
                "--selftest" => o.selftest = true,
                "--seed" => o.seed = num("--seed")?,
                "--ops" => o.ops = num("--ops")?.max(1) as usize,
                "--chunk" => o.chunk = num("--chunk")?.max(1),
                "--from" => o.from = num("--from")?,
                "--to" => o.to = num("--to")?,
                "--help" | "-h" => {
                    println!(
                        "usage: ia-replay --selftest\n\
                         \u{20}      ia-replay [--seed N] [--ops M] [--chunk C] [--from A] [--to B]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(o)
    }
}

fn main() -> ExitCode {
    let o = match Options::parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ia-replay: {e}");
            return ExitCode::from(2);
        }
    };
    if o.selftest {
        return match selftest() {
            Ok(()) => ExitCode::SUCCESS,
            Err(d) => {
                println!("FAIL: {d}");
                ExitCode::FAILURE
            }
        };
    }
    let program = sample(o.seed, o.ops, OpSet::ALL);
    let rec = record(&program, o.chunk);
    let total = rec.keys.len() as u64;
    println!(
        "recorded seed {}: {} events, {} snapshots, outcome {:?}",
        o.seed,
        total,
        rec.snaps.len(),
        rec.outcome
    );
    let (a, b) = (o.from.min(total), o.to.min(total));
    match replay_window(&program, &rec, a, b) {
        Ok(r) => {
            println!(
                "replayed [{a}, {}) from snapshot {} (seq {}):",
                b, r.snap_id, r.snap_seq
            );
            for (i, line) in r.window.iter().enumerate() {
                println!("  seq {:>6}  {line}", a + i as u64);
            }
            println!("OK: window reproduced bit-identically");
            ExitCode::SUCCESS
        }
        Err(d) => {
            println!("FAIL: {d}");
            ExitCode::FAILURE
        }
    }
}
