//! The console and character devices.
//!
//! Device semantics live here rather than in the VFS: the filesystem only
//! records a device *number* on the inode; the kernel routes reads and
//! writes on such descriptors through [`Console::device_read`] /
//! [`Console::device_write`].

use ia_abi::Errno;
use std::collections::VecDeque;

/// Device number of `/dev/null`.
pub const DEV_NULL: u32 = 0;
/// Device number of `/dev/zero`.
pub const DEV_ZERO: u32 = 1;
/// Device number of `/dev/tty` (the console).
pub const DEV_TTY: u32 = 2;

/// Result of a device read that may need to block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevRead {
    /// Bytes delivered.
    Data(Vec<u8>),
    /// Terminal with no input queued and no EOF condition: block.
    WouldBlock,
}

/// The system console: captures all tty output, queues injected input.
#[derive(Debug, Clone, Default)]
pub struct Console {
    output: Vec<u8>,
    input: VecDeque<u8>,
    input_eof: bool,
    /// Total bytes ever written to the tty, for rusage accounting.
    pub bytes_out: u64,
}

impl Console {
    /// A console with no queued input; reads at EOF by default so batch
    /// workloads never block on a terminal.
    #[must_use]
    pub fn new() -> Console {
        Console {
            input_eof: true,
            ..Console::default()
        }
    }

    /// Queues bytes for programs to read from `/dev/tty` and clears EOF.
    pub fn push_input(&mut self, bytes: &[u8]) {
        self.input.extend(bytes);
        self.input_eof = false;
    }

    /// Marks end-of-input: after the queue drains, reads return 0.
    pub fn set_input_eof(&mut self) {
        self.input_eof = true;
    }

    /// Everything programs have written to the console.
    #[must_use]
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The console output as UTF-8 (lossy), convenient in tests.
    #[must_use]
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Discards captured output.
    pub fn clear_output(&mut self) {
        self.output.clear();
    }

    /// True if a tty read would find data (or EOF).
    #[must_use]
    pub fn readable(&self) -> bool {
        !self.input.is_empty() || self.input_eof
    }

    /// Performs a device read.
    pub fn device_read(&mut self, dev: u32, len: usize) -> Result<DevRead, Errno> {
        match dev {
            DEV_NULL => Ok(DevRead::Data(Vec::new())),
            DEV_ZERO => Ok(DevRead::Data(vec![0; len])),
            DEV_TTY => {
                if self.input.is_empty() {
                    if self.input_eof {
                        Ok(DevRead::Data(Vec::new()))
                    } else {
                        Ok(DevRead::WouldBlock)
                    }
                } else {
                    let n = len.min(self.input.len());
                    Ok(DevRead::Data(self.input.drain(..n).collect()))
                }
            }
            _ => Err(Errno::ENXIO),
        }
    }

    /// Performs a device write. Returns bytes accepted.
    pub fn device_write(&mut self, dev: u32, data: &[u8]) -> Result<usize, Errno> {
        match dev {
            DEV_NULL | DEV_ZERO => Ok(data.len()),
            DEV_TTY => {
                self.output.extend_from_slice(data);
                self.bytes_out += data.len() as u64;
                Ok(data.len())
            }
            _ => Err(Errno::ENXIO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_reads_eof_writes_discard() {
        let mut c = Console::new();
        assert_eq!(c.device_read(DEV_NULL, 10).unwrap(), DevRead::Data(vec![]));
        assert_eq!(c.device_write(DEV_NULL, b"gone").unwrap(), 4);
        assert!(c.output().is_empty());
    }

    #[test]
    fn zero_reads_zeros() {
        let mut c = Console::new();
        assert_eq!(
            c.device_read(DEV_ZERO, 3).unwrap(),
            DevRead::Data(vec![0, 0, 0])
        );
    }

    #[test]
    fn tty_captures_output() {
        let mut c = Console::new();
        c.device_write(DEV_TTY, b"hello ").unwrap();
        c.device_write(DEV_TTY, b"world").unwrap();
        assert_eq!(c.output_string(), "hello world");
        assert_eq!(c.bytes_out, 11);
    }

    #[test]
    fn tty_input_queue_then_eof() {
        let mut c = Console::new();
        assert_eq!(c.device_read(DEV_TTY, 8).unwrap(), DevRead::Data(vec![]));
        c.push_input(b"abc");
        assert_eq!(
            c.device_read(DEV_TTY, 2).unwrap(),
            DevRead::Data(b"ab".to_vec())
        );
        assert_eq!(
            c.device_read(DEV_TTY, 2).unwrap(),
            DevRead::Data(b"c".to_vec())
        );
        // Queue drained but EOF was cleared by push_input: further reads block.
        assert_eq!(c.device_read(DEV_TTY, 2).unwrap(), DevRead::WouldBlock);
        c.set_input_eof();
        assert_eq!(c.device_read(DEV_TTY, 2).unwrap(), DevRead::Data(vec![]));
    }

    #[test]
    fn unknown_device_is_enxio() {
        let mut c = Console::new();
        assert_eq!(c.device_read(99, 1), Err(Errno::ENXIO));
        assert_eq!(c.device_write(99, b"x"), Err(Errno::ENXIO));
    }
}
