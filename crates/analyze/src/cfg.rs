//! Control-flow graph over an image's code segment.
//!
//! The graph is built leniently: undecodable slots (which the machine would
//! fault on with `SIGILL`) terminate a block with no successors, and branch
//! targets outside the text segment are recorded rather than rejected, so
//! lints can report them with context.

use ia_vm::Insn;

/// Why an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary fall-through or jump.
    Flow,
    /// `Call` to its target.
    CallTarget,
    /// The fall-through after a `Call`, entered on return. The interpreter
    /// treats this edge specially: the callee may have clobbered every
    /// register, so the return state is ⊤ (see `interp`).
    CallReturn,
}

/// A directed edge to another block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the successor block.
    pub to: usize,
    /// Why control can flow there.
    pub kind: EdgeKind,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor edges.
    pub succs: Vec<Edge>,
    /// True if control can run off the end of the text segment here
    /// (`SIGSEGV` at runtime).
    pub falls_off: bool,
    /// True if the block ends at an undecodable slot (`SIGILL` at runtime).
    /// `end` then points just past that slot.
    pub ends_in_illegal: bool,
}

/// A branch or call whose target lies outside the text segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadTarget {
    /// Instruction index of the offending branch.
    pub at: usize,
    /// The out-of-range target.
    pub target: u64,
}

/// The control-flow graph of one code segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks, ordered by `start`.
    pub blocks: Vec<Block>,
    /// For each instruction index, the block containing it.
    pub block_of: Vec<usize>,
    /// Per-block reachability from the image entry point.
    pub reachable: Vec<bool>,
    /// Branches whose target is outside the text segment.
    pub bad_targets: Vec<BadTarget>,
}

/// Control-flow targets of an instruction: (branch targets, falls
/// through?).
///
/// `Sys` always falls through — even `li r7, exit; sys`. The trap may be
/// entered from a branch with a different `r7`, and an interposition agent
/// may veto the exit itself, in which case the kernel resumes the program at
/// the next instruction. Whether a trailing `sys` is a *provable* exit is a
/// value question the abstract interpreter answers (see the fall-off-end
/// lint in `lib.rs`), not a syntactic one.
///
/// `Ret` has no successor edges here even though the machine loads the
/// return address from writable stack memory: a corrupted return slot can
/// transfer control to any instruction. That hazard is handled by the
/// pervasive analysis phase (`lib.rs`), which any reachable `Ret` triggers;
/// modeling it as edges would be both imprecise (every block) and still
/// wrong (mid-block entry).
fn flow(insn: Option<Insn>) -> (Vec<u64>, bool) {
    match insn {
        Some(Insn::Jmp(t)) => (vec![t], false),
        Some(Insn::Jz(_, t)) | Some(Insn::Jnz(_, t)) => (vec![t], true),
        Some(Insn::Call(t)) => (vec![t], true),
        Some(Insn::Ret) | Some(Insn::Halt) | None => (Vec::new(), false),
        Some(_) => (Vec::new(), true),
    }
}

/// True if the instruction at `i` ends a basic block.
fn is_terminator(insn: Option<Insn>) -> bool {
    matches!(
        insn,
        Some(
            Insn::Jmp(_)
                | Insn::Jz(..)
                | Insn::Jnz(..)
                | Insn::Call(_)
                | Insn::Ret
                | Insn::Sys
                | Insn::Halt
        ) | None
    )
}

impl Cfg {
    /// Builds the CFG for `code`, computing reachability from `entry`.
    ///
    /// `code[i] == None` marks an undecodable instruction slot.
    #[must_use]
    pub fn build(code: &[Option<Insn>], entry: usize) -> Cfg {
        let n = code.len();
        // Pass 1: leaders. Index 0, the entry, every in-range branch/call
        // target, and the instruction after every terminator.
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
            if entry < n {
                leader[entry] = true;
            }
            for (i, insn) in code.iter().enumerate() {
                let (targets, _) = flow(*insn);
                for t in targets {
                    if (t as usize as u64) == t && (t as usize) < n {
                        leader[t as usize] = true;
                    }
                }
                if is_terminator(*insn) && i + 1 < n {
                    leader[i + 1] = true;
                }
            }
        }

        // Pass 2: blocks and the insn→block map.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        for i in 0..n {
            if leader[i] {
                blocks.push(Block {
                    start: i,
                    end: i, // fixed below
                    succs: Vec::new(),
                    falls_off: false,
                    ends_in_illegal: false,
                });
            }
            block_of[i] = blocks.len() - 1;
        }
        let nb = blocks.len();
        let mut next_start = n;
        for blk in blocks.iter_mut().rev() {
            blk.end = next_start;
            next_start = blk.start;
        }

        // Pass 3: edges.
        let mut bad_targets = Vec::new();
        for blk in blocks.iter_mut() {
            let last = blk.end - 1;
            let insn = code[last];
            let (targets, falls) = flow(insn);
            let is_call = matches!(insn, Some(Insn::Call(_)));
            blk.ends_in_illegal = insn.is_none();
            for t in &targets {
                if (*t as usize as u64) == *t && (*t as usize) < n {
                    blk.succs.push(Edge {
                        to: block_of[*t as usize],
                        kind: if is_call {
                            EdgeKind::CallTarget
                        } else {
                            EdgeKind::Flow
                        },
                    });
                } else {
                    bad_targets.push(BadTarget {
                        at: last,
                        target: *t,
                    });
                }
            }
            if falls {
                if last + 1 < n {
                    blk.succs.push(Edge {
                        to: block_of[last + 1],
                        kind: if is_call {
                            EdgeKind::CallReturn
                        } else {
                            EdgeKind::Flow
                        },
                    });
                } else {
                    blk.falls_off = true;
                }
            }
        }

        // Pass 4: reachability from entry.
        let mut cfg = Cfg {
            blocks,
            block_of,
            reachable: vec![false; nb],
            bad_targets,
        };
        if entry < n {
            cfg.reachable = cfg.reachable_from(&[cfg.block_of[entry]]);
        }
        cfg
    }

    /// Blocks reachable from any of `roots` (block indices).
    #[must_use]
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work: Vec<usize> = roots
            .iter()
            .copied()
            .filter(|&r| r < self.blocks.len())
            .collect();
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            for e in &self.blocks[b].succs {
                if !seen[e.to] {
                    work.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_vm::Insn::*;

    fn decoded(code: Vec<Insn>) -> Vec<Option<Insn>> {
        code.into_iter().map(Some).collect()
    }

    #[test]
    fn straight_line_is_one_block() {
        let code = decoded(vec![Li(0, 1), Li(1, 2), Halt]);
        let cfg = Cfg::build(&code, 0);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!((cfg.blocks[0].start, cfg.blocks[0].end), (0, 3));
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(!cfg.blocks[0].falls_off);
    }

    #[test]
    fn branches_split_blocks_and_both_arms_are_successors() {
        // 0: jz r0, 3 / 1: li r1,1 / 2: jmp 4 / 3: li r1,2 / 4: halt
        let code = decoded(vec![Jz(0, 3), Li(1, 1), Jmp(4), Li(1, 2), Halt]);
        let cfg = Cfg::build(&code, 0);
        assert_eq!(cfg.blocks.len(), 4);
        let b0 = &cfg.blocks[cfg.block_of[0]];
        let mut tos: Vec<usize> = b0.succs.iter().map(|e| e.to).collect();
        tos.sort_unstable();
        assert_eq!(tos, vec![cfg.block_of[1], cfg.block_of[3]]);
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn call_edges_are_typed_and_unreachable_blocks_detected() {
        // 0: call 3 / 1: halt / 2: nop (unreachable) / 3: ret
        let code = decoded(vec![Call(3), Halt, Nop, Ret]);
        let cfg = Cfg::build(&code, 0);
        let b0 = &cfg.blocks[cfg.block_of[0]];
        assert!(b0
            .succs
            .iter()
            .any(|e| e.kind == EdgeKind::CallTarget && e.to == cfg.block_of[3]));
        assert!(b0
            .succs
            .iter()
            .any(|e| e.kind == EdgeKind::CallReturn && e.to == cfg.block_of[1]));
        assert!(!cfg.reachable[cfg.block_of[2]], "nop island unreachable");
    }

    #[test]
    fn sys_always_falls_through() {
        // Even `li r7, exit; sys` falls through: the sys may be entered from
        // a branch with a different r7, and an interposition agent may veto
        // the exit, after which the kernel resumes at the next instruction.
        let code = decoded(vec![Sys, Li(7, 1), Sys, Nop]);
        let cfg = Cfg::build(&code, 0);
        let b0 = &cfg.blocks[cfg.block_of[0]];
        assert_eq!(b0.succs.len(), 1);
        let b1 = &cfg.blocks[cfg.block_of[2]];
        assert_eq!(b1.succs.len(), 1);
        assert!(cfg.reachable[cfg.block_of[3]], "code after exit is live");
    }

    #[test]
    fn bad_targets_and_fall_off_are_recorded() {
        let code = decoded(vec![Jz(0, 99), Nop]);
        let cfg = Cfg::build(&code, 0);
        assert_eq!(cfg.bad_targets, vec![BadTarget { at: 0, target: 99 }]);
        assert!(cfg.blocks[cfg.block_of[1]].falls_off);
    }

    #[test]
    fn undecodable_slot_ends_its_block_with_no_successors() {
        let code = vec![Some(Li(0, 1)), None, Some(Halt)];
        let cfg = Cfg::build(&code, 0);
        let b0 = &cfg.blocks[cfg.block_of[1]];
        assert!(b0.ends_in_illegal);
        assert!(b0.succs.is_empty());
        assert!(!cfg.reachable[cfg.block_of[2]]);
    }
}
