//! `reproduce` — prints every table of the paper's evaluation section,
//! regenerated from the simulation.
//!
//! ```text
//! cargo run -p ia-bench --release --bin reproduce            # everything
//! cargo run -p ia-bench --release --bin reproduce table-3-2  # one table
//! cargo run -p ia-bench --release --bin reproduce -- --json  # BENCH_1.json
//! ```

use ia_bench::{
    ablation_pay_per_use, dfs_trace_comparison, hostbench, overhead, render_ablation, render_dfs,
    render_table_3_1, render_table_3_4, render_table_3_5, render_timing, table_3_1, table_3_2,
    table_3_3, table_3_4, table_3_5,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--json") {
        // Host-throughput mode: measure the interpreter hot path under both
        // schedulers and emit the machine-readable baseline.
        let json = hostbench::render_json(&hostbench::run_all());
        print!("{json}");
        if let Err(e) = std::fs::write("BENCH_1.json", &json) {
            eprintln!("warning: could not write BENCH_1.json: {e}");
        }
        // Per-agent syscall overhead table (paper §6 shape), from the
        // ia-obs metrics registry.
        let json2 = overhead::render_json(&overhead::run_all());
        if let Err(e) = std::fs::write("BENCH_2.json", &json2) {
            eprintln!("warning: could not write BENCH_2.json: {e}");
        }
        return;
    }

    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!("Interposition Agents (Jones, SOSP '93) — reproduction report");
    println!("=============================================================\n");

    if want("table-3-1") {
        println!("{}", render_table_3_1(&table_3_1()));
    }
    if want("table-3-2") {
        println!(
            "{}",
            render_timing(
                "Table 3-2: Time to format my dissertation (VAX 6250 profile)",
                "paper: 151.7 s base; timex +0.5 s, trace +3.5 s (2.5%), union +5.0 s (3.5%)",
                &table_3_2()
            )
        );
    }
    if want("table-3-3") {
        println!(
            "{}",
            render_timing(
                "Table 3-3: Time to make 8 programs (25 MHz i486 profile)",
                "paper: 16.0 s base; timex +19%, union +82%, trace +107%",
                &table_3_3()
            )
        );
    }
    if want("table-3-4") {
        println!("{}", render_table_3_4(&table_3_4()));
    }
    if want("table-3-5") {
        println!("{}", render_table_3_5(&table_3_5()));
    }
    if want("dfs-trace") {
        println!("{}", render_dfs(&dfs_trace_comparison()));
    }
    if want("ablation") {
        println!("{}", render_ablation(&ablation_pay_per_use()));
    }
}
