//! # ia-toolkit — the interposition-agent toolkit
//!
//! The paper's primary contribution: an object-structured toolkit that
//! lets system-interface interposition agents be written "in terms of the
//! high-level objects provided by this interface, rather than in terms of
//! the intercepted system calls themselves".
//!
//! ## The layers (Figure 2-1)
//!
//! | Paper class | Here |
//! |---|---|
//! | `numeric_syscall` | [`ia_interpose::Agent`] + [`numeric`] utilities |
//! | `bsd_numeric_syscall` | [`symbolic::Symbolic`] (the decoding adapter) |
//! | `symbolic_syscall` | [`symbolic::SymbolicSyscall`] (one method per call, pass-through defaults) |
//! | `pathname_set` / `pathname` | [`path::PathnameSet`] / [`path::Pathname`] with `getpn()` |
//! | `descriptor_set` / `descriptor` / `open_descriptor` | the descriptor table in [`fsagent::FsAgent`] |
//! | `open_object` | [`object::OpenObject`] (reference-counted via [`object::ObjRef`]) |
//! | `directory` | [`dir::Directory`] with `next_direntry()` |
//!
//! C++ inheritance with virtual methods becomes Rust traits with default
//! method bodies: an agent overrides exactly the behaviour it changes and
//! inherits everything else — the paper's *appropriate code size* goal.
//! The `timex` agent is one overridden method; the `union` agent is a
//! `getpn` override plus a `next_direntry` iterator.
//!
//! Agents share the client's address space (as on Mach 2.5), so rewritten
//! pathnames are staged in a [`scratch::Scratch`] region the toolkit
//! `sbrk`s inside the client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod dir;
pub mod fsagent;
pub mod numeric;
pub mod object;
pub mod path;
pub mod scratch;
pub mod symbolic;

pub use ctx::SymCtx;
pub use dir::{DefaultDirectory, DirObject, Directory};
pub use fsagent::FsAgent;
pub use numeric::RemapAgent;
pub use object::{clone_descriptor_table, obj_ref, ObjRef, OpenObject, Passthrough};
pub use path::{DefaultPathname, PathIntent, Pathname, PathnameSet};
pub use scratch::{Scratch, SCRATCH_SIZE};
pub use symbolic::{minimum_interests, Symbolic, SymbolicSyscall};
