//! The agent loader — the paper's "general agent loader program used to
//! invoke arbitrary agents, which are compiled separately from the agent
//! loader".
//!
//! Loading wraps an agent around a client process: the agent's `init` hook
//! runs with a downcall context, interest registration happens through the
//! agent's `interests()`, and the one-time load cost from Table 3-2's
//! floor is charged to the virtual clock.

use ia_abi::Errno;
use ia_kernel::{Kernel, Pid};
use ia_vm::Image;

use crate::agent::{Agent, SysCtx};
use crate::router::InterposedRouter;

/// Wraps `agent` around an existing process: pushes it on top of the
/// chain, charges the agent start-up cost, and runs `init`.
pub fn wrap_process(
    k: &mut Kernel,
    router: &mut InterposedRouter,
    pid: Pid,
    mut agent: Box<dyn Agent>,
    agent_args: &[Vec<u8>],
) {
    // Installing an agent mutates the chain: any batched calls must be
    // observed by the old configuration first.
    router.flush_pending(k, pid);
    let cost = k.profile.agent_startup_ns;
    k.clock.advance_ns(cost);
    if let Ok(p) = k.proc_mut(pid) {
        p.usage.sys_ns += cost;
    }
    // init runs with the *existing* chain below the new agent.
    let inited = router
        .with_chain(pid, |agents| {
            let mut ctx = SysCtx::new(k, pid, agents, 0);
            agent.init(&mut ctx, agent_args);
        })
        .is_some();
    if !inited {
        let mut below: Vec<Box<dyn Agent>> = Vec::new();
        let mut ctx = SysCtx::new(k, pid, &mut below, 0);
        agent.init(&mut ctx, agent_args);
    }
    router.push_agent(pid, agent);
}

/// Spawns `image` as a fresh process already wrapped by `agent` — the
/// common `agent_loader prog args...` invocation.
pub fn spawn_with_agent(
    k: &mut Kernel,
    router: &mut InterposedRouter,
    agent: Box<dyn Agent>,
    agent_args: &[Vec<u8>],
    image: &Image,
    argv: &[&[u8]],
    name: &[u8],
) -> Pid {
    let pid = k.spawn_image(image, argv, name);
    wrap_process(k, router, pid, agent, agent_args);
    pid
}

/// Like [`spawn_with_agent`] but loading the client binary from the
/// simulated filesystem, exactly as the paper's loader did.
pub fn load_with_agent(
    k: &mut Kernel,
    router: &mut InterposedRouter,
    agent: Box<dyn Agent>,
    agent_args: &[Vec<u8>],
    path: &[u8],
    argv: &[&[u8]],
) -> Result<Pid, Errno> {
    let pid = k.spawn(path, argv)?;
    wrap_process(k, router, pid, agent, agent_args);
    Ok(pid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::InterestSet;
    use ia_abi::{RawArgs, Sysno};
    use ia_kernel::{RunOutcome, SysOutcome};

    struct InitProbe {
        inited_with: Vec<Vec<u8>>,
    }

    impl Agent for InitProbe {
        fn name(&self) -> &'static str {
            "init-probe"
        }
        fn interests(&self) -> InterestSet {
            InterestSet::NONE
        }
        fn init(&mut self, ctx: &mut SysCtx<'_>, args: &[Vec<u8>]) {
            self.inited_with = args.to_vec();
            // Agents may use the interface during init (e.g. open a log).
            let out = ctx.down_sys(Sysno::Getpid, [0; 6]);
            assert!(matches!(out, SysOutcome::Done(Ok(_))));
        }
        fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
            ctx.down(nr, args)
        }
        fn clone_box(&self) -> Box<dyn Agent> {
            Box::new(InitProbe {
                inited_with: self.inited_with.clone(),
            })
        }
    }

    #[test]
    fn loader_runs_init_with_args_and_charges_startup() {
        let mut k = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble("main: li r0, 0\n sys exit\n").unwrap();
        let mut router = InterposedRouter::new();
        let before = k.clock.elapsed_ns();
        let pid = spawn_with_agent(
            &mut k,
            &mut router,
            Box::new(InitProbe {
                inited_with: vec![],
            }),
            &[b"+60".to_vec()],
            &img,
            &[b"client"],
            b"client",
        );
        assert!(k.clock.elapsed_ns() - before >= k.profile.agent_startup_ns);
        assert!(router.has_chain(pid));
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    }

    #[test]
    fn load_from_filesystem() {
        let mut k = ia_kernel::KernelBuilder::new().build();
        let img = ia_vm::assemble("main: li r0, 3\n sys exit\n").unwrap();
        k.install_image(b"/bin/prog", &img).unwrap();
        let mut router = InterposedRouter::new();
        let pid = load_with_agent(
            &mut k,
            &mut router,
            Box::new(InitProbe {
                inited_with: vec![],
            }),
            &[],
            b"/bin/prog",
            &[b"prog"],
        )
        .unwrap();
        k.run_with(&mut router);
        assert_eq!(
            k.exit_status(pid),
            Some(ia_abi::signal::wait_status_exited(3))
        );
        assert_eq!(
            load_with_agent(
                &mut k,
                &mut router,
                Box::new(InitProbe {
                    inited_with: vec![]
                }),
                &[],
                b"/bin/missing",
                &[],
            )
            .unwrap_err(),
            Errno::ENOENT
        );
    }
}
