//! `reproduce` — prints every table of the paper's evaluation section,
//! regenerated from the simulation.
//!
//! ```text
//! cargo run -p ia-bench --release --bin reproduce            # everything
//! cargo run -p ia-bench --release --bin reproduce table-3-2  # one table
//! cargo run -p ia-bench --release --bin reproduce -- --json  # BENCH_{1,2,3}.json
//! cargo run -p ia-bench --release --bin reproduce -- --json2 # BENCH_2.json only
//! cargo run -p ia-bench --release --bin reproduce -- --json3 # BENCH_3.json only
//! cargo run -p ia-bench --release --bin reproduce -- --smoke # CI gate
//! ```

use ia_bench::{
    ablation_pay_per_use, dfs_trace_comparison, fleetbench, hostbench, overhead, render_ablation,
    render_dfs, render_table_3_1, render_table_3_4, render_table_3_5, render_timing, snapbench,
    table_3_1, table_3_2, table_3_3, table_3_4, table_3_5,
};

/// Largest tolerated drop of the smoke scenario's normalized throughput
/// ratio below the committed baseline before CI fails.
const SMOKE_TOLERANCE: f64 = 0.20;

/// Extracts a committed field of one scenario row — matched by name,
/// scheduler, engine, and fast-path flag — from the `BENCH_1.json` text.
/// Hand-rolled: the workspace builds offline with no serialization
/// dependency, and the document is our own line-per-scenario writer's
/// output.
fn baseline_field(json: &str, name: &str, engine: &str, fast: bool, field: &str) -> Option<f64> {
    json.lines()
        .find(|l| {
            l.contains(&format!("\"name\": \"{name}\""))
                && l.contains("\"sched\": \"sliced\"")
                && l.contains(&format!("\"engine\": \"{engine}\""))
                && l.contains(&format!("\"fast_path\": {fast}"))
        })
        .and_then(|l| {
            let rest = l.split(&format!("\"{field}\": ")).nth(1)?;
            rest.split([',', '}']).next()?.trim().parse().ok()
        })
}

/// One smoke gate: compares the live guarded/reference throughput ratio
/// against the committed one, failing beyond [`SMOKE_TOLERANCE`]. Both
/// sides of each ratio are measured in the same host window, so a slow
/// (or fast) CI host cancels out instead of tripping — or masking — the
/// gate.
fn smoke_gate(json: &str, what: &str, name: &str, fast: bool, field: &str, live: f64) -> bool {
    let committed_guarded = baseline_field(json, name, "fused", fast, field);
    let committed_reference = baseline_field(json, name, "plain", false, field);
    let (Some(guarded), Some(reference)) = (committed_guarded, committed_reference) else {
        eprintln!("smoke: missing {name} fused/plain rows in BENCH_1.json");
        return false;
    };
    if reference <= 0.0 {
        eprintln!("smoke: degenerate {name} plain baseline in BENCH_1.json");
        return false;
    }
    let committed = guarded / reference;
    let floor = committed * (1.0 - SMOKE_TOLERANCE);
    println!(
        "smoke: {name}: live {what} ratio {live:.2}x vs committed {committed:.2}x (floor {floor:.2}x)"
    );
    if live < floor {
        eprintln!(
            "smoke: FAIL — {name} hot-path speedup regressed more than {:.0}% below the committed baseline",
            SMOKE_TOLERANCE * 100.0
        );
        return false;
    }
    true
}

/// Compares fresh runs of the trap and compute smoke scenarios — each
/// normalized by a plain-engine reference measured in the same window —
/// against the committed baseline ratios; exits non-zero on a regression
/// beyond [`SMOKE_TOLERANCE`] on either.
fn smoke() {
    let json = match std::fs::read_to_string("BENCH_1.json") {
        Ok(text) => text,
        Err(e) => {
            eprintln!("smoke: cannot read BENCH_1.json: {e}");
            std::process::exit(1);
        }
    };
    let (traps, traps_ref) = hostbench::run_smoke();
    let (compute, compute_ref) = hostbench::run_smoke_compute();
    let ok = smoke_gate(
        &json,
        "traps/s",
        hostbench::SMOKE_SCENARIO,
        true,
        "traps_per_sec",
        traps.traps_per_sec / traps_ref.traps_per_sec.max(1e-9),
    ) & smoke_gate(
        &json,
        "Minsns/s",
        hostbench::SMOKE_COMPUTE_SCENARIO,
        false,
        "minsns_per_sec",
        compute.minsns_per_sec / compute_ref.minsns_per_sec.max(1e-9),
    );
    if !ok {
        std::process::exit(1);
    }
    println!("smoke: ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    if args.iter().any(|a| a == "--json") {
        // Host-throughput mode: measure the interpreter hot path under both
        // schedulers and emit the machine-readable baseline.
        let json = hostbench::render_json(&hostbench::run_all());
        print!("{json}");
        if let Err(e) = std::fs::write("BENCH_1.json", &json) {
            eprintln!("warning: could not write BENCH_1.json: {e}");
        }
        // Per-agent syscall overhead table (paper §6 shape), from the
        // ia-obs metrics registry.
        let json2 = overhead::render_json(&overhead::run_all());
        if let Err(e) = std::fs::write("BENCH_2.json", &json2) {
            eprintln!("warning: could not write BENCH_2.json: {e}");
        }
        // Snapshot cost vs VFS size, branch-based txn sessions, and the
        // multi-tenant fleet scaling sweep. Fleet first: spin-up latency
        // is allocator-sensitive, so measure it on a fresh heap before
        // the snapshot sweep churns it.
        let fleet = fleetbench::run_all();
        let json3 = snapbench::render_json(&snapbench::run_all(), &fleet);
        if let Err(e) = std::fs::write("BENCH_3.json", &json3) {
            eprintln!("warning: could not write BENCH_3.json: {e}");
        }
        return;
    }

    if args.iter().any(|a| a == "--json2") {
        // Just the per-agent overhead table — virtual-time measurement,
        // cheap and deterministic.
        let json2 = overhead::render_json(&overhead::run_all());
        print!("{json2}");
        if let Err(e) = std::fs::write("BENCH_2.json", &json2) {
            eprintln!("warning: could not write BENCH_2.json: {e}");
        }
        return;
    }

    if args.iter().any(|a| a == "--json3") {
        // Just the snapshot-cost + fleet document — much cheaper than the
        // full throughput sweep, and the one CI re-measures per push.
        // Fleet first (fresh-heap spin-up measurement, as in --json).
        let fleet = fleetbench::run_all();
        let json3 = snapbench::render_json(&snapbench::run_all(), &fleet);
        print!("{json3}");
        if let Err(e) = std::fs::write("BENCH_3.json", &json3) {
            eprintln!("warning: could not write BENCH_3.json: {e}");
        }
        return;
    }

    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    println!("Interposition Agents (Jones, SOSP '93) — reproduction report");
    println!("=============================================================\n");

    if want("table-3-1") {
        println!("{}", render_table_3_1(&table_3_1()));
    }
    if want("table-3-2") {
        println!(
            "{}",
            render_timing(
                "Table 3-2: Time to format my dissertation (VAX 6250 profile)",
                "paper: 151.7 s base; timex +0.5 s, trace +3.5 s (2.5%), union +5.0 s (3.5%)",
                &table_3_2()
            )
        );
    }
    if want("table-3-3") {
        println!(
            "{}",
            render_timing(
                "Table 3-3: Time to make 8 programs (25 MHz i486 profile)",
                "paper: 16.0 s base; timex +19%, union +82%, trace +107%",
                &table_3_3()
            )
        );
    }
    if want("table-3-4") {
        println!("{}", render_table_3_4(&table_3_4()));
    }
    if want("table-3-5") {
        println!("{}", render_table_3_5(&table_3_5()));
    }
    if want("dfs-trace") {
        println!("{}", render_dfs(&dfs_trace_comparison()));
    }
    if want("ablation") {
        println!("{}", render_ablation(&ablation_pay_per_use()));
    }
}
