//! Transactional software environments (§1.4): "a simple `run transaction`
//! command could be constructed that runs arbitrary unmodified programs
//! ... such that all persistent execution side effects are remembered ...
//! but where in actuality the user is presented with a commit or abort
//! choice at the end of such a session. Indeed, one such transactional
//! program invocation could occur within another, transparently providing
//! nested transactions."
//!
//! ```text
//! cargo run --example transactional_shell
//! ```

use interposition_agents::agents::TxnAgent;
use interposition_agents::interpose::{spawn_with_agent, wrap_process, InterposedRouter};
use interposition_agents::kernel::{Kernel, KernelBuilder};
use interposition_agents::vm::assemble;

const SESSION: &str = r#"
    ; a "shell session" that edits a config file and removes a log
    .data
    conf: .asciz "/etc/app.conf"
    log:  .asciz "/var/app.log"
    text: .asciz "retries = 5"
    .text
    main:
        la r0, conf
        li r1, 0x601
        li r2, 420
        sys open
        mov r3, r0
        mov r0, r3
        la r1, text
        li r2, 11
        sys write
        mov r0, r3
        sys close
        la r0, log
        sys unlink
        li r0, 0
        sys exit
"#;

fn fresh_world() -> Kernel {
    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/var").unwrap();
    k.write_file(b"/etc/app.conf", b"retries = 1").unwrap();
    k.write_file(b"/var/app.log", b"old log data").unwrap();
    k
}

fn show(k: &mut Kernel, label: &str) {
    println!(
        "  [{label}] app.conf = {:?}, app.log exists = {}",
        String::from_utf8_lossy(&k.read_file(b"/etc/app.conf").unwrap()),
        k.read_file(b"/var/app.log").is_ok()
    );
}

fn main() {
    let image = assemble(SESSION).expect("assembles");

    // ---- session 1: the user aborts -------------------------------------
    println!("=== session 1: run the mutating session, then ABORT ===");
    let mut k = fresh_world();
    show(&mut k, "before");
    let mut router = InterposedRouter::new();
    let (agent, txn) = TxnAgent::new();
    txn.set_abort();
    spawn_with_agent(&mut k, &mut router, agent, &[], &image, &[b"sh"], b"sh");
    k.run_with(&mut router);
    println!(
        "  session touched: {:?}, whiteouts: {:?}",
        txn.modified_paths()
            .iter()
            .map(|p| String::from_utf8_lossy(p).into_owned())
            .collect::<Vec<_>>(),
        txn.deleted_paths()
            .iter()
            .map(|p| String::from_utf8_lossy(p).into_owned())
            .collect::<Vec<_>>(),
    );
    show(&mut k, "after abort");

    // ---- session 2: the user commits -------------------------------------
    println!("\n=== session 2: same session, then COMMIT ===");
    let mut k = fresh_world();
    show(&mut k, "before");
    let mut router = InterposedRouter::new();
    let (agent, txn) = TxnAgent::new();
    txn.set_commit();
    spawn_with_agent(&mut k, &mut router, agent, &[], &image, &[b"sh"], b"sh");
    k.run_with(&mut router);
    show(&mut k, "after commit");

    // ---- session 3: nested — inner commit inside an outer abort ---------
    println!("\n=== session 3: nested transactions (inner COMMIT, outer ABORT) ===");
    let mut k = fresh_world();
    show(&mut k, "before");
    let mut router = InterposedRouter::new();
    let (outer, outer_h) = TxnAgent::new();
    let (inner, inner_h) = TxnAgent::new();
    outer_h.set_abort();
    inner_h.set_commit();
    let pid = k.spawn_image(&image, &[b"sh"], b"sh");
    wrap_process(&mut k, &mut router, pid, outer, &[]);
    wrap_process(&mut k, &mut router, pid, inner, &[]);
    k.run_with(&mut router);
    println!(
        "  inner outcome: {:?}, outer outcome: {:?}",
        inner_h.outcome(),
        outer_h.outcome()
    );
    show(&mut k, "after nested");
    println!("  (the inner commit landed inside the outer transaction, which aborted)");
}
