//! Report rendering: the shared JSON string escaper (used by every
//! hand-rolled JSON writer in the workspace) plus text/JSON renderers for
//! flight-recorder dumps and the metrics registry.

use crate::{Event, MetricsSnapshot, Obs, Outcome};
use std::fmt::Write as _;

/// Version stamp carried by every JSON document the workspace renders
/// (lint and flow reports, `BENCH_1/2/3.json`, the fusion histogram), so
/// downstream consumers can detect shape changes in one place.
pub const SCHEMA_VERSION: u32 = 1;

/// Opens a hand-rolled JSON document: `{`, the [`SCHEMA_VERSION`] stamp,
/// and one identifying tag field. Every JSON emitter in the workspace
/// starts its document here so the stamp cannot be forgotten (BENCH_1/2/3
/// once shipped without it).
#[must_use]
pub fn json_header(tag_key: &str, tag: &str) -> String {
    format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"{}\": \"{}\",\n",
        json_escape(tag_key),
        json_escape(tag)
    )
}

/// Escapes `s` for inclusion inside a JSON string literal.
///
/// Handles the two characters that terminate or escape a literal (`"` and
/// `\`), the common named controls (`\n`, `\r`, `\t`), and every other
/// control character below 0x20 as `\u00XX` — the full set RFC 8259
/// requires. Everything else (including multi-byte UTF-8) passes through.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Human name for a trap number: the `Sysno` name, or `sys#N` for numbers
/// outside the interface.
#[must_use]
pub fn sys_name(nr: u32) -> String {
    match ia_abi::Sysno::from_u32(nr) {
        Some(s) => s.name().to_owned(),
        None => format!("sys#{nr}"),
    }
}

fn outcome_str(o: Outcome) -> String {
    match o {
        Outcome::Ok => "ok".to_owned(),
        Outcome::Err(e) => format!("err({e})"),
        Outcome::Block => "block".to_owned(),
        Outcome::NoReturn => "noreturn".to_owned(),
    }
}

/// Renders the retained flight-recorder events, oldest first, one per
/// line — the format dumped next to conformance repros.
#[must_use]
pub fn render_events_text(obs: &Obs) -> String {
    let events = obs.events();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# flight recorder: {} retained, {} dropped",
        events.len(),
        obs.dropped()
    );
    for e in &events {
        let _ = write!(out, "seq={:<8} v={:>12}ns  ", e.seq, e.vclock_ns);
        match e.event {
            Event::LayerEnter { layer, pid, nr } => {
                let _ = writeln!(
                    out,
                    "enter  pid={pid} layer={} nr={}",
                    obs.layer_name(layer),
                    sys_name(nr)
                );
            }
            Event::LayerExit {
                layer,
                pid,
                nr,
                outcome,
            } => {
                let _ = writeln!(
                    out,
                    "exit   pid={pid} layer={} nr={} outcome={}",
                    obs.layer_name(layer),
                    sys_name(nr),
                    outcome_str(outcome)
                );
            }
            Event::TrapDispatch { pid, nr, restarts } => {
                let _ = writeln!(
                    out,
                    "trap   pid={pid} nr={} restarts={restarts}",
                    sys_name(nr)
                );
            }
            Event::Slice { pid, retired } => {
                let _ = writeln!(out, "slice  pid={pid} retired={retired}");
            }
            Event::SignalDelivered { pid, sig } => {
                let _ = writeln!(out, "signal pid={pid} sig={sig}");
            }
            Event::FaultInjected { pid, nr, errno } => {
                let _ = writeln!(out, "fault  pid={pid} nr={} errno={errno}", sys_name(nr));
            }
        }
    }
    out
}

/// Renders the metrics registry as an aligned text table: one row per
/// `(layer, call)` with counts and exclusive virtual/host totals.
#[must_use]
pub fn render_metrics_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<14} {:>10} {:>14} {:>14} {:>12}",
        "layer", "call", "count", "virt-ns", "virt-ns/call", "host-ns"
    );
    for (layer, nr, stat) in &snap.rows {
        let per_call = stat.virt_ns.checked_div(stat.count).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<14} {:<14} {:>10} {:>14} {:>14} {:>12}",
            layer,
            sys_name(*nr),
            stat.count,
            stat.virt_ns,
            per_call,
            stat.host_ns
        );
    }
    out
}

/// Renders the metrics registry as a JSON array of row objects, including
/// the non-empty prefix of each log2 histogram.
#[must_use]
pub fn render_metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("[\n");
    for (i, (layer, nr, stat)) in snap.rows.iter().enumerate() {
        let hist = |h: &crate::Hist| {
            let last = h.0.iter().rposition(|&c| c != 0).map_or(0, |p| p + 1);
            let cells: Vec<String> = h.0[..last].iter().map(u64::to_string).collect();
            format!("[{}]", cells.join(","))
        };
        let _ = writeln!(
            out,
            "  {{\"layer\": \"{}\", \"call\": \"{}\", \"nr\": {}, \"count\": {}, \"virt_ns\": {}, \"host_ns\": {}, \"virt_hist_log2\": {}, \"host_hist_log2\": {}}}{}",
            json_escape(layer),
            json_escape(&sys_name(*nr)),
            nr,
            stat.count,
            stat.virt_ns,
            stat.host_ns,
            hist(&stat.virt_hist),
            hist(&stat.host_hist),
            if i + 1 == snap.rows.len() { "" } else { "," }
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(json_escape("\u{01}\u{1f}"), "\\u0001\\u001f");
        assert_eq!(json_escape("käse/🦀"), "käse/🦀");
        // The composed case that broke hostbench: a machine name
        // containing both a quote and a backslash.
        assert_eq!(json_escape(r#"i486 "DX\2""#), r#"i486 \"DX\\2\""#);
    }

    #[test]
    fn json_header_opens_a_stamped_document() {
        let h = json_header("bench", "BENCH_1");
        assert_eq!(
            h,
            "{\n  \"schema_version\": 1,\n  \"bench\": \"BENCH_1\",\n"
        );
        // Tag values pass through the shared escaper.
        assert!(json_header("image", "a\"b").contains(r#""a\"b""#));
    }

    #[test]
    fn sys_name_falls_back_to_number() {
        assert_eq!(sys_name(ia_abi::Sysno::Read.number()), "read");
        assert_eq!(sys_name(9999), "sys#9999");
    }

    #[test]
    fn renders_events_and_metrics() {
        let mut o = Obs::new();
        o.enable(16);
        o.trap_dispatch(1, ia_abi::Sysno::Getpid.number(), 0, 100);
        o.layer_enter("kernel", 1, ia_abi::Sysno::Getpid.number(), 100);
        o.layer_exit(
            "kernel",
            1,
            ia_abi::Sysno::Getpid.number(),
            crate::Outcome::Ok,
            160,
        );
        let text = render_events_text(&o);
        assert!(text.contains("trap   pid=1 nr=getpid restarts=0"));
        assert!(text.contains("enter  pid=1 layer=kernel nr=getpid"));
        assert!(text.contains("outcome=ok"));
        let snap = o.metrics();
        let table = render_metrics_text(&snap);
        assert!(table.contains("kernel"));
        assert!(table.contains("getpid"));
        let json = render_metrics_json(&snap);
        assert!(json.contains("\"layer\": \"kernel\""));
        assert!(json.contains("\"virt_ns\": 60"));
    }
}
