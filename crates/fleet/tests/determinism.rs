//! Fleet determinism: a tenant's `Observable` must be bit-identical
//! between a solo run and any fleet run — regardless of thread count,
//! quantum size, or work stealing. Plus the static `Send` assertions
//! that underwrite moving kernels between host threads at all.

use ia_fleet::{solo_observable, workload, Fleet, FleetBase, Tenant};
use ia_interpose::Agent;
use ia_kernel::{ExecCache, Kernel, KernelBuilder, KernelSnapshot};
use ia_vfs::Fs;

/// Everything a fleet migrates (or shares) across host threads must be
/// `Send`. Compile-time only: if any of these regress to `Rc`/`RefCell`
/// internals, this file stops building.
#[test]
fn fleet_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Kernel>();
    assert_send::<Box<dyn Agent>>();
    assert_send::<KernelSnapshot>();
    assert_send::<Tenant>();
    assert_send::<ExecCache>();
    assert_send::<Fs>();
    assert_send::<KernelBuilder>();
}

/// The shared pieces (base VFS, exec cache) are additionally `Sync` —
/// many worker threads hold references concurrently.
#[test]
fn shared_base_types_are_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<Fs>();
    assert_sync::<ExecCache>();
}

const SEEDS: usize = 32;
const POOL: usize = 32; // one distinct image per seed
const THREADS: usize = 8;

fn build_base() -> FleetBase {
    let mut base = FleetBase::new();
    for p in 0..POOL {
        base.install_image(
            format!("/bin/t{p}").as_bytes(),
            &workload::tenant_image(p as u64),
        );
    }
    base
}

fn spawn_fleet(base: &FleetBase) -> Vec<Tenant> {
    (0..SEEDS)
        .map(|i| {
            let path = format!("/bin/t{i}");
            Tenant::spawn_path(
                base,
                i,
                path.as_bytes(),
                &[b"tenant"],
                workload::tenant_agents(),
            )
        })
        .collect()
}

/// 32 distinct tenant seeds, run solo (private base, uninterrupted) and
/// in an 8-thread fleet with a deliberately tiny quantum (so every
/// tenant is preempted and requeued many times, and stealing actually
/// happens). Every tenant's outcome and `Observable` must match bit for
/// bit.
#[test]
fn thirty_two_seeds_solo_vs_eight_thread_fleet() {
    let base = build_base();
    let (results, report) = Fleet::new(THREADS).quantum(2_000).run(spawn_fleet(&base));
    assert_eq!(results.len(), SEEDS);
    // A tiny quantum must actually fragment the runs into many turns,
    // otherwise this test is not exercising preemption at all.
    assert!(
        report.total_turns > SEEDS as u64,
        "quantum too large to preempt"
    );

    for (i, r) in results.iter().enumerate() {
        let solo_base = build_base();
        let path = format!("/bin/t{i}");
        let (outcome, obs) = solo_observable(
            &solo_base,
            path.as_bytes(),
            &[b"tenant"],
            workload::tenant_agents(),
            u64::MAX,
        );
        assert_eq!(r.outcome, outcome, "tenant {i}: outcome diverged");
        assert_eq!(r.obs, obs, "tenant {i}: observable diverged from solo run");
    }
}

/// Same fleet, different schedules: thread counts and quanta are pure
/// host-side policy and must not leak into any tenant's `Observable`.
#[test]
fn schedule_policy_is_unobservable() {
    let base = build_base();
    let (a, _) = Fleet::new(1).quantum(u64::MAX).run(spawn_fleet(&base));
    let (b, _) = Fleet::new(THREADS).quantum(1_000).run(spawn_fleet(&base));
    let (c, _) = Fleet::new(3)
        .quantum(7_777)
        .seed(42)
        .run(spawn_fleet(&base));
    for i in 0..SEEDS {
        assert_eq!(a[i].obs, b[i].obs, "tenant {i}: 1-thread vs 8-thread");
        assert_eq!(a[i].obs, c[i].obs, "tenant {i}: 1-thread vs 3-thread");
        assert_eq!(a[i].outcome, b[i].outcome);
        assert_eq!(a[i].outcome, c[i].outcome);
    }
}

/// Distinct seeds must actually produce distinct observables — otherwise
/// the determinism assertions above are vacuous.
#[test]
fn seeds_produce_distinct_observables() {
    let base = build_base();
    let (results, _) = Fleet::new(2).run(spawn_fleet(&base));
    for w in results.windows(2) {
        assert_ne!(
            w[0].obs, w[1].obs,
            "adjacent seeds produced identical observables"
        );
    }
}
