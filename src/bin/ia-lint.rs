//! ia-lint — static analysis reports for VM images.
//!
//! ```text
//! usage: ia-lint [--json] [--out FILE] [--flow-json FILE] [--deny-warnings]
//!                [--builtin] [FILE...]
//! ```
//!
//! Each `FILE` is either an image (`.img`, raw bytes in the IAVM format) or
//! assembly source (`.ias`, assembled in-memory first). `--builtin` lints
//! every in-tree workload image (micro/mix/scribe/make8). With
//! `--flow-json FILE`, every image is additionally taint-analyzed against
//! the demo flow spec (`secret` = `/secret`): flow findings join the
//! regular findings (with per-sink disassembly excerpts in text mode),
//! the adversarial `exfil` pair rides along with `--builtin`, and the
//! full per-image flow report is written to `FILE`. Exits nonzero if any
//! analyzed image has lint errors, or any warnings under
//! `--deny-warnings`.

use ia_analyze::flow::{analyze_flow, FlowAnalysis, FlowSpec};
use ia_analyze::{
    analyze_bytes, analyze_image, render_flow_json, render_json, render_text, ImageAnalysis,
    Severity,
};
use ia_workloads::{exfil, make8, micro, mix, scribe};
use std::process::ExitCode;

struct Options {
    json: bool,
    out: Option<String>,
    flow_out: Option<String>,
    deny_warnings: bool,
    builtin: bool,
    files: Vec<String>,
}

const USAGE: &str = "usage: ia-lint [--json] [--out FILE] [--flow-json FILE] \
                     [--deny-warnings] [--builtin] [FILE...]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        out: None,
        flow_out: None,
        deny_warnings: false,
        builtin: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--out" => {
                opts.out = Some(args.next().ok_or("--out needs a path")?);
            }
            "--flow-json" => {
                opts.flow_out = Some(args.next().ok_or("--flow-json needs a path")?);
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--builtin" => opts.builtin = true,
            "--help" | "-h" => return Err(USAGE.into()),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !opts.builtin && opts.files.is_empty() {
        return Err("nothing to lint: pass image files or --builtin".into());
    }
    Ok(opts)
}

/// The in-tree workload images, by name.
fn builtin_images() -> Vec<(String, ia_vm::Image)> {
    let mut v = Vec::new();
    for call in micro::MicroCall::ALL {
        v.push((format!("micro:{}", call.name()), micro::loop_image(call, 4)));
    }
    for seed in 1..=4u64 {
        v.push((format!("mix:seed{seed}"), mix::random_program(seed, 40)));
    }
    v.push(("scribe".to_string(), scribe::image()));
    v.push(("make8:tool".to_string(), make8::tool_image()));
    v.push(("make8:cc".to_string(), make8::cc_image()));
    v.push(("make8:make".to_string(), make8::make_image()));
    v
}

/// The label spec every image is flow-checked against: one label, rooted
/// at `/secret` — the same spec the `exfiltrate` example enforces.
fn demo_spec() -> FlowSpec {
    FlowSpec::new().label("secret", &[b"/secret"])
}

/// One image's lint report; the flow analysis rides along only when a
/// flow report was requested (it is noisier by design — fail-closed path
/// resolution makes every unresolvable path a warning).
fn analyze_one(
    name: &str,
    img: &ia_vm::Image,
    flow: bool,
) -> (String, ImageAnalysis, Option<FlowAnalysis>) {
    let mut a = analyze_image(img);
    let fa = flow.then(|| analyze_flow(img, &a, &demo_spec()));
    if let Some(fa) = &fa {
        a.findings.extend(fa.findings.iter().cloned());
    }
    (name.to_string(), a, fa)
}

fn analyze_file(
    path: &str,
    flow: bool,
) -> Result<(String, ImageAnalysis, Option<FlowAnalysis>), String> {
    if path.ends_with(".ias") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let img = ia_vm::assemble(&src).map_err(|e| format!("{path}: assemble: {e}"))?;
        Ok(analyze_one(path, &img, flow))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let mut a =
            analyze_bytes(&bytes).map_err(|e| format!("{path}: not an IAVM image ({e})"))?;
        // `analyze_bytes` is the lenient parse; flow analysis additionally
        // needs the image's data segment, so use the strict decoder and
        // fail closed to an empty image (→ widened) if it rejects the file.
        let fa = flow.then(|| {
            let img = ia_vm::Image::from_bytes(&bytes).unwrap_or(ia_vm::Image {
                code: Vec::new(),
                data: Vec::new(),
                entry: 0,
            });
            analyze_flow(&img, &a, &demo_spec())
        });
        if let Some(fa) = &fa {
            a.findings.extend(fa.findings.iter().cloned());
        }
        Ok((path.to_string(), a, fa))
    }
}

/// Joins per-image JSON bodies into one top-level array document.
fn json_array(bodies: impl Iterator<Item = String>) -> String {
    let indented: Vec<String> = bodies
        .map(|b| {
            b.lines()
                .map(|l| format!("  {l}"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    format!("[\n{}\n]\n", indented.join(",\n"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let flow = opts.flow_out.is_some();
    let mut reports: Vec<(String, ImageAnalysis, Option<FlowAnalysis>)> = Vec::new();
    if opts.builtin {
        for (name, img) in builtin_images() {
            reports.push(analyze_one(&name, &img, flow));
        }
        // The adversarial pair rides along whenever a flow report is
        // requested: the leak must be flagged, its twin must stay clean.
        if flow {
            reports.push(analyze_one("exfil:leak", &exfil::exfil_image(), true));
            reports.push(analyze_one("exfil:benign", &exfil::benign_image(), true));
        }
    }
    for path in &opts.files {
        match analyze_file(path, flow) {
            Ok(r) => reports.push(r),
            Err(msg) => {
                eprintln!("ia-lint: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let output = if opts.json {
        json_array(reports.iter().map(|(name, a, _)| render_json(name, a)))
    } else {
        reports
            .iter()
            .map(|(name, a, _)| render_text(name, a))
            .collect::<Vec<_>>()
            .join("\n────────────────────────────────────────\n")
    };

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &output) {
                eprintln!("ia-lint: write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{output}"),
    }

    if let Some(path) = &opts.flow_out {
        let doc = json_array(
            reports
                .iter()
                .filter_map(|(name, _, fa)| fa.as_ref().map(|fa| render_flow_json(name, fa))),
        );
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("ia-lint: write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let dirty = reports
            .iter()
            .filter(|(_, _, fa)| fa.as_ref().is_some_and(|fa| !fa.is_clean()))
            .count();
        eprintln!(
            "ia-lint: flow report on {} image(s) -> {path} ({dirty} flow-dirty)",
            reports.len()
        );
    }

    let total_errors: usize = reports
        .iter()
        .map(|(_, a, _)| a.count(Severity::Error))
        .sum();
    let total_warnings: usize = reports
        .iter()
        .map(|(_, a, _)| a.count(Severity::Warning))
        .sum();
    eprintln!(
        "ia-lint: {} image(s), {total_errors} error(s), {total_warnings} warning(s)",
        reports.len()
    );
    if total_errors > 0 || (opts.deny_warnings && total_warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
