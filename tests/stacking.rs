//! Agent composition: "a multiplicity of simultaneously coexisting
//! implementations of the system call services, which in turn may utilize
//! one another" (§1.4). Agents stack; each uses the instance below it.

use interposition_agents::agents::{
    CryptAgent, SandboxAgent, SandboxPolicy, TimeSymbolic, Timex, TraceAgent, TxnAgent,
};
use interposition_agents::interpose::{wrap_process, InterposedRouter};
use interposition_agents::kernel::{KernelBuilder, RunOutcome};
use interposition_agents::vm::assemble;

const CLOCK_READER: &str = r#"
    .data
    tv: .space 16
    .text
    main:
        la  r0, tv
        li  r1, 0
        sys gettimeofday
        la  r1, tv
        ld  r0, (r1)
        li  r6, 255
        and r0, r0, r6
        sys exit
"#;

fn observed_sec(offsets: &[i64]) -> u8 {
    let mut k = KernelBuilder::new().build();
    let img = assemble(CLOCK_READER).unwrap();
    let pid = k.spawn_image(&img, &[b"c"], b"c");
    let mut router = InterposedRouter::new();
    for &off in offsets {
        wrap_process(&mut k, &mut router, pid, Timex::boxed(off), &[]);
    }
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    (k.exit_status(pid).unwrap() >> 8) as u8
}

#[test]
fn stacked_timex_offsets_compose_additively() {
    let base = observed_sec(&[]);
    assert_eq!(observed_sec(&[10]), base.wrapping_add(10));
    assert_eq!(observed_sec(&[10, 20]), base.wrapping_add(30));
    assert_eq!(observed_sec(&[100, -40, 7]), base.wrapping_add(67));
}

#[test]
fn trace_observes_what_timex_fabricates() {
    // trace above timex sees the raw call; timex below changes the result.
    // Both stay transparent to the client's control flow.
    let mut k = KernelBuilder::new().build();
    let img = assemble(CLOCK_READER).unwrap();
    let pid = k.spawn_image(&img, &[b"c"], b"c");
    let mut router = InterposedRouter::new();
    wrap_process(&mut k, &mut router, pid, Timex::boxed(1000), &[]);
    let (trace, handle) = TraceAgent::with_log(b"/tmp/t.log");
    wrap_process(&mut k, &mut router, pid, Box::new(trace), &[]);
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert!(handle.text().contains("gettimeofday"));
    assert_eq!(router.chain_len(pid), 0, "chains cleaned after exit");
}

#[test]
fn sandbox_under_txn_denies_before_any_shadowing() {
    // txn above, sandbox below: the branch-based transaction passes the
    // session's syscalls through untouched, so the sandbox's policy
    // (applied beneath) refuses the write-open before it ever reaches the
    // tree — committing keeps nothing because nothing was written.
    const MUTATOR: &str = r#"
        .data
        path: .asciz "/etc/protected.conf"
        t:    .asciz "overwritten"
        .text
        main:
            la r0, path
            li r1, 0x601
            li r2, 420
            sys open
            mov r3, r0
            mov r0, r3
            la r1, t
            li r2, 11
            sys write
            mov r0, r3
            sys close
            li r0, 0
            sys exit
    "#;
    let mut k = KernelBuilder::new().build();
    k.write_file(b"/etc/protected.conf", b"original").unwrap();
    let img = assemble(MUTATOR).unwrap();
    let pid = k.spawn_image(&img, &[b"m"], b"m");
    let mut router = InterposedRouter::new();
    let (sandbox, violations) = SandboxAgent::new(SandboxPolicy {
        readonly: vec![b"/etc".to_vec()],
        ..SandboxPolicy::default()
    });
    let (txn, txn_h) = TxnAgent::new();
    txn_h.set_commit();
    wrap_process(&mut k, &mut router, pid, sandbox, &[]);
    wrap_process(&mut k, &mut router, pid, txn, &[]);
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    // The write into /etc was refused below the transaction.
    assert_eq!(k.read_file(b"/etc/protected.conf").unwrap(), b"original");
    assert!(
        violations.violations().iter().any(|v| v.call == "open"),
        "sandbox caught the open beneath the txn: {:?}",
        violations.violations()
    );
}

#[test]
fn crypt_under_null_agents_still_round_trips() {
    const RW: &str = r#"
        .data
        path: .asciz "/vault/x"
        t:    .asciz "sensitive"
        buf:  .space 16
        .text
        main:
            la r0, path
            li r1, 0x601
            li r2, 420
            sys open
            mov r3, r0
            mov r0, r3
            la r1, t
            li r2, 9
            sys write
            mov r0, r3
            sys close
            la r0, path
            li r1, 0
            li r2, 0
            sys open
            mov r3, r0
            mov r0, r3
            la r1, buf
            li r2, 16
            sys read
            mov r2, r0
            li r0, 1
            la r1, buf
            sys write
            li r0, 0
            sys exit
    "#;
    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/vault").unwrap();
    let img = assemble(RW).unwrap();
    let pid = k.spawn_image(&img, &[b"c"], b"c");
    let mut router = InterposedRouter::new();
    wrap_process(
        &mut k,
        &mut router,
        pid,
        CryptAgent::boxed(b"/vault", b"key"),
        &[],
    );
    wrap_process(&mut k, &mut router, pid, TimeSymbolic::boxed(), &[]);
    wrap_process(&mut k, &mut router, pid, TimeSymbolic::boxed(), &[]);
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "sensitive");
    assert_ne!(k.read_file(b"/vault/x").unwrap(), b"sensitive");
}

#[test]
fn deep_chains_remain_correct() {
    let mut k = KernelBuilder::new().build();
    let img = assemble(CLOCK_READER).unwrap();
    let pid = k.spawn_image(&img, &[b"c"], b"c");
    let mut router = InterposedRouter::new();
    for _ in 0..8 {
        wrap_process(&mut k, &mut router, pid, TimeSymbolic::boxed(), &[]);
    }
    assert_eq!(router.chain_len(pid), 8);
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
}
