//! # ia-kernel — the simulated 4.3BSD kernel
//!
//! The lowest instance of the system interface: processes (fork / execve /
//! wait / exit, process groups, credentials), descriptors and system-wide
//! open files, signals with full delivery semantics, pipes, sockets,
//! devices, a round-robin scheduler with blocking channels, and a
//! calibrated virtual clock.
//!
//! The kernel *implements* every system call ([`Kernel::syscall`]) but does
//! not decide how traps reach it: that is the [`sched::SyscallRouter`]
//! seam, where the `ia-interpose` crate attaches agent chains. Running the
//! kernel with the identity router ([`sched::KernelRouter`]) is the paper's
//! Figure 1-1 — "kernel provides all instances of the system interface".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod console;
pub mod exec_cache;
pub mod files;
pub mod kernel;
pub mod process;
pub mod sched;
pub mod snapshot;
pub mod socket;
mod syscalls;

pub use clock::{Clock, MachineProfile, EPOCH_SECS, I486_25, VAX_6250};
pub use console::{Console, DEV_NULL, DEV_TTY, DEV_ZERO};
pub use exec_cache::{content_digest, ExecCache, PreparedImage};
pub use files::{FdEntry, FdTable, FileKind, OpenFile, OpenFiles, SockId, FD_TABLE_SIZE};
pub use ia_obs::{Event as ObsEvent, Obs, Outcome as ObsOutcome, Stamped};
pub use ia_vm::machine::{BatchCall, FastMode};
pub use kernel::{
    push_args, Engine, ExecGate, FastPathStats, FusionStats, Kernel, KernelBuilder, PerfCounters,
    SysOutcome, WakeEvent,
};
pub use process::{PendingTrap, Pid, ProcState, Process, SigAction, SigState, Usage, WaitChannel};
pub use sched::{
    run, run_legacy, FastSpec, KernelRouter, RunLimits, RunOutcome, SyscallRouter, SLICE,
};
pub use snapshot::{ClientView, KernelSnapshot, Observable};
pub use socket::{SockState, Socket, SocketTable};
