//! Layer 0 — the *numeric system call layer*.
//!
//! "The lowest (or zeroth) layer of the toolkit which is directly used by
//! any interposition agents presents the system interface as a single
//! entry point accepting vectors of untyped numeric arguments."
//!
//! In this reproduction the numeric contract *is* the mechanism-level
//! [`ia_interpose::Agent`] trait (`syscall(number, args)` plus
//! interest registration and the incoming-signal hook), so this module
//! adds the utilities agents build at this level: a trap-number remapper —
//! the paper's "one range of system call numbers could be remapped to
//! calls on a different range at this level", which is how an emulator for
//! a foreign operating system's numbering starts.

use std::collections::HashMap;

use ia_abi::RawArgs;
use ia_interpose::{Agent, InterestSet, SysCtx};
use ia_kernel::SysOutcome;

/// A purely numeric agent that rewrites trap numbers before passing them
/// down — the seed of an OS emulator.
#[derive(Debug, Clone, Default)]
pub struct RemapAgent {
    map: HashMap<u32, u32>,
}

impl RemapAgent {
    /// An empty remapper (identity behaviour until mappings are added).
    #[must_use]
    pub fn new() -> RemapAgent {
        RemapAgent::default()
    }

    /// Maps foreign trap number `from` to native number `to`.
    pub fn map(&mut self, from: u32, to: u32) -> &mut Self {
        self.map.insert(from, to);
        self
    }

    /// Remaps the inclusive range `[lo, hi]` by a constant offset, the
    /// paper's range remapping.
    pub fn map_range(&mut self, lo: u32, hi: u32, offset: i64) -> &mut Self {
        for n in lo..=hi {
            self.map.insert(n, (i64::from(n) + offset) as u32);
        }
        self
    }

    /// Number of mapped trap numbers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no mappings exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Agent for RemapAgent {
    fn name(&self) -> &'static str {
        "numeric-remap"
    }

    fn interests(&self) -> InterestSet {
        let mut s = InterestSet::new();
        for &from in self.map.keys() {
            s.add(from);
        }
        s
    }

    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        let target = self.map.get(&nr).copied().unwrap_or(nr);
        ctx.down(target, args)
    }

    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_interpose::InterposedRouter;
    use ia_kernel::{KernelBuilder, RunOutcome};

    #[test]
    fn foreign_numbers_reach_native_calls() {
        // A "foreign binary" that uses trap 204 for write and 201 for exit.
        let src = r#"
            .data
            msg: .asciz "foreign"
            .text
            main:
                li r0, 1
                la r1, msg
                li r2, 7
                sys 204
                li r0, 0
                sys 201
        "#;
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        let pid = k.spawn_image(&img, &[b"f"], b"f");
        let mut remap = RemapAgent::new();
        remap.map_range(200, 260, -200); // foreign = native + 200
        let mut router = InterposedRouter::new();
        router.push_agent(pid, Box::new(remap));
        assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
        assert_eq!(k.console.output_string(), "foreign");
    }

    #[test]
    fn unmapped_foreign_number_fails_without_agent() {
        // exit(errno of `sys 204`): without a remapping agent the foreign
        // trap number is EINVAL (22).
        let src = "main: sys 204\n mov r0, r1\n sys exit\n";
        let img = ia_vm::assemble(src).unwrap();
        let mut k = KernelBuilder::new().build();
        k.spawn_image(&img, &[b"f"], b"f");
        k.run_to_completion();
        assert_eq!(
            k.exit_status(1),
            Some(ia_abi::signal::wait_status_exited(
                ia_abi::Errno::EINVAL.code() as u8
            ))
        );
    }
}
