//! Directed regression for fast-path invalidation under mid-run chain
//! mutation.
//!
//! The flat dispatch table, the batchable-number set, and the in-loop
//! answer table are all compiled from the chain; every mutation must
//! invalidate them and flush any pending vectored upcall under the *old*
//! configuration. This test drives one client through four chain
//! configurations in a single run — bare, a batchable observer, a
//! non-batchable tap stacked on top, and back to the observer alone — and
//! asserts the complete observable state is bit-identical with the fast
//! path on, off, and under the legacy scheduler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ia_abi::{RawArgs, Sysno};
use ia_interpose::{
    restore_world, snapshot_world, wrap_process, Agent, BatchCall, InterestSet, InterposedRouter,
    SysCtx,
};
use ia_kernel::{
    run, run_legacy, Kernel, KernelBuilder, Observable, RunLimits, RunOutcome, SysOutcome,
};

/// Batchable full-coverage observer (counts calls seen, per-call or
/// vectored).
struct Watcher {
    calls: Arc<AtomicU64>,
    batches: Arc<AtomicU64>,
}

impl Agent for Watcher {
    fn name(&self) -> &'static str {
        "watcher"
    }
    fn interests(&self) -> InterestSet {
        InterestSet::ALL
    }
    fn batch_interests(&self) -> InterestSet {
        InterestSet::ALL
    }
    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        self.calls.fetch_add(1, Ordering::Relaxed);
        ctx.down(nr, args)
    }
    fn syscall_batch(&mut self, _ctx: &mut SysCtx<'_>, _nr: u32, calls: &[BatchCall]) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.calls.fetch_add(calls.len() as u64, Ordering::Relaxed);
    }
    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(Watcher {
            calls: self.calls.clone(),
            batches: self.batches.clone(),
        })
    }
}

/// Non-batchable tap on `getpid` only: stacking it above the watcher must
/// kill vectored upcalls for getpid until it is removed again.
struct PidTap;

impl Agent for PidTap {
    fn name(&self) -> &'static str {
        "pid-tap"
    }
    fn interests(&self) -> InterestSet {
        InterestSet::of(&[Sysno::Getpid])
    }
    fn syscall(&mut self, ctx: &mut SysCtx<'_>, nr: u32, args: RawArgs) -> SysOutcome {
        ctx.down(nr, args)
    }
    fn clone_box(&self) -> Box<dyn Agent> {
        Box::new(PidTap)
    }
}

struct MutatedRun {
    obs: Observable,
    watcher_calls: u64,
    watcher_batches: u64,
    intercepted: u64,
    unmanaged: u64,
    fast_hits: u64,
}

fn run_mutating(fast: bool, legacy: bool) -> MutatedRun {
    // Loop counter in r10: syscall returns clobber r0..r2.
    let src = "
main:   li r10, 400
loop:   addi r10, r10, -1
        sys getpid
        jnz r10, loop
        li r0, 0
        sys exit
";
    let img = ia_vm::assemble(src).unwrap();
    let mut k = KernelBuilder::new().fast_path(fast).build();
    let pid = k.spawn_image(&img, &[b"inv"], b"inv");
    let mut router = InterposedRouter::new();
    let calls = Arc::new(AtomicU64::new(0));
    let batches = Arc::new(AtomicU64::new(0));

    let drive = |k: &mut Kernel, router: &mut InterposedRouter, max_steps: u64| {
        let limits = RunLimits { max_steps };
        if legacy {
            run_legacy(k, router, limits)
        } else {
            run(k, router, limits)
        }
    };

    // Phase 1: bare — with the fast path on, getpid is answered in-loop.
    assert_eq!(drive(&mut k, &mut router, 150), RunOutcome::StepLimit);
    // Phase 2: install the batchable observer mid-run.
    wrap_process(
        &mut k,
        &mut router,
        pid,
        Box::new(Watcher {
            calls: calls.clone(),
            batches: batches.clone(),
        }),
        &[],
    );
    assert_eq!(drive(&mut k, &mut router, 150), RunOutcome::StepLimit);
    // Phase 3: stack a non-batchable getpid tap on top — the batchable
    // set must be recompiled without getpid.
    wrap_process(&mut k, &mut router, pid, Box::new(PidTap), &[]);
    assert_eq!(drive(&mut k, &mut router, 150), RunOutcome::StepLimit);
    // Phase 4: remove the tap mid-run. Any pending vector is delivered
    // under the old chain before it changes.
    router.flush_pending(&mut k, pid);
    let removed = router
        .with_chain(pid, |agents| {
            assert_eq!(agents.len(), 2);
            agents.remove(0)
        })
        .expect("chain still installed");
    assert_eq!(removed.name(), "pid-tap");
    assert_eq!(drive(&mut k, &mut router, 5_000_000), RunOutcome::AllExited);

    MutatedRun {
        obs: k.observable(),
        watcher_calls: calls.load(Ordering::Relaxed),
        watcher_batches: batches.load(Ordering::Relaxed),
        intercepted: router.stats.intercepted,
        unmanaged: router.stats.unmanaged,
        fast_hits: k.fast_stats.hits(),
    }
}

struct SnapRun {
    obs: Observable,
    /// Watcher upcalls between the snapshot point and completion, first
    /// (pre-restore) leg.
    first_delta: u64,
    /// Same span replayed after `restore_world` — must match exactly.
    second_delta: u64,
    watcher_batches: u64,
    intercepted: u64,
    fast_hits: u64,
}

/// Snapshot mid-run with vectored upcalls in flight, run to completion,
/// rewind, deliberately build a *fresh* pending batch, rewind again (the
/// live batch must be discarded, not replayed), and run the same span a
/// second time.
fn run_snapshot_restore(fast: bool, legacy: bool) -> SnapRun {
    let src = "
main:   li r10, 400
loop:   addi r10, r10, -1
        sys getpid
        jnz r10, loop
        li r0, 0
        sys exit
";
    let img = ia_vm::assemble(src).unwrap();
    let mut k = KernelBuilder::new().fast_path(fast).build();
    let pid = k.spawn_image(&img, &[b"snap"], b"snap");
    let mut router = InterposedRouter::new();
    let calls = Arc::new(AtomicU64::new(0));
    let batches = Arc::new(AtomicU64::new(0));
    wrap_process(
        &mut k,
        &mut router,
        pid,
        Box::new(Watcher {
            calls: calls.clone(),
            batches: batches.clone(),
        }),
        &[],
    );

    let drive = |k: &mut Kernel, router: &mut InterposedRouter, max_steps: u64| {
        let limits = RunLimits { max_steps };
        if legacy {
            run_legacy(k, router, limits)
        } else {
            run(k, router, limits)
        }
    };

    // Run into the middle of the loop: with batching on, a partial
    // vectored upcall is pending right now.
    assert_eq!(drive(&mut k, &mut router, 150), RunOutcome::StepLimit);

    // Capture. The pending batch is flushed into the world first, so the
    // snapshot holds no in-flight vector.
    let world = snapshot_world(&mut k, &mut router);
    let at_snap = calls.load(Ordering::Relaxed);

    // First future.
    assert_eq!(drive(&mut k, &mut router, 5_000_000), RunOutcome::AllExited);
    let first = k.observable();
    let first_stats = router.stats;
    let first_delta = calls.load(Ordering::Relaxed) - at_snap;

    // Rewind, then run a short stretch so a *new* pending batch forms
    // under the restored chain...
    restore_world(&mut k, &mut router, &world);
    assert_eq!(drive(&mut k, &mut router, 120), RunOutcome::StepLimit);
    // ...and rewind again: the live pending batch must be discarded, the
    // dispatch tables recompiled, the vDSO gating recomputed.
    restore_world(&mut k, &mut router, &world);
    let mid = calls.load(Ordering::Relaxed);

    // Second future: must be bit-identical to the first.
    assert_eq!(drive(&mut k, &mut router, 5_000_000), RunOutcome::AllExited);
    assert_eq!(k.observable(), first, "replayed future diverged");
    assert_eq!(router.stats, first_stats, "router counters diverged");
    assert!(k.check_quiescent().is_empty(), "{:?}", k.check_quiescent());

    SnapRun {
        obs: first,
        first_delta,
        second_delta: calls.load(Ordering::Relaxed) - mid,
        watcher_batches: batches.load(Ordering::Relaxed),
        intercepted: router.stats.intercepted,
        fast_hits: k.fast_stats.hits(),
    }
}

#[test]
fn snapshot_restore_invalidates_fast_state_identically() {
    let fast = run_snapshot_restore(true, false);
    let slow = run_snapshot_restore(false, false);
    let legacy = run_snapshot_restore(false, true);

    assert!(fast.first_delta > 0, "snapshot taken after the loop ended");
    assert_eq!(
        fast.first_delta, fast.second_delta,
        "replay saw a different number of upcalls (stale batch leaked?)"
    );
    assert!(fast.watcher_batches > 0, "no vectored upcalls delivered");
    assert!(fast.fast_hits > 0, "fast run never used the in-loop lane");
    assert_eq!(slow.fast_hits, 0, "slow run must not use the lane");

    for (label, other) in [("fast off", &slow), ("legacy", &legacy)] {
        assert_eq!(fast.obs, other.obs, "observable state diverged vs {label}");
        assert_eq!(fast.first_delta, other.first_delta, "vs {label}");
        assert_eq!(fast.second_delta, other.second_delta, "vs {label}");
        assert_eq!(fast.intercepted, other.intercepted, "vs {label}");
    }
}

#[test]
fn chain_mutation_invalidates_fast_state_identically() {
    let fast = run_mutating(true, false);
    let slow = run_mutating(false, false);
    let legacy = run_mutating(false, true);

    // The run actually exercised every configuration.
    assert!(
        fast.watcher_calls > 200,
        "watcher saw {}",
        fast.watcher_calls
    );
    assert!(fast.watcher_batches > 0, "no vectored upcalls delivered");
    assert!(fast.intercepted > 0 && fast.unmanaged > 0);
    assert!(fast.fast_hits > 0, "fast run never used the in-loop lane");
    assert_eq!(slow.fast_hits, 0, "slow run must not use the lane");

    for (label, other) in [("fast off", &slow), ("legacy", &legacy)] {
        assert_eq!(fast.obs, other.obs, "observable state diverged vs {label}");
        assert_eq!(fast.watcher_calls, other.watcher_calls, "vs {label}");
        assert_eq!(fast.watcher_batches, other.watcher_batches, "vs {label}");
        assert_eq!(fast.intercepted, other.intercepted, "vs {label}");
        assert_eq!(fast.unmanaged, other.unmanaged, "vs {label}");
    }
}
