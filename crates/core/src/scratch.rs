//! Scratch memory inside the client's address space.
//!
//! On Mach 2.5 the agent shares the client's address space, so an agent
//! that rewrites a pathname simply passes a pointer to its own buffer. We
//! reproduce that honestly: the toolkit allocates a scratch region *in the
//! client's address space* with an `sbrk` downcall the first time it needs
//! one, and rewritten strings/structs are staged there before calling down.
//!
//! The region is bump-allocated and reset at the start of every
//! intercepted trap, so nested downcalls within one trap can stage several
//! values. The handle is cheaply cloneable ([`Arc`]) so pathname and
//! directory objects created by the toolkit can stage data too; the mutex
//! keeps the handle `Send` for fleet tenants and is never contended (one
//! thread drives a tenant at a time).

use std::sync::{Arc, Mutex};

use ia_abi::{Errno, Sysno};

use crate::ctx::SymCtx;

/// Size of the per-agent scratch region.
pub const SCRATCH_SIZE: u64 = 16 * 1024;

#[derive(Debug, Default)]
struct Inner {
    base: Option<u64>,
    used: u64,
}

/// A lazily-allocated bump region in the client address space. Clones
/// share the region (they are the same agent's staging area).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    inner: Arc<Mutex<Inner>>,
}

impl Scratch {
    /// A fresh, unallocated scratch.
    #[must_use]
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// A scratch for a forked child's copy of the agent: the region base
    /// remains valid (fork copies the address space), but the handle is
    /// independent of the parent's.
    #[must_use]
    pub fn deep_clone(&self) -> Scratch {
        let inner = self.inner.lock().unwrap();
        Scratch {
            inner: Arc::new(Mutex::new(Inner {
                base: inner.base,
                used: inner.used,
            })),
        }
    }

    /// Resets the bump pointer (called at trap entry).
    pub fn reset(&self) {
        self.inner.lock().unwrap().used = 0;
    }

    fn ensure(&self, ctx: &mut SymCtx<'_, '_>) -> Result<u64, Errno> {
        if let Some(b) = self.inner.lock().unwrap().base {
            return Ok(b);
        }
        // sbrk(SCRATCH_SIZE) in the client, via the chain below us — an
        // agent allocating memory is itself just a client of the interface.
        match ctx.down_args(Sysno::Sbrk, [SCRATCH_SIZE, 0, 0, 0, 0, 0]) {
            ia_kernel::SysOutcome::Done(Ok([old, _])) => {
                self.inner.lock().unwrap().base = Some(old);
                Ok(old)
            }
            ia_kernel::SysOutcome::Done(Err(e)) => Err(e),
            _ => Err(Errno::ENOMEM),
        }
    }

    /// Stages raw bytes in client memory, returning their address.
    pub fn write(&self, ctx: &mut SymCtx<'_, '_>, bytes: &[u8]) -> Result<u64, Errno> {
        let base = self.ensure(ctx)?;
        let addr = {
            let mut inner = self.inner.lock().unwrap();
            let len = bytes.len() as u64;
            if inner.used + len > SCRATCH_SIZE {
                return Err(Errno::ENOMEM);
            }
            let addr = base + inner.used;
            inner.used += (len + 7) & !7;
            addr
        };
        ctx.write_bytes(addr, bytes)?;
        Ok(addr)
    }

    /// Stages a NUL-terminated string, returning its address.
    pub fn write_cstr(&self, ctx: &mut SymCtx<'_, '_>, s: &[u8]) -> Result<u64, Errno> {
        let mut v = Vec::with_capacity(s.len() + 1);
        v.extend_from_slice(s);
        v.push(0);
        self.write(ctx, &v)
    }

    /// Reserves zeroed space (for out-params the agent will read back).
    pub fn reserve(&self, ctx: &mut SymCtx<'_, '_>, len: usize) -> Result<u64, Errno> {
        self.write(ctx, &vec![0u8; len])
    }
}
