//! Descriptor I/O system calls.

use ia_abi::signal::Signal;
use ia_abi::types::IoVec;
use ia_abi::{Errno, FcntlCmd, OpenFlags, RawArgs, Timeval, Whence};
use ia_vfs::pipe::PipeIo;
use ia_vfs::InodeKind;

use super::{done, SysOutcome};
use crate::console::DevRead;
use crate::files::{FdEntry, FileKind};
use crate::kernel::{Kernel, WakeEvent};
use crate::process::{Pid, WaitChannel};
use crate::socket::SockState;

/// Upper bound on a single transfer, to keep simulated buffers sane.
const MAX_IO: usize = 1 << 20;

/// Internal outcome of a transfer attempt.
enum Xfer {
    Data(Vec<u8>),
    Wrote(usize),
    Block(WaitChannel),
}

impl Kernel {
    /// Resolves the pipe a connected socket reads from / writes to.
    fn sock_pipes(
        &self,
        sid: crate::files::SockId,
    ) -> Result<(ia_vfs::PipeId, ia_vfs::PipeId), Errno> {
        match self.sockets.get(sid)?.state {
            SockState::Connected { rx, tx } => Ok((rx, tx)),
            _ => Err(Errno::ENOTCONN),
        }
    }

    fn do_read(&mut self, pid: Pid, fd: u64, len: usize) -> Result<Xfer, Errno> {
        let len = len.min(MAX_IO);
        let entry = self.proc(pid)?.fds.get(fd)?;
        let file = self.files.get(entry.file)?;
        if !file.flags.readable() {
            return Err(Errno::EBADF);
        }
        let (kind, flags, offset) = (file.kind, file.flags, file.offset);
        match kind {
            FileKind::Vnode(ino) => {
                match self.fs.get(ino)?.kind {
                    InodeKind::Directory(_) => return Err(Errno::EISDIR),
                    InodeKind::Regular(_) => {}
                    _ => return Err(Errno::EINVAL),
                }
                let now = self.clock.now();
                let data = self.fs.read_at(ino, offset, len, now)?;
                self.files.get_mut(entry.file)?.offset = offset + data.len() as u64;
                self.clock
                    .advance_ns(data.len() as u64 * self.profile.io_byte_ns());
                self.proc_mut(pid)?.usage.inblock += 1;
                Ok(Xfer::Data(data))
            }
            FileKind::PipeRead(id) => self.pipe_read(id, len, flags),
            FileKind::PipeWrite(_) => Err(Errno::EBADF),
            FileKind::Device(dev) => match self.console.device_read(dev, len)? {
                DevRead::Data(d) => Ok(Xfer::Data(d)),
                DevRead::WouldBlock => {
                    if flags.has(OpenFlags::O_NONBLOCK) {
                        Err(Errno::EWOULDBLOCK)
                    } else {
                        Ok(Xfer::Block(WaitChannel::TtyInput))
                    }
                }
            },
            FileKind::Socket(sid) => {
                let (rx, _) = self.sock_pipes(sid)?;
                self.pipe_read(rx, len, flags)
            }
        }
    }

    fn pipe_read(
        &mut self,
        id: ia_vfs::PipeId,
        len: usize,
        flags: OpenFlags,
    ) -> Result<Xfer, Errno> {
        let pipe = self.fs.pipes.get_mut(id).ok_or(Errno::EBADF)?;
        let mut out = Vec::new();
        match pipe.read(&mut out, len) {
            PipeIo::Done(_) => {
                self.wakeups.push(WakeEvent::Pipe(id));
                Ok(Xfer::Data(out))
            }
            PipeIo::Hangup => Ok(Xfer::Data(Vec::new())),
            PipeIo::WouldBlock => {
                if flags.has(OpenFlags::O_NONBLOCK) {
                    Err(Errno::EWOULDBLOCK)
                } else {
                    Ok(Xfer::Block(WaitChannel::PipeReadable(id)))
                }
            }
        }
    }

    fn do_write(&mut self, pid: Pid, fd: u64, data: &[u8]) -> Result<Xfer, Errno> {
        let entry = self.proc(pid)?.fds.get(fd)?;
        let file = self.files.get(entry.file)?;
        if !file.flags.writable() {
            return Err(Errno::EBADF);
        }
        let (kind, flags, offset) = (file.kind, file.flags, file.offset);
        match kind {
            FileKind::Vnode(ino) => {
                let now = self.clock.now();
                let off = if flags.has(OpenFlags::O_APPEND) {
                    self.fs.get(ino)?.size()
                } else {
                    offset
                };
                let n = self.fs.write_at(ino, off, data, now)?;
                self.files.get_mut(entry.file)?.offset = off + n as u64;
                self.clock.advance_ns(n as u64 * self.profile.io_byte_ns());
                self.proc_mut(pid)?.usage.oublock += 1;
                Ok(Xfer::Wrote(n))
            }
            FileKind::PipeWrite(id) => self.pipe_write(pid, id, data, flags),
            FileKind::PipeRead(_) => Err(Errno::EBADF),
            FileKind::Device(dev) => {
                let n = self.console.device_write(dev, data)?;
                self.proc_mut(pid)?.usage.oublock += 1;
                Ok(Xfer::Wrote(n))
            }
            FileKind::Socket(sid) => {
                let (_, tx) = self.sock_pipes(sid)?;
                self.pipe_write(pid, tx, data, flags)
            }
        }
    }

    fn pipe_write(
        &mut self,
        pid: Pid,
        id: ia_vfs::PipeId,
        data: &[u8],
        flags: OpenFlags,
    ) -> Result<Xfer, Errno> {
        let pipe = self.fs.pipes.get_mut(id).ok_or(Errno::EBADF)?;
        match pipe.write(data) {
            PipeIo::Done(n) => {
                self.wakeups.push(WakeEvent::Pipe(id));
                Ok(Xfer::Wrote(n))
            }
            PipeIo::Hangup => {
                // Writing with no readers raises SIGPIPE and fails EPIPE.
                let _ = self.post_signal(pid, Signal::SIGPIPE);
                Err(Errno::EPIPE)
            }
            PipeIo::WouldBlock => {
                if flags.has(OpenFlags::O_NONBLOCK) {
                    Err(Errno::EWOULDBLOCK)
                } else {
                    Ok(Xfer::Block(WaitChannel::PipeWritable(id)))
                }
            }
        }
    }

    /// `read(fd, buf, nbyte)`
    pub(crate) fn sys_read(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        match self.do_read(pid, args[0], args[2] as usize) {
            Ok(Xfer::Data(d)) => {
                if let Err(e) = self
                    .proc_mut(pid)
                    .and_then(|p| p.mem.write_bytes(args[1], &d))
                {
                    return SysOutcome::err(e);
                }
                SysOutcome::ok1(d.len() as u64)
            }
            Ok(Xfer::Wrote(_)) => unreachable!("read never writes"),
            Ok(Xfer::Block(ch)) => SysOutcome::Block(ch),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `write(fd, buf, nbyte)`
    pub(crate) fn sys_write(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let data = match self.proc(pid).and_then(|p| {
            p.mem
                .read_bytes(args[1], (args[2] as usize).min(MAX_IO))
                .map(<[u8]>::to_vec)
        }) {
            Ok(d) => d,
            Err(e) => return SysOutcome::err(e),
        };
        match self.do_write(pid, args[0], &data) {
            Ok(Xfer::Wrote(n)) => SysOutcome::ok1(n as u64),
            Ok(Xfer::Data(_)) => unreachable!("write never reads"),
            Ok(Xfer::Block(ch)) => SysOutcome::Block(ch),
            Err(e) => SysOutcome::err(e),
        }
    }

    fn read_iovecs(&self, pid: Pid, addr: u64, count: usize) -> Result<Vec<IoVec>, Errno> {
        if count > 16 {
            return Err(Errno::EINVAL);
        }
        let mem = &self.proc(pid)?.mem;
        let mut v = Vec::with_capacity(count);
        for i in 0..count {
            v.push(mem.read_struct::<IoVec>(addr + (i * 16) as u64)?);
        }
        Ok(v)
    }

    /// `readv(fd, iov, iovcnt)` — scatter read.
    pub(crate) fn sys_readv(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let iov = match self.read_iovecs(pid, args[1], args[2] as usize) {
            Ok(v) => v,
            Err(e) => return SysOutcome::err(e),
        };
        let total: usize = iov.iter().map(|v| v.len as usize).sum();
        match self.do_read(pid, args[0], total.min(MAX_IO)) {
            Ok(Xfer::Data(d)) => {
                let mut off = 0usize;
                for v in &iov {
                    if off >= d.len() {
                        break;
                    }
                    let n = (v.len as usize).min(d.len() - off);
                    if let Err(e) = self
                        .proc_mut(pid)
                        .and_then(|p| p.mem.write_bytes(v.base, &d[off..off + n]))
                    {
                        return SysOutcome::err(e);
                    }
                    off += n;
                }
                SysOutcome::ok1(d.len() as u64)
            }
            Ok(Xfer::Block(ch)) => SysOutcome::Block(ch),
            Ok(Xfer::Wrote(_)) => unreachable!(),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `writev(fd, iov, iovcnt)` — gather write.
    pub(crate) fn sys_writev(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let iov = match self.read_iovecs(pid, args[1], args[2] as usize) {
            Ok(v) => v,
            Err(e) => return SysOutcome::err(e),
        };
        let mut data = Vec::new();
        for v in &iov {
            match self.proc(pid).and_then(|p| {
                p.mem
                    .read_bytes(v.base, (v.len as usize).min(MAX_IO - data.len()))
                    .map(<[u8]>::to_vec)
            }) {
                Ok(d) => data.extend(d),
                Err(e) => return SysOutcome::err(e),
            }
        }
        match self.do_write(pid, args[0], &data) {
            Ok(Xfer::Wrote(n)) => SysOutcome::ok1(n as u64),
            Ok(Xfer::Block(ch)) => SysOutcome::Block(ch),
            Ok(Xfer::Data(_)) => unreachable!(),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `lseek(fd, offset, whence)` → new offset
    pub(crate) fn sys_lseek(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            let file = self.files.get(entry.file)?;
            let whence = Whence::from_u32(args[2] as u32)?;
            let delta = args[1] as i64;
            match file.kind {
                FileKind::Vnode(ino) => {
                    let size = self.fs.get(ino)?.size();
                    let base = match whence {
                        Whence::Set => 0,
                        Whence::Cur => file.offset as i64,
                        Whence::End => size as i64,
                    };
                    let new = base + delta;
                    if new < 0 {
                        return Err(Errno::EINVAL);
                    }
                    self.files.get_mut(entry.file)?.offset = new as u64;
                    Ok([new as u64, 0])
                }
                FileKind::Device(_) => Ok([0, 0]),
                _ => Err(Errno::ESPIPE),
            }
        })();
        done(r)
    }

    /// `close(fd)`
    pub(crate) fn sys_close(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        match self.proc_mut(pid).and_then(|p| p.fds.remove(args[0])) {
            Ok(entry) => {
                self.release_file(entry.file);
                SysOutcome::ok()
            }
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `dup(fd)` → lowest free descriptor sharing the open file
    pub(crate) fn sys_dup(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            self.files.get(entry.file)?; // validate
            self.files.incref(entry.file);
            match self.proc_mut(pid)?.fds.alloc(
                0,
                FdEntry {
                    file: entry.file,
                    cloexec: false,
                },
            ) {
                Ok(fd) => Ok([fd, 0]),
                Err(e) => {
                    self.files.decref(entry.file);
                    Err(e)
                }
            }
        })();
        done(r)
    }

    /// `dup2(from, to)`
    pub(crate) fn sys_dup2(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            if args[0] == args[1] {
                return Ok([args[1], 0]);
            }
            self.files.incref(entry.file);
            let displaced = self.proc_mut(pid)?.fds.install(
                args[1],
                FdEntry {
                    file: entry.file,
                    cloexec: false,
                },
            );
            match displaced {
                Ok(old) => {
                    if let Some(o) = old {
                        self.release_file(o.file);
                    }
                    Ok([args[1], 0])
                }
                Err(e) => {
                    self.files.decref(entry.file);
                    Err(e)
                }
            }
        })();
        done(r)
    }

    /// `fcntl(fd, cmd, arg)`
    pub(crate) fn sys_fcntl(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let fd = args[0];
            let entry = self.proc(pid)?.fds.get(fd)?;
            match FcntlCmd::from_u32(args[1] as u32)? {
                FcntlCmd::DupFd => {
                    self.files.incref(entry.file);
                    match self.proc_mut(pid)?.fds.alloc(
                        args[2] as usize,
                        FdEntry {
                            file: entry.file,
                            cloexec: false,
                        },
                    ) {
                        Ok(nfd) => Ok([nfd, 0]),
                        Err(e) => {
                            self.files.decref(entry.file);
                            Err(e)
                        }
                    }
                }
                FcntlCmd::GetFd => Ok([u64::from(entry.cloexec), 0]),
                FcntlCmd::SetFd => {
                    self.proc_mut(pid)?.fds.set_cloexec(fd, args[2] & 1 != 0)?;
                    Ok([0, 0])
                }
                FcntlCmd::GetFl => Ok([u64::from(self.files.get(entry.file)?.flags.bits()), 0]),
                FcntlCmd::SetFl => {
                    let settable = OpenFlags::O_NONBLOCK | OpenFlags::O_APPEND;
                    let f = self.files.get_mut(entry.file)?;
                    f.flags =
                        OpenFlags::new((f.flags.bits() & !settable) | (args[2] as u32 & settable));
                    Ok([0, 0])
                }
            }
        })();
        done(r)
    }

    /// `pipe()` → (read fd, write fd) in the two return registers
    pub(crate) fn sys_pipe(&mut self, pid: Pid) -> SysOutcome {
        let r = (|| {
            let id = self.fs.pipes.create();
            self.fs.pipes.add_reader(id);
            self.fs.pipes.add_writer(id);
            let rfile = self
                .files
                .insert(FileKind::PipeRead(id), OpenFlags::new(OpenFlags::O_RDONLY));
            let wfile = self
                .files
                .insert(FileKind::PipeWrite(id), OpenFlags::new(OpenFlags::O_WRONLY));
            let p = self.proc_mut(pid)?;
            let rfd = p.fds.alloc(
                0,
                FdEntry {
                    file: rfile,
                    cloexec: false,
                },
            );
            let rfd = match rfd {
                Ok(fd) => fd,
                Err(e) => {
                    self.release_file(rfile);
                    self.release_file(wfile);
                    return Err(e);
                }
            };
            let wfd = match self.proc_mut(pid)?.fds.alloc(
                0,
                FdEntry {
                    file: wfile,
                    cloexec: false,
                },
            ) {
                Ok(fd) => fd,
                Err(e) => {
                    let entry = self.proc_mut(pid)?.fds.remove(rfd).expect("just allocated");
                    self.release_file(entry.file);
                    self.release_file(wfile);
                    return Err(e);
                }
            };
            Ok([rfd, wfd])
        })();
        done(r)
    }

    /// `getdirentries(fd, buf, nbytes, basep)` → bytes transferred
    pub(crate) fn sys_getdirentries(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            let file = self.files.get(entry.file)?;
            let FileKind::Vnode(ino) = file.kind else {
                return Err(Errno::EINVAL);
            };
            let entries = self.fs.readdir(ino)?; // ENOTDIR for non-dirs
            let start = file.offset;
            let cap = (args[2] as usize).min(MAX_IO);
            let mut out = Vec::new();
            let mut cursor = 0u64;
            for e in &entries {
                let reclen = e.reclen() as u64;
                if cursor >= start {
                    if out.len() + reclen as usize > cap {
                        break;
                    }
                    e.encode_to(&mut out);
                }
                cursor += reclen;
            }
            if out.is_empty() && cap < 512 && start < cursor {
                // Buffer too small for even one record.
                return Err(Errno::EINVAL);
            }
            let new_off = start + out.len() as u64;
            self.files.get_mut(entry.file)?.offset = new_off;
            let p = self.proc_mut(pid)?;
            p.mem.write_bytes(args[1], &out)?;
            if args[3] != 0 {
                p.mem.write_u64(args[3], start)?;
            }
            Ok([out.len() as u64, 0])
        })();
        done(r)
    }

    /// `ioctl(fd, request, argp)` — terminals answer, everything else is
    /// `ENOTTY`.
    pub(crate) fn sys_ioctl(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            match self.files.get(entry.file)?.kind {
                FileKind::Device(crate::console::DEV_TTY) => Ok([0, 0]),
                _ => Err(Errno::ENOTTY),
            }
        })();
        done(r)
    }

    /// `fsync(fd)` — everything is already "on disk"; validates the fd.
    pub(crate) fn sys_fsync(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            self.files.get(entry.file)?;
            Ok([0, 0])
        })();
        done(r)
    }

    /// `sbrk(incr)` → previous break
    pub(crate) fn sys_sbrk(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let p = self.proc_mut(pid)?;
            let old = p.mem.sbrk(args[0] as i64)?;
            Ok([old, 0])
        })();
        done(r)
    }

    /// `getdtablesize()`
    pub(crate) fn sys_getdtablesize(&mut self, pid: Pid) -> SysOutcome {
        match self.proc(pid) {
            Ok(p) => SysOutcome::ok1(p.fds.size() as u64),
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `select(nfds, readfds, writefds, exceptfds, timeout)`.
    ///
    /// Descriptor sets are 64-bit masks in process memory. Except-sets are
    /// accepted and always cleared (no exceptional conditions exist here).
    pub(crate) fn sys_select(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let read_mask = |k: &Kernel, addr: u64| -> Result<u64, Errno> {
            if addr == 0 {
                Ok(0)
            } else {
                k.proc(pid)?.mem.read_u64(addr)
            }
        };
        let r: Result<SysOutcome, Errno> = (|| {
            let nfds = (args[0] as usize).min(64);
            let want_r = read_mask(self, args[1])?;
            let want_w = read_mask(self, args[2])?;
            let mut got_r = 0u64;
            let mut got_w = 0u64;
            for fd in 0..nfds as u64 {
                let bit = 1u64 << fd;
                if want_r & bit != 0 && self.fd_readable(pid, fd)? {
                    got_r |= bit;
                }
                if want_w & bit != 0 && self.fd_writable(pid, fd)? {
                    got_w |= bit;
                }
            }
            let count = got_r.count_ones() + got_w.count_ones();

            // Deadline management across restarts.
            let deadline = match self.proc(pid)?.select_deadline {
                Some(d) => d,
                None => {
                    let d = if args[4] == 0 {
                        u64::MAX
                    } else {
                        let tv = self.proc(pid)?.mem.read_struct::<Timeval>(args[4])?;
                        self.clock
                            .elapsed_ns()
                            .saturating_add((tv.as_micros().max(0) as u64) * 1_000)
                    };
                    self.proc_mut(pid)?.select_deadline = Some(d);
                    d
                }
            };

            if count > 0 || self.clock.elapsed_ns() >= deadline {
                let p = self.proc_mut(pid)?;
                p.select_deadline = None;
                if args[1] != 0 {
                    p.mem.write_u64(args[1], got_r)?;
                }
                if args[2] != 0 {
                    p.mem.write_u64(args[2], got_w)?;
                }
                if args[3] != 0 {
                    p.mem.write_u64(args[3], 0)?;
                }
                return Ok(SysOutcome::ok1(u64::from(count)));
            }
            Ok(SysOutcome::Block(WaitChannel::Select {
                deadline_ns: deadline,
            }))
        })();
        match r {
            Ok(o) => o,
            Err(e) => {
                if let Ok(p) = self.proc_mut(pid) {
                    p.select_deadline = None;
                }
                SysOutcome::err(e)
            }
        }
    }

    fn fd_readable(&self, pid: Pid, fd: u64) -> Result<bool, Errno> {
        let entry = match self.proc(pid)?.fds.get(fd) {
            Ok(e) => e,
            Err(_) => return Ok(false),
        };
        let file = self.files.get(entry.file)?;
        Ok(match file.kind {
            FileKind::Vnode(_) => true,
            FileKind::PipeRead(id) => self
                .fs
                .pipes
                .get(id)
                .is_none_or(|p| !p.is_empty() || p.writers() == 0),
            FileKind::PipeWrite(_) => false,
            FileKind::Device(crate::console::DEV_TTY) => self.console.readable(),
            FileKind::Device(_) => true,
            FileKind::Socket(sid) => match self.sockets.get(sid)?.state {
                SockState::Connected { rx, .. } => self
                    .fs
                    .pipes
                    .get(rx)
                    .is_none_or(|p| !p.is_empty() || p.writers() == 0),
                SockState::Listening { .. } => self.sockets.acceptable(sid),
                _ => false,
            },
        })
    }

    fn fd_writable(&self, pid: Pid, fd: u64) -> Result<bool, Errno> {
        let entry = match self.proc(pid)?.fds.get(fd) {
            Ok(e) => e,
            Err(_) => return Ok(false),
        };
        let file = self.files.get(entry.file)?;
        Ok(match file.kind {
            FileKind::Vnode(_) | FileKind::Device(_) => true,
            FileKind::PipeWrite(id) => self
                .fs
                .pipes
                .get(id)
                .is_none_or(|p| p.space() > 0 || p.readers() == 0),
            FileKind::PipeRead(_) => false,
            FileKind::Socket(sid) => match self.sockets.get(sid)?.state {
                SockState::Connected { tx, .. } => self
                    .fs
                    .pipes
                    .get(tx)
                    .is_none_or(|p| p.space() > 0 || p.readers() == 0),
                _ => false,
            },
        })
    }
}
