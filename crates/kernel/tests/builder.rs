//! `KernelBuilder` equivalence: every builder knob must produce exactly
//! the kernel you would get by poking the corresponding post-build state,
//! and the knobs must actually take effect (not silently default).

use ia_abi::Errno;
use ia_kernel::{Engine, ExecCache, Kernel, KernelBuilder, RunOutcome, I486_25, VAX_6250};
use ia_vm::assemble;

const PROG: &str = r#"
    .data
    msg: .asciz "builder\n"
    path: .asciz "/tmp/b.txt"
    .text
    main:
        la  r0, path
        li  r1, 0x601
        li  r2, 420
        sys open
        mov r3, r0
        mov r0, r3
        la  r1, msg
        li  r2, 8
        sys write
        mov r0, r3
        sys close
        li  r0, 1
        la  r1, msg
        li  r2, 8
        sys write
        li  r0, 7
        sys exit
"#;

fn drive(mut k: Kernel) -> ia_kernel::Observable {
    let img = assemble(PROG).expect("assembles");
    k.spawn_image(&img, &[b"b"], b"b");
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    k.observable()
}

/// Builder knobs vs post-build field pokes: identical observables.
#[test]
fn knobs_equal_post_build_pokes() {
    for engine in [Engine::Plain, Engine::Fused] {
        for fast_path in [false, true] {
            let built = KernelBuilder::new()
                .profile(I486_25)
                .engine(engine)
                .fast_path(fast_path)
                .build();

            let mut poked = KernelBuilder::new().build();
            poked.engine = engine;
            poked.fast_path = fast_path;

            assert_eq!(
                drive(built),
                drive(poked),
                "engine {engine:?} fast_path {fast_path} diverged"
            );
        }
    }
}

/// The profile knob must take effect: a slower machine burns more virtual
/// time for the same instruction stream.
#[test]
fn profile_knob_changes_virtual_time() {
    let fast = drive(KernelBuilder::new().profile(I486_25).build());
    let slow = drive(KernelBuilder::new().profile(VAX_6250).build());
    assert_eq!(fast.client.console, slow.client.console);
    assert_eq!(fast.client.exit_statuses, slow.client.exit_statuses);
    assert_ne!(fast.clock_ns, slow.clock_ns, "profile knob ignored");
}

/// A builder-installed exec gate vetoes spawns exactly like a post-build
/// `set_exec_gate` — but without bumping the shared cache generation
/// (the documented shared-warm-up contract).
#[test]
fn builder_gate_vetoes_like_set_exec_gate_without_gen_bump() {
    let img = assemble(PROG).unwrap();

    let mut built = KernelBuilder::new()
        .exec_gate(|_img| Err(Errno::EPERM))
        .build();
    built.install_image(b"/bin/p", &img).unwrap();
    assert_eq!(built.spawn(b"/bin/p", &[b"p"]), Err(Errno::EPERM));
    assert_eq!(
        built.exec_cache_handle().gate_gen(),
        0,
        "builder gate must not bump gen"
    );

    let mut poked = KernelBuilder::new().build();
    poked.set_exec_gate(|_img| Err(Errno::EPERM));
    poked.install_image(b"/bin/p", &img).unwrap();
    assert_eq!(poked.spawn(b"/bin/p", &[b"p"]), Err(Errno::EPERM));
    assert_eq!(
        poked.exec_cache_handle().gate_gen(),
        1,
        "post-build gate must invalidate prior entries"
    );
}

/// `base_vfs` really shares: two kernels built over the same base see the
/// same files, and their private writes do not leak into each other.
#[test]
fn base_vfs_is_shared_then_cow() {
    let mut donor = KernelBuilder::new().build();
    donor.write_file(b"/etc/fleet.conf", b"pool=16\n").unwrap();
    let base = donor.fs.clone();

    let mut a = KernelBuilder::new().base_vfs(&base).build();
    let mut b = KernelBuilder::new().base_vfs(&base).build();
    assert_eq!(a.read_file(b"/etc/fleet.conf").unwrap(), b"pool=16\n");
    assert_eq!(b.read_file(b"/etc/fleet.conf").unwrap(), b"pool=16\n");

    a.write_file(b"/tmp/only-a", b"x").unwrap();
    assert_eq!(
        b.read_file(b"/tmp/only-a"),
        Err(Errno::ENOENT),
        "COW leak across tenants"
    );
    assert_eq!(
        donor.fs.content_digest(),
        base.content_digest(),
        "donor base mutated by tenant write"
    );
}

/// `exec_cache` shares the handle; omitting it yields a private cache.
#[test]
fn exec_cache_knob_shares_the_handle() {
    let shared = ExecCache::new();
    let a = KernelBuilder::new().exec_cache(shared.clone()).build();
    let b = KernelBuilder::new().exec_cache(shared.clone()).build();
    let private = KernelBuilder::new().build();
    assert!(a.exec_cache_handle().shares_with(&b.exec_cache_handle()));
    assert!(a.exec_cache_handle().shares_with(&shared));
    assert!(!private.exec_cache_handle().shares_with(&shared));
}
