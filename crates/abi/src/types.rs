//! Structures exchanged through process memory at the system interface,
//! with their fixed wire layouts.

use crate::signal::SigSet;
use crate::wire::{Dec, Enc, Wire};
use crate::Errno;

/// Number of general-purpose registers in the simulated machine; the size of
/// the register file saved in a [`SigContext`].
pub const NREGS: usize = 16;

/// Maximum length of one pathname component, as in 4.3BSD's `MAXNAMLEN`.
pub const MAXNAMLEN: usize = 255;

/// Maximum length of a full pathname, as in 4.3BSD's `MAXPATHLEN`.
pub const MAXPATHLEN: usize = 1024;

/// `struct timeval`: seconds and microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord, Hash)]
pub struct Timeval {
    /// Seconds since the epoch.
    pub sec: i64,
    /// Microseconds, `0..1_000_000`.
    pub usec: i64,
}

impl Timeval {
    /// Builds a normalized timeval from a microsecond count.
    #[must_use]
    pub fn from_micros(us: i64) -> Timeval {
        Timeval {
            sec: us.div_euclid(1_000_000),
            usec: us.rem_euclid(1_000_000),
        }
    }

    /// Total microseconds represented.
    #[must_use]
    pub fn as_micros(self) -> i64 {
        self.sec * 1_000_000 + self.usec
    }
}

impl Wire for Timeval {
    const WIRE_SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        Enc::new(buf).i64(self.sec).i64(self.usec);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(Timeval {
            sec: d.i64()?,
            usec: d.i64()?,
        })
    }
}

/// `struct timezone`, kept for interface fidelity with `gettimeofday`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timezone {
    /// Minutes west of Greenwich.
    pub minuteswest: i32,
    /// Type of DST correction.
    pub dsttime: i32,
}

impl Wire for Timezone {
    const WIRE_SIZE: usize = 8;

    fn encode(&self, buf: &mut [u8]) {
        Enc::new(buf).i32(self.minuteswest).i32(self.dsttime);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(Timezone {
            minuteswest: d.i32()?,
            dsttime: d.i32()?,
        })
    }
}

/// `struct stat` as filled by `stat`/`lstat`/`fstat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stat {
    /// Device holding the file (always 0 for the single root filesystem).
    pub dev: u32,
    /// Inode number.
    pub ino: u64,
    /// Mode word: file type and permission bits.
    pub mode: u32,
    /// Number of hard links.
    pub nlink: u32,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Device number for character devices.
    pub rdev: u32,
    /// Size in bytes.
    pub size: u64,
    /// Last access time.
    pub atime: Timeval,
    /// Last modification time.
    pub mtime: Timeval,
    /// Last status-change time.
    pub ctime: Timeval,
    /// Preferred I/O block size.
    pub blksize: u32,
    /// Blocks allocated (512-byte units).
    pub blocks: u64,
}

impl Wire for Stat {
    const WIRE_SIZE: usize = 4 + 8 + 4 + 4 + 4 + 4 + 4 + 8 + 16 * 3 + 4 + 8;

    fn encode(&self, buf: &mut [u8]) {
        let mut e = Enc::new(buf);
        e.u32(self.dev)
            .u64(self.ino)
            .u32(self.mode)
            .u32(self.nlink)
            .u32(self.uid)
            .u32(self.gid)
            .u32(self.rdev)
            .u64(self.size)
            .i64(self.atime.sec)
            .i64(self.atime.usec)
            .i64(self.mtime.sec)
            .i64(self.mtime.usec)
            .i64(self.ctime.sec)
            .i64(self.ctime.usec)
            .u32(self.blksize)
            .u64(self.blocks);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(Stat {
            dev: d.u32()?,
            ino: d.u64()?,
            mode: d.u32()?,
            nlink: d.u32()?,
            uid: d.u32()?,
            gid: d.u32()?,
            rdev: d.u32()?,
            size: d.u64()?,
            atime: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
            mtime: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
            ctime: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
            blksize: d.u32()?,
            blocks: d.u64()?,
        })
    }
}

/// One directory entry in the variable-length stream returned by
/// `getdirentries(2)` — 4.3BSD `struct direct`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number of the entry.
    pub ino: u64,
    /// Entry name (no embedded NULs, at most [`MAXNAMLEN`] bytes).
    pub name: Vec<u8>,
}

impl DirEntry {
    /// Fixed header bytes before the name: ino (8) + reclen (2) + namlen (2).
    pub const HEADER: usize = 12;

    /// Builds an entry, truncating over-long names at [`MAXNAMLEN`].
    #[must_use]
    pub fn new(ino: u64, name: impl Into<Vec<u8>>) -> DirEntry {
        let mut name = name.into();
        name.truncate(MAXNAMLEN);
        DirEntry { ino, name }
    }

    /// The record length this entry occupies on the wire: header plus the
    /// NUL-terminated name, padded to a 4-byte boundary.
    #[must_use]
    pub fn reclen(&self) -> usize {
        let raw = Self::HEADER + self.name.len() + 1;
        (raw + 3) & !3
    }

    /// Appends the wire form to `out`. Returns the record length.
    pub fn encode_to(&self, out: &mut Vec<u8>) -> usize {
        let reclen = self.reclen();
        let start = out.len();
        out.resize(start + reclen, 0);
        let mut e = Enc::new(&mut out[start..]);
        e.u64(self.ino)
            .u16(reclen as u16)
            .u16(self.name.len() as u16)
            .bytes(&self.name)
            .u8(0);
        reclen
    }

    /// Decodes one record from the front of `buf`, returning the entry and
    /// the bytes consumed.
    pub fn decode_from(buf: &[u8]) -> Result<(DirEntry, usize), Errno> {
        let mut d = Dec::new(buf);
        let ino = d.u64()?;
        let reclen = d.u16()? as usize;
        let namlen = d.u16()? as usize;
        if reclen < Self::HEADER + namlen + 1 || reclen > buf.len() {
            return Err(Errno::EINVAL);
        }
        let name = d.bytes(namlen)?.to_vec();
        Ok((DirEntry { ino, name }, reclen))
    }

    /// Decodes an entire `getdirentries` buffer into entries.
    pub fn decode_stream(mut buf: &[u8]) -> Result<Vec<DirEntry>, Errno> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let (e, n) = DirEntry::decode_from(buf)?;
            out.push(e);
            buf = &buf[n..];
        }
        Ok(out)
    }
}

/// Resource usage as reported by `getrusage(2)` (a practical subset of the
/// 4.3BSD `struct rusage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rusage {
    /// User CPU time consumed.
    pub utime: Timeval,
    /// System CPU time consumed.
    pub stime: Timeval,
    /// Maximum resident set size.
    pub maxrss: u64,
    /// Block input operations.
    pub inblock: u64,
    /// Block output operations.
    pub oublock: u64,
    /// Signals received.
    pub nsignals: u64,
    /// Voluntary context switches.
    pub nvcsw: u64,
    /// Involuntary context switches.
    pub nivcsw: u64,
}

impl Wire for Rusage {
    const WIRE_SIZE: usize = 16 * 2 + 8 * 6;

    fn encode(&self, buf: &mut [u8]) {
        let mut e = Enc::new(buf);
        e.i64(self.utime.sec)
            .i64(self.utime.usec)
            .i64(self.stime.sec)
            .i64(self.stime.usec)
            .u64(self.maxrss)
            .u64(self.inblock)
            .u64(self.oublock)
            .u64(self.nsignals)
            .u64(self.nvcsw)
            .u64(self.nivcsw);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(Rusage {
            utime: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
            stime: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
            maxrss: d.u64()?,
            inblock: d.u64()?,
            oublock: d.u64()?,
            nsignals: d.u64()?,
            nvcsw: d.u64()?,
            nivcsw: d.u64()?,
        })
    }
}

/// The record exchanged by `sigaction(2)`: handler, mask to block during the
/// handler, and flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SigActionRec {
    /// Handler encoding: 0 = SIG_DFL, 1 = SIG_IGN, else handler address.
    pub handler: u64,
    /// Signals blocked while the handler runs.
    pub mask: u32,
    /// Flags (reserved, kept for layout fidelity).
    pub flags: u32,
}

impl Wire for SigActionRec {
    const WIRE_SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        Enc::new(buf)
            .u64(self.handler)
            .u32(self.mask)
            .u32(self.flags);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(SigActionRec {
            handler: d.u64()?,
            mask: d.u32()?,
            flags: d.u32()?,
        })
    }
}

/// One element of a `readv`/`writev` vector — `struct iovec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoVec {
    /// Address of the buffer in the caller's address space.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Wire for IoVec {
    const WIRE_SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        Enc::new(buf).u64(self.base).u64(self.len);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(IoVec {
            base: d.u64()?,
            len: d.u64()?,
        })
    }
}

/// Interval-timer value for `setitimer`/`getitimer` — `struct itimerval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ItimerVal {
    /// Reload value installed when the timer fires.
    pub interval: Timeval,
    /// Time until the next expiry; zero means disarmed.
    pub value: Timeval,
}

impl Wire for ItimerVal {
    const WIRE_SIZE: usize = 32;

    fn encode(&self, buf: &mut [u8]) {
        Enc::new(buf)
            .i64(self.interval.sec)
            .i64(self.interval.usec)
            .i64(self.value.sec)
            .i64(self.value.usec);
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        Ok(ItimerVal {
            interval: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
            value: Timeval {
                sec: d.i64()?,
                usec: d.i64()?,
            },
        })
    }
}

/// The machine context pushed on the application stack when a signal is
/// delivered and restored by `sigreturn(2)` — `struct sigcontext`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigContext {
    /// Program counter at the point of interruption.
    pub pc: u64,
    /// The full register file.
    pub regs: [u64; NREGS],
    /// The signal mask to restore.
    pub mask: SigSet,
}

impl Default for SigContext {
    fn default() -> Self {
        SigContext {
            pc: 0,
            regs: [0; NREGS],
            mask: SigSet::EMPTY,
        }
    }
}

impl Wire for SigContext {
    const WIRE_SIZE: usize = 8 + 8 * NREGS + 4;

    fn encode(&self, buf: &mut [u8]) {
        let mut e = Enc::new(buf);
        e.u64(self.pc);
        for r in self.regs {
            e.u64(r);
        }
        e.u32(self.mask.bits());
    }

    fn decode(buf: &[u8]) -> Result<Self, Errno> {
        let mut d = Dec::new(buf);
        let pc = d.u64()?;
        let mut regs = [0u64; NREGS];
        for r in &mut regs {
            *r = d.u64()?;
        }
        let mask = SigSet::from_bits(d.u32()?);
        Ok(SigContext { pc, regs, mask })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), T::WIRE_SIZE);
        let back = T::decode(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn timeval_round_trip_and_micros() {
        let tv = Timeval {
            sec: -5,
            usec: 999_999,
        };
        round_trip(&tv);
        assert_eq!(
            Timeval::from_micros(1_500_000),
            Timeval {
                sec: 1,
                usec: 500_000
            }
        );
        assert_eq!(
            Timeval::from_micros(-1),
            Timeval {
                sec: -1,
                usec: 999_999
            }
        );
        assert_eq!(Timeval::from_micros(1_500_000).as_micros(), 1_500_000);
    }

    #[test]
    fn stat_round_trip() {
        round_trip(&Stat {
            dev: 1,
            ino: 42,
            mode: 0o100644,
            nlink: 2,
            uid: 100,
            gid: 20,
            rdev: 0,
            size: 12345,
            atime: Timeval { sec: 1, usec: 2 },
            mtime: Timeval { sec: 3, usec: 4 },
            ctime: Timeval { sec: 5, usec: 6 },
            blksize: 8192,
            blocks: 25,
        });
    }

    #[test]
    fn rusage_sigaction_iovec_itimer_sigcontext_round_trip() {
        round_trip(&Rusage {
            utime: Timeval { sec: 1, usec: 500 },
            stime: Timeval { sec: 0, usec: 250 },
            maxrss: 4096,
            inblock: 10,
            oublock: 20,
            nsignals: 3,
            nvcsw: 7,
            nivcsw: 9,
        });
        round_trip(&SigActionRec {
            handler: 0x8000,
            mask: 0b1010,
            flags: 0,
        });
        round_trip(&IoVec {
            base: 0x1000,
            len: 512,
        });
        round_trip(&ItimerVal {
            interval: Timeval { sec: 1, usec: 0 },
            value: Timeval {
                sec: 0,
                usec: 500_000,
            },
        });
        let mut ctx = SigContext {
            pc: 0x44,
            ..SigContext::default()
        };
        ctx.regs[3] = 99;
        ctx.mask.add(crate::Signal::SIGINT);
        round_trip(&ctx);
    }

    #[test]
    fn direntry_encode_decode() {
        let e = DirEntry::new(7, *b"hello.c");
        let mut buf = Vec::new();
        let n = e.encode_to(&mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n % 4, 0, "records are 4-byte aligned");
        let (back, consumed) = DirEntry::decode_from(&buf).unwrap();
        assert_eq!(consumed, n);
        assert_eq!(back, e);
    }

    #[test]
    fn direntry_stream_round_trip() {
        let entries = vec![
            DirEntry::new(1, *b"."),
            DirEntry::new(2, *b".."),
            DirEntry::new(10, *b"a-much-longer-file-name.txt"),
        ];
        let mut buf = Vec::new();
        for e in &entries {
            e.encode_to(&mut buf);
        }
        assert_eq!(DirEntry::decode_stream(&buf).unwrap(), entries);
    }

    #[test]
    fn direntry_truncates_monster_names() {
        let e = DirEntry::new(1, vec![b'x'; 5000]);
        assert_eq!(e.name.len(), MAXNAMLEN);
    }

    #[test]
    fn direntry_decode_rejects_corrupt_reclen() {
        let e = DirEntry::new(7, *b"ok");
        let mut buf = Vec::new();
        e.encode_to(&mut buf);
        // Corrupt the reclen (offset 8..10) to be shorter than the header.
        buf[8] = 4;
        buf[9] = 0;
        assert!(DirEntry::decode_from(&buf).is_err());
    }
}
