//! The binary image format — the system's "a.out".
//!
//! An image is what `execve(2)` loads: serialized code, initialized data,
//! and an entry point. Images are ordinary files in the simulated
//! filesystem, so the *same bytes* run under any agent — the paper's
//! "unmodified application binaries" property is literal here.

use ia_abi::wire::{Dec, Enc};
use ia_abi::Errno;

use crate::insn::Insn;
use crate::mem::AddressSpace;

/// Magic number at the start of every image ("IAVM").
pub const IMAGE_MAGIC: u32 = 0x4941_564d;

/// Format version.
pub const IMAGE_VERSION: u32 = 1;

/// Base address where the data segment is loaded.
pub const DATA_BASE: u64 = 0x1000;

/// Header size: magic, version, entry, code count, data length.
const HEADER: usize = 4 + 4 + 8 + 4 + 4;

/// A loadable program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Entry point (code index).
    pub entry: u64,
    /// The code segment.
    pub code: Vec<Insn>,
    /// Initialized data, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
}

impl Image {
    /// Serializes the image to its file form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; HEADER];
        {
            let mut e = Enc::new(&mut out);
            e.u32(IMAGE_MAGIC)
                .u32(IMAGE_VERSION)
                .u64(self.entry)
                .u32(self.code.len() as u32)
                .u32(self.data.len() as u32);
        }
        for insn in &self.code {
            out.extend_from_slice(&insn.encode());
        }
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses an image from file bytes. Any malformation is `ENOEXEC`,
    /// exactly what `execve` reports for a corrupt binary.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, Errno> {
        let mut d = Dec::new(bytes);
        let magic = d.u32().map_err(|_| Errno::ENOEXEC)?;
        let version = d.u32().map_err(|_| Errno::ENOEXEC)?;
        if magic != IMAGE_MAGIC || version != IMAGE_VERSION {
            return Err(Errno::ENOEXEC);
        }
        let entry = d.u64().map_err(|_| Errno::ENOEXEC)?;
        let ncode = d.u32().map_err(|_| Errno::ENOEXEC)? as usize;
        let ndata = d.u32().map_err(|_| Errno::ENOEXEC)? as usize;
        if bytes.len() != HEADER + ncode * 12 + ndata {
            return Err(Errno::ENOEXEC);
        }
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            let raw: [u8; 12] = d
                .bytes(12)
                .map_err(|_| Errno::ENOEXEC)?
                .try_into()
                .expect("12 bytes");
            code.push(Insn::decode(&raw).ok_or(Errno::ENOEXEC)?);
        }
        let data = d.bytes(ndata).map_err(|_| Errno::ENOEXEC)?.to_vec();
        if entry as usize > code.len() {
            return Err(Errno::ENOEXEC);
        }
        Ok(Image { entry, code, data })
    }

    /// Loads the data segment into a cleared address space — the tail end of
    /// what `execve` does. Returns the initial break (end of data).
    pub fn load_into(&self, mem: &mut AddressSpace) -> Result<u64, Errno> {
        let brk0 = DATA_BASE + self.data.len() as u64;
        mem.clear(brk0);
        mem.write_bytes(DATA_BASE, &self.data)?;
        Ok(brk0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn::*;

    fn sample() -> Image {
        Image {
            entry: 1,
            code: vec![Nop, Li(0, 42), Sys, Halt],
            data: b"hello data segment".to_vec(),
        }
    }

    #[test]
    fn round_trip() {
        let img = sample();
        let bytes = img.to_bytes();
        assert_eq!(Image::from_bytes(&bytes).unwrap(), img);
    }

    #[test]
    fn bad_magic_is_enoexec() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(Image::from_bytes(&bytes), Err(Errno::ENOEXEC));
    }

    #[test]
    fn truncated_is_enoexec() {
        let bytes = sample().to_bytes();
        assert_eq!(
            Image::from_bytes(&bytes[..bytes.len() - 1]),
            Err(Errno::ENOEXEC)
        );
        assert_eq!(Image::from_bytes(&bytes[..6]), Err(Errno::ENOEXEC));
        assert_eq!(Image::from_bytes(b""), Err(Errno::ENOEXEC));
    }

    #[test]
    fn trailing_garbage_is_enoexec() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(Image::from_bytes(&bytes), Err(Errno::ENOEXEC));
    }

    #[test]
    fn entry_out_of_range_is_enoexec() {
        let mut img = sample();
        img.entry = 99;
        assert_eq!(Image::from_bytes(&img.to_bytes()), Err(Errno::ENOEXEC));
    }

    #[test]
    fn load_places_data_and_sets_break() {
        let img = sample();
        let mut mem = AddressSpace::new(1 << 16, 0);
        mem.write_u64(0x100, 0xdead).unwrap(); // stale bytes to be cleared
        let brk = img.load_into(&mut mem).unwrap();
        assert_eq!(brk, DATA_BASE + img.data.len() as u64);
        assert_eq!(mem.read_u64(0x100).unwrap(), 0, "address space was cleared");
        assert_eq!(
            mem.read_bytes(DATA_BASE, img.data.len()).unwrap(),
            &img.data[..]
        );
    }
}
