//! Flow-sensitive abstract interpretation over the CFG.
//!
//! Each basic block gets an abstract register state (one [`AbsVal`] per
//! register plus a "definitely written" mask). A worklist pass runs the
//! transfer function to a fixpoint, widening to ⊤ when a block's input keeps
//! changing; a final recording pass then resolves the possible values of
//! `r7` at every reachable `SYS` site and collects value-level findings.
//!
//! Two entry points: [`run`] analyzes flow along CFG edges from explicit
//! roots; [`run_pervasive`] additionally assumes control can be seized at
//! *any instruction boundary* with registers bounded by a caller-supplied
//! "pervasive" state — the sound model for signal-handler delivery (the
//! kernel jumps to an arbitrary handler index with the interrupted context's
//! registers) and for `ret` through a corrupted stack slot (the machine
//! jumps to whatever index the slot holds, with the registers live at the
//! `ret`). The pervasive state is joined in before every instruction, not
//! just at block leaders, because those transfers land mid-block.
//!
//! Soundness contract: every concrete execution's register values are
//! contained in the abstract values computed here. The transfer functions
//! mirror `ia_vm::machine::step` exactly (wrapping arithmetic, shift
//! masking, unsigned division); anything not provable collapses to ⊤.

use crate::cfg::{Cfg, EdgeKind};
use crate::domain::AbsVal;
use ia_vm::{Insn, DATA_BASE, SYS_NR_REG};
use std::collections::{BTreeSet, VecDeque};

/// Number of joins a block tolerates before widening kicks in.
const WIDEN_LIMIT: usize = 12;

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegState {
    /// One abstract value per register.
    pub regs: [AbsVal; 16],
    /// Bit `r` set ⇔ register `r` has definitely been written on every path
    /// reaching this point (used for the read-of-unwritten lint).
    pub written: u16,
}

impl RegState {
    /// State at process entry: the loader zeroes registers, then the kernel
    /// seeds `r0`/`r1` (argc/argv) and `r15` (stack pointer).
    #[must_use]
    pub fn at_entry() -> RegState {
        let mut regs = [AbsVal::Const(0); 16];
        regs[0] = AbsVal::Top;
        regs[1] = AbsVal::Top;
        regs[15] = AbsVal::Top;
        RegState {
            regs,
            written: 1 | (1 << 1) | (1 << 15),
        }
    }

    /// The no-information state: every register may hold anything and counts
    /// as written. Used for call returns and for signal-handler analysis.
    #[must_use]
    pub fn top() -> RegState {
        RegState {
            regs: [AbsVal::Top; 16],
            written: u16::MAX,
        }
    }

    /// Pointwise join; writtenness is the intersection (a register is
    /// definitely-written only if written on both paths).
    #[must_use]
    pub fn join(&self, other: &RegState) -> RegState {
        let mut regs = [AbsVal::Top; 16];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = self.regs[i].join(other.regs[i]);
        }
        RegState {
            regs,
            written: self.written & other.written,
        }
    }
}

/// Possible syscall numbers at one `SYS` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallSet {
    /// `r7` (truncated to `u32` like the machine's trap path) is one of
    /// these values.
    Exact(Vec<u32>),
    /// `r7` could not be bounded: any syscall number is possible.
    Top,
}

/// One reachable `SYS` instruction and what it can invoke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysSite {
    /// Instruction index of the `SYS`.
    pub at: usize,
    /// Resolved syscall numbers.
    pub nrs: SyscallSet,
}

/// A value-level fact discovered during the recording pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueFinding {
    /// `div`/`rem` whose divisor is provably zero (`SIGFPE` at runtime).
    DivByZero {
        /// Instruction index.
        at: usize,
        /// The divisor register.
        reg: u8,
    },
    /// A store whose address is provably below [`DATA_BASE`] — inside the
    /// unmapped guard region that shields the text segment's address range.
    StoreBelowData {
        /// Instruction index.
        at: usize,
        /// The provable store address (or interval high bound).
        addr: u64,
    },
    /// A register read on a path where it was never written.
    ReadUnwritten {
        /// Instruction index.
        at: usize,
        /// The register read.
        reg: u8,
    },
}

/// Result of one abstract-interpretation phase.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Fixpoint in-state per block; `None` for blocks not reached from the
    /// phase's roots.
    pub in_states: Vec<Option<RegState>>,
    /// Every reached `SYS` site with its resolved numbers.
    pub sites: Vec<SysSite>,
    /// Value-level findings from the recording pass.
    pub findings: Vec<ValueFinding>,
    /// Join of the abstract state at *every* reached program point (before
    /// and after each instruction). This bounds the register contents an
    /// asynchronous control transfer — signal delivery, or a `ret` through
    /// a corrupted return slot — can carry into its target. `None` if no
    /// point was reached.
    pub point_join: Option<RegState>,
}

/// Converts an abstract `r7` into the site's syscall-number set, applying
/// the machine's `u64 → u32` truncation per enumerated value.
pub(crate) fn site_values(v: AbsVal) -> SyscallSet {
    match v.bounds() {
        Some((lo, hi)) if hi - lo <= 255 => {
            SyscallSet::Exact((lo..=hi).map(|x| x as u32).collect())
        }
        _ => SyscallSet::Top,
    }
}

/// Records reads/writes and findings during the final pass; absent during
/// fixpointing.
struct Recorder {
    sites: Vec<SysSite>,
    findings: Vec<ValueFinding>,
    /// Dedup for read-unwritten warnings: (insn index, reg).
    seen_reads: BTreeSet<(usize, u8)>,
    /// Accumulated join of every program-point state (see
    /// [`Analysis::point_join`]).
    point_join: Option<RegState>,
}

impl Recorder {
    fn note_point(&mut self, st: &RegState) {
        self.point_join = Some(match self.point_join.take() {
            None => st.clone(),
            Some(pj) => pj.join(st),
        });
    }
}

/// Applies one instruction to `st`. `rec` is `Some` only in the recording
/// pass.
fn transfer(insn: Insn, at: usize, st: &mut RegState, rec: &mut Option<&mut Recorder>) {
    use Insn::*;
    let read = |st: &RegState, r: u8, rec: &mut Option<&mut Recorder>| -> AbsVal {
        if let Some(rec) = rec {
            if st.written & (1 << r) == 0 && rec.seen_reads.insert((at, r)) {
                rec.findings
                    .push(ValueFinding::ReadUnwritten { at, reg: r });
            }
        }
        st.regs[r as usize]
    };
    let write = |st: &mut RegState, r: u8, v: AbsVal| {
        st.regs[r as usize] = v;
        st.written |= 1 << r;
    };
    match insn {
        Li(rd, v) => write(st, rd, AbsVal::Const(v)),
        Mov(rd, rs) => {
            let v = read(st, rs, rec);
            write(st, rd, v);
        }
        Ld(rd, rs, _) => {
            read(st, rs, rec);
            write(st, rd, AbsVal::Top);
        }
        Ldb(rd, rs, _) => {
            read(st, rs, rec);
            write(st, rd, AbsVal::range(0, 255));
        }
        St(rd, rs, off) | Stb(rd, rs, off) => {
            let base = read(st, rd, rec);
            read(st, rs, rec);
            if let Some(rec) = rec {
                let addr = base.add_signed(off);
                if let Some((_, hi)) = addr.bounds() {
                    if hi < DATA_BASE {
                        rec.findings
                            .push(ValueFinding::StoreBelowData { at, addr: hi });
                    }
                }
            }
        }
        Add(rd, rs, rt)
        | Sub(rd, rs, rt)
        | Mul(rd, rs, rt)
        | And(rd, rs, rt)
        | Or(rd, rs, rt)
        | Xor(rd, rs, rt)
        | Shl(rd, rs, rt)
        | Shr(rd, rs, rt)
        | Sltu(rd, rs, rt)
        | Slt(rd, rs, rt)
        | Seq(rd, rs, rt) => {
            let a = read(st, rs, rec);
            let b = read(st, rt, rec);
            let v = match insn {
                Add(..) => a.add(b),
                Sub(..) => a.sub(b),
                Mul(..) => a.mul(b),
                And(..) => a.and(b),
                Or(..) => a.or(b),
                Xor(..) => a.xor(b),
                Shl(..) => a.shl(b),
                Shr(..) => a.shr(b),
                Sltu(..) => a.cmp_result(b, |x, y| x < y),
                Slt(..) => a.cmp_result(b, |x, y| (x as i64) < (y as i64)),
                Seq(..) => a.cmp_result(b, |x, y| x == y),
                _ => unreachable!(),
            };
            write(st, rd, v);
        }
        Div(rd, rs, rt) | Rem(rd, rs, rt) => {
            let a = read(st, rs, rec);
            let b = read(st, rt, rec);
            if b.is_zero() {
                if let Some(rec) = rec {
                    rec.findings.push(ValueFinding::DivByZero { at, reg: rt });
                }
            }
            let v = if matches!(insn, Div(..)) {
                a.div(b)
            } else {
                a.rem(b)
            };
            write(st, rd, v);
        }
        Addi(rd, rs, imm) => {
            let v = read(st, rs, rec).add_signed(imm);
            write(st, rd, v);
        }
        Jz(rs, _) | Jnz(rs, _) => {
            read(st, rs, rec);
        }
        Jmp(_) => {}
        Call(_) => {
            // Pushes the return address at sp-8 and decrements sp. The
            // CallReturn edge resets everything to ⊤ anyway.
            let sp = st.regs[15].add_signed(-8);
            write(st, 15, sp);
        }
        Ret => {
            let sp = st.regs[15].add_signed(8);
            write(st, 15, sp);
        }
        Sys => {
            let nr = read(st, SYS_NR_REG as u8, rec);
            if let Some(rec) = rec {
                rec.sites.push(SysSite {
                    at,
                    nrs: site_values(nr),
                });
            }
            // SYSRET clobbers r0 (rv0), r1 (errno), r2 (rv1).
            write(st, 0, AbsVal::Top);
            write(st, 1, AbsVal::Top);
            write(st, 2, AbsVal::Top);
        }
        Halt | Nop => {}
    }
}

/// Applies one instruction's *value* transfer to `st` without recording.
/// The taint analysis replays the value interpretation per instruction
/// (starting from a block's fixpoint in-state) so it can resolve addresses
/// and trap numbers while propagating taint in lock-step.
pub(crate) fn step_value(insn: Insn, st: &mut RegState) {
    transfer(insn, 0, st, &mut None);
}

/// Runs one block's instructions over `st`, stopping early at an
/// undecodable slot (the machine faults there). When `pervasive` is set it
/// is joined in before every instruction — control may enter at any
/// boundary. The recorder, when present, accumulates the point join at each
/// boundary (including the one before a faulting slot, where a caught
/// `SIGILL` hands those registers to a handler).
fn transfer_block(
    code: &[Option<Insn>],
    start: usize,
    end: usize,
    st: &mut RegState,
    pervasive: Option<&RegState>,
    rec: &mut Option<&mut Recorder>,
) {
    for (i, slot) in code.iter().enumerate().take(end).skip(start) {
        if let Some(p) = pervasive {
            *st = st.join(p);
        }
        if let Some(rec) = rec.as_deref_mut() {
            rec.note_point(st);
        }
        match slot {
            Some(insn) => transfer(*insn, i, st, rec),
            None => return,
        }
    }
    if let Some(rec) = rec.as_deref_mut() {
        rec.note_point(st);
    }
}

/// Runs the worklist fixpoint from `roots` (block index, entry state), then
/// a recording pass with the fixed in-states.
#[must_use]
pub fn run(code: &[Option<Insn>], cfg: &Cfg, roots: &[(usize, RegState)]) -> Analysis {
    run_impl(code, cfg, roots, None)
}

/// Like [`run`], but rooting *every* block with `pervasive` and joining
/// `pervasive` in before every instruction: the sound model for control
/// seized at arbitrary instruction boundaries (signal handlers, corrupted
/// `ret` slots) with register contents bounded by `pervasive`.
#[must_use]
pub fn run_pervasive(code: &[Option<Insn>], cfg: &Cfg, pervasive: &RegState) -> Analysis {
    let roots: Vec<(usize, RegState)> = (0..cfg.blocks.len())
        .map(|b| (b, pervasive.clone()))
        .collect();
    run_impl(code, cfg, &roots, Some(pervasive))
}

fn run_impl(
    code: &[Option<Insn>],
    cfg: &Cfg,
    roots: &[(usize, RegState)],
    pervasive: Option<&RegState>,
) -> Analysis {
    let nb = cfg.blocks.len();
    let mut in_states: Vec<Option<RegState>> = vec![None; nb];
    let mut join_counts = vec![0usize; nb];
    let mut work: VecDeque<usize> = VecDeque::new();

    let merge = |b: usize,
                 incoming: RegState,
                 in_states: &mut Vec<Option<RegState>>,
                 join_counts: &mut Vec<usize>,
                 work: &mut VecDeque<usize>| {
        let merged = match &in_states[b] {
            None => incoming,
            Some(old) => {
                let mut m = old.join(&incoming);
                if m == *old {
                    return;
                }
                join_counts[b] += 1;
                if join_counts[b] > WIDEN_LIMIT {
                    // Widen: any register still changing jumps to the
                    // extreme on whichever side is moving, so the chain
                    // terminates in at most two more steps while a stable
                    // bound (e.g. the base of a pointer walked upward in a
                    // loop) survives.
                    for r in 0..16 {
                        if m.regs[r] != old.regs[r] {
                            m.regs[r] = match (old.regs[r].bounds(), m.regs[r].bounds()) {
                                (Some((olo, ohi)), Some((nlo, nhi))) => {
                                    let lo = if nlo < olo { 0 } else { olo };
                                    let hi = if nhi > ohi { u64::MAX } else { ohi };
                                    AbsVal::range(lo, hi)
                                }
                                _ => AbsVal::Top,
                            };
                        }
                    }
                }
                m
            }
        };
        in_states[b] = Some(merged);
        work.push_back(b);
    };

    for (b, st) in roots {
        if *b < nb {
            merge(*b, st.clone(), &mut in_states, &mut join_counts, &mut work);
        }
    }

    while let Some(b) = work.pop_front() {
        let mut out = in_states[b].clone().expect("queued block has a state");
        let block = &cfg.blocks[b];
        transfer_block(code, block.start, block.end, &mut out, pervasive, &mut None);
        for edge in &block.succs {
            let st = if edge.kind == EdgeKind::CallReturn {
                RegState::top()
            } else {
                out.clone()
            };
            merge(edge.to, st, &mut in_states, &mut join_counts, &mut work);
        }
    }

    // Recording pass with the now-fixed in-states.
    let mut rec = Recorder {
        sites: Vec::new(),
        findings: Vec::new(),
        seen_reads: BTreeSet::new(),
        point_join: None,
    };
    for (b, block) in cfg.blocks.iter().enumerate() {
        if let Some(in_st) = &in_states[b] {
            let mut st = in_st.clone();
            let mut slot = Some(&mut rec);
            transfer_block(code, block.start, block.end, &mut st, pervasive, &mut slot);
        }
    }
    rec.sites.sort_by_key(|s| s.at);
    Analysis {
        in_states,
        sites: rec.sites,
        findings: rec.findings,
        point_join: rec.point_join,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_vm::Insn::*;

    fn analyze(code: Vec<Insn>) -> Analysis {
        let code: Vec<Option<Insn>> = code.into_iter().map(Some).collect();
        let cfg = Cfg::build(&code, 0);
        run(&code, &cfg, &[(cfg.block_of[0], RegState::at_entry())])
    }

    #[test]
    fn li_sys_resolves_exactly() {
        let a = analyze(vec![Li(7, 4), Sys, Halt]);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].nrs, SyscallSet::Exact(vec![4]));
    }

    #[test]
    fn joined_branches_enumerate_both_numbers() {
        // if r0 { r7 = 3 } else { r7 = 4 }; sys
        let code = vec![
            Jz(0, 3), // 0
            Li(7, 3), // 1
            Jmp(4),   // 2
            Li(7, 4), // 3
            Sys,      // 4
            Halt,     // 5
        ];
        let a = analyze(code);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].nrs, SyscallSet::Exact(vec![3, 4]));
    }

    #[test]
    fn loaded_syscall_number_widens_to_top() {
        // r7 ← mem[r15]; sys — the analyzer cannot bound it.
        let a = analyze(vec![Ld(7, 15, 0), Sys, Halt]);
        assert_eq!(a.sites[0].nrs, SyscallSet::Top);
    }

    #[test]
    fn loops_terminate_via_widening() {
        // r3 counts up forever; r7 stays constant through the loop.
        let code = vec![
            Li(3, 0),      // 0
            Li(7, 20),     // 1
            Addi(3, 3, 1), // 2: loop head
            Sys,           // 3
            Jmp(2),        // 4
        ];
        let a = analyze(code);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(
            a.sites[0].nrs,
            SyscallSet::Exact(vec![20]),
            "r7 survives the loop"
        );
    }

    #[test]
    fn call_clobbers_registers_on_return() {
        // main: li r7,4; call f; sys — the callee may change r7, so the
        // post-call sys must be ⊤ even though f doesn't touch r7.
        let code = vec![
            Li(7, 4), // 0
            Call(4),  // 1
            Sys,      // 2
            Halt,     // 3
            Ret,      // 4: f
        ];
        let a = analyze(code);
        assert_eq!(a.sites[0].nrs, SyscallSet::Top, "call return is ⊤");
    }

    #[test]
    fn value_findings_fire() {
        let code = vec![
            Li(1, 10),    // 0
            Li(2, 0),     // 1
            Div(3, 1, 2), // 2: divisor r2 is provably zero
            Li(4, 0x10),  // 3
            St(5, 4, 0),  // 4: mem[r5+0] ← r4; r5 is unwritten Const(0)
            Halt,
        ];
        let a = analyze(code);
        assert!(a
            .findings
            .contains(&ValueFinding::DivByZero { at: 2, reg: 2 }));
        assert!(a
            .findings
            .contains(&ValueFinding::StoreBelowData { at: 4, addr: 0 }));
        assert!(a
            .findings
            .contains(&ValueFinding::ReadUnwritten { at: 4, reg: 5 }));
    }

    #[test]
    fn point_join_bounds_every_program_point() {
        let a = analyze(vec![Li(7, 4), Li(7, 9), Halt]);
        let pj = a.point_join.expect("points reached");
        // r7 is 0 at entry, then 4, then 9: the hull of every point.
        assert_eq!(pj.regs[7], AbsVal::Range(0, 9));
    }

    #[test]
    fn pervasive_entry_reaches_mid_block_with_joined_state() {
        // Along normal flow the site is Exact([1]); a pervasive entry
        // directly at the sys carries the pervasive r7 instead, so the site
        // must widen to the hull even though the li precedes it in-block.
        let code: Vec<Option<Insn>> = vec![Li(7, 1), Sys, Halt].into_iter().map(Some).collect();
        let cfg = Cfg::build(&code, 0);
        let mut p = RegState::at_entry();
        p.regs[7] = AbsVal::range(0, 46);
        let a = run_pervasive(&code, &cfg, &p);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].nrs, SyscallSet::Exact((0..=46).collect()));
    }

    #[test]
    fn truncation_to_u32_is_applied() {
        // r7 = 1<<32 | 3 traps as syscall 3 on the real machine.
        let a = analyze(vec![Li(7, (1 << 32) | 3), Sys, Halt]);
        assert_eq!(a.sites[0].nrs, SyscallSet::Exact(vec![3]));
    }
}
