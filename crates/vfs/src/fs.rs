//! The filesystem proper: an inode table plus the `namei`-style resolution
//! and mutation operations the kernel serves to applications.

use std::collections::BTreeMap;

use ia_abi::{DirEntry, Errno, Stat, Timeval};

use crate::inode::{Cred, Ino, Inode, InodeKind, ROOT_INO};
use crate::path::{self, is_absolute, split_components};
use crate::pipe::PipeTable;
use crate::pstore::{FileContent, PVec};

/// Maximum symlink expansions in one resolution, per 4.3BSD `MAXSYMLINKS`.
pub const MAXSYMLINKS: usize = 8;

/// Result of resolving a pathname to an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The inode the path names.
    pub ino: Ino,
}

/// Counters describing the filesystem's current shape, for tests and tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStats {
    /// Live inodes of any kind.
    pub inodes: usize,
    /// Regular files.
    pub files: usize,
    /// Directories.
    pub dirs: usize,
    /// Symbolic links.
    pub symlinks: usize,
    /// Total bytes held in regular files.
    pub bytes: u64,
}

/// The in-memory filesystem.
///
/// The inode table is a persistent radix trie ([`PVec`]): `clone()` and
/// [`Fs::snapshot`] are O(1), and divergent copies share structure.
#[derive(Debug, Clone)]
pub struct Fs {
    inodes: PVec<Inode>,
    next_ino: Ino,
    /// Pipe buffers backing `pipe(2)` pairs and named FIFOs.
    pub pipes: PipeTable,
}

/// An O(1) capture of the at-rest filesystem tree: the inode table and the
/// allocation cursor. Pipe buffers are deliberately excluded — they are
/// transient IPC state owned by the kernel's descriptor layer, not part of
/// the durable tree (and [`Fs::content_digest`] never sees them).
#[derive(Debug, Clone)]
pub struct FsSnapshot {
    inodes: PVec<Inode>,
    next_ino: Ino,
}

impl Default for Fs {
    fn default() -> Self {
        Self::new(Timeval::default())
    }
}

impl Fs {
    /// Creates a filesystem containing only the root directory, owned by
    /// root with mode 755.
    #[must_use]
    pub fn new(now: Timeval) -> Fs {
        let mut inodes = PVec::new();
        let mut root_map = BTreeMap::new();
        root_map.insert(b".".to_vec(), ROOT_INO);
        root_map.insert(b"..".to_vec(), ROOT_INO);
        let mut root = Inode::new(InodeKind::Directory(root_map), 0o755, Cred::ROOT, now);
        root.meta.nlink = 2;
        inodes.insert(ROOT_INO, root);
        Fs {
            inodes,
            next_ino: ROOT_INO + 1,
            pipes: PipeTable::new(),
        }
    }

    // ---- snapshot & restore -------------------------------------------

    /// Captures the filesystem tree in O(1): the persistent inode trie is
    /// shared, not copied, and later mutations on either side copy only
    /// the paths they touch.
    #[must_use]
    pub fn snapshot(&self) -> FsSnapshot {
        FsSnapshot {
            inodes: self.inodes.clone(),
            next_ino: self.next_ino,
        }
    }

    /// Rewinds the tree to `snap`. Pipe buffers are untouched (see
    /// [`FsSnapshot`]); callers owning kernel state reconcile open-file
    /// references themselves.
    pub fn restore(&mut self, snap: &FsSnapshot) {
        self.inodes = snap.inodes.clone();
        self.next_ino = snap.next_ino;
    }

    /// Rewinds the tree to `snap` while the surrounding world keeps
    /// running — the transactional-abort path, where open descriptors
    /// outlive the rewind. `live_refs` maps ino → number of open-file
    /// references held *now*; every restored inode's `open_refs` is
    /// re-derived from it (capture-time counts are stale on both sides),
    /// and unlinked inodes nobody references anymore are reclaimed.
    ///
    /// Unlike [`Self::restore`], the ino allocator is *not* rewound:
    /// descriptors left dangling by the rewind must never alias a file
    /// created afterwards, so inos stay unique for the kernel's lifetime.
    ///
    /// O(inodes), unlike the O(1) capture: reconciliation must visit the
    /// whole restored tree.
    pub fn restore_reconciled(&mut self, snap: &FsSnapshot, live_refs: &BTreeMap<Ino, u32>) {
        let live_next = self.next_ino;
        self.restore(snap);
        self.next_ino = live_next;
        for ino in 0..live_next {
            let Some(n) = self.inodes.get(ino) else {
                continue;
            };
            let want = live_refs.get(&ino).copied().unwrap_or(0);
            if n.meta.nlink == 0 && want == 0 {
                self.inodes.remove(ino);
            } else if n.open_refs != want {
                self.inodes.get_mut(ino).expect("just seen").open_refs = want;
            }
        }
    }

    // ---- inode access -------------------------------------------------

    /// Borrows an inode. A stale number is the caller's bug surfaced as
    /// `ENOENT`, matching what a kernel returns for a vanished file.
    pub fn get(&self, ino: Ino) -> Result<&Inode, Errno> {
        self.inodes.get(ino).ok_or(Errno::ENOENT)
    }

    /// Mutably borrows an inode.
    pub fn get_mut(&mut self, ino: Ino) -> Result<&mut Inode, Errno> {
        self.inodes.get_mut(ino).ok_or(Errno::ENOENT)
    }

    /// True if the inode is live.
    #[must_use]
    pub fn exists(&self, ino: Ino) -> bool {
        self.inodes.contains(ino)
    }

    fn alloc(&mut self, inode: Inode) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(ino, inode);
        ino
    }

    /// Registers an open reference so unlinked-but-open files survive.
    pub fn incref(&mut self, ino: Ino) {
        if let Some(n) = self.inodes.get_mut(ino) {
            n.open_refs += 1;
        }
    }

    /// Drops an open reference, reclaiming the inode if it is also
    /// link-free.
    pub fn decref(&mut self, ino: Ino) {
        if let Some(n) = self.inodes.get_mut(ino) {
            n.open_refs = n.open_refs.saturating_sub(1);
            if n.open_refs == 0 && n.meta.nlink == 0 {
                self.inodes.remove(ino);
            }
        }
    }

    fn reclaim_if_dead(&mut self, ino: Ino) {
        if let Some(n) = self.inodes.get(ino) {
            if n.meta.nlink == 0 && n.open_refs == 0 {
                self.inodes.remove(ino);
            }
        }
    }

    // ---- resolution ---------------------------------------------------

    /// Resolves `path` relative to the directory `start`, following every
    /// symbolic link (the behaviour of all calls except `lstat`, `readlink`
    /// and the link-creating calls).
    pub fn resolve(&self, start: Ino, pth: &[u8], cred: Cred) -> Result<Resolved, Errno> {
        self.resolve_inner(ROOT_INO, start, pth, cred, true)
    }

    /// Resolves `path` without following a symlink in the final component
    /// (for `lstat`, `readlink`, `unlink`, `rename` sources, ...).
    pub fn resolve_nofollow(&self, start: Ino, pth: &[u8], cred: Cred) -> Result<Resolved, Errno> {
        self.resolve_inner(ROOT_INO, start, pth, cred, false)
    }

    /// [`Self::resolve`] with an explicit root directory, for `chroot`ed
    /// processes: absolute paths (and absolute symlink targets) restart at
    /// `root` instead of the global root.
    pub fn resolve_rooted(
        &self,
        root: Ino,
        start: Ino,
        pth: &[u8],
        cred: Cred,
    ) -> Result<Resolved, Errno> {
        self.resolve_inner(root, start, pth, cred, true)
    }

    /// [`Self::resolve_nofollow`] with an explicit root directory.
    pub fn resolve_nofollow_rooted(
        &self,
        root: Ino,
        start: Ino,
        pth: &[u8],
        cred: Cred,
    ) -> Result<Resolved, Errno> {
        self.resolve_inner(root, start, pth, cred, false)
    }

    fn resolve_inner(
        &self,
        root: Ino,
        start: Ino,
        pth: &[u8],
        cred: Cred,
        follow_last: bool,
    ) -> Result<Resolved, Errno> {
        path::validate(pth)?;
        let trailing_slash = pth.len() > 1 && pth.ends_with(b"/");
        let mut cur = if is_absolute(pth) { root } else { start };
        let mut stack: Vec<Vec<u8>> = split_components(pth)
            .into_iter()
            .rev()
            .map(<[u8]>::to_vec)
            .collect();
        let mut expansions = 0usize;
        while let Some(comp) = stack.pop() {
            let node = self.get(cur)?;
            let dir = node.as_dir().ok_or(Errno::ENOTDIR)?;
            if !node.permits(cred, 1) {
                return Err(Errno::EACCES);
            }
            // A chroot jail holds at its own root: ".." there is itself.
            let next = if comp == b".." && cur == root {
                cur
            } else {
                *dir.get(comp.as_slice()).ok_or(Errno::ENOENT)?
            };
            let next_node = self.get(next)?;
            let is_last = stack.is_empty();
            if let InodeKind::Symlink(target) = &next_node.kind {
                if !is_last || follow_last || trailing_slash {
                    expansions += 1;
                    if expansions > MAXSYMLINKS {
                        return Err(Errno::ELOOP);
                    }
                    if is_absolute(target) {
                        cur = root;
                    }
                    for c in split_components(target).into_iter().rev() {
                        stack.push(c.to_vec());
                    }
                    continue;
                }
            }
            cur = next;
        }
        if trailing_slash && !matches!(self.get(cur)?.kind, InodeKind::Directory(_)) {
            return Err(Errno::ENOTDIR);
        }
        Ok(Resolved { ino: cur })
    }

    /// Resolves the *directory part* of `path`, returning the directory's
    /// inode and the final component, for creation and removal operations.
    pub fn resolve_parent(
        &self,
        start: Ino,
        pth: &[u8],
        cred: Cred,
    ) -> Result<(Ino, Vec<u8>), Errno> {
        self.resolve_parent_rooted(ROOT_INO, start, pth, cred)
    }

    /// [`Self::resolve_parent`] with an explicit root directory.
    pub fn resolve_parent_rooted(
        &self,
        root: Ino,
        start: Ino,
        pth: &[u8],
        cred: Cred,
    ) -> Result<(Ino, Vec<u8>), Errno> {
        path::validate(pth)?;
        let (dir_part, base) = path::split_dir_base(pth);
        let dir = self.resolve_rooted(root, start, &dir_part, cred)?.ino;
        if !matches!(self.get(dir)?.kind, InodeKind::Directory(_)) {
            return Err(Errno::ENOTDIR);
        }
        Ok((dir, base))
    }

    fn check_create(&self, dir: Ino, name: &[u8], cred: Cred) -> Result<(), Errno> {
        if name.is_empty() || name == b"." || name == b".." {
            return Err(Errno::EEXIST);
        }
        if name.len() > ia_abi::types::MAXNAMLEN {
            return Err(Errno::ENAMETOOLONG);
        }
        let d = self.get(dir)?;
        let map = d.as_dir().ok_or(Errno::ENOTDIR)?;
        if map.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        if !d.permits(cred, 2) {
            return Err(Errno::EACCES);
        }
        Ok(())
    }

    fn insert_entry(&mut self, dir: Ino, name: &[u8], ino: Ino, now: Timeval) {
        let d = self.inodes.get_mut(dir).expect("checked");
        d.meta.mtime = now;
        d.meta.ctime = now;
        d.as_dir_mut().expect("checked").insert(name.to_vec(), ino);
    }

    // ---- creation -----------------------------------------------------

    /// Creates an empty regular file. Returns its inode.
    pub fn create_file(
        &mut self,
        dir: Ino,
        name: &[u8],
        perm: u32,
        cred: Cred,
        now: Timeval,
    ) -> Result<Ino, Errno> {
        self.check_create(dir, name, cred)?;
        let ino = self.alloc(Inode::new(
            InodeKind::Regular(FileContent::new()),
            perm,
            cred,
            now,
        ));
        self.insert_entry(dir, name, ino, now);
        Ok(ino)
    }

    /// Creates a directory.
    pub fn mkdir(
        &mut self,
        dir: Ino,
        name: &[u8],
        perm: u32,
        cred: Cred,
        now: Timeval,
    ) -> Result<Ino, Errno> {
        self.check_create(dir, name, cred)?;
        let mut map = BTreeMap::new();
        let ino = self.alloc(Inode::new(
            InodeKind::Directory(map.clone()),
            perm,
            cred,
            now,
        ));
        map.insert(b".".to_vec(), ino);
        map.insert(b"..".to_vec(), dir);
        self.inodes.get_mut(ino).expect("fresh").kind = InodeKind::Directory(map);
        self.insert_entry(dir, name, ino, now);
        // The child's ".." is a new link to the parent.
        self.inodes.get_mut(dir).expect("checked").meta.nlink += 1;
        Ok(ino)
    }

    /// Creates a symbolic link holding `target`.
    pub fn symlink(
        &mut self,
        dir: Ino,
        name: &[u8],
        target: &[u8],
        cred: Cred,
        now: Timeval,
    ) -> Result<Ino, Errno> {
        self.check_create(dir, name, cred)?;
        let ino = self.alloc(Inode::new(
            InodeKind::Symlink(target.to_vec()),
            0o777,
            cred,
            now,
        ));
        self.insert_entry(dir, name, ino, now);
        Ok(ino)
    }

    /// Creates a character-device node (superuser only, as `mknod(2)`).
    pub fn mknod_chardev(
        &mut self,
        dir: Ino,
        name: &[u8],
        dev: u32,
        perm: u32,
        cred: Cred,
        now: Timeval,
    ) -> Result<Ino, Errno> {
        if !cred.is_root() {
            return Err(Errno::EPERM);
        }
        self.check_create(dir, name, cred)?;
        let ino = self.alloc(Inode::new(InodeKind::CharDevice(dev), perm, cred, now));
        self.insert_entry(dir, name, ino, now);
        Ok(ino)
    }

    /// Creates a named pipe.
    pub fn mkfifo(
        &mut self,
        dir: Ino,
        name: &[u8],
        perm: u32,
        cred: Cred,
        now: Timeval,
    ) -> Result<Ino, Errno> {
        self.check_create(dir, name, cred)?;
        let ino = self.alloc(Inode::new(InodeKind::Fifo(None), perm, cred, now));
        self.insert_entry(dir, name, ino, now);
        Ok(ino)
    }

    /// Creates a socket node (for `bind` of unix-domain-style sockets).
    pub fn mksock(
        &mut self,
        dir: Ino,
        name: &[u8],
        perm: u32,
        cred: Cred,
        now: Timeval,
    ) -> Result<Ino, Errno> {
        self.check_create(dir, name, cred)?;
        let ino = self.alloc(Inode::new(InodeKind::Socket, perm, cred, now));
        self.insert_entry(dir, name, ino, now);
        Ok(ino)
    }

    /// Creates an additional hard link `name` in `dir` to the existing
    /// inode `target`. Directories cannot be multiply linked.
    pub fn link(
        &mut self,
        dir: Ino,
        name: &[u8],
        target: Ino,
        cred: Cred,
        now: Timeval,
    ) -> Result<(), Errno> {
        if matches!(self.get(target)?.kind, InodeKind::Directory(_)) {
            return Err(Errno::EPERM);
        }
        self.check_create(dir, name, cred)?;
        self.insert_entry(dir, name, target, now);
        let t = self.inodes.get_mut(target).expect("checked");
        t.meta.nlink += 1;
        t.meta.ctime = now;
        Ok(())
    }

    // ---- removal ------------------------------------------------------

    /// Removes the non-directory entry `name` from `dir`.
    pub fn unlink(&mut self, dir: Ino, name: &[u8], cred: Cred, now: Timeval) -> Result<(), Errno> {
        if name == b"." || name == b".." || name.is_empty() {
            return Err(Errno::EINVAL);
        }
        let d = self.get(dir)?;
        let map = d.as_dir().ok_or(Errno::ENOTDIR)?;
        let target = *map.get(name).ok_or(Errno::ENOENT)?;
        if !d.permits(cred, 2) {
            return Err(Errno::EACCES);
        }
        if matches!(self.get(target)?.kind, InodeKind::Directory(_)) {
            return Err(Errno::EPERM);
        }
        let d = self.inodes.get_mut(dir).expect("checked");
        d.as_dir_mut().expect("checked").remove(name);
        d.meta.mtime = now;
        d.meta.ctime = now;
        let t = self.inodes.get_mut(target).expect("checked");
        t.meta.nlink = t.meta.nlink.saturating_sub(1);
        t.meta.ctime = now;
        self.reclaim_if_dead(target);
        Ok(())
    }

    /// Removes the empty directory `name` from `dir`.
    pub fn rmdir(&mut self, dir: Ino, name: &[u8], cred: Cred, now: Timeval) -> Result<(), Errno> {
        if name == b"." {
            return Err(Errno::EINVAL);
        }
        if name == b".." || name.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        let d = self.get(dir)?;
        let map = d.as_dir().ok_or(Errno::ENOTDIR)?;
        let target = *map.get(name).ok_or(Errno::ENOENT)?;
        if target == ROOT_INO {
            return Err(Errno::EBUSY);
        }
        if !d.permits(cred, 2) {
            return Err(Errno::EACCES);
        }
        let t = self.get(target)?;
        let tmap = t.as_dir().ok_or(Errno::ENOTDIR)?;
        if tmap.keys().any(|k| k != b"." && k != b"..") {
            return Err(Errno::ENOTEMPTY);
        }
        let d = self.inodes.get_mut(dir).expect("checked");
        d.as_dir_mut().expect("checked").remove(name);
        d.meta.mtime = now;
        d.meta.ctime = now;
        d.meta.nlink = d.meta.nlink.saturating_sub(1); // child's ".." is gone
        let t = self.inodes.get_mut(target).expect("checked");
        t.meta.nlink = 0;
        self.reclaim_if_dead(target);
        Ok(())
    }

    // ---- rename -------------------------------------------------------

    /// True if `anc` is `node` itself or an ancestor of `node`.
    fn is_same_or_ancestor(&self, anc: Ino, node: Ino) -> Result<bool, Errno> {
        let mut cur = node;
        loop {
            if cur == anc {
                return Ok(true);
            }
            let parent = match self.get(cur)?.as_dir() {
                Some(map) => *map.get(b"..".as_slice()).unwrap_or(&cur),
                None => return Ok(false),
            };
            if parent == cur {
                return Ok(false); // reached the root
            }
            cur = parent;
        }
    }

    /// Renames `(from_dir, from_name)` to `(to_dir, to_name)` with 4.3BSD
    /// semantics: an existing target of compatible type is replaced
    /// atomically; a directory cannot be moved under itself.
    pub fn rename(
        &mut self,
        from_dir: Ino,
        from_name: &[u8],
        to_dir: Ino,
        to_name: &[u8],
        cred: Cred,
        now: Timeval,
    ) -> Result<(), Errno> {
        for n in [from_name, to_name] {
            if n.is_empty() || n == b"." || n == b".." {
                return Err(Errno::EINVAL);
            }
        }
        let src = {
            let d = self.get(from_dir)?;
            let map = d.as_dir().ok_or(Errno::ENOTDIR)?;
            if !d.permits(cred, 2) {
                return Err(Errno::EACCES);
            }
            *map.get(from_name).ok_or(Errno::ENOENT)?
        };
        {
            let d = self.get(to_dir)?;
            d.as_dir().ok_or(Errno::ENOTDIR)?;
            if !d.permits(cred, 2) {
                return Err(Errno::EACCES);
            }
        }
        let src_is_dir = matches!(self.get(src)?.kind, InodeKind::Directory(_));
        if src_is_dir && self.is_same_or_ancestor(src, to_dir)? {
            return Err(Errno::EINVAL);
        }
        // Same entry: rename("a", "a") succeeds as a no-op.
        let existing = self
            .get(to_dir)?
            .as_dir()
            .expect("checked")
            .get(to_name)
            .copied();
        if existing == Some(src) {
            return Ok(());
        }
        if let Some(old) = existing {
            let old_is_dir = matches!(self.get(old)?.kind, InodeKind::Directory(_));
            match (src_is_dir, old_is_dir) {
                (true, false) => return Err(Errno::ENOTDIR),
                (false, true) => return Err(Errno::EISDIR),
                (true, true) => self.rmdir(to_dir, to_name, cred, now)?,
                (false, false) => self.unlink(to_dir, to_name, cred, now)?,
            }
        }
        // Detach from the source directory.
        {
            let d = self.inodes.get_mut(from_dir).expect("checked");
            d.as_dir_mut().expect("checked").remove(from_name);
            d.meta.mtime = now;
            d.meta.ctime = now;
        }
        self.insert_entry(to_dir, to_name, src, now);
        if src_is_dir && from_dir != to_dir {
            // Fix the child's ".." and both parents' link counts.
            self.inodes
                .get_mut(src)
                .expect("checked")
                .as_dir_mut()
                .expect("src is dir")
                .insert(b"..".to_vec(), to_dir);
            self.inodes.get_mut(from_dir).expect("checked").meta.nlink -= 1;
            self.inodes.get_mut(to_dir).expect("checked").meta.nlink += 1;
        }
        Ok(())
    }

    // ---- data I/O -----------------------------------------------------

    /// Reads up to `len` bytes at `off` from a regular file.
    pub fn read_at(
        &mut self,
        ino: Ino,
        off: u64,
        len: usize,
        now: Timeval,
    ) -> Result<Vec<u8>, Errno> {
        let n = self.get_mut(ino)?;
        let data = n.as_file().ok_or(Errno::EINVAL)?;
        let out = data.read_at(off as usize, len);
        n.meta.atime = now;
        Ok(out)
    }

    /// Writes `data` at `off` in a regular file, zero-filling any hole.
    pub fn write_at(
        &mut self,
        ino: Ino,
        off: u64,
        data: &[u8],
        now: Timeval,
    ) -> Result<usize, Errno> {
        let n = self.get_mut(ino)?;
        let file = n.as_file_mut().ok_or(Errno::EINVAL)?;
        file.write_at(off as usize, data);
        n.meta.mtime = now;
        n.meta.ctime = now;
        Ok(data.len())
    }

    /// Truncates (or extends with zeros) a regular file to `len` bytes.
    pub fn truncate(&mut self, ino: Ino, len: u64, now: Timeval) -> Result<(), Errno> {
        let n = self.get_mut(ino)?;
        match &mut n.kind {
            InodeKind::Regular(d) => {
                d.resize(len as usize);
                n.meta.mtime = now;
                n.meta.ctime = now;
                Ok(())
            }
            InodeKind::Directory(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    // ---- metadata -----------------------------------------------------

    /// `stat` for an inode.
    pub fn stat(&self, ino: Ino) -> Result<Stat, Errno> {
        Ok(self.get(ino)?.stat(ino))
    }

    /// Changes permission bits. Only the owner or the superuser may.
    pub fn chmod(&mut self, ino: Ino, perm: u32, cred: Cred, now: Timeval) -> Result<(), Errno> {
        let n = self.get_mut(ino)?;
        if !cred.is_root() && cred.uid != n.meta.uid {
            return Err(Errno::EPERM);
        }
        n.meta.perm = perm & 0o7777;
        n.meta.ctime = now;
        Ok(())
    }

    /// Changes ownership. 4.3BSD restricts this to the superuser.
    pub fn chown(
        &mut self,
        ino: Ino,
        uid: u32,
        gid: u32,
        cred: Cred,
        now: Timeval,
    ) -> Result<(), Errno> {
        let n = self.get_mut(ino)?;
        if !cred.is_root() {
            return Err(Errno::EPERM);
        }
        if uid != u32::MAX {
            n.meta.uid = uid;
        }
        if gid != u32::MAX {
            n.meta.gid = gid;
        }
        n.meta.ctime = now;
        Ok(())
    }

    /// Sets access and modification times (`utimes(2)`).
    pub fn utimes(
        &mut self,
        ino: Ino,
        atime: Timeval,
        mtime: Timeval,
        cred: Cred,
        now: Timeval,
    ) -> Result<(), Errno> {
        let n = self.get_mut(ino)?;
        if !cred.is_root() && cred.uid != n.meta.uid {
            return Err(Errno::EPERM);
        }
        n.meta.atime = atime;
        n.meta.mtime = mtime;
        n.meta.ctime = now;
        Ok(())
    }

    /// Reads a symlink's target.
    pub fn readlink(&self, ino: Ino) -> Result<Vec<u8>, Errno> {
        match &self.get(ino)?.kind {
            InodeKind::Symlink(t) => Ok(t.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Lists a directory as `getdirentries` records (including `.`/`..`),
    /// in deterministic byte order.
    pub fn readdir(&self, ino: Ino) -> Result<Vec<DirEntry>, Errno> {
        let map = self.get(ino)?.as_dir().ok_or(Errno::ENOTDIR)?;
        Ok(map
            .iter()
            .map(|(name, &i)| DirEntry::new(i, name.clone()))
            .collect())
    }

    /// Shape counters for tests and tools.
    #[must_use]
    pub fn stats(&self) -> FsStats {
        let mut s = FsStats {
            inodes: self.inodes.len(),
            ..FsStats::default()
        };
        self.inodes.for_each(|n| match &n.kind {
            InodeKind::Regular(d) => {
                s.files += 1;
                s.bytes += d.len() as u64;
            }
            InodeKind::Directory(_) => s.dirs += 1,
            InodeKind::Symlink(_) => s.symlinks += 1,
            _ => {}
        });
        s
    }

    /// A deterministic digest over everything a client can observe in the
    /// tree reachable from the root: paths, node types, permission bits,
    /// ownership, link counts, file contents and symlink targets.
    ///
    /// Timestamps are deliberately excluded — they track the virtual clock,
    /// which advances differently under interposition, so including them
    /// would make every transparency comparison fail vacuously. Unlinked
    /// inodes kept alive only by open descriptors are unreachable by name
    /// and therefore also excluded.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        self.digest_walk(&mut Vec::new(), ROOT_INO, &mut h);
        h
    }

    fn digest_walk(&self, path: &mut Vec<u8>, ino: Ino, h: &mut u64) {
        let Ok(node) = self.get(ino) else { return };
        fnv_mix(h, path);
        fnv_mix(h, &[0]);
        fnv_mix(h, &node.meta.perm.to_le_bytes());
        fnv_mix(h, &node.meta.uid.to_le_bytes());
        fnv_mix(h, &node.meta.gid.to_le_bytes());
        fnv_mix(h, &node.meta.nlink.to_le_bytes());
        match &node.kind {
            InodeKind::Regular(data) => {
                fnv_mix(h, b"F");
                fnv_mix(h, &(data.len() as u64).to_le_bytes());
                // Stream chunk by chunk: FNV-1a folds byte-at-a-time, so
                // this hashes identically to a flat byte walk regardless
                // of where the chunk boundaries fall.
                for chunk in data.chunks() {
                    fnv_mix(h, chunk);
                }
            }
            InodeKind::Directory(entries) => {
                fnv_mix(h, b"D");
                // BTreeMap iteration is already deterministic byte order.
                for (name, &child) in entries {
                    if name.as_slice() == b"." || name.as_slice() == b".." {
                        continue;
                    }
                    let saved = path.len();
                    path.push(b'/');
                    path.extend_from_slice(name);
                    self.digest_walk(path, child, h);
                    path.truncate(saved);
                }
            }
            InodeKind::Symlink(target) => {
                fnv_mix(h, b"L");
                fnv_mix(h, target);
            }
            InodeKind::CharDevice(dev) => {
                fnv_mix(h, b"C");
                fnv_mix(h, &dev.to_le_bytes());
            }
            InodeKind::Fifo(_) => fnv_mix(h, b"P"),
            InodeKind::Socket => fnv_mix(h, b"S"),
        }
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a 64-bit state.
fn fnv_mix(h: &mut u64, bytes: &[u8]) {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: Timeval = Timeval { sec: 500, usec: 0 };
    const U: Cred = Cred { uid: 100, gid: 100 };

    fn fs() -> Fs {
        Fs::new(NOW)
    }

    fn mk(fs: &mut Fs, p: &[u8]) -> Ino {
        let (d, b) = fs.resolve_parent(ROOT_INO, p, Cred::ROOT).unwrap();
        fs.create_file(d, &b, 0o644, Cred::ROOT, NOW).unwrap()
    }

    fn mkd(fs: &mut Fs, p: &[u8]) -> Ino {
        let (d, b) = fs.resolve_parent(ROOT_INO, p, Cred::ROOT).unwrap();
        fs.mkdir(d, &b, 0o755, Cred::ROOT, NOW).unwrap()
    }

    #[test]
    fn root_resolves_to_itself() {
        let f = fs();
        assert_eq!(f.resolve(ROOT_INO, b"/", Cred::ROOT).unwrap().ino, ROOT_INO);
        assert_eq!(
            f.resolve(ROOT_INO, b"/.", Cred::ROOT).unwrap().ino,
            ROOT_INO
        );
        assert_eq!(
            f.resolve(ROOT_INO, b"/..", Cred::ROOT).unwrap().ino,
            ROOT_INO
        );
    }

    #[test]
    fn create_and_resolve_nested() {
        let mut f = fs();
        mkd(&mut f, b"/usr");
        mkd(&mut f, b"/usr/bin");
        let file = mk(&mut f, b"/usr/bin/cc");
        assert_eq!(
            f.resolve(ROOT_INO, b"/usr/bin/cc", Cred::ROOT).unwrap().ino,
            file
        );
        assert_eq!(
            f.resolve(ROOT_INO, b"/usr/./bin/../bin/cc", Cred::ROOT)
                .unwrap()
                .ino,
            file
        );
    }

    #[test]
    fn relative_resolution_from_cwd() {
        let mut f = fs();
        let usr = mkd(&mut f, b"/usr");
        let file = mk(&mut f, b"/usr/motd");
        assert_eq!(f.resolve(usr, b"motd", Cred::ROOT).unwrap().ino, file);
        assert_eq!(
            f.resolve(usr, b"../usr/motd", Cred::ROOT).unwrap().ino,
            file
        );
    }

    #[test]
    fn missing_component_is_enoent_and_nondir_is_enotdir() {
        let mut f = fs();
        mk(&mut f, b"/file");
        assert_eq!(
            f.resolve(ROOT_INO, b"/nope", Cred::ROOT),
            Err(Errno::ENOENT)
        );
        assert_eq!(
            f.resolve(ROOT_INO, b"/file/sub", Cred::ROOT),
            Err(Errno::ENOTDIR)
        );
        assert_eq!(
            f.resolve(ROOT_INO, b"/file/", Cred::ROOT),
            Err(Errno::ENOTDIR)
        );
    }

    #[test]
    fn symlinks_follow_and_nofollow() {
        let mut f = fs();
        let file = mk(&mut f, b"/real");
        let link = f
            .symlink(ROOT_INO, b"ln", b"/real", Cred::ROOT, NOW)
            .unwrap();
        assert_eq!(f.resolve(ROOT_INO, b"/ln", Cred::ROOT).unwrap().ino, file);
        assert_eq!(
            f.resolve_nofollow(ROOT_INO, b"/ln", Cred::ROOT)
                .unwrap()
                .ino,
            link
        );
    }

    #[test]
    fn relative_symlink_resolves_from_its_directory() {
        let mut f = fs();
        mkd(&mut f, b"/a");
        let t = mk(&mut f, b"/a/target");
        let (d, b) = f.resolve_parent(ROOT_INO, b"/a/ln", Cred::ROOT).unwrap();
        f.symlink(d, &b, b"target", Cred::ROOT, NOW).unwrap();
        assert_eq!(f.resolve(ROOT_INO, b"/a/ln", Cred::ROOT).unwrap().ino, t);
    }

    #[test]
    fn symlink_loop_is_eloop() {
        let mut f = fs();
        f.symlink(ROOT_INO, b"x", b"/y", Cred::ROOT, NOW).unwrap();
        f.symlink(ROOT_INO, b"y", b"/x", Cred::ROOT, NOW).unwrap();
        assert_eq!(f.resolve(ROOT_INO, b"/x", Cred::ROOT), Err(Errno::ELOOP));
    }

    #[test]
    fn symlink_chain_within_limit_resolves() {
        let mut f = fs();
        let t = mk(&mut f, b"/t");
        let mut prev = b"/t".to_vec();
        for i in 0..MAXSYMLINKS {
            let name = format!("l{i}");
            f.symlink(ROOT_INO, name.as_bytes(), &prev, Cred::ROOT, NOW)
                .unwrap();
            prev = format!("/l{i}").into_bytes();
        }
        assert_eq!(f.resolve(ROOT_INO, &prev, Cred::ROOT).unwrap().ino, t);
    }

    #[test]
    fn search_permission_enforced() {
        let mut f = fs();
        let d = mkd(&mut f, b"/locked");
        mk(&mut f, b"/locked/secret");
        f.chmod(d, 0o700, Cred::ROOT, NOW).unwrap();
        assert_eq!(
            f.resolve(ROOT_INO, b"/locked/secret", U),
            Err(Errno::EACCES)
        );
        assert!(f.resolve(ROOT_INO, b"/locked/secret", Cred::ROOT).is_ok());
    }

    #[test]
    fn hard_links_share_data_and_count() {
        let mut f = fs();
        let ino = mk(&mut f, b"/a");
        f.write_at(ino, 0, b"shared", NOW).unwrap();
        f.link(ROOT_INO, b"b", ino, Cred::ROOT, NOW).unwrap();
        assert_eq!(f.get(ino).unwrap().meta.nlink, 2);
        let via_b = f.resolve(ROOT_INO, b"/b", Cred::ROOT).unwrap().ino;
        assert_eq!(via_b, ino);
        f.unlink(ROOT_INO, b"a", Cred::ROOT, NOW).unwrap();
        assert_eq!(f.get(ino).unwrap().meta.nlink, 1);
        assert_eq!(f.read_at(ino, 0, 16, NOW).unwrap(), b"shared");
        f.unlink(ROOT_INO, b"b", Cred::ROOT, NOW).unwrap();
        assert!(!f.exists(ino), "reclaimed at zero links");
    }

    #[test]
    fn unlinked_but_open_file_survives() {
        let mut f = fs();
        let ino = mk(&mut f, b"/tmpfile");
        f.write_at(ino, 0, b"data", NOW).unwrap();
        f.incref(ino);
        f.unlink(ROOT_INO, b"tmpfile", Cred::ROOT, NOW).unwrap();
        assert!(f.exists(ino), "open reference keeps it alive");
        assert_eq!(f.read_at(ino, 0, 4, NOW).unwrap(), b"data");
        f.decref(ino);
        assert!(!f.exists(ino));
    }

    #[test]
    fn link_to_directory_rejected() {
        let mut f = fs();
        let d = mkd(&mut f, b"/d");
        assert_eq!(
            f.link(ROOT_INO, b"d2", d, Cred::ROOT, NOW),
            Err(Errno::EPERM)
        );
    }

    #[test]
    fn unlink_directory_rejected() {
        let mut f = fs();
        mkd(&mut f, b"/d");
        assert_eq!(f.unlink(ROOT_INO, b"d", Cred::ROOT, NOW), Err(Errno::EPERM));
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut f = fs();
        mkd(&mut f, b"/d");
        mk(&mut f, b"/d/f");
        assert_eq!(
            f.rmdir(ROOT_INO, b"d", Cred::ROOT, NOW),
            Err(Errno::ENOTEMPTY)
        );
        f.unlink(
            f.resolve(ROOT_INO, b"/d", Cred::ROOT).unwrap().ino,
            b"f",
            Cred::ROOT,
            NOW,
        )
        .unwrap();
        assert!(f.rmdir(ROOT_INO, b"d", Cred::ROOT, NOW).is_ok());
        assert_eq!(f.resolve(ROOT_INO, b"/d", Cred::ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn mkdir_updates_parent_nlink() {
        let mut f = fs();
        let before = f.get(ROOT_INO).unwrap().meta.nlink;
        mkd(&mut f, b"/sub");
        assert_eq!(f.get(ROOT_INO).unwrap().meta.nlink, before + 1);
        f.rmdir(ROOT_INO, b"sub", Cred::ROOT, NOW).unwrap();
        assert_eq!(f.get(ROOT_INO).unwrap().meta.nlink, before);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut f = fs();
        let a = mk(&mut f, b"/a");
        mk(&mut f, b"/b");
        f.rename(ROOT_INO, b"a", ROOT_INO, b"b", Cred::ROOT, NOW)
            .unwrap();
        assert_eq!(f.resolve(ROOT_INO, b"/b", Cred::ROOT).unwrap().ino, a);
        assert_eq!(f.resolve(ROOT_INO, b"/a", Cred::ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_directory_updates_dotdot() {
        let mut f = fs();
        let d1 = mkd(&mut f, b"/d1");
        let d2 = mkd(&mut f, b"/d2");
        let sub = mkd(&mut f, b"/d1/sub");
        f.rename(d1, b"sub", d2, b"sub", Cred::ROOT, NOW).unwrap();
        assert_eq!(
            f.resolve(ROOT_INO, b"/d2/sub", Cred::ROOT).unwrap().ino,
            sub
        );
        assert_eq!(
            f.resolve(ROOT_INO, b"/d2/sub/..", Cred::ROOT).unwrap().ino,
            d2
        );
        // nlink moved from d1 to d2.
        assert_eq!(f.get(d1).unwrap().meta.nlink, 2);
        assert_eq!(f.get(d2).unwrap().meta.nlink, 3);
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let mut f = fs();
        let d = mkd(&mut f, b"/d");
        let sub = mkd(&mut f, b"/d/sub");
        assert_eq!(
            f.rename(ROOT_INO, b"d", sub, b"oops", Cred::ROOT, NOW),
            Err(Errno::EINVAL)
        );
        assert_eq!(
            f.rename(ROOT_INO, b"d", d, b"self", Cred::ROOT, NOW),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn rename_type_mismatches() {
        let mut f = fs();
        mk(&mut f, b"/file");
        mkd(&mut f, b"/dir");
        assert_eq!(
            f.rename(ROOT_INO, b"file", ROOT_INO, b"dir", Cred::ROOT, NOW),
            Err(Errno::EISDIR)
        );
        assert_eq!(
            f.rename(ROOT_INO, b"dir", ROOT_INO, b"file", Cred::ROOT, NOW),
            Err(Errno::ENOTDIR)
        );
    }

    #[test]
    fn rename_onto_self_is_noop() {
        let mut f = fs();
        let a = mk(&mut f, b"/a");
        f.rename(ROOT_INO, b"a", ROOT_INO, b"a", Cred::ROOT, NOW)
            .unwrap();
        assert_eq!(f.resolve(ROOT_INO, b"/a", Cred::ROOT).unwrap().ino, a);
    }

    #[test]
    fn rename_dir_onto_empty_dir_replaces() {
        let mut f = fs();
        let d1 = mkd(&mut f, b"/d1");
        mkd(&mut f, b"/d2");
        f.rename(ROOT_INO, b"d1", ROOT_INO, b"d2", Cred::ROOT, NOW)
            .unwrap();
        assert_eq!(f.resolve(ROOT_INO, b"/d2", Cred::ROOT).unwrap().ino, d1);
    }

    #[test]
    fn write_extends_and_zero_fills() {
        let mut f = fs();
        let ino = mk(&mut f, b"/f");
        f.write_at(ino, 4, b"xy", NOW).unwrap();
        assert_eq!(f.read_at(ino, 0, 16, NOW).unwrap(), b"\0\0\0\0xy");
        f.write_at(ino, 0, b"AB", NOW).unwrap();
        assert_eq!(f.read_at(ino, 0, 16, NOW).unwrap(), b"AB\0\0xy");
    }

    #[test]
    fn read_past_eof_is_empty() {
        let mut f = fs();
        let ino = mk(&mut f, b"/f");
        f.write_at(ino, 0, b"abc", NOW).unwrap();
        assert!(f.read_at(ino, 10, 5, NOW).unwrap().is_empty());
        assert_eq!(f.read_at(ino, 2, 5, NOW).unwrap(), b"c");
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut f = fs();
        let ino = mk(&mut f, b"/f");
        f.write_at(ino, 0, b"hello world", NOW).unwrap();
        f.truncate(ino, 5, NOW).unwrap();
        assert_eq!(f.read_at(ino, 0, 64, NOW).unwrap(), b"hello");
        f.truncate(ino, 8, NOW).unwrap();
        assert_eq!(f.read_at(ino, 0, 64, NOW).unwrap(), b"hello\0\0\0");
    }

    #[test]
    fn chmod_chown_permission_rules() {
        let mut f = fs();
        let ino = mk(&mut f, b"/f");
        f.chown(ino, U.uid, U.gid, Cred::ROOT, NOW).unwrap();
        assert!(f.chmod(ino, 0o600, U, NOW).is_ok(), "owner may chmod");
        let other = Cred::new(200, 200);
        assert_eq!(f.chmod(ino, 0o777, other, NOW), Err(Errno::EPERM));
        assert_eq!(f.chown(ino, 1, 1, U, NOW), Err(Errno::EPERM));
    }

    #[test]
    fn readdir_is_sorted_and_includes_dots() {
        let mut f = fs();
        mk(&mut f, b"/zeta");
        mk(&mut f, b"/alpha");
        let names: Vec<Vec<u8>> = f
            .readdir(ROOT_INO)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(
            names,
            vec![
                b".".to_vec(),
                b"..".to_vec(),
                b"alpha".to_vec(),
                b"zeta".to_vec()
            ]
        );
    }

    #[test]
    fn create_in_unwritable_dir_denied() {
        let mut f = fs();
        let d = mkd(&mut f, b"/ro");
        f.chmod(d, 0o555, Cred::ROOT, NOW).unwrap();
        assert_eq!(f.create_file(d, b"f", 0o644, U, NOW), Err(Errno::EACCES));
    }

    #[test]
    fn stats_counts_shapes() {
        let mut f = fs();
        mkd(&mut f, b"/d");
        let ino = mk(&mut f, b"/f");
        f.write_at(ino, 0, b"1234", NOW).unwrap();
        f.symlink(ROOT_INO, b"l", b"/f", Cred::ROOT, NOW).unwrap();
        let s = f.stats();
        assert_eq!(s.dirs, 2);
        assert_eq!(s.files, 1);
        assert_eq!(s.symlinks, 1);
        assert_eq!(s.bytes, 4);
    }

    #[test]
    fn content_digest_sees_bytes_but_not_times() {
        let mut a = fs();
        let mut b = fs();
        for f in [&mut a, &mut b] {
            mkd(f, b"/d");
            let ino = mk(f, b"/d/f");
            f.write_at(ino, 0, b"hello", NOW).unwrap();
        }
        assert_eq!(a.content_digest(), b.content_digest());

        // Touching only times leaves the digest fixed...
        let ino = a.resolve(ROOT_INO, b"/d/f", Cred::ROOT).unwrap().ino;
        let later = Timeval { sec: 900, usec: 7 };
        a.utimes(ino, later, later, Cred::ROOT, later).unwrap();
        assert_eq!(a.content_digest(), b.content_digest());

        // ...but changing one byte of content does not.
        a.write_at(ino, 0, b"jello", later).unwrap();
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn snapshot_restore_rewinds_tree() {
        let mut f = fs();
        mkd(&mut f, b"/d");
        let ino = mk(&mut f, b"/d/f");
        f.write_at(ino, 0, b"original", NOW).unwrap();
        let digest = f.content_digest();
        let snap = f.snapshot();

        // Diverge: mutate data, metadata and the namespace.
        f.write_at(ino, 0, b"CHANGED!", NOW).unwrap();
        mk(&mut f, b"/extra");
        f.unlink(ROOT_INO, b"extra", Cred::ROOT, NOW).unwrap();
        mkd(&mut f, b"/d2");
        f.chmod(ino, 0o600, Cred::ROOT, NOW).unwrap();
        assert_ne!(f.content_digest(), digest);

        f.restore(&snap);
        assert_eq!(f.content_digest(), digest);
        assert_eq!(f.read_at(ino, 0, 64, NOW).unwrap(), b"original");
        assert_eq!(f.resolve(ROOT_INO, b"/d2", Cred::ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn snapshot_never_reuses_inos_after_restore() {
        let mut f = fs();
        let snap = f.snapshot();
        let a = mk(&mut f, b"/a");
        f.restore(&snap);
        let b = mk(&mut f, b"/b");
        // next_ino rewinds with the tree, so numbering is reproducible.
        assert_eq!(a, b);
    }

    #[test]
    fn content_digest_hashes_through_chunk_boundaries() {
        // A file written in awkward pieces must digest identically to the
        // same bytes written in one flat stroke (satellite: the digest
        // streams the logical byte sequence, not the chunk layout).
        let mut pattern = Vec::new();
        for i in 0..3 * crate::pstore::CHUNK_SIZE + 17 {
            pattern.push((i % 251) as u8);
        }

        let mut flat = fs();
        let ino = mk(&mut flat, b"/f");
        flat.write_at(ino, 0, &pattern, NOW).unwrap();

        let mut pieced = fs();
        let ino2 = mk(&mut pieced, b"/f");
        // Write back-to-front in uneven spans so chunks are created by
        // hole-filling, then overwritten.
        let mid = pattern.len() / 2;
        pieced
            .write_at(ino2, mid as u64, &pattern[mid..], NOW)
            .unwrap();
        for (i, piece) in pattern[..mid].chunks(997).enumerate() {
            pieced.write_at(ino2, (i * 997) as u64, piece, NOW).unwrap();
        }
        assert_eq!(
            pieced.read_at(ino2, 0, pattern.len(), NOW).unwrap(),
            pattern
        );
        assert_eq!(flat.content_digest(), pieced.content_digest());

        // And the digest matches what a flat byte walk would produce: an
        // Fs whose file was truncated then rewritten contiguously.
        let mut rewritten = fs();
        let ino3 = mk(&mut rewritten, b"/f");
        rewritten.write_at(ino3, 0, &[0xAA; 5], NOW).unwrap();
        rewritten.truncate(ino3, 0, NOW).unwrap();
        rewritten.write_at(ino3, 0, &pattern, NOW).unwrap();
        assert_eq!(flat.content_digest(), rewritten.content_digest());
    }

    #[test]
    fn content_digest_sees_names_modes_and_links() {
        let mut a = fs();
        let base = a.content_digest();

        let ino = mk(&mut a, b"/f");
        let after_create = a.content_digest();
        assert_ne!(base, after_create);

        a.chmod(ino, 0o600, Cred::ROOT, NOW).unwrap();
        let after_chmod = a.content_digest();
        assert_ne!(after_create, after_chmod);

        a.link(ROOT_INO, b"g", ino, Cred::ROOT, NOW).unwrap();
        let after_link = a.content_digest();
        assert_ne!(after_chmod, after_link);

        a.unlink(ROOT_INO, b"g", Cred::ROOT, NOW).unwrap();
        assert_eq!(a.content_digest(), after_chmod);
    }
}
