//! The paper's four design goals (§2.1) and headline results (§3), as one
//! executable checklist.

use ia_bench::{table_3_1, table_3_2, table_3_3};

/// Goal 3 — appropriate code size: "the amount of new code necessary to
/// implement an agent using the toolkit should only be proportional to the
/// new functionality to be implemented by the agent — not to the size of
/// the system interface."
#[test]
fn goal_appropriate_code_size() {
    let rows = table_3_1();
    let timex = rows.iter().find(|r| r.name == "timex").unwrap();
    let trace = rows.iter().find(|r| r.name == "trace").unwrap();
    let union = rows.iter().find(|r| r.name == "union").unwrap();

    // timex: two routines' worth of code against a toolkit 20x larger.
    assert!(timex.toolkit_statements >= 10 * timex.agent_statements);
    // trace is proportional to the interface; timex is not.
    assert!(trace.agent_statements >= 5 * timex.agent_statements);
    // union changes ~40 calls' behaviour yet stays smaller than trace by
    // leaning on the pathname/directory/descriptor objects.
    assert!(union.agent_statements < trace.agent_statements);
    // union reuses strictly more toolkit than the simple agents.
    assert!(union.toolkit_statements > trace.toolkit_statements);
}

/// Goal 4 — performance, Table 3-2 shape: on a compute-bound application
/// the impact is "practically negligible" for every agent.
#[test]
fn goal_performance_scribe() {
    let rows = table_3_2();
    let base = rows[0].seconds;
    assert!((140.0..165.0).contains(&base), "paper: 151.7 s, got {base}");
    for r in &rows[1..] {
        assert!(
            r.slowdown_pct < 8.0,
            "{}: {}% should be negligible",
            r.agent,
            r.slowdown_pct
        );
    }
    // Ordering: timex < trace < union.
    assert!(rows[1].slowdown_pct < rows[2].slowdown_pct);
    assert!(rows[2].slowdown_pct < rows[3].slowdown_pct);
}

/// Goal 4 — performance, Table 3-3 shape: on a syscall-bound application
/// the impact is significant, with timex < union < trace.
#[test]
fn goal_performance_make8() {
    let rows = table_3_3();
    let base = rows[0].seconds;
    assert!((14.0..18.5).contains(&base), "paper: 16.0 s, got {base}");
    let timex = rows.iter().find(|r| r.agent == "timex").unwrap();
    let trace = rows.iter().find(|r| r.agent == "trace").unwrap();
    let union = rows.iter().find(|r| r.agent == "union").unwrap();
    assert!(timex.slowdown_pct > 8.0, "fork/exec tax is visible");
    assert!(union.slowdown_pct > timex.slowdown_pct);
    assert!(trace.slowdown_pct > union.slowdown_pct);
    assert!(trace.slowdown_pct > 60.0, "paper: 107%");
}
