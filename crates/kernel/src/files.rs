//! The system-wide open-file table and per-process descriptor tables.
//!
//! As in BSD, three layers separate a process from data: the *descriptor*
//! (a small integer, per process, with a close-on-exec flag), the *open
//! file* (system-wide, holding the offset and flags, shared by `dup` and
//! inherited across `fork`), and the object itself (inode, pipe end,
//! device, socket).

use ia_abi::{Errno, OpenFlags};
use ia_vfs::{Ino, PipeId};

/// Maximum descriptors per process (4.3BSD's `getdtablesize` default).
pub const FD_TABLE_SIZE: usize = 64;

/// Index into the system-wide open-file table.
pub type FileIdx = usize;

/// Socket identifier in the kernel socket table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub u64);

/// What an open file refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A filesystem object (regular file or directory); offset applies.
    Vnode(Ino),
    /// The read end of a pipe (anonymous or FIFO).
    PipeRead(PipeId),
    /// The write end of a pipe.
    PipeWrite(PipeId),
    /// A character device.
    Device(u32),
    /// A socket.
    Socket(SockId),
}

/// A system-wide open-file entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// The referenced object.
    pub kind: FileKind,
    /// Current byte offset (vnodes) or record offset (directories).
    pub offset: u64,
    /// Status flags from `open`, mutable via `fcntl(F_SETFL)`.
    pub flags: OpenFlags,
    /// Descriptor references (dup + fork inheritance).
    pub refs: u32,
}

/// The system-wide open-file table.
#[derive(Debug, Clone, Default)]
pub struct OpenFiles {
    slots: Vec<Option<OpenFile>>,
}

impl OpenFiles {
    /// An empty table.
    #[must_use]
    pub fn new() -> OpenFiles {
        OpenFiles::default()
    }

    /// Inserts a new open file with one reference.
    pub fn insert(&mut self, kind: FileKind, flags: OpenFlags) -> FileIdx {
        let file = OpenFile {
            kind,
            offset: 0,
            flags,
            refs: 1,
        };
        match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(file);
                i
            }
            None => {
                self.slots.push(Some(file));
                self.slots.len() - 1
            }
        }
    }

    /// Borrows an entry.
    pub fn get(&self, idx: FileIdx) -> Result<&OpenFile, Errno> {
        self.slots
            .get(idx)
            .and_then(Option::as_ref)
            .ok_or(Errno::EBADF)
    }

    /// Mutably borrows an entry.
    pub fn get_mut(&mut self, idx: FileIdx) -> Result<&mut OpenFile, Errno> {
        self.slots
            .get_mut(idx)
            .and_then(Option::as_mut)
            .ok_or(Errno::EBADF)
    }

    /// Adds a reference (dup / fork).
    pub fn incref(&mut self, idx: FileIdx) {
        if let Some(Some(f)) = self.slots.get_mut(idx) {
            f.refs += 1;
        }
    }

    /// Drops a reference. Returns the entry if this was the last reference,
    /// so the caller can release the underlying object (inode ref, pipe
    /// endpoint, socket).
    pub fn decref(&mut self, idx: FileIdx) -> Option<OpenFile> {
        let slot = self.slots.get_mut(idx)?;
        let f = slot.as_mut()?;
        f.refs -= 1;
        if f.refs == 0 {
            return slot.take();
        }
        None
    }

    /// Number of live open files.
    #[must_use]
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates live entries with their table indices.
    pub fn iter(&self) -> impl Iterator<Item = (FileIdx, &OpenFile)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (i, f)))
    }
}

/// One process's descriptor slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdEntry {
    /// Index into the system open-file table.
    pub file: FileIdx,
    /// Close-on-exec flag (per descriptor, not per open file).
    pub cloexec: bool,
}

/// A per-process descriptor table.
#[derive(Debug, Clone)]
pub struct FdTable {
    slots: Vec<Option<FdEntry>>,
}

impl Default for FdTable {
    fn default() -> Self {
        FdTable {
            slots: vec![None; FD_TABLE_SIZE],
        }
    }
}

impl FdTable {
    /// An empty table of [`FD_TABLE_SIZE`] slots.
    #[must_use]
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// The table size (`getdtablesize`).
    #[must_use]
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: u64) -> Result<FdEntry, Errno> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.slots.get(i))
            .and_then(|s| *s)
            .ok_or(Errno::EBADF)
    }

    /// Allocates the lowest free slot at or above `min`, the BSD rule for
    /// both `open` and `fcntl(F_DUPFD)`.
    pub fn alloc(&mut self, min: usize, entry: FdEntry) -> Result<u64, Errno> {
        for i in min..self.slots.len() {
            if self.slots[i].is_none() {
                self.slots[i] = Some(entry);
                return Ok(i as u64);
            }
        }
        Err(Errno::EMFILE)
    }

    /// Installs into a specific slot (`dup2`), returning what was there.
    pub fn install(&mut self, fd: u64, entry: FdEntry) -> Result<Option<FdEntry>, Errno> {
        let i = usize::try_from(fd).map_err(|_| Errno::EBADF)?;
        if i >= self.slots.len() {
            return Err(Errno::EBADF);
        }
        Ok(self.slots[i].replace(entry))
    }

    /// Removes a descriptor, returning its entry.
    pub fn remove(&mut self, fd: u64) -> Result<FdEntry, Errno> {
        let i = usize::try_from(fd).map_err(|_| Errno::EBADF)?;
        self.slots
            .get_mut(i)
            .and_then(Option::take)
            .ok_or(Errno::EBADF)
    }

    /// Sets the close-on-exec flag.
    pub fn set_cloexec(&mut self, fd: u64, on: bool) -> Result<(), Errno> {
        let i = usize::try_from(fd).map_err(|_| Errno::EBADF)?;
        match self.slots.get_mut(i).and_then(Option::as_mut) {
            Some(e) => {
                e.cloexec = on;
                Ok(())
            }
            None => Err(Errno::EBADF),
        }
    }

    /// Iterates over `(fd, entry)` pairs of live descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (u64, FdEntry)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|e| (i as u64, e)))
    }

    /// Drains every descriptor (process exit), yielding the entries.
    pub fn drain(&mut self) -> Vec<FdEntry> {
        self.slots.iter_mut().filter_map(Option::take).collect()
    }

    /// Removes and returns descriptors with the close-on-exec flag
    /// (`execve`).
    pub fn drain_cloexec(&mut self) -> Vec<FdEntry> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if slot.is_some_and(|e| e.cloexec) {
                out.push(slot.take().expect("just checked"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(file: FileIdx) -> FdEntry {
        FdEntry {
            file,
            cloexec: false,
        }
    }

    #[test]
    fn open_files_refcounting() {
        let mut t = OpenFiles::new();
        let a = t.insert(FileKind::Device(0), OpenFlags::default());
        t.incref(a);
        assert!(t.decref(a).is_none(), "still one ref");
        let last = t.decref(a).expect("last ref returns entry");
        assert_eq!(last.kind, FileKind::Device(0));
        assert_eq!(t.get(a), Err(Errno::EBADF));
    }

    #[test]
    fn slots_are_reused() {
        let mut t = OpenFiles::new();
        let a = t.insert(FileKind::Device(0), OpenFlags::default());
        t.decref(a);
        let b = t.insert(FileKind::Device(1), OpenFlags::default());
        assert_eq!(a, b);
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn fd_alloc_lowest_first() {
        let mut t = FdTable::new();
        assert_eq!(t.alloc(0, entry(10)).unwrap(), 0);
        assert_eq!(t.alloc(0, entry(11)).unwrap(), 1);
        t.remove(0).unwrap();
        assert_eq!(t.alloc(0, entry(12)).unwrap(), 0, "lowest slot reused");
        assert_eq!(t.alloc(5, entry(13)).unwrap(), 5, "F_DUPFD minimum");
    }

    #[test]
    fn fd_table_exhaustion_is_emfile() {
        let mut t = FdTable::new();
        for _ in 0..FD_TABLE_SIZE {
            t.alloc(0, entry(0)).unwrap();
        }
        assert_eq!(t.alloc(0, entry(0)), Err(Errno::EMFILE));
    }

    #[test]
    fn install_replaces() {
        let mut t = FdTable::new();
        t.alloc(0, entry(1)).unwrap();
        let old = t.install(0, entry(2)).unwrap();
        assert_eq!(old, Some(entry(1)));
        assert_eq!(t.get(0).unwrap().file, 2);
        assert_eq!(t.install(9_999, entry(3)), Err(Errno::EBADF));
    }

    #[test]
    fn cloexec_drain() {
        let mut t = FdTable::new();
        t.alloc(0, entry(1)).unwrap();
        t.alloc(0, entry(2)).unwrap();
        t.set_cloexec(1, true).unwrap();
        let closed = t.drain_cloexec();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].file, 2);
        assert!(t.get(0).is_ok());
        assert_eq!(t.get(1), Err(Errno::EBADF));
    }

    #[test]
    fn bad_fd_errors() {
        let mut t = FdTable::new();
        assert_eq!(t.get(0), Err(Errno::EBADF));
        assert_eq!(t.get(u64::MAX), Err(Errno::EBADF));
        assert_eq!(t.remove(3), Err(Errno::EBADF));
        assert_eq!(t.set_cloexec(3, true), Err(Errno::EBADF));
    }
}
