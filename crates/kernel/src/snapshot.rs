//! Observable-state snapshots and kernel invariant checks.
//!
//! The transparency claim of the paper (§3.1) is a statement about what a
//! client — or anyone inspecting the machine afterwards — can observe. This
//! module defines that observation precisely, so differential tests
//! (`ia-conform`, `tests/transparency.rs`) compare a single well-defined
//! value instead of each picking its own ad-hoc subset of kernel state.
//!
//! Two granularities:
//!
//! * [`Observable`] — everything, including the virtual clock and executed
//!   instruction count. Two runs of the *same* configuration under
//!   different schedulers must agree on all of it.
//! * [`ClientView`] — what an application (or user diffing the disk
//!   afterwards) can see: console bytes, exit statuses, and filesystem
//!   content. Runs with and without pass-through agents must agree on
//!   this, while clocks legitimately differ by the interposition overhead.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use ia_vfs::{Fs, Ino};

use crate::clock::Clock;
use crate::console::Console;
use crate::files::OpenFiles;
use crate::kernel::{FastPathStats, FlockState, Kernel, PerfCounters, WakeEvent};
use crate::process::{Pid, ProcState, Process};
use crate::socket::SocketTable;

/// Complete observable machine state after (or during) a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observable {
    /// Everything a client could observe.
    pub client: ClientView,
    /// Virtual nanoseconds elapsed.
    pub clock_ns: u64,
    /// Client instructions executed.
    pub total_insns: u64,
    /// Syscalls dispatched (including agent downcalls).
    pub total_syscalls: u64,
}

/// The client-visible portion of machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientView {
    /// Raw console output bytes.
    pub console: Vec<u8>,
    /// Wait-status word of every process that ever exited, by pid.
    pub exit_statuses: BTreeMap<Pid, u32>,
    /// Content digest of the reachable filesystem tree (timestamp-free;
    /// see `Fs::content_digest`).
    pub vfs_digest: u64,
    /// Regular-file count.
    pub fs_files: usize,
    /// Total regular-file bytes.
    pub fs_bytes: u64,
}

/// A full capture of the kernel's world state: filesystem, process table
/// (including every address space), descriptor and socket tables, console,
/// scheduler queues, timers, clocks and counters.
///
/// The filesystem part shares structure with the live kernel (O(1), see
/// [`ia_vfs::FsSnapshot`]); process address spaces are copied, so the total
/// cost is O(resident client memory).
///
/// Deliberately **not** captured:
///
/// * the flight recorder (`Kernel::obs`) — it is an observer of the world,
///   not part of it; a restore rewinds what happened, not the record that
///   it happened (which is exactly what time-travel replay needs);
/// * the exec gate and machine profile — host policy, constant across a
///   run, preserved across [`Kernel::restore`];
/// * the snapshot-id counter — ids must stay unique across restores.
#[derive(Debug, Clone)]
pub struct KernelSnapshot {
    /// Unique id of this capture, for repro artifacts and logs.
    pub id: u64,
    fs: Fs,
    clock: Clock,
    console: Console,
    files: OpenFiles,
    sockets: SocketTable,
    procs: HashMap<Pid, Process>,
    next_pid: Pid,
    wakeups: Vec<WakeEvent>,
    exit_log: HashMap<Pid, u32>,
    flocks: HashMap<Ino, FlockState>,
    run_queue: BTreeSet<Pid>,
    blocked_queue: BTreeSet<Pid>,
    timer_heap: BinaryHeap<Reverse<(u64, Pid)>>,
    select_heap: BinaryHeap<Reverse<(u64, Pid)>>,
    perf: PerfCounters,
    total_syscalls: u64,
    total_insns: u64,
    fast_path: bool,
    fast_stats: FastPathStats,
}

impl Kernel {
    /// Captures the full world state. See [`KernelSnapshot`] for what is
    /// and is not included. Safe at any scheduler boundary (between
    /// `run()` calls, or from inside an agent's syscall hook).
    pub fn snapshot(&mut self) -> KernelSnapshot {
        let id = self.next_snapshot_id;
        self.next_snapshot_id += 1;
        KernelSnapshot {
            id,
            fs: self.fs.clone(),
            clock: self.clock,
            console: self.console.clone(),
            files: self.files.clone(),
            sockets: self.sockets.clone(),
            procs: self.procs.clone(),
            next_pid: self.next_pid,
            wakeups: self.wakeups.clone(),
            exit_log: self.exit_log.clone(),
            flocks: self.flocks.clone(),
            run_queue: self.run_queue.clone(),
            blocked_queue: self.blocked_queue.clone(),
            timer_heap: self.timer_heap.clone(),
            select_heap: self.select_heap.clone(),
            perf: self.perf,
            total_syscalls: self.total_syscalls,
            total_insns: self.total_insns,
            fast_path: self.fast_path,
            fast_stats: self.fast_stats.clone(),
        }
    }

    /// Rewinds the world to `snap`. The flight recorder, exec gate,
    /// machine profile and snapshot-id counter persist (they are not world
    /// state); everything else — filesystem, processes, descriptors,
    /// sockets, console, queues, timers, clock, counters — is restored
    /// bit-identically.
    ///
    /// Callers holding router state (agent chains, pending upcall batches,
    /// compiled dispatch tables) must invalidate it too; see
    /// `ia_interpose::InterposedRouter::snapshot`/`restore`.
    pub fn restore(&mut self, snap: &KernelSnapshot) {
        self.fs = snap.fs.clone();
        self.clock = snap.clock;
        self.console = snap.console.clone();
        self.files = snap.files.clone();
        self.sockets = snap.sockets.clone();
        self.procs = snap.procs.clone();
        self.next_pid = snap.next_pid;
        self.wakeups = snap.wakeups.clone();
        self.exit_log = snap.exit_log.clone();
        self.flocks = snap.flocks.clone();
        self.run_queue = snap.run_queue.clone();
        self.blocked_queue = snap.blocked_queue.clone();
        self.timer_heap = snap.timer_heap.clone();
        self.select_heap = snap.select_heap.clone();
        self.perf = snap.perf;
        self.total_syscalls = snap.total_syscalls;
        self.total_insns = snap.total_insns;
        self.fast_path = snap.fast_path;
        self.fast_stats = snap.fast_stats.clone();
    }

    /// Forks the whole world: a new kernel whose state equals this one's,
    /// sharing filesystem structure until either side diverges. The branch
    /// keeps the same machine profile and exec gate but gets a fresh
    /// (disabled) flight recorder — observers are per-kernel.
    pub fn branch(&mut self) -> Kernel {
        let snap = self.snapshot();
        // The branch shares the parent's exec cache: prepared images are
        // host-side bookkeeping, identical under the (shared) gate.
        let mut child = crate::KernelBuilder::new()
            .profile(self.profile)
            .fast_path(self.fast_path)
            .engine(self.engine)
            .exec_cache(self.exec_cache.clone())
            .build();
        child.exec_gate = self.exec_gate.clone();
        child.next_snapshot_id = self.next_snapshot_id;
        child.restore(&snap);
        child
    }

    /// Rewinds *only the filesystem tree* to a [`ia_vfs::FsSnapshot`]
    /// while processes keep running — the transactional-abort primitive.
    ///
    /// Open descriptors survive the rewind: every restored inode's
    /// `open_refs` is re-derived from the live open-file table, file locks
    /// on inodes that no longer exist are dropped, and descriptors whose
    /// inode vanished (created after the capture) dangle harmlessly —
    /// subsequent operations on them fail with `ENOENT`, and close is a
    /// no-op, exactly as for an externally-revoked vnode.
    pub fn rollback_fs(&mut self, snap: &ia_vfs::FsSnapshot) {
        let mut live_refs: BTreeMap<Ino, u32> = BTreeMap::new();
        for (_, f) in self.files.iter() {
            if let crate::files::FileKind::Vnode(ino) = f.kind {
                *live_refs.entry(ino).or_insert(0) += 1;
            }
        }
        self.fs.restore_reconciled(snap, &live_refs);
        let dead: Vec<Ino> = self
            .flocks
            .keys()
            .filter(|ino| !self.fs.exists(**ino))
            .copied()
            .collect();
        for ino in dead {
            self.flocks.remove(&ino);
        }
    }

    /// Snapshots the full observable state.
    #[must_use]
    pub fn observable(&self) -> Observable {
        Observable {
            client: self.client_view(),
            clock_ns: self.clock.elapsed_ns(),
            total_insns: self.total_insns,
            total_syscalls: self.total_syscalls,
        }
    }

    /// Snapshots the client-visible state only.
    #[must_use]
    pub fn client_view(&self) -> ClientView {
        let stats = self.fs.stats();
        ClientView {
            console: self.console.output().to_vec(),
            exit_statuses: self.exit_statuses(),
            vfs_digest: self.fs.content_digest(),
            fs_files: stats.files,
            fs_bytes: stats.bytes,
        }
    }

    /// Wait-status of every exited process (reaped or zombie), by pid.
    #[must_use]
    pub fn exit_statuses(&self) -> BTreeMap<Pid, u32> {
        let mut m: BTreeMap<Pid, u32> = self.exit_log.iter().map(|(&p, &s)| (p, s)).collect();
        for p in self.procs.values() {
            if let ProcState::Zombie(st) = p.state {
                m.insert(p.pid, st);
            }
        }
        m
    }

    /// Structural invariants that must hold at any scheduler quiescent
    /// point, regardless of what programs or agents did. Returns a
    /// description of each violation; an empty vector means consistent.
    #[must_use]
    pub fn check_invariants(&self) -> Vec<String> {
        let mut bad = Vec::new();

        // Scheduler queues and process states must agree.
        for &pid in &self.run_queue {
            match self.procs.get(&pid).map(|p| &p.state) {
                Some(ProcState::Runnable) => {}
                other => bad.push(format!("run_queue pid {pid} has state {other:?}")),
            }
        }
        for &pid in &self.blocked_queue {
            match self.procs.get(&pid).map(|p| &p.state) {
                Some(ProcState::Blocked(_)) => {}
                other => bad.push(format!("blocked_queue pid {pid} has state {other:?}")),
            }
        }
        for p in self.procs.values() {
            match p.state {
                ProcState::Runnable if !self.run_queue.contains(&p.pid) => {
                    bad.push(format!("runnable pid {} missing from run_queue", p.pid));
                }
                ProcState::Blocked(_) if !self.blocked_queue.contains(&p.pid) => {
                    bad.push(format!("blocked pid {} missing from blocked_queue", p.pid));
                }
                ProcState::Zombie(_) if p.fds.iter().count() != 0 => {
                    bad.push(format!("zombie pid {} still holds descriptors", p.pid));
                }
                _ => {}
            }
        }

        // Every descriptor must reference a live open-file entry, and the
        // per-entry refcount must equal the number of descriptors (across
        // all processes) pointing at it.
        let mut referenced: BTreeMap<usize, u32> = BTreeMap::new();
        for p in self.procs.values() {
            for (_, e) in p.fds.iter() {
                *referenced.entry(e.file).or_insert(0) += 1;
                if self.files.get(e.file).is_err() {
                    bad.push(format!("pid {} fd references dead file {}", p.pid, e.file));
                }
            }
        }
        for (idx, f) in self.files.iter() {
            let held = referenced.get(&idx).copied().unwrap_or(0);
            if f.refs != held {
                bad.push(format!(
                    "open file {idx} refcount {} but {held} descriptors point at it",
                    f.refs
                ));
            }
        }
        bad
    }

    /// Invariants that must hold once every process has exited: nothing
    /// may leak. Returns violation descriptions, empty when clean.
    #[must_use]
    pub fn check_quiescent(&self) -> Vec<String> {
        let mut bad = self.check_invariants();
        if self.running_count() != 0 {
            bad.push(format!("{} processes still running", self.running_count()));
        }
        if self.files.live() != 0 {
            bad.push(format!("{} open files leaked", self.files.live()));
        }
        if !self.fs.pipes.is_empty() {
            bad.push(format!("{} pipes leaked", self.fs.pipes.len()));
        }
        if self.sockets.live() != 0 {
            bad.push(format!("{} sockets leaked", self.sockets.live()));
        }
        if !self.run_queue.is_empty() || !self.blocked_queue.is_empty() {
            bad.push(format!(
                "scheduler queues not empty: run={:?} blocked={:?}",
                self.run_queue, self.blocked_queue
            ));
        }
        bad
    }
}

#[cfg(test)]
mod tests {

    use crate::kernel::KernelBuilder;
    use crate::sched::RunOutcome;
    use ia_vm::assemble;

    #[test]
    fn fresh_kernel_is_consistent_and_quiescent() {
        let k = KernelBuilder::new().build();
        assert!(k.check_invariants().is_empty());
        assert!(k.check_quiescent().is_empty());
    }

    #[test]
    fn snapshot_restore_mid_run_replays_identically() {
        // A program that writes, loops and exits; snapshot it mid-flight,
        // run to completion, rewind, run again: the two futures must be
        // bit-identical in every observable dimension.
        let src = r#"
            .data
            path: .asciz "/tmp/log"
            msg:  .asciz "0123456789abcdef"
            .text
            main:
                la r0, path
                li r1, 0x601
                li r2, 420
                sys open
                li r10, 40
            loop:
                li r0, 3
                la r1, msg
                li r2, 16
                sys write
                addi r10, r10, -1
                jnz r10, loop
                li r0, 9
                sys exit
        "#;
        let mut k = KernelBuilder::new().build();
        let img = assemble(src).unwrap();
        k.spawn_image(&img, &[b"t"], b"t");
        let mut router = crate::sched::KernelRouter;
        assert_eq!(
            crate::sched::run(
                &mut k,
                &mut router,
                crate::sched::RunLimits { max_steps: 200 }
            ),
            RunOutcome::StepLimit
        );

        let snap = k.snapshot();
        let mid = k.observable();
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        let first = k.observable();
        assert!(k.check_quiescent().is_empty());

        k.restore(&snap);
        assert_eq!(k.observable(), mid, "restore rewinds to capture time");
        assert!(
            k.check_invariants().is_empty(),
            "{:?}",
            k.check_invariants()
        );
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        assert_eq!(k.observable(), first, "replayed future is identical");
        assert!(k.check_quiescent().is_empty());
    }

    #[test]
    fn branch_is_isolated_from_parent() {
        let src = r#"
            .data
            path: .asciz "/tmp/branchfile"
            msg:  .asciz "payload"
            .text
            main:
                la r0, path
                li r1, 0x601
                li r2, 420
                sys open
                la r1, msg
                li r2, 7
                sys write
                li r0, 0
                sys exit
        "#;
        let mut k = KernelBuilder::new().build();
        let img = assemble(src).unwrap();
        k.spawn_image(&img, &[b"t"], b"t");

        let mut b = k.branch();
        assert_eq!(b.observable(), k.observable());

        // Run the branch to completion: the parent must not move.
        let before = k.observable();
        assert_eq!(b.run_to_completion(), RunOutcome::AllExited);
        assert_eq!(k.observable(), before, "parent untouched by branch run");

        // Mutate the parent's fs: the branch's tree must not see it.
        let b_digest = b.client_view().vfs_digest;
        k.write_file(b"/tmp/parent-only", b"x").unwrap();
        assert_eq!(b.client_view().vfs_digest, b_digest);

        // The parent then reaches the same end state as the branch did.
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        assert_eq!(k.client_view().console, b.client_view().console);
        assert_eq!(k.exit_statuses(), b.exit_statuses());
    }

    #[test]
    fn snapshot_ids_stay_unique_across_restore() {
        let mut k = KernelBuilder::new().build();
        let s1 = k.snapshot();
        k.restore(&s1);
        let s2 = k.snapshot();
        assert_ne!(s1.id, s2.id, "restore must not rewind the id counter");
    }

    #[test]
    fn observable_captures_console_exits_and_digest() {
        let src = r#"
            .data
            msg:  .asciz "hi"
            path: .asciz "/tmp/out"
            .text
            main:
                la r0, path
                li r1, 0x601   ; O_WRONLY|O_CREAT|O_TRUNC
                li r2, 420
                sys open
                la r1, msg
                li r2, 2
                sys write
                li r0, 1
                la r1, msg
                li r2, 2
                sys write
                li r0, 7
                sys exit
        "#;
        let mut k = KernelBuilder::new().build();
        k.mkdir_p(b"/tmp").unwrap();
        let img = assemble(src).unwrap();
        let pid = k.spawn_image(&img, &[b"t"], b"t");
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        assert!(k.check_quiescent().is_empty(), "{:?}", k.check_quiescent());

        let obs = k.observable();
        assert_eq!(obs.client.console, b"hi");
        assert_eq!(
            obs.client.exit_statuses.get(&pid),
            Some(&ia_abi::signal::wait_status_exited(7))
        );

        // Same program, fresh kernel: identical client view, and the digest
        // actually covers the file written above.
        let mut k2 = KernelBuilder::new().build();
        k2.mkdir_p(b"/tmp").unwrap();
        k2.spawn_image(&img, &[b"t"], b"t");
        assert_eq!(k2.run_to_completion(), RunOutcome::AllExited);
        assert_eq!(k2.client_view(), obs.client);

        k2.write_file(b"/tmp/out", b"ha").unwrap();
        assert_ne!(k2.client_view().vfs_digest, obs.client.vfs_digest);
        assert_eq!(k2.client_view().fs_bytes, obs.client.fs_bytes);
    }
}
