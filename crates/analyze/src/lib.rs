//! # ia-analyze — static analysis of VM images
//!
//! The paper's agents decide at *attach time* which system calls they care
//! about (the interest set). This crate closes the loop from the other side:
//! it inspects a binary image **before it runs** and infers the set of
//! system calls the image could ever issue — its static *syscall footprint*
//! — plus a lint report of defects the machine would punish at runtime
//! (`SIGILL`, `SIGSEGV`, `SIGFPE`).
//!
//! The pipeline:
//!
//! 1. **Decode** every 12-byte instruction slot leniently ([`analyze_bytes`]
//!    tolerates undecodable slots, unlike `Image::from_bytes`).
//! 2. **CFG** construction with reachability from the entry point
//!    ([`cfg`]).
//! 3. **Abstract interpretation** over a constant/interval domain
//!    ([`domain`], [`interp`]), resolving the possible values of `r7` at
//!    every `SYS` site.
//! 4. **Footprint** conversion into an [`InterestSet`] — the same type
//!    agents register with the router — plus least-privilege policy
//!    inference (`SandboxAgent::from_footprint` in `ia-agents`).
//!
//! Soundness: the analysis *may over-approximate but never
//! under-approximates*. If `r7` cannot be bounded at some reachable site
//! (e.g. it was loaded from memory), the footprint widens to "all
//! syscalls" and `exact` flips off — the result fails closed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod domain;
pub mod interp;
pub mod report;

pub use cfg::Cfg;
pub use domain::AbsVal;
pub use interp::{RegState, SysSite, SyscallSet, ValueFinding};
pub use report::{render_json, render_text, Finding, Severity};

use ia_abi::{Errno, Sysno};
use ia_interpose::InterestSet;
use ia_kernel::Kernel;
use ia_vm::{Image, Insn, IMAGE_MAGIC};
use std::collections::BTreeSet;

/// The inferred static syscall footprint of an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// The footprint as an interest set — directly usable for policy.
    pub set: InterestSet,
    /// True if every reachable `SYS` site resolved to concrete numbers.
    /// False means some site widened to ⊤ and `set` is `ALL` (fail closed).
    pub exact: bool,
    /// The enumerated syscall numbers (meaningful only when `exact`).
    pub nrs: BTreeSet<u32>,
}

impl Footprint {
    /// Derives the footprint from resolved `SYS` sites.
    #[must_use]
    pub fn from_sites(sites: &[SysSite]) -> Footprint {
        let mut set = InterestSet::new();
        let mut nrs = BTreeSet::new();
        let mut exact = true;
        for site in sites {
            match &site.nrs {
                SyscallSet::Exact(vs) => {
                    for &v in vs {
                        nrs.insert(v);
                        if v < 256 {
                            set.add(v);
                        } else {
                            // InterestSet uses bit 255 as the "and beyond"
                            // proxy; contains(nr ≥ 256) tests that bit.
                            set.add(255);
                        }
                    }
                }
                SyscallSet::Top => {
                    set = InterestSet::ALL;
                    exact = false;
                }
            }
        }
        if !exact {
            nrs.clear();
        }
        Footprint { set, exact, nrs }
    }

    /// The footprint as symbolic names, where the numbers are known calls.
    #[must_use]
    pub fn syscalls(&self) -> Vec<Sysno> {
        self.nrs
            .iter()
            .filter_map(|&v| Sysno::from_u32(v))
            .collect()
    }
}

/// Everything the analyzer learned about one image.
#[derive(Debug, Clone)]
pub struct ImageAnalysis {
    /// Entry point (instruction index).
    pub entry: usize,
    /// Lenient decode of the code segment; `None` = undecodable slot.
    pub code: Vec<Option<Insn>>,
    /// Data segment length in bytes.
    pub data_len: usize,
    /// The control-flow graph (reachability computed from `entry`).
    pub cfg: Cfg,
    /// Resolved `SYS` sites used for the footprint. When signal handlers
    /// force a second phase these include handler-reachable sites.
    pub sites: Vec<SysSite>,
    /// Lint findings, errors first.
    pub findings: Vec<Finding>,
    /// The inferred syscall footprint.
    pub footprint: Footprint,
}

impl ImageAnalysis {
    /// Number of findings at `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// True if any finding is an error — the image faults on a reachable
    /// path.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }
}

/// Severity for a structural defect: error where reachable, else warning.
fn sev(reachable: bool) -> Severity {
    if reachable {
        Severity::Error
    } else {
        Severity::Warning
    }
}

/// Analyzes an already-decoded code segment.
#[must_use]
pub fn analyze_code(code: Vec<Option<Insn>>, entry: usize, data_len: usize) -> ImageAnalysis {
    let n = code.len();
    let cfg = Cfg::build(&code, entry);

    // Phase 1: abstract interpretation from the entry point.
    let roots = if entry < n {
        vec![(cfg.block_of[entry], RegState::at_entry())]
    } else {
        Vec::new()
    };
    let phase1 = interp::run(&code, &cfg, &roots);

    let mut findings = Vec::new();

    if entry >= n {
        findings.push(Finding {
            severity: Severity::Error,
            kind: "fall-off-end",
            at: None,
            message: format!(
                "entry point {entry} is at/past the end of the {n}-insn text segment (SIGSEGV at startup)"
            ),
        });
    }

    for (b, block) in cfg.blocks.iter().enumerate() {
        let reachable = cfg.reachable[b];
        if block.ends_in_illegal {
            findings.push(Finding {
                severity: sev(reachable),
                kind: "undecodable",
                at: Some(block.end - 1),
                message: format!(
                    "undecodable instruction{} (SIGILL if executed)",
                    if reachable {
                        " on a reachable path"
                    } else {
                        " in unreachable code"
                    }
                ),
            });
        }
        if block.falls_off {
            findings.push(Finding {
                severity: sev(reachable),
                kind: "fall-off-end",
                at: Some(block.end - 1),
                message: format!(
                    "control can run off the end of the text segment{} (SIGSEGV)",
                    if reachable {
                        ""
                    } else {
                        " (unreachable block)"
                    }
                ),
            });
        }
    }

    for bt in &cfg.bad_targets {
        let reachable = cfg.reachable[cfg.block_of[bt.at]];
        findings.push(Finding {
            severity: sev(reachable),
            kind: "bad-branch-target",
            at: Some(bt.at),
            message: format!(
                "branch target {} is outside the text segment (0..{n}){}",
                bt.target,
                if reachable { "" } else { " [unreachable]" }
            ),
        });
    }

    for f in &phase1.findings {
        findings.push(match *f {
            ValueFinding::DivByZero { at, reg } => Finding {
                severity: Severity::Error,
                kind: "div-by-zero",
                at: Some(at),
                message: format!("divisor r{reg} is provably zero here (SIGFPE)"),
            },
            ValueFinding::StoreBelowData { at, addr } => Finding {
                severity: Severity::Warning,
                kind: "store-below-data",
                at: Some(at),
                message: format!(
                    "store to address {addr:#x}, below the data base {:#x} (guard region)",
                    ia_vm::DATA_BASE
                ),
            },
            ValueFinding::ReadUnwritten { at, reg } => Finding {
                severity: Severity::Warning,
                kind: "read-unwritten",
                at: Some(at),
                message: format!("r{reg} is read but never written on some path reaching here"),
            },
        });
    }

    // Unreachable-code warnings, one per contiguous instruction span.
    let mut span: Option<(usize, usize)> = None;
    let mut spans = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            span = match span {
                Some((s, _)) => Some((s, block.end)),
                None => Some((block.start, block.end)),
            };
        } else if let Some(sp) = span.take() {
            spans.push(sp);
        }
    }
    spans.extend(span);
    for (s, e) in spans {
        findings.push(Finding {
            severity: Severity::Warning,
            kind: "unreachable-code",
            at: Some(s),
            message: format!("insns {s}..{e} are unreachable from the entry point"),
        });
    }

    // Phase 2: if the program may install a signal handler (or some site
    // already widened to ⊤), rerun with every block as a root under a ⊤
    // entry state — a handler can run at any instruction boundary with any
    // register contents. The footprint comes from this phase; lint
    // reachability stays with phase 1 (phase 2's pessimism would drown it
    // in noise).
    let sigaction = Sysno::Sigaction as u32;
    let may_install_handler = phase1.sites.iter().any(|s| match &s.nrs {
        SyscallSet::Top => true,
        SyscallSet::Exact(vs) => vs.contains(&sigaction),
    });
    let sites = if may_install_handler {
        let roots: Vec<(usize, RegState)> = (0..cfg.blocks.len())
            .map(|b| (b, RegState::top()))
            .collect();
        interp::run(&code, &cfg, &roots).sites
    } else {
        phase1.sites
    };

    let footprint = Footprint::from_sites(&sites);
    findings.sort_by_key(|f| (f.severity, f.at));
    ImageAnalysis {
        entry,
        code,
        data_len,
        cfg,
        sites,
        findings,
        footprint,
    }
}

/// Analyzes a parsed image.
#[must_use]
pub fn analyze_image(img: &Image) -> ImageAnalysis {
    analyze_code(
        img.code.iter().copied().map(Some).collect(),
        img.entry as usize,
        img.data.len(),
    )
}

/// Lenient image parse + analysis: the header must be well-formed, but
/// undecodable instruction slots become lint findings instead of `ENOEXEC`
/// (unlike `Image::from_bytes`, which rejects the whole file).
pub fn analyze_bytes(bytes: &[u8]) -> Result<ImageAnalysis, Errno> {
    const HEADER: usize = 4 + 4 + 8 + 4 + 4;
    if bytes.len() < HEADER {
        return Err(Errno::ENOEXEC);
    }
    let u32at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let magic = u32at(0);
    let version = u32at(4);
    if magic != IMAGE_MAGIC || version != 1 {
        return Err(Errno::ENOEXEC);
    }
    let entry = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let ncode = u32at(16) as usize;
    let ndata = u32at(20) as usize;
    if bytes.len() != HEADER + ncode * 12 + ndata {
        return Err(Errno::ENOEXEC);
    }
    let code: Vec<Option<Insn>> = bytes[HEADER..HEADER + ncode * 12]
        .chunks_exact(12)
        .map(|c| Insn::decode(c.try_into().expect("12 bytes")))
        .collect();
    let entry = usize::try_from(entry).unwrap_or(usize::MAX);
    Ok(analyze_code(code, entry, ndata))
}

/// Convenience: just the footprint of an image.
#[must_use]
pub fn footprint(img: &Image) -> Footprint {
    analyze_image(img).footprint
}

/// Installs an exec gate on the kernel that refuses (`ENOEXEC`) any image
/// whose lint report contains errors — `execve` of a binary that provably
/// faults fails up front instead of at runtime.
pub fn install_lint_gate(k: &mut Kernel) {
    k.set_exec_gate(|img| {
        if analyze_image(img).has_errors() {
            Err(Errno::ENOEXEC)
        } else {
            Ok(())
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_vm::Insn::*;

    fn img(code: Vec<Insn>) -> Image {
        Image {
            entry: 0,
            code,
            data: Vec::new(),
        }
    }

    #[test]
    fn clean_program_has_no_findings_and_an_exact_footprint() {
        let a = analyze_image(&img(vec![
            Li(0, 0),
            Li(7, Sysno::Getpid as u64),
            Sys,
            Li(7, Sysno::Exit as u64),
            Sys,
        ]));
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert!(a.footprint.exact);
        assert_eq!(a.footprint.syscalls(), vec![Sysno::Exit, Sysno::Getpid]);
        assert!(a.footprint.set.contains(Sysno::Getpid as u32));
        assert!(!a.footprint.set.contains(Sysno::Open as u32));
    }

    #[test]
    fn indirect_syscall_number_fails_closed() {
        // r7 loaded from memory: the footprint must widen to ALL.
        let a = analyze_image(&img(vec![Ld(7, 15, 0), Sys, Halt]));
        assert!(!a.footprint.exact);
        assert_eq!(a.footprint.set, InterestSet::ALL);
        assert!(a.footprint.nrs.is_empty());
    }

    #[test]
    fn sigaction_triggers_handler_phase() {
        // Installs a handler at insn 5 (li r7,N; sys in dead code from the
        // entry path's perspective — only the handler phase sees it run).
        let code = vec![
            Li(7, Sysno::Sigaction as u64), // 0
            Sys,                            // 1
            Li(7, Sysno::Exit as u64),      // 2
            Sys,                            // 3
            Nop,                            // 4 (unreachable from entry)
            Li(7, Sysno::Getpid as u64),    // 5: handler body
            Sys,                            // 6
            Ret,                            // 7
        ];
        let a = analyze_image(&img(code));
        assert!(a.footprint.exact);
        assert!(
            a.footprint.set.contains(Sysno::Getpid as u32),
            "handler site included"
        );
    }

    #[test]
    fn lint_errors_surface_and_gate_refuses() {
        let bad = img(vec![Jmp(99)]);
        let a = analyze_image(&bad);
        assert!(a.has_errors());
        assert!(a.findings.iter().any(|f| f.kind == "bad-branch-target"));

        let mut k = Kernel::new(ia_kernel::I486_25);
        install_lint_gate(&mut k);
        k.install_image(b"/bin/bad", &bad).expect("install");
        let err = k.spawn(b"/bin/bad", &[b"bad"]).expect_err("gated");
        assert_eq!(err, Errno::ENOEXEC);
    }

    #[test]
    fn lenient_parse_reports_undecodable_instead_of_rejecting() {
        let mut bytes = img(vec![Nop, Nop, Halt]).to_bytes();
        // Corrupt the second instruction's opcode.
        bytes[24 + 12] = 0xfe;
        assert!(Image::from_bytes(&bytes).is_err(), "strict parser rejects");
        let a = analyze_bytes(&bytes).expect("lenient parser accepts");
        assert!(a.findings.iter().any(|f| f.kind == "undecodable"));
        assert!(a.has_errors());
    }
}
