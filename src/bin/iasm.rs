//! `iasm` — assemble simulated-system programs into image files.
//!
//! ```text
//! iasm prog.s -o prog.img      # assemble
//! iasm -d prog.img             # disassemble an image
//! ```

use std::process::ExitCode;

use interposition_agents::vm::{assemble, disassemble, Image};

fn usage() -> ExitCode {
    eprintln!("usage: iasm <source.s> [-o <out.img>]");
    eprintln!("       iasm -d <image.img>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, path] if flag == "-d" => {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("iasm: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Image::from_bytes(&bytes) {
                Ok(img) => {
                    print!("{}", disassemble(&img));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("iasm: {path}: not a valid image ({e})");
                    ExitCode::FAILURE
                }
            }
        }
        [src] | [src, _, _] if !src.starts_with('-') => {
            let out = match args.as_slice() {
                [_, o, out] if o == "-o" => out.clone(),
                [src] => format!("{}.img", src.trim_end_matches(".s")),
                _ => return usage(),
            };
            let text = match std::fs::read_to_string(src) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("iasm: {src}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match assemble(&text) {
                Ok(img) => {
                    if let Err(e) = std::fs::write(&out, img.to_bytes()) {
                        eprintln!("iasm: {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "iasm: {out}: {} instructions, {} data bytes, entry {}",
                        img.code.len(),
                        img.data.len(),
                        img.entry
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("iasm: {src}:{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
