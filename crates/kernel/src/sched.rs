//! The scheduler: runs processes, dispatches traps through a pluggable
//! router, delivers signals, and manages blocking.
//!
//! The [`SyscallRouter`] trait is the seam where interposition attaches.
//! With [`KernelRouter`] every trap goes straight to the kernel — Figure
//! 1-1 of the paper. The `ia-interpose` crate provides a router that sends
//! registered traps through per-process agent chains first — Figures 1-2
//! through 1-4.

use ia_abi::signal::{DefaultAction, SigDisposition, Signal};
use ia_abi::types::SigContext;
use ia_abi::wire::Wire;
use ia_abi::{Errno, RawArgs};
use ia_vm::machine::{step, StepEvent};

use crate::kernel::{Kernel, SysOutcome, WakeEvent};
use crate::process::{PendingTrap, Pid, ProcState, WaitChannel};

/// Instructions per scheduling slice.
pub const SLICE: u32 = 100;

/// How a trap reaches an implementation of the system interface.
pub trait SyscallRouter {
    /// Dispatches one trap. The default route is the kernel itself.
    fn route(&mut self, k: &mut Kernel, pid: Pid, nr: u32, args: RawArgs) -> SysOutcome;

    /// Filters a signal about to be delivered to the application — the
    /// *upward* interposition path. Returning `false` consumes the signal
    /// without delivering it.
    fn filter_signal(&mut self, _k: &mut Kernel, _pid: Pid, _sig: Signal) -> bool {
        true
    }

    /// Notification that a process has terminated (for per-process state
    /// cleanup, e.g. agent chains).
    fn on_process_exit(&mut self, _k: &mut Kernel, _pid: Pid) {}
}

/// The identity router: every trap goes directly to the kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct KernelRouter;

impl SyscallRouter for KernelRouter {
    fn route(&mut self, k: &mut Kernel, pid: Pid, nr: u32, args: RawArgs) -> SysOutcome {
        k.syscall(pid, nr, args)
    }
}

/// Limits on one `run` invocation.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum instructions (across all processes) before giving up.
    pub max_steps: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_steps: 2_000_000_000,
        }
    }
}

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every process has exited.
    AllExited,
    /// Runnable work exists but the step limit was reached.
    StepLimit,
    /// Processes remain but all are blocked with nothing to wake them.
    Deadlock {
        /// The blocked pids.
        blocked: Vec<Pid>,
    },
    /// Only stopped processes remain (awaiting an external `SIGCONT`).
    Stalled,
}

/// Runs the system until every process exits (or a limit/deadlock).
pub fn run<R: SyscallRouter>(k: &mut Kernel, router: &mut R, limits: RunLimits) -> RunOutcome {
    let mut steps: u64 = 0;
    let mut last_pid: Pid = 0;
    loop {
        fire_timers(k);
        apply_wakeups(k);

        let Some(pid) = pick_runnable(k, last_pid) else {
            // Nobody runnable: maybe time just needs to pass.
            if let Some(deadline) = earliest_deadline(k) {
                let now = k.clock.elapsed_ns();
                if deadline > now {
                    k.clock.advance_ns(deadline - now);
                }
                fire_timers(k);
                apply_wakeups(k);
                wake_expired_selects(k);
                continue;
            }
            let blocked: Vec<Pid> = k
                .procs
                .values()
                .filter(|p| matches!(p.state, ProcState::Blocked(_)))
                .map(|p| p.pid)
                .collect();
            if !blocked.is_empty() {
                return RunOutcome::Deadlock { blocked };
            }
            if k.procs
                .values()
                .any(|p| matches!(p.state, ProcState::Stopped))
            {
                return RunOutcome::Stalled;
            }
            return RunOutcome::AllExited;
        };
        last_pid = pid;

        // Deliver one pending signal before the process runs.
        deliver_signals(k, router, pid);
        if !is_runnable(k, pid) {
            continue;
        }

        // A restarted trap takes precedence over stepping the machine.
        if let Some(trap) = k.procs.get(&pid).and_then(|p| p.pending_trap) {
            k.procs.get_mut(&pid).expect("exists").pending_trap = None;
            dispatch(k, router, pid, trap.nr, trap.args, trap.restarts + 1);
            steps += 1;
            if steps >= limits.max_steps {
                return RunOutcome::StepLimit;
            }
            continue;
        }

        // Run one slice.
        let mut slice = SLICE;
        while slice > 0 {
            slice -= 1;
            steps += 1;
            let Some(p) = k.procs.get_mut(&pid) else {
                break;
            };
            let code = p.code.clone();
            let ev = step(&mut p.vm, &mut p.mem, &code);
            match ev {
                StepEvent::Continue => {
                    p.usage.user_insns += 1;
                    k.total_insns += 1;
                    k.clock.advance_ns(k.profile.insn_ns);
                }
                StepEvent::Syscall { nr, args } => {
                    p.usage.user_insns += 1;
                    k.total_insns += 1;
                    k.clock.advance_ns(k.profile.insn_ns);
                    dispatch(k, router, pid, nr, args, 0);
                    break; // end of turn after a trap
                }
                StepEvent::Halted => {
                    // Halt is treated as exit(r0): convenient for small
                    // hand-written programs and tests.
                    let status = (p.vm.regs[0] & 0xff) as u8;
                    k.terminate(pid, ia_abi::signal::wait_status_exited(status));
                    router.on_process_exit(k, pid);
                    break;
                }
                StepEvent::Fault(sig) => {
                    handle_fault(k, router, pid, sig);
                    break;
                }
            }
            if steps >= limits.max_steps {
                return RunOutcome::StepLimit;
            }
        }
        if slice == 0 {
            if let Some(p) = k.procs.get_mut(&pid) {
                p.usage.nivcsw += 1;
            }
        }
        if steps >= limits.max_steps {
            // Only give up if there is really still work to do.
            if k.procs
                .values()
                .any(|p| matches!(p.state, ProcState::Runnable | ProcState::Blocked(_)))
            {
                return RunOutcome::StepLimit;
            }
            return RunOutcome::AllExited;
        }
    }
}

fn is_runnable(k: &Kernel, pid: Pid) -> bool {
    matches!(
        k.procs.get(&pid).map(|p| p.state),
        Some(ProcState::Runnable)
    )
}

/// Dispatches one trap through the router and applies the outcome.
fn dispatch<R: SyscallRouter>(
    k: &mut Kernel,
    router: &mut R,
    pid: Pid,
    nr: u32,
    args: RawArgs,
    restarts: u32,
) {
    let outcome = router.route(k, pid, nr, args);
    let Some(p) = k.procs.get_mut(&pid) else {
        // The process vanished during the call (e.g. killed itself).
        router.on_process_exit(k, pid);
        return;
    };
    if matches!(p.state, ProcState::Zombie(_)) {
        router.on_process_exit(k, pid);
        return;
    }
    match outcome {
        SysOutcome::Done(res) => {
            p.vm.apply_sysret(res);
            p.usage.nvcsw += 1;
        }
        SysOutcome::NoReturn => {}
        SysOutcome::Block(ch) => {
            p.state = ProcState::Blocked(ch);
            p.pending_trap = Some(PendingTrap { nr, args, restarts });
            p.usage.nvcsw += 1;
        }
    }
}

/// A fault delivers its signal; if the signal cannot be taken (ignored,
/// blocked, or default-ignored), the process is killed anyway — re-running
/// the faulting instruction would spin forever.
fn handle_fault<R: SyscallRouter>(k: &mut Kernel, router: &mut R, pid: Pid, sig: Signal) {
    let Some(p) = k.procs.get(&pid) else { return };
    let action = p.sig.action(sig);
    let catchable =
        matches!(action.disposition, SigDisposition::Handler(_)) && !p.sig.mask.contains(sig);
    if catchable {
        // Skip the faulting instruction so the handler's sigreturn does not
        // re-fault: the pc was left at the faulting instruction.
        let _ = k.post_signal(pid, sig);
        if let Some(p) = k.procs.get_mut(&pid) {
            p.vm.pc += 1;
        }
        deliver_signals(k, router, pid);
    } else {
        k.terminate(pid, ia_abi::signal::wait_status_signaled(sig));
        router.on_process_exit(k, pid);
    }
}

/// Delivers at most one pending unblocked signal to a runnable process.
fn deliver_signals<R: SyscallRouter>(k: &mut Kernel, router: &mut R, pid: Pid) {
    loop {
        let Some(p) = k.procs.get_mut(&pid) else {
            return;
        };
        if matches!(p.state, ProcState::Zombie(_) | ProcState::Stopped) {
            return;
        }
        let Some(sig) = p.sig.deliverable() else {
            return;
        };
        p.sig.pending.remove(sig);

        // The upward interposition path: agents see the signal first.
        if !router.filter_signal(k, pid, sig) {
            continue; // suppressed; look for another pending signal
        }
        let Some(p) = k.procs.get_mut(&pid) else {
            return;
        };
        p.usage.nsignals += 1;
        let action = p.sig.action(sig);
        match action.disposition {
            SigDisposition::Ignore => continue,
            SigDisposition::Default => match sig.default_action() {
                DefaultAction::Ignore | DefaultAction::Continue => continue,
                DefaultAction::Stop => {
                    p.state = ProcState::Stopped;
                    return;
                }
                DefaultAction::Terminate => {
                    k.terminate(pid, ia_abi::signal::wait_status_signaled(sig));
                    router.on_process_exit(k, pid);
                    return;
                }
            },
            SigDisposition::Handler(addr) => {
                // An interrupted blocking call returns EINTR beneath the
                // handler frame.
                if p.pending_trap.take().is_some() {
                    p.vm.apply_sysret(Err(Errno::EINTR));
                    p.select_deadline = None;
                }
                if matches!(p.state, ProcState::Blocked(_)) {
                    p.state = ProcState::Runnable;
                }
                // The mask the context restores: a suspended process goes
                // back to its pre-sigsuspend mask.
                let restore_mask = p.sig.suspend_saved.take().unwrap_or(p.sig.mask);
                let ctx = SigContext {
                    pc: p.vm.pc,
                    regs: p.vm.regs,
                    mask: restore_mask,
                };
                let sp = (p.vm.regs[15].saturating_sub(SigContext::WIRE_SIZE as u64)) & !7;
                if p.mem.write_struct(sp, &ctx).is_err() {
                    // No room for the frame: the process dies as if the
                    // signal were uncatchable.
                    k.terminate(pid, ia_abi::signal::wait_status_signaled(sig));
                    router.on_process_exit(k, pid);
                    return;
                }
                let mut mask = p.sig.mask.union(action.mask);
                mask.add(sig);
                p.sig.mask = mask.blockable();
                p.vm.regs[15] = sp;
                p.vm.regs[0] = u64::from(sig.number());
                p.vm.regs[1] = sp;
                p.vm.pc = addr;
                return;
            }
        }
    }
}

/// Fires expired interval timers.
fn fire_timers(k: &mut Kernel) {
    let now = k.clock.elapsed_ns();
    let expired: Vec<Pid> = k
        .procs
        .values()
        .filter(|p| {
            !matches!(p.state, ProcState::Zombie(_))
                && p.itimer.is_some_and(|(deadline, _)| deadline <= now)
        })
        .map(|p| p.pid)
        .collect();
    for pid in expired {
        if let Some(p) = k.procs.get_mut(&pid) {
            if let Some((deadline, interval)) = p.itimer {
                p.itimer = if interval > 0 {
                    Some((deadline + interval.max(1), interval))
                } else {
                    None
                };
            }
        }
        let _ = k.post_signal(pid, Signal::SIGALRM);
    }
}

/// Moves blocked processes whose wakeup condition fired back to runnable.
fn apply_wakeups(k: &mut Kernel) {
    let events = k.take_wakeups();
    if events.is_empty() {
        return;
    }
    let blocked: Vec<(Pid, WaitChannel)> = k
        .procs
        .values()
        .filter_map(|p| match p.state {
            ProcState::Blocked(ch) => Some((p.pid, ch)),
            _ => None,
        })
        .collect();
    for (pid, ch) in blocked {
        let woken = events.iter().any(|ev| wakes(*ev, ch, pid, k));
        if woken {
            if let Some(p) = k.procs.get_mut(&pid) {
                p.state = ProcState::Runnable;
            }
        }
    }
}

fn wakes(ev: WakeEvent, ch: WaitChannel, pid: Pid, k: &Kernel) -> bool {
    match (ev, ch) {
        (WakeEvent::Pipe(a), WaitChannel::PipeReadable(b) | WaitChannel::PipeWritable(b)) => a == b,
        (WakeEvent::ChildOf(parent), WaitChannel::Child) => parent == pid,
        (WakeEvent::SignalTo(target), _) => {
            // A deliverable signal interrupts any wait.
            target == pid
                && k.procs
                    .get(&pid)
                    .is_some_and(|p| p.sig.deliverable().is_some())
        }
        (WakeEvent::Tty, WaitChannel::TtyInput) => true,
        (WakeEvent::Sock(_), WaitChannel::SockAccept) => true,
        // Selects wake conservatively on any I/O-ish event and re-poll.
        (WakeEvent::Pipe(_) | WakeEvent::Tty | WakeEvent::Sock(_), WaitChannel::Select { .. }) => {
            true
        }
        _ => false,
    }
}

/// Wakes selects whose deadline has passed.
fn wake_expired_selects(k: &mut Kernel) {
    let now = k.clock.elapsed_ns();
    let expired: Vec<Pid> = k
        .procs
        .values()
        .filter(|p| {
            matches!(p.state, ProcState::Blocked(WaitChannel::Select { deadline_ns }) if deadline_ns <= now)
        })
        .map(|p| p.pid)
        .collect();
    for pid in expired {
        if let Some(p) = k.procs.get_mut(&pid) {
            p.state = ProcState::Runnable;
        }
    }
}

/// Earliest future event that pure time passage will trigger.
fn earliest_deadline(k: &Kernel) -> Option<u64> {
    let mut best: Option<u64> = None;
    for p in k.procs.values() {
        if matches!(p.state, ProcState::Zombie(_)) {
            continue;
        }
        if let Some((deadline, _)) = p.itimer {
            best = Some(best.map_or(deadline, |b: u64| b.min(deadline)));
        }
        if let ProcState::Blocked(WaitChannel::Select { deadline_ns }) = p.state {
            if deadline_ns != u64::MAX {
                best = Some(best.map_or(deadline_ns, |b: u64| b.min(deadline_ns)));
            }
        }
    }
    best
}

/// Round-robin pick: the lowest runnable pid strictly greater than `last`,
/// wrapping to the lowest runnable pid.
fn pick_runnable(k: &Kernel, last: Pid) -> Option<Pid> {
    let mut first: Option<Pid> = None;
    let mut next: Option<Pid> = None;
    for p in k.procs.values() {
        if !matches!(p.state, ProcState::Runnable) {
            continue;
        }
        if first.is_none_or(|f| p.pid < f) {
            first = Some(p.pid);
        }
        if p.pid > last && next.is_none_or(|n| p.pid < n) {
            next = Some(p.pid);
        }
    }
    next.or(first)
}

impl Kernel {
    /// Convenience: run with the identity router until completion.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        run(self, &mut KernelRouter, RunLimits::default())
    }

    /// Convenience: run with a custom router until completion.
    pub fn run_with<R: SyscallRouter>(&mut self, router: &mut R) -> RunOutcome {
        run(self, router, RunLimits::default())
    }
}
