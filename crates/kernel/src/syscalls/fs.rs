//! Filesystem-object system calls: names, metadata, and the name space.

use ia_abi::{AccessMode, Errno, FileMode, FileType, OpenFlags, RawArgs, Stat, Timeval};
use ia_vfs::{Cred, InodeKind};

use super::{done0, SysOutcome};
use crate::files::{FdEntry, FileKind};
use crate::kernel::{FlockState, Kernel};
use crate::process::Pid;

impl Kernel {
    /// `open(path, flags, mode)`
    pub(crate) fn sys_open(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let flags = OpenFlags::new(args[1] as u32);
        let mode = args[2] as u32;
        let r = self.open_common(pid, args[0], flags, mode);
        match r {
            Ok(fd) => SysOutcome::ok1(fd),
            Err(e) => SysOutcome::err(e),
        }
    }

    fn open_common(
        &mut self,
        pid: Pid,
        path_addr: u64,
        flags: OpenFlags,
        mode: u32,
    ) -> Result<u64, Errno> {
        let path = self.read_path(pid, path_addr)?;
        let (root, cwd, cred) = self.namei_ctx(pid)?;
        let now = self.clock.now();
        let umask = self.proc(pid)?.umask;

        let ino = match self.fs.resolve_rooted(root, cwd, &path, cred) {
            Ok(r) => {
                if flags.has(OpenFlags::O_CREAT) && flags.has(OpenFlags::O_EXCL) {
                    return Err(Errno::EEXIST);
                }
                r.ino
            }
            Err(Errno::ENOENT) if flags.has(OpenFlags::O_CREAT) => {
                let (dir, base) = self.fs.resolve_parent_rooted(root, cwd, &path, cred)?;
                let perm = FileMode::new(mode).masked(umask).perm();
                self.fs.create_file(dir, &base, perm, cred, now)?
            }
            Err(e) => return Err(e),
        };

        let node = self.fs.get(ino)?;
        // Permission checks per requested access.
        if flags.readable() && !node.permits(cred, 4) {
            return Err(Errno::EACCES);
        }
        if flags.writable() && !node.permits(cred, 2) {
            return Err(Errno::EACCES);
        }
        let kind = match &node.kind {
            InodeKind::Directory(_) => {
                if flags.writable() {
                    return Err(Errno::EISDIR);
                }
                FileKind::Vnode(ino)
            }
            InodeKind::Regular(_) => FileKind::Vnode(ino),
            InodeKind::CharDevice(dev) => FileKind::Device(*dev),
            InodeKind::Fifo(attached) => {
                // Attach (or create) the pipe buffer behind the FIFO.
                let id = match attached {
                    Some(id) => *id,
                    None => {
                        let id = self.fs.pipes.create();
                        match &mut self.fs.get_mut(ino)?.kind {
                            InodeKind::Fifo(slot) => *slot = Some(id),
                            _ => unreachable!("checked fifo"),
                        }
                        id
                    }
                };
                if flags.writable() {
                    self.fs.pipes.add_writer(id);
                    FileKind::PipeWrite(id)
                } else {
                    self.fs.pipes.add_reader(id);
                    FileKind::PipeRead(id)
                }
            }
            InodeKind::Symlink(_) => return Err(Errno::ELOOP), // depth exhausted upstream
            InodeKind::Socket => return Err(Errno::EOPNOTSUPP),
        };

        if flags.has(OpenFlags::O_TRUNC) && matches!(kind, FileKind::Vnode(_)) {
            if !flags.writable() {
                return Err(Errno::EACCES);
            }
            if matches!(self.fs.get(ino)?.kind, InodeKind::Regular(_)) {
                self.fs.truncate(ino, 0, now)?;
            }
        }

        if matches!(kind, FileKind::Vnode(_)) {
            self.fs.incref(ino);
        }
        let idx = self.files.insert(kind, flags);
        let fd = self.proc_mut(pid)?.fds.alloc(
            0,
            FdEntry {
                file: idx,
                cloexec: false,
            },
        );
        match fd {
            Ok(fd) => Ok(fd),
            Err(e) => {
                self.release_file(idx);
                Err(e)
            }
        }
    }

    /// `access(path, mode)` — checked against *real* ids, per BSD.
    pub(crate) fn sys_access(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let p = self.proc(pid)?;
            let real = Cred::new(p.uid, p.gid);
            let (root, cwd, _) = self.namei_ctx(pid)?;
            let ino = self.fs.resolve_rooted(root, cwd, &path, real)?.ino;
            let node = self.fs.get(ino)?;
            let m = AccessMode(args[1] as u32);
            let mut want = 0;
            if m.wants_read() {
                want |= 4;
            }
            if m.wants_write() {
                want |= 2;
            }
            if m.wants_exec() {
                want |= 1;
            }
            if want != 0 && !node.permits(real, want) {
                return Err(Errno::EACCES);
            }
            Ok(())
        })();
        done0(r)
    }

    /// `stat(path, buf)` / `lstat(path, buf)`
    pub(crate) fn sys_stat(&mut self, pid: Pid, args: &RawArgs, follow: bool) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = if follow {
                self.resolve_for(pid, &path)?
            } else {
                self.resolve_nofollow_for(pid, &path)?
            };
            let st = self.fs.stat(ino)?;
            self.proc_mut(pid)?.mem.write_struct(args[1], &st)
        })();
        done0(r)
    }

    /// `fstat(fd, buf)`
    pub(crate) fn sys_fstat(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            let file = self.files.get(entry.file)?;
            let st = match file.kind {
                FileKind::Vnode(ino) => self.fs.stat(ino)?,
                FileKind::PipeRead(id) | FileKind::PipeWrite(id) => {
                    let len = self.fs.pipes.get(id).map_or(0, ia_vfs::Pipe::len);
                    Stat {
                        mode: FileMode::typed(FileType::Fifo, 0o600).bits(),
                        size: len as u64,
                        nlink: 1,
                        blksize: ia_vfs::PIPE_CAPACITY as u32,
                        ..Stat::default()
                    }
                }
                FileKind::Device(dev) => Stat {
                    mode: FileMode::typed(FileType::CharDevice, 0o666).bits(),
                    rdev: dev,
                    nlink: 1,
                    ..Stat::default()
                },
                FileKind::Socket(_) => Stat {
                    mode: FileMode::typed(FileType::Socket, 0o600).bits(),
                    nlink: 1,
                    ..Stat::default()
                },
            };
            self.proc_mut(pid)?.mem.write_struct(args[1], &st)
        })();
        done0(r)
    }

    /// `link(path, newpath)`
    pub(crate) fn sys_link(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let old = self.read_path(pid, args[0])?;
            let new = self.read_path(pid, args[1])?;
            let target = self.resolve_nofollow_for(pid, &old)?;
            let (dir, base) = self.resolve_parent_for(pid, &new)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs.link(dir, &base, target, cred, now)
        })();
        done0(r)
    }

    /// `unlink(path)`
    pub(crate) fn sys_unlink(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let (dir, base) = self.resolve_parent_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs.unlink(dir, &base, cred, now)
        })();
        done0(r)
    }

    /// `symlink(contents, linkpath)`
    pub(crate) fn sys_symlink(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let contents = self
                .proc(pid)?
                .mem
                .read_cstr(args[0], ia_abi::types::MAXPATHLEN)?;
            let link = self.read_path(pid, args[1])?;
            let (dir, base) = self.resolve_parent_for(pid, &link)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs
                .symlink(dir, &base, &contents, cred, now)
                .map(|_| ())
        })();
        done0(r)
    }

    /// `readlink(path, buf, bufsize)` → bytes copied (no NUL)
    pub(crate) fn sys_readlink(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_nofollow_for(pid, &path)?;
            let target = self.fs.readlink(ino)?;
            let n = target.len().min(args[2] as usize);
            self.proc_mut(pid)?.mem.write_bytes(args[1], &target[..n])?;
            Ok([n as u64, 0])
        })();
        super::done(r)
    }

    /// `rename(from, to)`
    pub(crate) fn sys_rename(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let from = self.read_path(pid, args[0])?;
            let to = self.read_path(pid, args[1])?;
            let (fdir, fbase) = self.resolve_parent_for(pid, &from)?;
            let (tdir, tbase) = self.resolve_parent_for(pid, &to)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs.rename(fdir, &fbase, tdir, &tbase, cred, now)
        })();
        done0(r)
    }

    /// `mkdir(path, mode)`
    pub(crate) fn sys_mkdir(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let (dir, base) = self.resolve_parent_for(pid, &path)?;
            let p = self.proc(pid)?;
            let perm = FileMode::new(args[1] as u32).masked(p.umask).perm();
            let cred = p.cred();
            let now = self.clock.now();
            self.fs.mkdir(dir, &base, perm, cred, now).map(|_| ())
        })();
        done0(r)
    }

    /// `rmdir(path)`
    pub(crate) fn sys_rmdir(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let (dir, base) = self.resolve_parent_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs.rmdir(dir, &base, cred, now)
        })();
        done0(r)
    }

    /// `chdir(path)`
    pub(crate) fn sys_chdir(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            let node = self.fs.get(ino)?;
            if node.as_dir().is_none() {
                return Err(Errno::ENOTDIR);
            }
            let cred = self.proc(pid)?.cred();
            if !node.permits(cred, 1) {
                return Err(Errno::EACCES);
            }
            self.proc_mut(pid)?.cwd = ino;
            Ok(())
        })();
        done0(r)
    }

    /// `fchdir(fd)`
    pub(crate) fn sys_fchdir(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            let file = self.files.get(entry.file)?;
            let FileKind::Vnode(ino) = file.kind else {
                return Err(Errno::ENOTDIR);
            };
            if self.fs.get(ino)?.as_dir().is_none() {
                return Err(Errno::ENOTDIR);
            }
            self.proc_mut(pid)?.cwd = ino;
            Ok(())
        })();
        done0(r)
    }

    /// `chroot(path)` — superuser only.
    pub(crate) fn sys_chroot(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            if self.proc(pid)?.euid != 0 {
                return Err(Errno::EPERM);
            }
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            if self.fs.get(ino)?.as_dir().is_none() {
                return Err(Errno::ENOTDIR);
            }
            let p = self.proc_mut(pid)?;
            p.root = ino;
            p.cwd = ino;
            Ok(())
        })();
        done0(r)
    }

    /// `chmod(path, mode)`
    pub(crate) fn sys_chmod(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs.chmod(ino, args[1] as u32, cred, now)
        })();
        done0(r)
    }

    /// `chown(path, uid, gid)`
    pub(crate) fn sys_chown(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs
                .chown(ino, args[1] as u32, args[2] as u32, cred, now)
        })();
        done0(r)
    }

    /// `fchmod(fd, mode)`
    pub(crate) fn sys_fchmod(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let ino = self.vnode_of_fd(pid, args[0])?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs.chmod(ino, args[1] as u32, cred, now)
        })();
        done0(r)
    }

    /// `fchown(fd, uid, gid)`
    pub(crate) fn sys_fchown(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let ino = self.vnode_of_fd(pid, args[0])?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs
                .chown(ino, args[1] as u32, args[2] as u32, cred, now)
        })();
        done0(r)
    }

    /// `truncate(path, length)`
    pub(crate) fn sys_truncate(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            if !self.fs.get(ino)?.permits(cred, 2) {
                return Err(Errno::EACCES);
            }
            let now = self.clock.now();
            self.fs.truncate(ino, args[1], now)
        })();
        done0(r)
    }

    /// `ftruncate(fd, length)`
    pub(crate) fn sys_ftruncate(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let entry = self.proc(pid)?.fds.get(args[0])?;
            let file = self.files.get(entry.file)?;
            if !file.flags.writable() {
                return Err(Errno::EINVAL);
            }
            let FileKind::Vnode(ino) = file.kind else {
                return Err(Errno::EINVAL);
            };
            let now = self.clock.now();
            self.fs.truncate(ino, args[1], now)
        })();
        done0(r)
    }

    /// `utimes(path, times)` — `times` points to two `timeval`s, or is NULL
    /// for "now".
    pub(crate) fn sys_utimes(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let ino = self.resolve_for(pid, &path)?;
            let now = self.clock.now();
            let (atime, mtime) = if args[1] == 0 {
                (now, now)
            } else {
                let mem = &self.proc(pid)?.mem;
                (
                    mem.read_struct::<Timeval>(args[1])?,
                    mem.read_struct::<Timeval>(args[1] + Timeval::WIRE_SIZE_U64)?,
                )
            };
            let cred = self.proc(pid)?.cred();
            self.fs.utimes(ino, atime, mtime, cred, now)
        })();
        done0(r)
    }

    /// `mknod(path, mode, dev)` — character devices only.
    pub(crate) fn sys_mknod(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let mode = FileMode::new(args[1] as u32);
            if mode.file_type() != Some(FileType::CharDevice) {
                return Err(Errno::EINVAL);
            }
            let path = self.read_path(pid, args[0])?;
            let (dir, base) = self.resolve_parent_for(pid, &path)?;
            let cred = self.proc(pid)?.cred();
            let now = self.clock.now();
            self.fs
                .mknod_chardev(dir, &base, args[2] as u32, mode.perm(), cred, now)
                .map(|_| ())
        })();
        done0(r)
    }

    /// `mkfifo(path, mode)`
    pub(crate) fn sys_mkfifo(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        let r = (|| {
            let path = self.read_path(pid, args[0])?;
            let (dir, base) = self.resolve_parent_for(pid, &path)?;
            let p = self.proc(pid)?;
            let perm = FileMode::new(args[1] as u32).masked(p.umask).perm();
            let cred = p.cred();
            let now = self.clock.now();
            self.fs.mkfifo(dir, &base, perm, cred, now).map(|_| ())
        })();
        done0(r)
    }

    /// `umask(mask)` → previous mask
    pub(crate) fn sys_umask(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        match self.proc_mut(pid) {
            Ok(p) => {
                let old = p.umask;
                p.umask = args[0] as u32 & 0o777;
                SysOutcome::ok1(u64::from(old))
            }
            Err(e) => SysOutcome::err(e),
        }
    }

    /// `flock(fd, op)` — advisory whole-file locks. Never blocks: a busy
    /// lock is `EWOULDBLOCK` even without `LOCK_NB` (documented divergence).
    pub(crate) fn sys_flock(&mut self, pid: Pid, args: &RawArgs) -> SysOutcome {
        use ia_abi::flags::FlockOp;
        let r = (|| {
            let ino = self.vnode_of_fd(pid, args[0])?;
            let op = args[1] as u32;
            let mut st = self.flocks.get(&ino).copied().unwrap_or_default();
            if op & FlockOp::LOCK_UN != 0 {
                if st.exclusive {
                    st.exclusive = false;
                } else {
                    st.shared = st.shared.saturating_sub(1);
                }
            } else if op & FlockOp::LOCK_EX != 0 {
                if st.exclusive || st.shared > 0 {
                    return Err(Errno::EWOULDBLOCK);
                }
                st.exclusive = true;
            } else if op & FlockOp::LOCK_SH != 0 {
                if st.exclusive {
                    return Err(Errno::EWOULDBLOCK);
                }
                st.shared += 1;
            } else {
                return Err(Errno::EINVAL);
            }
            if st == FlockState::default() {
                self.flocks.remove(&ino);
            } else {
                self.flocks.insert(ino, st);
            }
            Ok(())
        })();
        done0(r)
    }

    /// Resolves a descriptor to a filesystem vnode, or `EINVAL`.
    pub(crate) fn vnode_of_fd(&self, pid: Pid, fd: u64) -> Result<ia_vfs::Ino, Errno> {
        let entry = self.proc(pid)?.fds.get(fd)?;
        match self.files.get(entry.file)?.kind {
            FileKind::Vnode(ino) => Ok(ino),
            _ => Err(Errno::EINVAL),
        }
    }
}

/// Extension for reading the second of two consecutive timevals.
trait TimevalExt {
    const WIRE_SIZE_U64: u64;
}

impl TimevalExt for Timeval {
    const WIRE_SIZE_U64: u64 = <Timeval as ia_abi::wire::Wire>::WIRE_SIZE as u64;
}
