//! Semantic agents under the conformance executor: `crypt`, `zip`, and
//! `union` (§3.3) must be *client*-transparent — programs see the same
//! console bytes, exit statuses, and read-back contents — while being
//! free to transform the at-rest representation underneath.
//!
//! These tests drive the agents with `ia-conform`'s generated programs
//! instead of hand-written scripts, so every filesystem op class in the
//! generator's vocabulary (create/append/read, rename, link, symlink,
//! chmod, chdir, truncate, dup) exercises the agents' path and data
//! interception.

use ia_conform::{check_client_equiv, run_config, sample, ConfOp, OpSet, Program, SchedKind};
use interposition_agents::agents::{CryptAgent, UnionAgent, ZipAgent};
use interposition_agents::interpose::{wrap_process, InterposedRouter};
use interposition_agents::kernel::{KernelBuilder, RunOutcome};
use interposition_agents::vm::ProgramBuilder;

const KEY: &[u8] = b"k3y-material";

/// Crypt round-trips: whatever a client writes through the agent it reads
/// back identically, across the generator's whole fs vocabulary. The
/// at-rest bytes differ, so the VFS digest is excluded.
#[test]
fn crypt_agent_round_trips_generated_programs() {
    for seed in 0..8 {
        let p = sample(seed, 20, OpSet::FS_CLIENT);
        check_client_equiv(&p, || vec![CryptAgent::boxed(b"/tmp/mix", KEY)], false)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

/// Zip round-trips under the same sweep.
#[test]
fn zip_agent_round_trips_generated_programs() {
    for seed in 0..8 {
        let p = sample(seed, 20, OpSet::FS_CLIENT);
        check_client_equiv(&p, || vec![ZipAgent::boxed(b"/tmp/mix")], false)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

/// Stacking the two transforming agents still round-trips: crypt sees
/// zip's compressed representation and vice versa.
#[test]
fn crypt_over_zip_stack_round_trips() {
    for seed in 0..4 {
        let p = sample(seed, 15, OpSet::FS_CLIENT);
        check_client_equiv(
            &p,
            || {
                vec![
                    CryptAgent::boxed(b"/tmp/mix", KEY),
                    ZipAgent::boxed(b"/tmp/mix"),
                ]
            },
            false,
        )
        .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

/// The transformation is real: a writing program leaves *different* bytes
/// on disk under crypt, even though the client view is identical.
#[test]
fn crypt_changes_the_at_rest_digest() {
    let p = Program {
        seed: 3,
        ops: vec![
            ConfOp::CreateWrite {
                file: 0,
                payload: 1,
            },
            ConfOp::ReadEcho { file: 0 },
        ],
    };
    let bare = run_config(&p, SchedKind::Sliced, Vec::new());
    let crypted = run_config(
        &p,
        SchedKind::Sliced,
        vec![CryptAgent::boxed(b"/tmp/mix", KEY)],
    );
    assert_eq!(bare.outcome, RunOutcome::AllExited);
    assert_eq!(crypted.outcome, RunOutcome::AllExited);
    assert_eq!(
        bare.obs.client.console, crypted.obs.client.console,
        "client view identical"
    );
    assert_ne!(
        bare.obs.client.vfs_digest, crypted.obs.client.vfs_digest,
        "stored representation differs"
    );
}

/// A union mount over paths the generated programs never touch is fully
/// transparent — digest included.
#[test]
fn union_agent_outside_its_mounts_is_invisible() {
    for seed in 0..6 {
        let p = sample(seed, 20, OpSet::FS_CLIENT);
        check_client_equiv(
            &p,
            || vec![UnionAgent::boxed(&[b"/tmp/union=/tmp/mix:/tmp/alt"])],
            true,
        )
        .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}

/// Reading through the union: a file that physically lives in the second
/// branch is visible under the virtual prefix.
#[test]
fn union_agent_serves_reads_through_the_virtual_prefix() {
    let mut b = ProgramBuilder::new();
    let path = b.data_asciz(b"/tmp/union/hello");
    let buf = b.data_space(64);
    b.entry_here();
    b.la(0, path);
    b.li(1, 0);
    b.li(2, 0);
    b.sys(interposition_agents::abi::Sysno::Open);
    b.mov(12, 0);
    b.la(1, buf);
    b.li(2, 64);
    b.sys(interposition_agents::abi::Sysno::Read);
    b.mov(2, 0);
    b.li(0, 1);
    b.la(1, buf);
    b.sys(interposition_agents::abi::Sysno::Write);
    b.li(0, 0);
    b.sys(interposition_agents::abi::Sysno::Exit);
    let img = b.build();

    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/tmp/alt").unwrap();
    k.mkdir_p(b"/tmp/mix").unwrap();
    k.write_file(b"/tmp/alt/hello", b"from the lower branch")
        .unwrap();
    let pid = k.spawn_image(&img, &[b"u"], b"u");
    let mut router = InterposedRouter::new();
    wrap_process(
        &mut k,
        &mut router,
        pid,
        UnionAgent::boxed(&[b"/tmp/union=/tmp/mix:/tmp/alt"]),
        &[],
    );
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "from the lower branch");
}
