//! Host-throughput measurement backing `reproduce --json` (`BENCH_1.json`).
//!
//! Unlike everything else in this crate, these numbers are *host*
//! wall-clock, not virtual time: how many simulated instructions and traps
//! per second the interpreter-plus-scheduler retires on the machine
//! running it. Each scenario runs under both the sliced hot-path scheduler
//! and the per-instruction legacy scheduler in the same process, so the
//! reported speedups are measured in one environment rather than compared
//! across commits.
//!
//! Scenarios, following the paper's low-level methodology (§3.4):
//!
//! * a pure compute loop (no traps) — interpreter + scheduler overhead,
//!   reported in Minsns/s;
//! * a `getpid()` trap loop — trap dispatch overhead, reported in traps/s;
//! * both repeated beneath an ALL-interest symbolic agent, the worst-case
//!   interposition configuration of Table 3-4;
//! * the trap loop beneath a batchable pass-through observer (vectored
//!   upcalls) and beneath a stack of three timex agents (flat dispatch
//!   over a deep chain).
//!
//! Every scenario also runs with the trap fast path disabled, so the
//! committed numbers carry the before/after of the fast-path work.

use std::time::Instant;

use ia_agents::{PassThrough, TimeSymbolic, Timex};
use ia_interpose::InterposedRouter;
use ia_kernel::{Engine, Kernel, KernelBuilder, RunOutcome};
use ia_obs::report::{json_escape, json_header};
use ia_vm::{Image, ProgramBuilder};
use ia_workloads::micro::{self, MicroCall};

/// Iterations of the 2-instruction compute loop (≈ 6M instructions with
/// prologue).
const COMPUTE_ITERS: u64 = 3_000_000;
/// `getpid()` traps per trap-loop run.
const TRAP_ITERS: u64 = 150_000;
/// Timed repetitions per scenario; the best (minimum-time) run is kept.
const REPS: usize = 3;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario key, e.g. `compute/no_agent`.
    pub name: String,
    /// `"sliced"` or `"legacy"`.
    pub sched: &'static str,
    /// `"fused"` (superinstruction engine) or `"plain"` (single-step
    /// reference). The legacy scheduler is per-instruction by construction
    /// and always reports `"plain"`.
    pub engine: &'static str,
    /// Whether the trap fast path (flat tables, in-loop answers, vectored
    /// upcalls) was enabled for the run.
    pub fast_path: bool,
    /// Simulated instructions retired.
    pub insns: u64,
    /// Traps dispatched at the kernel.
    pub traps: u64,
    /// Best host wall-clock seconds over the repetitions.
    pub host_secs: f64,
    /// Millions of simulated instructions per host second.
    pub minsns_per_sec: f64,
    /// Traps per host second.
    pub traps_per_sec: f64,
}

/// The agent configuration wrapped around a benchmark process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AgentCfg {
    /// Bare process, no chain.
    None,
    /// One ALL-interest symbolic agent (Table 3-4 worst case).
    AllInterest,
    /// One batchable full-coverage observer (vectored upcall floor).
    Observer,
    /// Three stacked timex agents (deep chain, flat dispatch).
    Stacked3,
}

impl AgentCfg {
    fn install(self, k: &mut Kernel, router: &mut InterposedRouter, pid: ia_kernel::Pid) {
        match self {
            AgentCfg::None => {}
            AgentCfg::AllInterest => {
                ia_interpose::wrap_process(k, router, pid, TimeSymbolic::boxed(), &[]);
            }
            AgentCfg::Observer => {
                ia_interpose::wrap_process(k, router, pid, PassThrough::boxed(), &[]);
            }
            AgentCfg::Stacked3 => {
                for off in [60, 120, 180] {
                    ia_interpose::wrap_process(k, router, pid, Timex::boxed(off), &[]);
                }
            }
        }
    }
}

fn compute_image(iters: u64) -> Image {
    let mut b = ProgramBuilder::new();
    b.entry_here();
    b.li(13, iters);
    let top = b.here();
    let done = b.new_label();
    b.jz(13, done);
    b.addi(13, 13, -1);
    b.jmp(top);
    b.bind(done);
    b.li(0, 0);
    b.sys(ia_abi::Sysno::Exit);
    b.build()
}

fn measure_once(
    img: &Image,
    agent: AgentCfg,
    legacy: bool,
    fast: bool,
    fused: bool,
) -> (u64, u64, f64) {
    let mut k = KernelBuilder::new()
        .fast_path(fast)
        .engine(if fused { Engine::Fused } else { Engine::Plain })
        .build();
    micro::setup(&mut k);
    let pid = k.spawn_image(img, &[b"bench"], b"bench");
    let mut router = InterposedRouter::new();
    agent.install(&mut k, &mut router, pid);
    let t0 = Instant::now();
    let outcome = if legacy {
        k.run_with_legacy(&mut router)
    } else {
        k.run_with(&mut router)
    };
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(outcome, RunOutcome::AllExited, "bench workload must finish");
    (k.total_insns, k.total_syscalls, secs)
}

fn scenario(
    name: &str,
    img: &Image,
    agent: AgentCfg,
    legacy: bool,
    fast: bool,
    fused: bool,
) -> Scenario {
    let mut best: Option<(u64, u64, f64)> = None;
    for _ in 0..REPS {
        let r = measure_once(img, agent, legacy, fast, fused);
        if best.as_ref().is_none_or(|b| r.2 < b.2) {
            best = Some(r);
        }
    }
    let (insns, traps, host_secs) = best.expect("REPS > 0");
    Scenario {
        name: name.to_string(),
        sched: if legacy { "legacy" } else { "sliced" },
        engine: if fused && !legacy { "fused" } else { "plain" },
        fast_path: fast,
        insns,
        traps,
        host_secs,
        minsns_per_sec: insns as f64 / host_secs / 1e6,
        traps_per_sec: traps as f64 / host_secs,
    }
}

/// Runs every scenario under both schedulers, the sliced scheduler under
/// both execution engines, and the fused engine both with and without the
/// trap fast path — each later column turning on one stage of the hot
/// path, so the committed numbers carry each stage's before/after.
#[must_use]
pub fn run_all() -> Vec<Scenario> {
    let compute = compute_image(COMPUTE_ITERS);
    let traps = micro::loop_image(MicroCall::Getpid, TRAP_ITERS);
    let mut out = Vec::new();
    for (loop_name, img, agent) in [
        ("compute/no_agent", &compute, AgentCfg::None),
        (
            "compute/all_interest_agent",
            &compute,
            AgentCfg::AllInterest,
        ),
        ("traps/no_agent", &traps, AgentCfg::None),
        ("traps/all_interest_agent", &traps, AgentCfg::AllInterest),
        ("traps/pass_through", &traps, AgentCfg::Observer),
        ("traps/stacked3", &traps, AgentCfg::Stacked3),
    ] {
        for (legacy, fused, fast) in [
            (true, false, false),
            (false, false, false),
            (false, true, false),
            (false, true, true),
        ] {
            out.push(scenario(loop_name, img, agent, legacy, fast, fused));
        }
    }
    out
}

/// The trap scenario the CI smoke check guards: the bare trap loop on the
/// fully-enabled hot path (sliced scheduler, fused engine, fast path on).
pub const SMOKE_SCENARIO: &str = "traps/no_agent";

/// The compute scenario the CI smoke check guards: the bare compute loop
/// on the fused engine (sliced scheduler, no fast path — no traps to
/// dispatch), gating interpreter throughput in Minsns/s.
pub const SMOKE_COMPUTE_SCENARIO: &str = "compute/no_agent";

/// Measures [`SMOKE_SCENARIO`] on the guarded hot path (fused engine,
/// fast path on) *and* a plain-engine full-dispatch reference of the same
/// loop, back to back in the same host window. The gate compares the
/// live guarded/reference *ratio* against the committed one: shared CI
/// hosts swing absolute throughput by 2× between frequency windows, and
/// a ratio divides the window out while still catching hot-path
/// regressions. Takes the best of several full measurement rounds: a
/// gate must not trip on a cold cache or a scheduling hiccup.
#[must_use]
pub fn run_smoke() -> (Scenario, Scenario) {
    let traps = micro::loop_image(MicroCall::Getpid, TRAP_ITERS);
    best_pair(|| {
        (
            scenario(SMOKE_SCENARIO, &traps, AgentCfg::None, false, true, true),
            scenario(SMOKE_SCENARIO, &traps, AgentCfg::None, false, false, false),
        )
    })
}

/// Measures [`SMOKE_COMPUTE_SCENARIO`] on the fused engine plus its
/// plain-engine reference, same pairing and best-of discipline as
/// [`run_smoke`].
#[must_use]
pub fn run_smoke_compute() -> (Scenario, Scenario) {
    let compute = compute_image(COMPUTE_ITERS);
    best_pair(|| {
        (
            scenario(
                SMOKE_COMPUTE_SCENARIO,
                &compute,
                AgentCfg::None,
                false,
                false,
                true,
            ),
            scenario(
                SMOKE_COMPUTE_SCENARIO,
                &compute,
                AgentCfg::None,
                false,
                false,
                false,
            ),
        )
    })
}

/// Runs `round` three times and keeps the round whose *guarded* scenario
/// was fastest; its reference comes from the same round, so the pair saw
/// the same host window.
fn best_pair(mut round: impl FnMut() -> (Scenario, Scenario)) -> (Scenario, Scenario) {
    (0..3)
        .map(|_| round())
        .min_by(|a, b| a.0.host_secs.total_cmp(&b.0.host_secs))
        .expect("at least one round")
}

/// Renders the scenarios (plus sliced-over-legacy speedups) as the
/// `BENCH_1.json` document. Hand-rolled writer: the workspace is built
/// offline with no serialization dependency.
#[must_use]
pub fn render_json(scenarios: &[Scenario]) -> String {
    let mut s = json_header("bench", "BENCH_1");
    s.push_str("  \"description\": \"host throughput of the simulator hot path, sliced vs legacy scheduler, one environment\",\n");
    s.push_str("  \"machine_profile\": \"i486_25\",\n");
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"sched\": \"{}\", \"engine\": \"{}\", \"fast_path\": {}, \"insns\": {}, \"traps\": {}, \"host_secs\": {:.6}, \"minsns_per_sec\": {:.3}, \"traps_per_sec\": {:.1}}}{}\n",
            json_escape(&sc.name),
            sc.sched,
            sc.engine,
            sc.fast_path,
            sc.insns,
            sc.traps,
            sc.host_secs,
            sc.minsns_per_sec,
            sc.traps_per_sec,
            if i + 1 < scenarios.len() { "," } else { "" },
        ));
    }
    let names: Vec<&String> = {
        let mut v: Vec<&String> = scenarios.iter().map(|s| &s.name).collect();
        v.dedup();
        v
    };
    let of = |name: &str, sched: &str, engine: &str, fast: bool| {
        scenarios.iter().find(|s| {
            s.name == name && s.sched == sched && s.engine == engine && s.fast_path == fast
        })
    };
    s.push_str("  ],\n");
    // Each ratio compares runs taken in this same process, turning on one
    // hot-path stage at a time: scheduler, execution engine, trap fast
    // path.
    for (section, num, den) in [
        (
            "speedup_sliced_over_legacy",
            ("legacy", "plain", false),
            ("sliced", "plain", false),
        ),
        (
            "speedup_fused_over_plain",
            ("sliced", "plain", false),
            ("sliced", "fused", false),
        ),
        (
            "speedup_fast_over_nofast",
            ("sliced", "fused", false),
            ("sliced", "fused", true),
        ),
    ] {
        let rows: Vec<(&String, f64)> = names
            .iter()
            .filter_map(|name| {
                let slow = of(name, num.0, num.1, num.2)?;
                let quick = of(name, den.0, den.1, den.2)?;
                Some((*name, slow.host_secs / quick.host_secs))
            })
            .collect();
        s.push_str(&format!("  \"{section}\": {{\n"));
        for (i, (name, speedup)) in rows.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {:.2}{}\n",
                json_escape(name),
                speedup,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        let last = section == "speedup_fast_over_nofast";
        s.push_str(if last { "  }\n" } else { "  },\n" });
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_image_retires_expected_instructions() {
        let mut k = KernelBuilder::new().build();
        micro::setup(&mut k);
        k.spawn_image(&compute_image(50), &[b"c"], b"c");
        assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
        // 1 (li) + 50 × 3 (jz, addi, jmp) + 1 (jz taken) + 1 (li) +
        // 2 (sys expands to li r7 + trap)
        assert_eq!(k.total_insns, 1 + 50 * 3 + 1 + 1 + 2);
    }

    fn fake(sched: &'static str, engine: &'static str, fast: bool, host_secs: f64) -> Scenario {
        Scenario {
            name: "compute/no_agent".into(),
            sched,
            engine,
            fast_path: fast,
            insns: 100,
            traps: 1,
            host_secs,
            minsns_per_sec: 100.0 / host_secs / 1e6,
            traps_per_sec: 1.0 / host_secs,
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let scenarios = vec![
            fake("legacy", "plain", false, 0.2),
            fake("sliced", "plain", false, 0.05),
            fake("sliced", "fused", false, 0.025),
            fake("sliced", "fused", true, 0.0125),
        ];
        let j = render_json(&scenarios);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"schema_version\": 1"));
        assert_eq!(j.matches("\"name\"").count(), 4);
        // legacy (0.2) over sliced plain (0.05) = 4; each later stage
        // (fused engine, fast path) halves the time again.
        assert!(j.contains("\"speedup_sliced_over_legacy\""));
        assert!(j.contains("\"compute/no_agent\": 4.00"));
        assert!(j.contains("\"speedup_fused_over_plain\""));
        assert!(j.contains("\"speedup_fast_over_nofast\""));
        assert_eq!(j.matches("\"compute/no_agent\": 2.00").count(), 2);
        assert!(j.contains("\"engine\": \"fused\""));
        assert!(j.contains("\"fast_path\": true"));
        let opens = j.matches('{').count();
        assert_eq!(opens, j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        // Regression: the old local escaper missed control characters
        // entirely (and the shared one must keep handling quotes and
        // backslashes in scenario names).
        let odd = |sched: &'static str| Scenario {
            name: "odd \"name\"\\with\ncontrols".into(),
            sched,
            engine: "plain",
            fast_path: false,
            insns: 1,
            traps: 0,
            host_secs: 0.1,
            minsns_per_sec: 0.0,
            traps_per_sec: 0.0,
        };
        let scenarios = vec![odd("legacy"), odd("sliced")];
        let j = render_json(&scenarios);
        assert!(j.contains(r#"odd \"name\"\\with\ncontrols"#));
        assert!(!j.contains('\u{0}'));
        // No raw newline inside any string literal: every line must end
        // outside a quote run (cheap proxy: the escaped form appears and
        // the raw name does not).
        assert!(!j.contains("odd \"name\"\\with\ncontrols"));
    }
}
