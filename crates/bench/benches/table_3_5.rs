//! Criterion bench for Table 3-5: each micro syscall loop with and without
//! the time_symbolic agent (host wall-clock; virtual µs printed by
//! `reproduce`).

use criterion::{criterion_group, criterion_main, Criterion};
use ia_agents::TimeSymbolic;
use ia_interpose::InterposedRouter;
use ia_kernel::{Kernel, I486_25};
use ia_workloads::micro::{self, MicroCall};

fn run(call: MicroCall, with_agent: bool) -> u64 {
    let mut k = Kernel::new(I486_25);
    micro::setup(&mut k);
    let pid = k.spawn_image(&micro::loop_image(call, 32), &[b"m"], b"m");
    let mut router = InterposedRouter::new();
    if with_agent {
        router.push_agent(pid, TimeSymbolic::boxed());
    }
    k.run_with(&mut router);
    k.clock.elapsed_ns()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_3_5_syscalls");
    g.sample_size(10);
    for call in [
        MicroCall::Getpid,
        MicroCall::Read1k,
        MicroCall::Stat,
        MicroCall::ForkWaitExit,
    ] {
        g.bench_function(format!("{}_without", call.name()), |b| {
            b.iter(|| run(call, false));
        });
        g.bench_function(format!("{}_with_agent", call.name()), |b| {
            b.iter(|| run(call, true));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
