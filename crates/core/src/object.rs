//! Layer 2 (descriptor side) — reference-counted *open objects*.
//!
//! "Toolkit objects currently provided at this level are ... active file
//! descriptors (`descriptor`), and reference counted open objects
//! (`open_object`)."
//!
//! An [`OpenObject`] stands behind one or more descriptors (shared by
//! `dup`/`dup2`/`F_DUPFD`, hence the [`Arc`] reference counting). Every
//! descriptor-using system call has a method with a pass-through default;
//! agents provide derived objects — e.g. the union agent's merged
//! directory, or an encrypting agent's transforming file object.
//!
//! Handles are `Arc<Mutex<…>>`, not `Rc<RefCell<…>>`: agents must be
//! [`Send`] so whole kernels can migrate between the fleet's host threads.
//! Sharing never crosses a tenant — the mutex is only ever taken
//! uncontended by the one thread currently driving that tenant.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ia_abi::Sysno;
use ia_kernel::SysOutcome;

use crate::ctx::SymCtx;

/// A shared handle to an open object (the paper's reference counting).
pub type ObjRef = Arc<Mutex<dyn OpenObject>>;

/// Wraps an object into a shared handle.
pub fn obj_ref<T: OpenObject + 'static>(obj: T) -> ObjRef {
    Arc::new(Mutex::new(obj))
}

/// The operations a descriptor can perform on its open object, with
/// pass-through defaults.
#[allow(unused_variables)]
pub trait OpenObject: Send {
    /// Diagnostic name.
    fn obj_name(&self) -> &'static str {
        "open-object"
    }

    /// `read(fd, buf, nbyte)`
    fn read(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        ctx.down_args(Sysno::Read, [fd, buf, nbyte, 0, 0, 0])
    }

    /// `write(fd, buf, nbyte)`
    fn write(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        ctx.down_args(Sysno::Write, [fd, buf, nbyte, 0, 0, 0])
    }

    /// `lseek(fd, offset, whence)`
    fn lseek(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, offset: u64, whence: u64) -> SysOutcome {
        ctx.down_args(Sysno::Lseek, [fd, offset, whence, 0, 0, 0])
    }

    /// `fstat(fd, statbuf)`
    fn fstat(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, statbuf: u64) -> SysOutcome {
        ctx.down_args(Sysno::Fstat, [fd, statbuf, 0, 0, 0, 0])
    }

    /// `ioctl(fd, request, argp)`
    fn ioctl(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, request: u64, argp: u64) -> SysOutcome {
        ctx.down_args(Sysno::Ioctl, [fd, request, argp, 0, 0, 0])
    }

    /// `ftruncate(fd, length)`
    fn ftruncate(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, length: u64) -> SysOutcome {
        ctx.down_args(Sysno::Ftruncate, [fd, length, 0, 0, 0, 0])
    }

    /// `fsync(fd)`
    fn fsync(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        ctx.down_args(Sysno::Fsync, [fd, 0, 0, 0, 0, 0])
    }

    /// `fchmod(fd, mode)`
    fn fchmod(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, mode: u64) -> SysOutcome {
        ctx.down_args(Sysno::Fchmod, [fd, mode, 0, 0, 0, 0])
    }

    /// `fchown(fd, uid, gid)`
    fn fchown(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, uid: u64, gid: u64) -> SysOutcome {
        ctx.down_args(Sysno::Fchown, [fd, uid, gid, 0, 0, 0])
    }

    /// `flock(fd, operation)`
    fn flock(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, operation: u64) -> SysOutcome {
        ctx.down_args(Sysno::Flock, [fd, operation, 0, 0, 0, 0])
    }

    /// `getdirentries(fd, buf, nbytes, basep)`
    fn getdirentries(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        buf: u64,
        nbytes: u64,
        basep: u64,
    ) -> SysOutcome {
        ctx.down_args(Sysno::Getdirentries, [fd, buf, nbytes, basep, 0, 0])
    }

    /// `close(fd)` — called on the *last* descriptor referencing the
    /// object.
    fn close(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        ctx.down_args(Sysno::Close, [fd, 0, 0, 0, 0, 0])
    }

    /// Deep-clones the object for a forked child's copy of the agent.
    fn clone_object(&self) -> Box<dyn OpenObject>;
}

/// The default open object: every operation passes through.
#[derive(Debug, Clone, Default)]
pub struct Passthrough;

impl OpenObject for Passthrough {
    fn obj_name(&self) -> &'static str {
        "passthrough"
    }
    fn clone_object(&self) -> Box<dyn OpenObject> {
        Box::new(Passthrough)
    }
}

/// Deep-clones a descriptor table preserving `dup` sharing: descriptors
/// that shared one object before the clone share one (new) object after.
#[must_use]
pub fn clone_descriptor_table(table: &HashMap<u64, ObjRef>) -> HashMap<u64, ObjRef> {
    let mut seen: HashMap<usize, ObjRef> = HashMap::new();
    table
        .iter()
        .map(|(&fd, obj)| {
            let key = Arc::as_ptr(obj).cast::<u8>() as usize;
            let cloned = seen
                .entry(key)
                .or_insert_with(|| {
                    Arc::from(Mutex::new(ClonedBox(obj.lock().unwrap().clone_object()))) as ObjRef
                })
                .clone();
            (fd, cloned)
        })
        .collect()
}

/// Adapter so a `Box<dyn OpenObject>` can live inside an [`ObjRef`].
struct ClonedBox(Box<dyn OpenObject>);

impl OpenObject for ClonedBox {
    fn obj_name(&self) -> &'static str {
        self.0.obj_name()
    }
    fn read(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        self.0.read(ctx, fd, buf, nbyte)
    }
    fn write(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, buf: u64, nbyte: u64) -> SysOutcome {
        self.0.write(ctx, fd, buf, nbyte)
    }
    fn lseek(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, offset: u64, whence: u64) -> SysOutcome {
        self.0.lseek(ctx, fd, offset, whence)
    }
    fn fstat(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, statbuf: u64) -> SysOutcome {
        self.0.fstat(ctx, fd, statbuf)
    }
    fn ioctl(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, request: u64, argp: u64) -> SysOutcome {
        self.0.ioctl(ctx, fd, request, argp)
    }
    fn ftruncate(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, length: u64) -> SysOutcome {
        self.0.ftruncate(ctx, fd, length)
    }
    fn fsync(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        self.0.fsync(ctx, fd)
    }
    fn fchmod(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, mode: u64) -> SysOutcome {
        self.0.fchmod(ctx, fd, mode)
    }
    fn fchown(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, uid: u64, gid: u64) -> SysOutcome {
        self.0.fchown(ctx, fd, uid, gid)
    }
    fn flock(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64, operation: u64) -> SysOutcome {
        self.0.flock(ctx, fd, operation)
    }
    fn getdirentries(
        &mut self,
        ctx: &mut SymCtx<'_, '_>,
        fd: u64,
        buf: u64,
        nbytes: u64,
        basep: u64,
    ) -> SysOutcome {
        self.0.getdirentries(ctx, fd, buf, nbytes, basep)
    }
    fn close(&mut self, ctx: &mut SymCtx<'_, '_>, fd: u64) -> SysOutcome {
        self.0.close(ctx, fd)
    }
    fn clone_object(&self) -> Box<dyn OpenObject> {
        self.0.clone_object()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_preserves_dup_sharing() {
        let a = obj_ref(Passthrough);
        let b = obj_ref(Passthrough);
        let mut table: HashMap<u64, ObjRef> = HashMap::new();
        table.insert(3, a.clone());
        table.insert(4, a); // dup'd
        table.insert(5, b);
        let cloned = clone_descriptor_table(&table);
        assert_eq!(cloned.len(), 3);
        assert!(
            Arc::ptr_eq(&cloned[&3], &cloned[&4]),
            "shared object stays shared"
        );
        assert!(
            !Arc::ptr_eq(&cloned[&3], &cloned[&5]),
            "distinct objects stay distinct"
        );
        assert!(
            !Arc::ptr_eq(&cloned[&3], &table[&3]),
            "clone is independent of the original"
        );
    }
}
