//! ia-obs: flight recorder and per-layer syscall metrics.
//!
//! The observability layer the paper's §6 evaluation implies but never
//! names: to report per-call interposition overheads we must attribute
//! work to individual layers of the agent chain, and to debug conformance
//! failures we want a replayable record of the last few hundred decisions
//! the kernel made. Both live here, behind a facade ([`Obs`]) that costs a
//! single branch when disabled.
//!
//! Two sub-systems share one enable switch:
//!
//! * a **flight recorder** — a fixed-capacity ring buffer of typed
//!   [`Event`]s, each stamped with a monotone sequence number and the
//!   virtual clock at record time. When full, the oldest event is
//!   overwritten; [`Obs::dropped`] counts the casualties.
//! * a **metrics registry** — per `(layer, syscall)` counters and
//!   log2-bucket latency histograms of both *virtual* ns (simulated cost)
//!   and *host* ns (wall time spent inside the layer). Attribution is
//!   *exclusive*: time spent in layers below is subtracted out via a frame
//!   stack, so a pass-through agent shows only its own dispatch cost.
//!
//! Invariants the rest of the workspace relies on:
//!
//! * **Inertness** — no hook advances the virtual clock, touches kernel
//!   state, or panics. Enabling the recorder must not change a single
//!   observable bit of a run (`crates/bench/tests/obs_inert.rs` proves it).
//! * **Zero-dep** — depends only on `ia-abi` (for syscall names in
//!   reports) and `std`.

use std::collections::BTreeMap;
use std::time::Instant;

pub mod report;

/// Process id, mirrored from `ia-kernel` (which this crate cannot depend
/// on without a cycle).
pub type Pid = u32;

/// Number of log2 latency buckets: bucket `i` counts samples with
/// `2^(i-1) <= ns < 2^i` (bucket 0 is exactly 0 ns). 48 buckets cover
/// ~3.2 days in nanoseconds, far beyond any simulated run.
pub const HIST_BUCKETS: usize = 48;

/// How a trap left a layer, as seen by the metrics hooks. A reduced
/// mirror of the kernel's `SysOutcome` (which ia-obs cannot name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed with a success value.
    Ok,
    /// Completed with the given errno number.
    Err(u32),
    /// Blocked; the trap will be re-dispatched on wake.
    Block,
    /// Control does not return to the caller (exit, exec replacement).
    NoReturn,
}

/// Interned layer identifier; resolve with [`Obs::layer_name`].
pub type LayerId = u16;

/// One recorded fact. Small and `Copy` so the ring buffer stays flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A trap entered a layer ("kernel", "interpose", or an agent name).
    LayerEnter { layer: LayerId, pid: Pid, nr: u32 },
    /// The matching exit, with how the call resolved.
    LayerExit {
        layer: LayerId,
        pid: Pid,
        nr: u32,
        outcome: Outcome,
    },
    /// The scheduler dispatched a trap; `restarts` counts prior Block
    /// outcomes of the same logical call.
    TrapDispatch { pid: Pid, nr: u32, restarts: u32 },
    /// The scheduler ran a slice of `retired` instructions for `pid`.
    Slice { pid: Pid, retired: u64 },
    /// A signal was delivered (past the agent filter chain) to `pid`.
    SignalDelivered { pid: Pid, sig: u32 },
    /// A conformance fault injector forced `nr` to fail with `errno`.
    FaultInjected { pid: Pid, nr: u32, errno: u32 },
}

/// An [`Event`] plus its recording context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// Monotone per-recorder sequence number, starting at 0.
    pub seq: u64,
    /// Virtual clock (ns) when the event was recorded.
    pub vclock_ns: u64,
    /// The event itself.
    pub event: Event,
}

/// Log2 histogram of nanosecond samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist(pub [u64; HIST_BUCKETS]);

impl Default for Hist {
    fn default() -> Hist {
        Hist([0; HIST_BUCKETS])
    }
}

impl Hist {
    /// Bucket index for a sample: 0 for 0 ns, else `ceil(log2(ns)) + 1`
    /// clamped into range.
    #[must_use]
    pub fn bucket(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    fn record(&mut self, ns: u64) {
        self.0[Self::bucket(ns)] += 1;
    }

    /// Total samples across all buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Counters for one `(layer, syscall)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallStat {
    /// Layer entries observed (one per trap delivery, so a call that
    /// blocks and restarts counts once per delivery).
    pub count: u64,
    /// Exclusive virtual ns spent in the layer (children subtracted).
    pub virt_ns: u64,
    /// Exclusive host ns spent in the layer (children subtracted).
    pub host_ns: u64,
    /// Histogram of per-entry exclusive virtual ns.
    pub virt_hist: Hist,
    /// Histogram of per-entry exclusive host ns.
    pub host_hist: Hist,
}

/// Sorted, borrow-free copy of the registry for report generation.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// One entry per `(layer name, syscall nr)` with any samples,
    /// sorted by layer then nr.
    pub rows: Vec<(String, u32, CallStat)>,
}

impl MetricsSnapshot {
    /// Sum of `count` over every row of `layer`.
    #[must_use]
    pub fn layer_calls(&self, layer: &str) -> u64 {
        self.rows
            .iter()
            .filter(|(l, _, _)| l == layer)
            .map(|(_, _, s)| s.count)
            .sum()
    }
}

/// In-flight layer entry used for exclusive attribution.
#[derive(Debug)]
struct Frame {
    layer: LayerId,
    nr: u32,
    v_start: u64,
    h_start: Instant,
    /// Inclusive virtual ns of completed child frames.
    child_v: u64,
    /// Inclusive host ns of completed child frames.
    child_h: u64,
}

#[derive(Debug)]
struct Inner {
    // Flight recorder.
    ring: Vec<Stamped>,
    cap: usize,
    head: usize,
    seq: u64,
    // Metrics.
    layers: Vec<&'static str>,
    stats: BTreeMap<(LayerId, u32), CallStat>,
    frames: Vec<Frame>,
}

impl Inner {
    fn new(capacity: usize) -> Inner {
        Inner {
            ring: Vec::with_capacity(capacity.min(4096)),
            cap: capacity.max(1),
            head: 0,
            seq: 0,
            layers: Vec::new(),
            stats: BTreeMap::new(),
            frames: Vec::new(),
        }
    }

    fn intern(&mut self, name: &'static str) -> LayerId {
        if let Some(i) = self.layers.iter().position(|l| *l == name) {
            return i as LayerId;
        }
        self.layers.push(name);
        (self.layers.len() - 1) as LayerId
    }

    fn push(&mut self, vclock_ns: u64, event: Event) {
        let stamped = Stamped {
            seq: self.seq,
            vclock_ns,
            event,
        };
        self.seq += 1;
        if self.ring.len() < self.cap {
            self.ring.push(stamped);
        } else {
            self.ring[self.head] = stamped;
            self.head = (self.head + 1) % self.cap;
        }
    }
}

/// The facade the kernel and dispatch paths hold. Disabled (the default)
/// it is a `None` check per hook; enabled it records events and metrics.
#[derive(Debug, Default)]
pub struct Obs {
    inner: Option<Box<Inner>>,
}

impl Obs {
    /// A disabled recorder (what a freshly built kernel installs).
    #[must_use]
    pub fn new() -> Obs {
        Obs::default()
    }

    /// Turns recording on with a ring of `capacity` events (min 1).
    /// Re-enabling resets all recorded state.
    pub fn enable(&mut self, capacity: usize) {
        self.inner = Some(Box::new(Inner::new(capacity)));
    }

    /// Turns recording off and discards all recorded state.
    pub fn disable(&mut self) {
        self.inner = None;
    }

    /// True when hooks record.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- hooks (each a no-op when disabled) -----------------------------
    //
    // Each hook is an `#[inline]` null-check that tail-calls a `#[cold]`
    // `#[inline(never)]` worker. The split matters: these sit inside the
    // scheduler and interpreter hot loops, and inlining the full recording
    // body there measurably slows the *disabled* configuration through
    // sheer code growth. Only the one-branch guard may be inlined.

    /// A trap enters `layer` for `pid`/`nr` at virtual time `vnow_ns`.
    #[inline]
    pub fn layer_enter(&mut self, layer: &'static str, pid: Pid, nr: u32, vnow_ns: u64) {
        if self.inner.is_some() {
            self.layer_enter_slow(layer, pid, nr, vnow_ns);
        }
    }

    #[cold]
    #[inline(never)]
    fn layer_enter_slow(&mut self, layer: &'static str, pid: Pid, nr: u32, vnow_ns: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let id = inner.intern(layer);
        inner.push(vnow_ns, Event::LayerEnter { layer: id, pid, nr });
        inner.frames.push(Frame {
            layer: id,
            nr,
            v_start: vnow_ns,
            h_start: Instant::now(),
            child_v: 0,
            child_h: 0,
        });
    }

    /// The matching exit. Records the event and charges the layer's
    /// *exclusive* virtual/host time to the metrics registry.
    #[inline]
    pub fn layer_exit(
        &mut self,
        layer: &'static str,
        pid: Pid,
        nr: u32,
        outcome: Outcome,
        vnow_ns: u64,
    ) {
        if self.inner.is_some() {
            self.layer_exit_slow(layer, pid, nr, outcome, vnow_ns);
        }
    }

    #[cold]
    #[inline(never)]
    fn layer_exit_slow(
        &mut self,
        layer: &'static str,
        pid: Pid,
        nr: u32,
        outcome: Outcome,
        vnow_ns: u64,
    ) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let id = inner.intern(layer);
        inner.push(
            vnow_ns,
            Event::LayerExit {
                layer: id,
                pid,
                nr,
                outcome,
            },
        );
        // Pop the matching frame. Enter/exit calls bracket the dispatch
        // code structurally, so the top frame is the right one; if the
        // stack is somehow empty we record the event and skip metrics
        // rather than panic (hooks must be inert).
        let Some(frame) = inner.frames.pop() else {
            return;
        };
        let inclusive_v = vnow_ns.saturating_sub(frame.v_start);
        let inclusive_h = u64::try_from(frame.h_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let excl_v = inclusive_v.saturating_sub(frame.child_v);
        let excl_h = inclusive_h.saturating_sub(frame.child_h);
        let stat = inner.stats.entry((frame.layer, frame.nr)).or_default();
        stat.count += 1;
        stat.virt_ns += excl_v;
        stat.host_ns += excl_h;
        stat.virt_hist.record(excl_v);
        stat.host_hist.record(excl_h);
        if let Some(parent) = inner.frames.last_mut() {
            parent.child_v += inclusive_v;
            parent.child_h += inclusive_h;
        }
    }

    /// The scheduler dispatched a trap (`restarts` > 0 on re-delivery of
    /// a call that blocked).
    #[inline]
    pub fn trap_dispatch(&mut self, pid: Pid, nr: u32, restarts: u32, vnow_ns: u64) {
        if self.inner.is_some() {
            self.record_slow(vnow_ns, Event::TrapDispatch { pid, nr, restarts });
        }
    }

    /// The scheduler ran `retired` instructions of `pid`.
    #[inline]
    pub fn slice(&mut self, pid: Pid, retired: u64, vnow_ns: u64) {
        if self.inner.is_some() {
            self.record_slow(vnow_ns, Event::Slice { pid, retired });
        }
    }

    /// A signal cleared the agent filter chain and reached `pid`.
    #[inline]
    pub fn signal_delivered(&mut self, pid: Pid, sig: u32, vnow_ns: u64) {
        if self.inner.is_some() {
            self.record_slow(vnow_ns, Event::SignalDelivered { pid, sig });
        }
    }

    /// A fault injector forced `nr` to fail with `errno`.
    #[inline]
    pub fn fault_injected(&mut self, pid: Pid, nr: u32, errno: u32, vnow_ns: u64) {
        if self.inner.is_some() {
            self.record_slow(vnow_ns, Event::FaultInjected { pid, nr, errno });
        }
    }

    #[cold]
    #[inline(never)]
    fn record_slow(&mut self, vnow_ns: u64, event: Event) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.push(vnow_ns, event);
        }
    }

    // ---- readers --------------------------------------------------------

    /// All retained events, oldest first. Empty when disabled.
    #[must_use]
    pub fn events(&self) -> Vec<Stamped> {
        let Some(inner) = self.inner.as_deref() else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(inner.ring.len());
        out.extend_from_slice(&inner.ring[inner.head..]);
        out.extend_from_slice(&inner.ring[..inner.head]);
        out
    }

    /// Events recorded but overwritten by newer ones.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.seq - i.ring.len() as u64)
    }

    /// Total events ever recorded (retained + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.seq)
    }

    /// Resolves an interned [`LayerId`] from an event.
    #[must_use]
    pub fn layer_name(&self, id: LayerId) -> &'static str {
        self.inner
            .as_deref()
            .and_then(|i| i.layers.get(id as usize).copied())
            .unwrap_or("?")
    }

    /// Sorted copy of the metrics registry. Empty when disabled.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let Some(inner) = self.inner.as_deref() else {
            return MetricsSnapshot::default();
        };
        let mut rows: Vec<(String, u32, CallStat)> = inner
            .stats
            .iter()
            .map(|(&(layer, nr), stat)| {
                let name = inner
                    .layers
                    .get(layer as usize)
                    .copied()
                    .unwrap_or("?")
                    .to_owned();
                (name, nr, stat.clone())
            })
            .collect();
        rows.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        MetricsSnapshot { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_record_nothing() {
        let mut o = Obs::new();
        o.layer_enter("kernel", 1, 20, 0);
        o.layer_exit("kernel", 1, 20, Outcome::Ok, 10);
        o.slice(1, 100, 20);
        assert!(!o.is_enabled());
        assert!(o.events().is_empty());
        assert_eq!(o.recorded(), 0);
        assert!(o.metrics().rows.is_empty());
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut o = Obs::new();
        o.enable(4);
        for i in 0..10u64 {
            o.slice(1, i, i * 100);
        }
        let ev = o.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(o.recorded(), 10);
        assert_eq!(o.dropped(), 6);
        // Oldest-first, strictly increasing sequence numbers 6..=9.
        let seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(matches!(ev[3].event, Event::Slice { retired: 9, .. }));
    }

    #[test]
    fn exclusive_attribution_subtracts_children() {
        let mut o = Obs::new();
        o.enable(64);
        // Outer layer from v=0 to v=100, inner from v=10 to v=90.
        o.layer_enter("outer", 1, 3, 0);
        o.layer_enter("inner", 1, 3, 10);
        o.layer_exit("inner", 1, 3, Outcome::Ok, 90);
        o.layer_exit("outer", 1, 3, Outcome::Ok, 100);
        let m = o.metrics();
        let get = |layer: &str| {
            m.rows
                .iter()
                .find(|(l, nr, _)| l == layer && *nr == 3)
                .map(|(_, _, s)| s.clone())
                .unwrap()
        };
        let outer = get("outer");
        let inner = get("inner");
        assert_eq!(inner.count, 1);
        assert_eq!(inner.virt_ns, 80);
        assert_eq!(outer.count, 1);
        assert_eq!(outer.virt_ns, 20, "outer's exclusive time excludes inner");
    }

    #[test]
    fn nested_same_layer_frames_pair_correctly() {
        let mut o = Obs::new();
        o.enable(64);
        o.layer_enter("a", 1, 4, 0);
        o.layer_enter("a", 1, 4, 5);
        o.layer_exit("a", 1, 4, Outcome::Err(9), 25);
        o.layer_exit("a", 1, 4, Outcome::Ok, 40);
        let m = o.metrics();
        assert_eq!(m.rows.len(), 1);
        let (_, _, s) = &m.rows[0];
        assert_eq!(s.count, 2);
        assert_eq!(s.virt_ns, 20 + 20);
        assert_eq!(s.virt_hist.count(), 2);
    }

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(2), 2);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn unbalanced_exit_is_tolerated() {
        let mut o = Obs::new();
        o.enable(8);
        o.layer_exit("kernel", 1, 20, Outcome::Ok, 5);
        assert_eq!(o.events().len(), 1);
        assert!(o.metrics().rows.is_empty());
    }

    #[test]
    fn reenable_resets() {
        let mut o = Obs::new();
        o.enable(8);
        o.slice(1, 1, 1);
        o.enable(8);
        assert_eq!(o.recorded(), 0);
    }
}
