//! Figures 1-1 through 1-4 as executable assertions: the four
//! configurations of kernel, agents and applications the paper diagrams.

use interposition_agents::agents::{Timex, TraceAgent, UnionAgent};
use interposition_agents::interpose::{spawn_with_agent, InterposedRouter};
use interposition_agents::kernel::{KernelBuilder, RunOutcome};
use interposition_agents::vm::assemble;

const HELLO: &str = r#"
    .data
    msg: .asciz "hi "
    .text
    main:
        li r0, 1
        la r1, msg
        li r2, 3
        sys write
        li r0, 0
        sys exit
"#;

/// Figure 1-1: the kernel provides every instance of the interface —
/// several applications, no agents.
#[test]
fn figure_1_1_kernel_provides_all_instances() {
    let mut k = KernelBuilder::new().build();
    let img = assemble(HELLO).unwrap();
    for name in [&b"csh"[..], b"emacs", b"mail", b"make"] {
        k.spawn_image(&img, &[name], name);
    }
    assert_eq!(k.run_to_completion(), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "hi hi hi hi ");
}

/// Figure 1-2: user code interposed between one unmodified application and
/// the kernel.
#[test]
fn figure_1_2_user_code_at_the_interface() {
    let mut k = KernelBuilder::new().build();
    let img = assemble(HELLO).unwrap();
    let mut router = InterposedRouter::new();
    let (agent, handle) = TraceAgent::with_log(b"/tmp/t.log");
    spawn_with_agent(
        &mut k,
        &mut router,
        Box::new(agent),
        &[],
        &img,
        &[b"app"],
        b"app",
    );
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "hi ");
    assert!(handle.text().contains("write(1,"), "agent saw the call");
}

/// Figure 1-3: kernel *and* agents provide instances — some applications
/// run bare, others under (different) agents, all on one kernel.
#[test]
fn figure_1_3_kernel_and_agents_provide_instances() {
    let mut k = KernelBuilder::new().build();
    let img = assemble(HELLO).unwrap();
    let mut router = InterposedRouter::new();
    // csh and emacs talk straight to the kernel.
    k.spawn_image(&img, &[b"csh"], b"csh");
    k.spawn_image(&img, &[b"emacs"], b"emacs");
    // An untrusted binary runs in a restricted environment.
    let (sandbox, _) = interposition_agents::agents::SandboxAgent::new(
        interposition_agents::agents::SandboxPolicy::locked_down(),
    );
    spawn_with_agent(
        &mut k,
        &mut router,
        sandbox,
        &[],
        &img,
        &[b"untrusted"],
        b"untrusted",
    );
    // Another client under a time-shifting agent.
    spawn_with_agent(
        &mut k,
        &mut router,
        Timex::boxed(3600),
        &[],
        &img,
        &[b"mail"],
        b"mail",
    );
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(k.console.output_string().matches("hi ").count(), 4);
}

/// Figure 1-4: agents can share state and provide multiple instances — one
/// union view serving two client processes at once.
#[test]
fn figure_1_4_agents_share_state_across_instances() {
    let reader = r#"
        .data
        p: .asciz "/view/shared.txt"
        buf: .space 32
        .text
        main:
            la r0, p
            li r1, 0
            li r2, 0
            sys open
            mov r3, r0
            mov r0, r3
            la r1, buf
            li r2, 32
            sys read
            mov r2, r0
            li r0, 1
            la r1, buf
            sys write
            li r0, 0
            sys exit
    "#;
    let mut k = KernelBuilder::new().build();
    k.mkdir_p(b"/a").unwrap();
    k.mkdir_p(b"/b").unwrap();
    k.write_file(b"/b/shared.txt", b"one-view ").unwrap();
    let img = assemble(reader).unwrap();
    let mut router = InterposedRouter::new();
    // Two independent clients of the same customized filesystem view.
    for name in [&b"mail"[..], b"make"] {
        spawn_with_agent(
            &mut k,
            &mut router,
            UnionAgent::boxed(&[b"/view=/a:/b"]),
            &[],
            &img,
            &[name],
            name,
        );
    }
    assert_eq!(k.run_with(&mut router), RunOutcome::AllExited);
    assert_eq!(k.console.output_string(), "one-view one-view ");
}
