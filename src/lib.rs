//! # interposition-agents — facade crate
//!
//! Rust reproduction of *"Interposition Agents: Transparently Interposing
//! User Code at the System Interface"* (Michael B. Jones, SOSP 1993).
//!
//! This crate re-exports the whole workspace under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! - [`abi`] — the 4.3BSD-style system interface definition
//! - [`vfs`] — the in-memory filesystem substrate
//! - [`vm`] — the register-machine VM and assembler ("binaries")
//! - [`kernel`] — the simulated 4.3BSD kernel
//! - [`interpose`] — the system-call interception mechanism
//! - [`toolkit`] — **the paper's contribution**: the layered agent toolkit
//! - [`agents`] — agents built with the toolkit (timex, trace, union, ...)
//! - [`workloads`] — the paper's benchmark workloads
//! - [`analyze`] — static binary analysis: lints and syscall-footprint
//!   inference (`ia-lint`)

pub use ia_abi as abi;
pub use ia_agents as agents;
pub use ia_analyze as analyze;
pub use ia_interpose as interpose;
pub use ia_kernel as kernel;
pub use ia_toolkit as toolkit;
pub use ia_vfs as vfs;
pub use ia_vm as vm;
pub use ia_workloads as workloads;
