//! Seeded random-program generation over the full syscall surface.
//!
//! A [`Program`] is a seed plus a sequence of [`ConfOp`]s — high-level
//! operations that compile (via [`ia_vm::ProgramBuilder`]) into
//! self-contained instruction sequences. Keeping the op list explicit, not
//! just the seed, is what makes delta-debugging possible: the shrinker
//! removes ops and recompiles, and a minimized list round-trips through a
//! `.conf` text file for replay.
//!
//! Every op is written to stay correct under *arbitrary injected errors*:
//! each syscall whose failure would change control flow is errno-checked
//! (r1 != 0 after the trap), blocking calls are only reached when their
//! wake-up is already guaranteed, and retry loops are bounded. A generated
//! program therefore always terminates, with or without fault injection —
//! non-termination under injection is a kernel bug, not a generator bug.

use ia_abi::{OpenFlags, Sysno};
use ia_kernel::Kernel;
use ia_prng::Prng;
use ia_vm::{Image, Insn, ProgramBuilder};

/// Code index of the shared signal handler. Indices 0 and 1 hold `nop`s
/// because handler addresses 0 and 1 read as `SIG_DFL` and `SIG_IGN` in a
/// `sigaction` record.
pub const HANDLER_INDEX: u64 = 2;

/// `SIGALRM`'s number.
const SIGALRM: u64 = 14;
/// `SIGUSR1`'s number.
const SIGUSR1: u64 = 30;

/// Wait-status a fork-exec child image exits with.
pub const EXEC_CHILD_STATUS: u64 = 5;

/// Op-class bitmask, for restricting the vocabulary (e.g. filesystem-only
/// programs when testing agents that transform file contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSet(pub u16);

impl OpSet {
    /// Console echoes.
    pub const CONSOLE: u16 = 0x001;
    /// Regular-file data ops (open/read/write/close/truncate/dup/lseek).
    pub const FILE: u16 = 0x002;
    /// Directory shape ops (mkdir/rmdir).
    pub const DIR: u16 = 0x004;
    /// Namespace/metadata ops (link, symlink, rename, chmod, chdir, stat).
    pub const META: u16 = 0x008;
    /// fork / wait.
    pub const PROC: u16 = 0x010;
    /// Signals, itimers, sigsuspend.
    pub const SIG: u16 = 0x020;
    /// Clock reads and select timeouts.
    pub const TIME: u16 = 0x040;
    /// Pipes (and select over them).
    pub const PIPE: u16 = 0x080;
    /// Socketpairs.
    pub const SOCK: u16 = 0x100;
    /// Pure compute.
    pub const CPU: u16 = 0x200;
    /// fork + execve of an installed image.
    pub const EXEC: u16 = 0x400;

    /// Every op class.
    pub const ALL: OpSet = OpSet(0x7ff);
    /// Console + file + namespace + compute: programs whose whole effect
    /// is under `/tmp/mix`, suitable for content-transforming agents.
    pub const FS_CLIENT: OpSet = OpSet(Self::CONSOLE | Self::FILE | Self::META | Self::CPU);

    /// True when `class` is enabled.
    #[must_use]
    pub fn allows(self, class: u16) -> bool {
        self.0 & class != 0
    }
}

/// One generated operation. Field values index fixed pools (4 paths, 4
/// payloads) or give small magnitudes; all are further reduced modulo the
/// pool size at compile time so any byte deserializes to a valid op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are documented on each variant
pub enum ConfOp {
    /// `write(1, payload)`.
    Echo { payload: u8 },
    /// Create/truncate a pool file and write a payload.
    CreateWrite { file: u8, payload: u8 },
    /// Append a payload to a pool file (created if missing).
    AppendWrite { file: u8, payload: u8 },
    /// Open a pool file, read it, echo the bytes to the console.
    ReadEcho { file: u8 },
    /// `stat` + `lstat` + `access` a pool file (results unprinted).
    StatFile { file: u8 },
    /// Identity calls: getpid/getppid/getuid/getgid/getpgrp/umask.
    QueryIds,
    /// `gettimeofday` into scratch (never printed: times differ by design
    /// across agent configurations).
    TimeOfDay,
    /// Make and remove `/tmp/mix/sub`.
    MkdirRmdir,
    /// Hard-link a pool file to `/tmp/mix/aux`, then unlink the link.
    LinkUnlink { file: u8 },
    /// Symlink, readlink (echoing the target), unlink.
    SymlinkEcho { file: u8 },
    /// Rename a pool file away and back.
    RenameShuffle { file: u8 },
    /// Chmod a pool file to 0600 and back to 0644.
    ChmodCycle { file: u8 },
    /// Chdir into `/tmp/mix`, stat a relative name, chdir back to `/`.
    ChdirStat { file: u8 },
    /// Open, dup, dup2-to-slot-9, lseek, close everything.
    DupShuffle { file: u8 },
    /// Truncate a pool file to a small length.
    TruncateShort { file: u8, len: u8 },
    /// pipe; write payload; read it back; echo; close both ends.
    PipeEcho { payload: u8 },
    /// pipe; write; select until readable; read; echo; close.
    SelectPipe { payload: u8 },
    /// socketpair; write on one end; read from the other; echo; close.
    SocketEcho { payload: u8 },
    /// fork; child echoes payload and exits `status`; parent waits.
    ForkWait { payload: u8, status: u8 },
    /// fork; child execs `/bin/conform-child`; parent waits.
    ForkExecWait,
    /// sigaction(SIGALRM) + one-shot setitimer + sigsuspend.
    AlarmHandler { delay_us: u16 },
    /// Pure sleep: `select(0, …, timeout)`.
    SelectSleep { timeout_us: u16 },
    /// sigaction(SIGUSR1) + kill(getpid(), SIGUSR1).
    KillHandler,
    /// Compute loop.
    Burn { iters: u16 },
}

/// A complete generated program: seed (flavors payload strings) + ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Generation seed; only payload contents depend on it after sampling.
    pub seed: u64,
    /// The operation sequence.
    pub ops: Vec<ConfOp>,
}

/// Draws a program of `nops` operations from the classes in `set`.
#[must_use]
pub fn sample(seed: u64, nops: usize, set: OpSet) -> Program {
    type Ctor = fn(&mut Prng) -> ConfOp;
    let vocab: &[(u16, Ctor)] = &[
        (OpSet::CONSOLE, |r| ConfOp::Echo {
            payload: r.below(4) as u8,
        }),
        (OpSet::FILE, |r| ConfOp::CreateWrite {
            file: r.below(4) as u8,
            payload: r.below(4) as u8,
        }),
        (OpSet::FILE, |r| ConfOp::AppendWrite {
            file: r.below(4) as u8,
            payload: r.below(4) as u8,
        }),
        (OpSet::FILE, |r| ConfOp::ReadEcho {
            file: r.below(4) as u8,
        }),
        (OpSet::META, |r| ConfOp::StatFile {
            file: r.below(4) as u8,
        }),
        (OpSet::CPU, |_| ConfOp::QueryIds),
        (OpSet::TIME, |_| ConfOp::TimeOfDay),
        (OpSet::DIR, |_| ConfOp::MkdirRmdir),
        (OpSet::META, |r| ConfOp::LinkUnlink {
            file: r.below(4) as u8,
        }),
        (OpSet::META, |r| ConfOp::SymlinkEcho {
            file: r.below(4) as u8,
        }),
        (OpSet::META, |r| ConfOp::RenameShuffle {
            file: r.below(4) as u8,
        }),
        (OpSet::META, |r| ConfOp::ChmodCycle {
            file: r.below(4) as u8,
        }),
        (OpSet::META, |r| ConfOp::ChdirStat {
            file: r.below(4) as u8,
        }),
        (OpSet::FILE, |r| ConfOp::DupShuffle {
            file: r.below(4) as u8,
        }),
        (OpSet::FILE, |r| ConfOp::TruncateShort {
            file: r.below(4) as u8,
            len: r.below(8) as u8,
        }),
        (OpSet::PIPE, |r| ConfOp::PipeEcho {
            payload: r.below(4) as u8,
        }),
        (OpSet::PIPE, |r| ConfOp::SelectPipe {
            payload: r.below(4) as u8,
        }),
        (OpSet::SOCK, |r| ConfOp::SocketEcho {
            payload: r.below(4) as u8,
        }),
        (OpSet::PROC, |r| ConfOp::ForkWait {
            payload: r.below(4) as u8,
            status: r.below(32) as u8,
        }),
        (OpSet::EXEC, |_| ConfOp::ForkExecWait),
        (OpSet::SIG, |r| ConfOp::AlarmHandler {
            delay_us: r.range_u64(50, 2000) as u16,
        }),
        (OpSet::TIME, |r| ConfOp::SelectSleep {
            timeout_us: r.range_u64(50, 2000) as u16,
        }),
        (OpSet::SIG, |_| ConfOp::KillHandler),
        (OpSet::CPU, |r| ConfOp::Burn {
            iters: r.range_u64(5, 200) as u16,
        }),
    ];
    let allowed: Vec<&(u16, Ctor)> = vocab.iter().filter(|(c, _)| set.allows(*c)).collect();
    assert!(!allowed.is_empty(), "empty op vocabulary");
    let mut rng = Prng::new(seed ^ 0xc0f0_91e5_5eed_0001);
    let ops = (0..nops)
        .map(|_| {
            let (_, ctor) = allowed[rng.below(allowed.len() as u64) as usize];
            ctor(&mut rng)
        })
        .collect();
    Program { seed, ops }
}

/// Fixed data-segment layout shared by every op.
struct Layout {
    buf: u64,
    statbuf: u64,
    scratch: u64,
    bang: u64,
    mark: u64,
    act: u64,
    root: u64,
    mixdir: u64,
    aux: u64,
    sym: u64,
    sub: u64,
    execpath: u64,
    paths: Vec<u64>,
    rels: Vec<u64>,
    payloads: Vec<(u64, u64)>,
}

impl Layout {
    fn emit(b: &mut ProgramBuilder, seed: u64) -> Layout {
        Layout {
            buf: b.data_space(128),
            statbuf: b.data_space(160),
            scratch: b.data_space(32),
            bang: b.data_asciz(b"!"),
            mark: b.data_asciz(b"<"),
            // SigActionRec: handler u64, mask u32, flags u32.
            act: {
                let a = b.data_quad(HANDLER_INDEX);
                b.data_quad(0);
                a
            },
            root: b.data_asciz(b"/"),
            mixdir: b.data_asciz(b"/tmp/mix"),
            aux: b.data_asciz(b"/tmp/mix/aux"),
            sym: b.data_asciz(b"/tmp/mix/sym"),
            sub: b.data_asciz(b"/tmp/mix/sub"),
            execpath: b.data_asciz(b"/bin/conform-child"),
            paths: (0..4)
                .map(|i| b.data_asciz(format!("/tmp/mix/f{i}.dat").as_bytes()))
                .collect(),
            rels: (0..4)
                .map(|i| b.data_asciz(format!("f{i}.dat").as_bytes()))
                .collect(),
            payloads: (0..4)
                .map(|i| {
                    let s = format!("p{i}-{seed:x}.");
                    (b.data_asciz(s.as_bytes()), s.len() as u64)
                })
                .collect(),
        }
    }
}

impl Program {
    /// Compiles the op sequence to an executable image.
    #[must_use]
    pub fn compile(&self) -> Image {
        let mut b = ProgramBuilder::new();
        let d = Layout::emit(&mut b, self.seed);

        // Indices 0/1 must not be the handler (they read as SIG_DFL and
        // SIG_IGN in sigaction records).
        b.emit(Insn::Nop);
        b.emit(Insn::Nop);
        // The shared signal handler, at HANDLER_INDEX: echo "!" and return.
        b.mov(9, 1); // save SigContext address
        b.li(0, 1);
        b.la(1, d.bang);
        b.li(2, 1);
        b.sys(Sysno::Write);
        b.mov(0, 9);
        b.sys(Sysno::Sigreturn);

        b.entry_here();
        for op in &self.ops {
            op.emit(&mut b, &d);
        }
        // Exit, retried forever in case an agent vetoes it.
        let again = b.here();
        b.li(0, 0);
        b.sys(Sysno::Exit);
        b.jmp(again);
        b.build()
    }

    /// Prepares a kernel for this (or any) generated program.
    pub fn setup(k: &mut Kernel) {
        k.mkdir_p(b"/tmp/mix").expect("mkdir /tmp/mix");
        k.mkdir_p(b"/bin").expect("mkdir /bin");
        k.install_image(b"/bin/conform-child", &exec_child_image())
            .expect("install child image");
    }

    /// Deduplicated syscall surface of the whole program, for building
    /// fault-injection schedules. `exit` and `sigreturn` are excluded: an
    /// agent may legitimately fail them, but a schedule that does so tests
    /// the agent contract (covered elsewhere), not kernel consistency.
    #[must_use]
    pub fn syscall_surface(&self) -> Vec<Sysno> {
        let mut seen = std::collections::BTreeSet::new();
        for op in &self.ops {
            for &s in op.syscalls() {
                if !matches!(s, Sysno::Exit | Sysno::Sigreturn) {
                    seen.insert(s.number());
                }
            }
        }
        ia_abi::sysno::ALL_SYSCALLS
            .iter()
            .copied()
            .filter(|s| seen.contains(&s.number()))
            .collect()
    }
}

/// The image installed at `/bin/conform-child`: echoes a marker, exits 5.
#[must_use]
pub fn exec_child_image() -> Image {
    let mut b = ProgramBuilder::new();
    let msg = b.data_asciz(b"X");
    b.li(0, 1);
    b.la(1, msg);
    b.li(2, 1);
    b.sys(Sysno::Write);
    let again = b.here();
    b.li(0, EXEC_CHILD_STATUS);
    b.sys(Sysno::Exit);
    b.jmp(again);
    b.build()
}

impl ConfOp {
    /// Syscalls this op can issue (for fault-schedule construction).
    #[must_use]
    pub fn syscalls(&self) -> &'static [Sysno] {
        use Sysno::*;
        match self {
            ConfOp::Echo { .. } => &[Write],
            ConfOp::CreateWrite { .. } | ConfOp::AppendWrite { .. } => &[Open, Write, Close],
            ConfOp::ReadEcho { .. } => &[Open, Read, Write, Close],
            ConfOp::StatFile { .. } => &[Stat, Lstat, Access],
            ConfOp::QueryIds => &[Getpid, Getppid, Getuid, Getgid, Getpgrp, Umask],
            ConfOp::TimeOfDay => &[Gettimeofday],
            ConfOp::MkdirRmdir => &[Mkdir, Rmdir],
            ConfOp::LinkUnlink { .. } => &[Link, Unlink],
            ConfOp::SymlinkEcho { .. } => &[Symlink, Readlink, Write, Unlink],
            ConfOp::RenameShuffle { .. } => &[Rename],
            ConfOp::ChmodCycle { .. } => &[Chmod],
            ConfOp::ChdirStat { .. } => &[Chdir, Stat],
            ConfOp::DupShuffle { .. } => &[Open, Dup, Dup2, Lseek, Close],
            ConfOp::TruncateShort { .. } => &[Truncate],
            ConfOp::PipeEcho { .. } => &[Pipe, Write, Read, Close],
            ConfOp::SelectPipe { .. } => &[Pipe, Write, Select, Read, Close],
            ConfOp::SocketEcho { .. } => &[Socketpair, Write, Read, Close],
            ConfOp::ForkWait { .. } => &[Fork, Wait4, Write, Exit],
            ConfOp::ForkExecWait => &[Fork, Execve, Wait4, Exit],
            ConfOp::AlarmHandler { .. } => &[
                Sigaction,
                Sigprocmask,
                Setitimer,
                Sigsuspend,
                Write,
                Sigreturn,
            ],
            ConfOp::SelectSleep { .. } => &[Select],
            ConfOp::KillHandler => &[Sigaction, Getpid, Kill, Write, Sigreturn],
            ConfOp::Burn { .. } => &[],
        }
    }

    /// Compiles this op. Register conventions: r0–r5 syscall args, r8 pid
    /// scratch, r9 handler scratch, r11 burn counter, r12/r13 saved fds,
    /// r14 retry counter.
    #[allow(clippy::too_many_lines)]
    fn emit(&self, b: &mut ProgramBuilder, d: &Layout) {
        let path = |f: u8| d.paths[usize::from(f) % d.paths.len()];
        let rel = |f: u8| d.rels[usize::from(f) % d.rels.len()];
        let pay = |p: u8| d.payloads[usize::from(p) % d.payloads.len()];
        match *self {
            ConfOp::Echo { payload } => {
                let (a, n) = pay(payload);
                b.li(0, 1);
                b.la(1, a);
                b.li(2, n);
                b.sys(Sysno::Write);
            }
            ConfOp::CreateWrite { file, payload } | ConfOp::AppendWrite { file, payload } => {
                let flags = if matches!(self, ConfOp::CreateWrite { .. }) {
                    OpenFlags::O_WRONLY | OpenFlags::O_CREAT | OpenFlags::O_TRUNC
                } else {
                    OpenFlags::O_WRONLY | OpenFlags::O_CREAT | OpenFlags::O_APPEND
                };
                let (a, n) = pay(payload);
                let end = b.new_label();
                b.la(0, path(file));
                b.li(1, u64::from(flags));
                b.li(2, 0o644);
                b.sys(Sysno::Open);
                b.jnz(1, end);
                b.mov(12, 0);
                b.la(1, a);
                b.li(2, n);
                b.sys(Sysno::Write);
                b.mov(0, 12);
                b.sys(Sysno::Close);
                b.bind(end);
            }
            ConfOp::ReadEcho { file } => {
                let end = b.new_label();
                let close = b.new_label();
                b.la(0, path(file));
                b.li(1, 0);
                b.li(2, 0);
                b.sys(Sysno::Open);
                b.jnz(1, end);
                b.mov(12, 0);
                // Echo a marker before the contents: a failed open must be
                // client-distinguishable from reading an empty file, or a
                // buggy agent could mask open errors invisibly.
                b.li(0, 1);
                b.la(1, d.mark);
                b.li(2, 1);
                b.sys(Sysno::Write);
                b.mov(0, 12);
                b.la(1, d.buf);
                b.li(2, 64);
                b.sys(Sysno::Read);
                b.jnz(1, close);
                b.mov(2, 0);
                b.li(0, 1);
                b.la(1, d.buf);
                b.sys(Sysno::Write);
                b.bind(close);
                b.mov(0, 12);
                b.sys(Sysno::Close);
                b.bind(end);
            }
            ConfOp::StatFile { file } => {
                b.la(0, path(file));
                b.la(1, d.statbuf);
                b.sys(Sysno::Stat);
                b.la(0, path(file));
                b.la(1, d.statbuf);
                b.sys(Sysno::Lstat);
                b.la(0, path(file));
                b.li(1, 4);
                b.sys(Sysno::Access);
            }
            ConfOp::QueryIds => {
                b.sys(Sysno::Getpid);
                b.sys(Sysno::Getppid);
                b.sys(Sysno::Getuid);
                b.sys(Sysno::Getgid);
                b.li(0, 0);
                b.sys(Sysno::Getpgrp);
                // umask twice: net effect nil, return value exercised.
                b.li(0, 0o22);
                b.sys(Sysno::Umask);
                b.li(0, 0o22);
                b.sys(Sysno::Umask);
            }
            ConfOp::TimeOfDay => {
                b.la(0, d.scratch);
                b.li(1, 0);
                b.sys(Sysno::Gettimeofday);
            }
            ConfOp::MkdirRmdir => {
                let end = b.new_label();
                b.la(0, d.sub);
                b.li(1, 0o755);
                b.sys(Sysno::Mkdir);
                b.jnz(1, end);
                b.la(0, d.sub);
                b.sys(Sysno::Rmdir);
                b.bind(end);
            }
            ConfOp::LinkUnlink { file } => {
                let end = b.new_label();
                b.la(0, path(file));
                b.la(1, d.aux);
                b.sys(Sysno::Link);
                b.jnz(1, end);
                b.la(0, d.aux);
                b.sys(Sysno::Unlink);
                b.bind(end);
            }
            ConfOp::SymlinkEcho { file } => {
                let end = b.new_label();
                let unl = b.new_label();
                b.la(0, path(file)); // link contents
                b.la(1, d.sym);
                b.sys(Sysno::Symlink);
                b.jnz(1, end);
                b.la(0, d.sym);
                b.la(1, d.buf);
                b.li(2, 64);
                b.sys(Sysno::Readlink);
                b.jnz(1, unl);
                b.mov(2, 0);
                b.li(0, 1);
                b.la(1, d.buf);
                b.sys(Sysno::Write);
                b.bind(unl);
                b.la(0, d.sym);
                b.sys(Sysno::Unlink);
                b.bind(end);
            }
            ConfOp::RenameShuffle { file } => {
                let end = b.new_label();
                b.la(0, path(file));
                b.la(1, d.aux);
                b.sys(Sysno::Rename);
                b.jnz(1, end);
                b.la(0, d.aux);
                b.la(1, path(file));
                b.sys(Sysno::Rename);
                b.bind(end);
            }
            ConfOp::ChmodCycle { file } => {
                b.la(0, path(file));
                b.li(1, 0o600);
                b.sys(Sysno::Chmod);
                b.la(0, path(file));
                b.li(1, 0o644);
                b.sys(Sysno::Chmod);
            }
            ConfOp::ChdirStat { file } => {
                let end = b.new_label();
                b.la(0, d.mixdir);
                b.sys(Sysno::Chdir);
                b.jnz(1, end);
                b.la(0, rel(file));
                b.la(1, d.statbuf);
                b.sys(Sysno::Stat);
                b.la(0, d.root);
                b.sys(Sysno::Chdir);
                b.bind(end);
            }
            ConfOp::DupShuffle { file } => {
                let end = b.new_label();
                let close1 = b.new_label();
                let nod2 = b.new_label();
                b.la(0, path(file));
                b.li(1, 0);
                b.li(2, 0);
                b.sys(Sysno::Open);
                b.jnz(1, end);
                b.mov(12, 0);
                b.sys(Sysno::Dup); // fd still in r0
                b.jnz(1, nod2);
                b.mov(13, 0);
                b.li(1, 0);
                b.li(2, 0);
                b.mov(0, 13);
                b.sys(Sysno::Lseek);
                b.mov(0, 13);
                b.sys(Sysno::Close);
                b.bind(nod2);
                b.mov(0, 12);
                b.li(1, 9);
                b.sys(Sysno::Dup2);
                b.jnz(1, close1);
                b.li(0, 9);
                b.sys(Sysno::Close);
                b.bind(close1);
                b.mov(0, 12);
                b.sys(Sysno::Close);
                b.bind(end);
            }
            ConfOp::TruncateShort { file, len } => {
                b.la(0, path(file));
                b.li(1, u64::from(len % 8));
                b.sys(Sysno::Truncate);
            }
            ConfOp::PipeEcho { payload } => {
                let (a, n) = pay(payload);
                let end = b.new_label();
                let done = b.new_label();
                b.sys(Sysno::Pipe);
                b.jnz(1, end);
                b.mov(12, 0); // read end
                b.mov(13, 2); // write end
                b.mov(0, 13);
                b.la(1, a);
                b.li(2, n);
                b.sys(Sysno::Write);
                // If the write was vetoed the pipe is empty; reading would
                // block forever (we still hold the write end).
                b.jnz(1, done);
                b.mov(0, 12);
                b.la(1, d.buf);
                b.li(2, 64);
                b.sys(Sysno::Read);
                b.jnz(1, done);
                b.mov(2, 0);
                b.li(0, 1);
                b.la(1, d.buf);
                b.sys(Sysno::Write);
                b.bind(done);
                b.mov(0, 12);
                b.sys(Sysno::Close);
                b.mov(0, 13);
                b.sys(Sysno::Close);
                b.bind(end);
            }
            ConfOp::SelectPipe { payload } => {
                let (a, n) = pay(payload);
                let end = b.new_label();
                let done = b.new_label();
                b.sys(Sysno::Pipe);
                b.jnz(1, end);
                b.mov(12, 0);
                b.mov(13, 2);
                b.mov(0, 13);
                b.la(1, a);
                b.li(2, n);
                b.sys(Sysno::Write);
                b.jnz(1, done);
                // rmask = 1 << rfd, stored to scratch; select blocks until
                // readable (data is already there, so this never hangs).
                b.li(5, 1);
                b.emit(Insn::Shl(5, 5, 12));
                b.la(4, d.scratch);
                b.st(4, 5, 0);
                b.addi(0, 12, 1);
                b.la(1, d.scratch);
                b.li(2, 0);
                b.li(3, 0);
                b.li(4, 0);
                b.sys(Sysno::Select);
                b.mov(0, 12);
                b.la(1, d.buf);
                b.li(2, 64);
                b.sys(Sysno::Read);
                b.jnz(1, done);
                b.mov(2, 0);
                b.li(0, 1);
                b.la(1, d.buf);
                b.sys(Sysno::Write);
                b.bind(done);
                b.mov(0, 12);
                b.sys(Sysno::Close);
                b.mov(0, 13);
                b.sys(Sysno::Close);
                b.bind(end);
            }
            ConfOp::SocketEcho { payload } => {
                let (a, n) = pay(payload);
                let end = b.new_label();
                let done = b.new_label();
                b.li(0, 1);
                b.li(1, 1);
                b.li(2, 0);
                b.sys(Sysno::Socketpair);
                b.jnz(1, end);
                b.mov(12, 0);
                b.mov(13, 2);
                b.mov(0, 12);
                b.la(1, a);
                b.li(2, n);
                b.sys(Sysno::Write);
                b.jnz(1, done);
                b.mov(0, 13); // a's tx feeds b's rx
                b.la(1, d.buf);
                b.li(2, 64);
                b.sys(Sysno::Read);
                b.jnz(1, done);
                b.mov(2, 0);
                b.li(0, 1);
                b.la(1, d.buf);
                b.sys(Sysno::Write);
                b.bind(done);
                b.mov(0, 12);
                b.sys(Sysno::Close);
                b.mov(0, 13);
                b.sys(Sysno::Close);
                b.bind(end);
            }
            ConfOp::ForkWait { payload, status } => {
                let (a, n) = pay(payload);
                let end = b.new_label();
                let child = b.new_label();
                let wait = b.new_label();
                b.sys(Sysno::Fork);
                b.jnz(1, end);
                b.jz(0, child);
                // Parent: bounded wait — a vetoed wait4 must not hang us,
                // and an unreaped child is auto-reaped at our exit.
                b.mov(8, 0);
                b.li(14, 8);
                b.bind(wait);
                b.jz(14, end);
                b.mov(0, 8);
                b.li(1, 0);
                b.li(2, 0);
                b.li(3, 0);
                b.sys(Sysno::Wait4);
                b.jz(1, end);
                b.addi(14, 14, -1);
                b.jmp(wait);
                b.bind(child);
                b.li(0, 1);
                b.la(1, a);
                b.li(2, n);
                b.sys(Sysno::Write);
                let again = b.here();
                b.li(0, u64::from(status % 32));
                b.sys(Sysno::Exit);
                b.jmp(again);
                b.bind(end);
            }
            ConfOp::ForkExecWait => {
                let end = b.new_label();
                let child = b.new_label();
                let wait = b.new_label();
                b.sys(Sysno::Fork);
                b.jnz(1, end);
                b.jz(0, child);
                b.mov(8, 0);
                b.li(14, 8);
                b.bind(wait);
                b.jz(14, end);
                b.mov(0, 8);
                b.li(1, 0);
                b.li(2, 0);
                b.li(3, 0);
                b.sys(Sysno::Wait4);
                b.jz(1, end);
                b.addi(14, 14, -1);
                b.jmp(wait);
                b.bind(child);
                b.la(0, d.execpath);
                b.li(1, 0);
                b.li(2, 0);
                b.sys(Sysno::Execve);
                // Only reached when exec was vetoed.
                let again = b.here();
                b.li(0, 127);
                b.sys(Sysno::Exit);
                b.jmp(again);
                b.bind(end);
            }
            ConfOp::AlarmHandler { delay_us } => {
                let end = b.new_label();
                // One-shot itimerval, baked per-op: interval {0,0}, value
                // {0, delay_us}.
                let itv = b.data_quad(0);
                b.data_quad(0);
                b.data_quad(0);
                b.data_quad(u64::from(delay_us.max(1)));
                b.li(0, SIGALRM);
                b.la(1, d.act);
                b.li(2, 0);
                b.sys(Sysno::Sigaction);
                b.jnz(1, end);
                // Block SIGALRM before arming the timer: agents add enough
                // virtual-clock overhead that a short one-shot timer can
                // fire before the suspend below, and an early delivery
                // would leave sigsuspend sleeping forever. Suspending with
                // an empty mask unblocks it atomically, POSIX-style.
                b.li(0, 1); // SIG_BLOCK
                b.li(1, 1 << (SIGALRM - 1));
                b.sys(Sysno::Sigprocmask);
                b.jnz(1, end);
                b.li(0, 0); // ITIMER_REAL
                b.la(1, itv);
                b.li(2, 0);
                b.sys(Sysno::Setitimer);
                // If the timer was vetoed, suspending would sleep forever.
                b.jnz(1, end);
                b.li(0, 0);
                b.sys(Sysno::Sigsuspend);
                b.bind(end);
            }
            ConfOp::SelectSleep { timeout_us } => {
                let tv = b.data_quad(0);
                b.data_quad(u64::from(timeout_us.max(1)));
                b.li(0, 0);
                b.li(1, 0);
                b.li(2, 0);
                b.li(3, 0);
                b.la(4, tv);
                b.sys(Sysno::Select);
            }
            ConfOp::KillHandler => {
                let end = b.new_label();
                b.li(0, SIGUSR1);
                b.la(1, d.act);
                b.li(2, 0);
                b.sys(Sysno::Sigaction);
                b.jnz(1, end);
                b.sys(Sysno::Getpid);
                b.jnz(1, end);
                b.mov(8, 0);
                b.mov(0, 8);
                b.li(1, SIGUSR1);
                b.sys(Sysno::Kill);
                b.bind(end);
            }
            ConfOp::Burn { iters } => b.burn(u64::from(iters)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_kernel::RunOutcome;

    #[test]
    fn same_seed_same_program() {
        let a = sample(11, 30, OpSet::ALL);
        let b = sample(11, 30, OpSet::ALL);
        assert_eq!(a, b);
        assert_ne!(a, sample(12, 30, OpSet::ALL));
        assert_eq!(a.compile(), b.compile());
    }

    #[test]
    fn restricted_vocabulary_is_respected() {
        let p = sample(3, 200, OpSet::FS_CLIENT);
        for op in &p.ops {
            assert!(
                !matches!(
                    op,
                    ConfOp::ForkWait { .. }
                        | ConfOp::ForkExecWait
                        | ConfOp::PipeEcho { .. }
                        | ConfOp::SelectPipe { .. }
                        | ConfOp::SocketEcho { .. }
                        | ConfOp::AlarmHandler { .. }
                        | ConfOp::KillHandler
                ),
                "{op:?} escaped FS_CLIENT"
            );
        }
    }

    #[test]
    fn generated_programs_run_to_completion() {
        for seed in 0..12 {
            let p = sample(seed, 35, OpSet::ALL);
            let mut k = ia_kernel::KernelBuilder::new().build();
            Program::setup(&mut k);
            k.spawn_image(&p.compile(), &[b"conform"], b"conform");
            assert_eq!(k.run_to_completion(), RunOutcome::AllExited, "seed {seed}");
            assert!(k.check_quiescent().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn surface_excludes_exit_and_sigreturn() {
        let p = sample(5, 60, OpSet::ALL);
        let surface = p.syscall_surface();
        assert!(!surface.contains(&Sysno::Exit));
        assert!(!surface.contains(&Sysno::Sigreturn));
        assert!(surface.len() > 10, "{surface:?}");
    }
}
