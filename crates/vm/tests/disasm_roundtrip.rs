//! Disassembler round-trip: every instruction variant must survive
//! encode → decode → disassemble → reassemble with identical bytes, so a
//! listing is always a faithful, re-executable description of an image.

use ia_prng::Prng;
use ia_vm::{assemble, disasm_insn, Image, Insn};

/// Draws one random-but-valid instance of every variant, in opcode order.
fn random_instances(rng: &mut Prng) -> Vec<Insn> {
    let r = |rng: &mut Prng| rng.below(16) as u8;
    let imm = |rng: &mut Prng| rng.next_u64();
    // Signed offsets span the full i64 range, including negatives.
    let off = |rng: &mut Prng| rng.next_u64() as i64;
    let target = |rng: &mut Prng| rng.below(1 << 20);
    use Insn::*;
    vec![
        Li(r(rng), imm(rng)),
        Mov(r(rng), r(rng)),
        Ld(r(rng), r(rng), off(rng)),
        St(r(rng), r(rng), off(rng)),
        Ldb(r(rng), r(rng), off(rng)),
        Stb(r(rng), r(rng), off(rng)),
        Add(r(rng), r(rng), r(rng)),
        Sub(r(rng), r(rng), r(rng)),
        Mul(r(rng), r(rng), r(rng)),
        Div(r(rng), r(rng), r(rng)),
        Rem(r(rng), r(rng), r(rng)),
        Addi(r(rng), r(rng), off(rng)),
        And(r(rng), r(rng), r(rng)),
        Or(r(rng), r(rng), r(rng)),
        Xor(r(rng), r(rng), r(rng)),
        Shl(r(rng), r(rng), r(rng)),
        Shr(r(rng), r(rng), r(rng)),
        Sltu(r(rng), r(rng), r(rng)),
        Slt(r(rng), r(rng), r(rng)),
        Seq(r(rng), r(rng), r(rng)),
        Jmp(target(rng)),
        Jz(r(rng), target(rng)),
        Jnz(r(rng), target(rng)),
        Call(target(rng)),
        Ret,
        Sys,
        Halt,
        Nop,
    ]
}

#[test]
fn every_variant_round_trips_through_the_disassembler() {
    let mut rng = Prng::new(0xd15a_53ed);
    for round in 0..64 {
        let code = random_instances(&mut rng);
        // Sanity: the set really covers every opcode.
        let opcodes: std::collections::BTreeSet<u8> = code.iter().map(Insn::opcode).collect();
        assert_eq!(opcodes.len(), 28, "round {round}: all 28 variants present");

        for insn in &code {
            // encode → decode is identity...
            let bytes = insn.encode();
            let decoded = Insn::decode(&bytes).expect("valid instruction decodes");
            assert_eq!(decoded, *insn, "round {round}");
            // ...and the disassembly of the decoded form reassembles to the
            // same instruction, hence the same bytes.
            let text = disasm_insn(&decoded);
            let img = assemble(&text)
                .unwrap_or_else(|e| panic!("round {round}: `{text}` failed to assemble: {e}"));
            assert_eq!(img.code, vec![*insn], "round {round}: `{text}`");
            assert_eq!(img.code[0].encode(), bytes, "round {round}: `{text}`");
        }

        // Whole-image check: a multi-line listing reassembles to an image
        // with byte-identical code.
        let original = Image {
            entry: 0,
            code: code.clone(),
            data: Vec::new(),
        };
        let listing: String = code
            .iter()
            .map(|i| format!("{}\n", disasm_insn(i)))
            .collect();
        let back = assemble(&listing).expect("listing reassembles");
        assert_eq!(back.code, original.code, "round {round}");
        assert_eq!(back.to_bytes(), original.to_bytes(), "round {round}");
    }
}
