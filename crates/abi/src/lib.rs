//! # ia-abi — the simulated 4.3BSD system interface definition
//!
//! This crate defines everything that crosses the *system interface* in this
//! reproduction of Jones' interposition-agents system (SOSP '93): syscall
//! numbers, error numbers, flag words, signal numbers, and the byte-level
//! layouts of the structures that the kernel and applications exchange
//! through process memory (`stat` buffers, `timeval`s, directory entries,
//! signal contexts, ...).
//!
//! Everything here is *data*: no behaviour, no I/O, no unsafe code. The
//! structures use explicit little-endian serialization (see [`wire`]) rather
//! than `#[repr(C)]` transmutes, so the layouts are stable, portable, and
//! checkable by property tests.
//!
//! The syscall numbering follows the 4.3BSD table where the paper names a
//! call, with simplifications documented on [`Sysno`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod errno;
pub mod flags;
pub mod signal;
pub mod sysno;
pub mod types;
pub mod wire;

pub use errno::Errno;
pub use flags::{AccessMode, FcntlCmd, FileMode, FileType, OpenFlags, Whence};
pub use signal::{SigDisposition, SigSet, Signal};
pub use sysno::Sysno;
pub use types::{DirEntry, Rusage, SigActionRec, Stat, Timeval, Timezone};

/// Raw argument vector carried by every trap, as in the paper's *numeric
/// system call layer*: "a single entry point accepting vectors of untyped
/// numeric arguments".
///
/// Arguments that are pointers refer to addresses inside the calling
/// process's (simulated) address space.
pub type RawArgs = [u64; 6];

/// The two return registers of a 4.3BSD system call (`rv[2]` in the paper's
/// toolkit interfaces). Most calls use only `rv[0]`; `pipe()` returns two
/// descriptors and `fork()` uses `rv[1]` to distinguish parent from child.
pub type RetVal = [u64; 2];

/// Result of a system call at any level of the interface: either the two
/// return registers or an error number.
pub type SysResult = Result<RetVal, Errno>;

/// Convenience constructor for the common single-value success case.
#[inline]
pub fn ok1(v: u64) -> SysResult {
    Ok([v, 0])
}

/// Convenience constructor for a two-register success value.
#[inline]
pub fn ok2(a: u64, b: u64) -> SysResult {
    Ok([a, b])
}

/// The canonical "success, nothing to report" return.
pub const OK: SysResult = Ok([0, 0]);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok1_sets_first_register_only() {
        assert_eq!(ok1(7), Ok([7, 0]));
    }

    #[test]
    fn ok2_sets_both_registers() {
        assert_eq!(ok2(3, 4), Ok([3, 4]));
    }

    #[test]
    fn ok_is_zeroes() {
        assert_eq!(OK, Ok([0, 0]));
    }
}
