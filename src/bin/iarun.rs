//! `iarun` — the agent loader as a command: boot the simulated system, run
//! an image under a stack of agents chosen on the command line.
//!
//! ```text
//! iarun prog.img                                run bare (Figure 1-1)
//! iarun --trace prog.img                        under the trace agent
//! iarun --timex +3600 --trace prog.img          stacked agents
//! iarun --union /u=/a:/b --sandbox prog.img     views + containment
//! iarun --put host.txt:/etc/data.txt prog.img   preload a file
//! ```
//!
//! Agents listed earlier are wrapped first and therefore sit *lower* in
//! the chain; the last agent listed sees traps first, as with the paper's
//! loader invoking loaders.

use std::process::ExitCode;

use interposition_agents::agents::{
    CryptAgent, ProfileAgent, SandboxAgent, SandboxPolicy, TimeSymbolic, Timex, TraceAgent,
    UnionAgent, ZipAgent,
};
use interposition_agents::interpose::{wrap_process, InterposedRouter};
use interposition_agents::kernel::{Kernel, KernelBuilder, I486_25, VAX_6250};
use interposition_agents::vm::Image;

fn usage() -> ExitCode {
    eprintln!(
        "usage: iarun [options] <image.img> [args...]\n\
         \n\
         agents (stackable; last listed sees traps first):\n\
         \x20 --timex <±secs>        shift the apparent time of day\n\
         \x20 --trace                print every call and signal (to stderr at exit)\n\
         \x20 --profile              per-call counters (printed at exit)\n\
         \x20 --null                 full-interception pass-through (overhead demo)\n\
         \x20 --union <v=/a:/b>      union-directory view\n\
         \x20 --crypt <prefix:key>   transparent encryption under prefix\n\
         \x20 --zip <prefix>         transparent compression under prefix\n\
         \x20 --sandbox              locked-down protected environment\n\
         \n\
         system:\n\
         \x20 --vax                  use the VAX 6250 cost profile (default i486)\n\
         \x20 --put <host:/sim>      copy a host file into the simulated fs\n\
         \x20 --stdin <text>         queue console input"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut profile = I486_25;
    let mut puts: Vec<(String, String)> = Vec::new();
    let mut stdin_text: Option<String> = None;
    // Agent constructors, applied in order after the process exists.
    type Wrap = Box<dyn FnOnce(&mut Kernel, &mut InterposedRouter, u32)>;
    let mut wraps: Vec<Wrap> = Vec::new();
    let mut image_path: Option<String> = None;
    let mut prog_args: Vec<Vec<u8>> = Vec::new();
    let mut reports: Vec<Box<dyn FnOnce()>> = Vec::new();

    while let Some(a) = args.next() {
        if image_path.is_some() {
            prog_args.push(a.into_bytes());
            continue;
        }
        match a.as_str() {
            "--vax" => profile = VAX_6250,
            "--timex" => {
                let Some(v) = args
                    .next()
                    .and_then(|s| s.trim_start_matches('+').parse::<i64>().ok())
                else {
                    return usage();
                };
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(k, r, pid, Timex::boxed(v), &[]);
                }));
            }
            "--trace" => {
                let (agent, handle) = TraceAgent::new();
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(k, r, pid, Box::new(agent), &[]);
                }));
                reports.push(Box::new(move || {
                    eprintln!("--- trace ---");
                    eprint!("{}", handle.text());
                }));
            }
            "--profile" => {
                let (agent, handle) = ProfileAgent::new();
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(k, r, pid, Box::new(agent), &[]);
                }));
                reports.push(Box::new(move || {
                    eprintln!("--- profile ---");
                    eprint!("{}", handle.report());
                }));
            }
            "--null" => wraps.push(Box::new(|k, r, pid| {
                wrap_process(k, r, pid, TimeSymbolic::boxed(), &[]);
            })),
            "--union" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(k, r, pid, UnionAgent::boxed(&[spec.as_bytes()]), &[]);
                }));
            }
            "--crypt" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                let Some((prefix, key)) = spec.split_once(':') else {
                    return usage();
                };
                let (prefix, key) = (prefix.to_string(), key.to_string());
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(
                        k,
                        r,
                        pid,
                        CryptAgent::boxed(prefix.as_bytes(), key.as_bytes()),
                        &[],
                    );
                }));
            }
            "--zip" => {
                let Some(prefix) = args.next() else {
                    return usage();
                };
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(k, r, pid, ZipAgent::boxed(prefix.as_bytes()), &[]);
                }));
            }
            "--sandbox" => {
                let (agent, handle) = SandboxAgent::new(SandboxPolicy::locked_down());
                wraps.push(Box::new(move |k, r, pid| {
                    wrap_process(k, r, pid, agent, &[]);
                }));
                reports.push(Box::new(move || {
                    eprintln!("--- sandbox violations ---");
                    for v in handle.violations() {
                        eprintln!(
                            "  {:<10} {:<30} -> {}",
                            v.call,
                            String::from_utf8_lossy(&v.path),
                            v.result
                        );
                    }
                }));
            }
            "--put" => {
                let Some(spec) = args.next() else {
                    return usage();
                };
                let Some((host, sim)) = spec.split_once(':') else {
                    return usage();
                };
                puts.push((host.to_string(), sim.to_string()));
            }
            "--stdin" => {
                stdin_text = args.next();
                if stdin_text.is_none() {
                    return usage();
                }
            }
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("iarun: unknown option {other}");
                return usage();
            }
            path => {
                image_path = Some(path.to_string());
                prog_args.push(path.as_bytes().to_vec());
            }
        }
    }

    let Some(image_path) = image_path else {
        return usage();
    };
    let bytes = match std::fs::read(&image_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("iarun: {image_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = match Image::from_bytes(&bytes) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("iarun: {image_path}: not a valid image ({e}); try `iasm` first");
            return ExitCode::FAILURE;
        }
    };

    let mut k = KernelBuilder::new().profile(profile).build();
    for (host, sim) in puts {
        match std::fs::read(&host) {
            Ok(data) => {
                if sim.rfind('/').map_or(0, |i| i) > 0 {
                    let _ = k.mkdir_p(&sim.as_bytes()[..sim.rfind('/').unwrap()]);
                }
                if let Err(e) = k.write_file(sim.as_bytes(), &data) {
                    eprintln!("iarun: --put {sim}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("iarun: --put {host}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(text) = stdin_text {
        k.console.push_input(text.as_bytes());
        k.console.set_input_eof();
    }

    let argv: Vec<&[u8]> = prog_args.iter().map(Vec::as_slice).collect();
    let name = argv[0].to_vec();
    let pid = k.spawn_image(&image, &argv, &name);
    let mut router = InterposedRouter::new();
    for w in wraps {
        w(&mut k, &mut router, pid);
    }

    let outcome = k.run_with(&mut router);
    print!("{}", k.console.output_string());
    for r in reports {
        r();
    }
    eprintln!(
        "[iarun: {outcome:?}; virtual {:.4}s; {} syscalls; {} intercepted]",
        k.clock.elapsed_secs(),
        k.total_syscalls,
        router.stats.intercepted
    );
    match k.exit_status(pid).map(ia_abi::signal::WaitStatus::decode) {
        Some(Some(ia_abi::signal::WaitStatus::Exited(c))) => ExitCode::from(c),
        _ => ExitCode::FAILURE,
    }
}
