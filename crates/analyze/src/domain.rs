//! The abstract value domain: constants, intervals, and ⊤.
//!
//! Precision goal: resolve `li r7, N; sys` exactly and keep small joined
//! sets (e.g. a conditional choosing between two numbers) enumerable.
//! Everything the domain cannot prove collapses to [`AbsVal::Top`] — the
//! analysis may over-approximate but must never under-approximate.

/// Abstract 64-bit value: a known constant, an inclusive interval, or ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Exactly this value.
    Const(u64),
    /// Any value in `lo..=hi` (`lo < hi` by construction).
    Range(u64, u64),
    /// Any value at all.
    Top,
}

// These are abstract transfer functions, not the wrapping machine arithmetic
// the `std::ops` traits would suggest; keeping the mnemonic names mirrors the
// instruction set (`Add` → `add`) without implying operator semantics.
#[allow(clippy::should_implement_trait)]
impl AbsVal {
    /// Interval constructor, normalizing a degenerate interval to a
    /// constant.
    #[must_use]
    pub fn range(lo: u64, hi: u64) -> AbsVal {
        if lo == hi {
            AbsVal::Const(lo)
        } else {
            AbsVal::Range(lo.min(hi), lo.max(hi))
        }
    }

    /// Interval bounds, if the value is not ⊤.
    #[must_use]
    pub fn bounds(self) -> Option<(u64, u64)> {
        match self {
            AbsVal::Const(v) => Some((v, v)),
            AbsVal::Range(lo, hi) => Some((lo, hi)),
            AbsVal::Top => None,
        }
    }

    /// Least upper bound (interval hull).
    #[must_use]
    pub fn join(self, other: AbsVal) -> AbsVal {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) => AbsVal::range(a.min(c), b.max(d)),
            _ => AbsVal::Top,
        }
    }

    /// Binary op with exact transfer for constants and checked interval
    /// arithmetic; any possible wrap collapses to ⊤.
    fn checked2(
        self,
        other: AbsVal,
        exact: impl Fn(u64, u64) -> u64,
        check: impl Fn(u64, u64) -> Option<u64>,
    ) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(exact(a, b)),
            _ => match (self.bounds(), other.bounds()) {
                (Some((a, b)), Some((c, d))) => match (check(a, c), check(b, d)) {
                    (Some(lo), Some(hi)) => AbsVal::range(lo, hi),
                    _ => AbsVal::Top,
                },
                _ => AbsVal::Top,
            },
        }
    }

    /// `self + other` (wrapping semantics, interval-checked).
    #[must_use]
    pub fn add(self, other: AbsVal) -> AbsVal {
        self.checked2(other, u64::wrapping_add, u64::checked_add)
    }

    /// `self - other`. Interval bounds survive only when the whole interval
    /// stays non-negative.
    #[must_use]
    pub fn sub(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a.wrapping_sub(b)),
            _ => match (self.bounds(), other.bounds()) {
                // [a,b] - [c,d] ⊆ [a-d, b-c] when a >= d (no borrow anywhere).
                (Some((a, b)), Some((c, d))) if a >= d => AbsVal::range(a - d, b - c),
                _ => AbsVal::Top,
            },
        }
    }

    /// `self + imm` for a signed immediate (the `Addi` form).
    #[must_use]
    pub fn add_signed(self, imm: i64) -> AbsVal {
        if imm >= 0 {
            self.add(AbsVal::Const(imm as u64))
        } else {
            self.sub(AbsVal::Const(imm.unsigned_abs()))
        }
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(self, other: AbsVal) -> AbsVal {
        self.checked2(other, u64::wrapping_mul, u64::checked_mul)
    }

    /// `self / other` (unsigned). Division by a possibly-zero divisor is ⊤
    /// for the value; the fault itself is a separate lint.
    #[must_use]
    pub fn div(self, other: AbsVal) -> AbsVal {
        match (self.bounds(), other.bounds()) {
            (Some((a, b)), Some((c, d))) if c > 0 => AbsVal::range(a / d, b / c),
            _ => AbsVal::Top,
        }
    }

    /// `self % other` (unsigned).
    #[must_use]
    pub fn rem(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) if b != 0 => AbsVal::Const(a % b),
            _ => match other.bounds() {
                Some((c, d)) if c > 0 => AbsVal::range(0, d - 1),
                _ => AbsVal::Top,
            },
        }
    }

    /// Bitwise AND: `x & m <= min(hi_x, hi_m)` bounds the result.
    #[must_use]
    pub fn and(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a & b),
            _ => match (self.bounds(), other.bounds()) {
                (Some((_, b)), Some((_, d))) => AbsVal::range(0, b.min(d)),
                (Some((_, b)), None) | (None, Some((_, b))) => AbsVal::range(0, b),
                _ => AbsVal::Top,
            },
        }
    }

    /// Bitwise OR.
    #[must_use]
    pub fn or(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a | b),
            _ => AbsVal::Top,
        }
    }

    /// Bitwise XOR.
    #[must_use]
    pub fn xor(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a ^ b),
            _ => AbsVal::Top,
        }
    }

    /// `self << (other & 63)`.
    #[must_use]
    pub fn shl(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a << (b & 63)),
            _ => AbsVal::Top,
        }
    }

    /// `self >> (other & 63)` (logical).
    #[must_use]
    pub fn shr(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a >> (b & 63)),
            (_, AbsVal::Const(b)) => match self.bounds() {
                Some((lo, hi)) => AbsVal::range(lo >> (b & 63), hi >> (b & 63)),
                None => AbsVal::Top,
            },
            _ => AbsVal::Top,
        }
    }

    /// Comparison result: exact for constants, else the boolean interval.
    #[must_use]
    pub fn cmp_result(self, other: AbsVal, op: impl Fn(u64, u64) -> bool) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(u64::from(op(a, b))),
            _ => AbsVal::range(0, 1),
        }
    }

    /// True if this value is provably zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == AbsVal::Const(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AbsVal::*;

    #[test]
    fn join_builds_hulls() {
        assert_eq!(Const(3).join(Const(3)), Const(3));
        assert_eq!(Const(3).join(Const(5)), Range(3, 5));
        assert_eq!(Range(1, 4).join(Const(9)), Range(1, 9));
        assert_eq!(Top.join(Const(1)), Top);
    }

    #[test]
    fn arithmetic_is_exact_on_constants_and_sound_on_intervals() {
        assert_eq!(Const(7).add(Const(3)), Const(10));
        assert_eq!(Const(u64::MAX).add(Const(1)), Const(0), "wrapping");
        assert_eq!(Range(1, 2).add(Const(10)), Range(11, 12));
        assert_eq!(Range(0, u64::MAX).add(Const(1)), Top, "possible wrap");
        assert_eq!(Const(10).sub(Const(4)), Const(6));
        assert_eq!(Range(5, 8).sub(Range(1, 2)), Range(3, 7));
        assert_eq!(Range(1, 8).sub(Range(1, 2)), Top, "possible borrow");
        assert_eq!(Const(6).add_signed(-2), Const(4));
        assert_eq!(Const(6).mul(Const(7)), Const(42));
        assert_eq!(Const(9).div(Const(2)), Const(4));
        assert_eq!(Range(8, 9).rem(Const(4)), Range(0, 3));
        assert_eq!(Top.div(Const(2)), Top);
    }

    #[test]
    fn bit_ops_bound_what_they_can() {
        assert_eq!(Const(0xf0).and(Const(0x1f)), Const(0x10));
        assert_eq!(Top.and(Const(0xff)), Range(0, 0xff), "mask bounds ⊤");
        assert_eq!(Const(1).shl(Const(3)), Const(8));
        assert_eq!(Range(16, 32).shr(Const(4)), Range(1, 2));
        assert_eq!(Top.or(Const(1)), Top);
    }

    #[test]
    fn comparisons_yield_booleans() {
        assert_eq!(Const(1).cmp_result(Const(2), |a, b| a < b), Const(1));
        assert_eq!(Top.cmp_result(Const(2), |a, b| a < b), Range(0, 1));
    }
}
