//! Host wall-clock bench for Table 3-2: the dissertation-formatting
//! workload under each agent (the virtual times are printed by
//! `reproduce`).

use ia_bench::harness::case;
use ia_kernel::VAX_6250;
use ia_workloads::{run_workload, AgentKind, Workload};

fn main() {
    for agent in AgentKind::TABLE_ROWS {
        case("table_3_2_scribe", agent.name(), 10, || {
            let stats = run_workload(Workload::Scribe, VAX_6250, agent);
            assert_eq!(stats.outcome, ia_kernel::RunOutcome::AllExited);
            stats.virtual_secs
        });
    }
}
