//! Regression: a `from_footprint` sandbox stacked over a batching observer
//! must not suppress vectored upcalls for calls inside the footprint.
//!
//! The sandbox's old interest set was `ALL` — sound, but it put the
//! sandbox on the dispatch path of every call, and since the router only
//! batches a number when *every* interested agent accepts it vectored, a
//! footprint sandbox silently turned off batching for the whole chain.
//! With interest narrowing the sandbox registers only the complement of
//! its allow-list (plus the calls its policy must still see), so
//! in-footprint calls reach the observer as vectored upcalls again.

use ia_agents::{PassThrough, SandboxAgent};
use ia_conform::{check_flow_faults, check_flow_soundness, fault_schedule, sample, OpSet, Program};
use ia_interpose::{wrap_process, InterposedRouter};
use ia_kernel::{run, KernelBuilder, RunLimits, RunOutcome};

const MAX_STEPS: u64 = 2_000_000;

/// Runs `program` under observer (bottom) + footprint sandbox (top),
/// returning the observer's `(batches, calls)` counters.
fn run_stacked(program: &Program, fast_path: bool) -> (u64, u64) {
    let image = program.compile();
    let mut k = KernelBuilder::new().fast_path(fast_path).build();
    Program::setup(&mut k);
    let pid = k.spawn_image(&image, &[b"conform"], b"conform");
    let mut router = InterposedRouter::new();
    let observer = PassThrough::boxed();
    let probe = observer.probe();
    let (sandbox, handle, _fp) = SandboxAgent::from_footprint(&image);
    wrap_process(&mut k, &mut router, pid, observer, &[]);
    wrap_process(&mut k, &mut router, pid, sandbox, &[]);
    let outcome = run(
        &mut k,
        &mut router,
        RunLimits {
            max_steps: MAX_STEPS,
        },
    );
    assert_eq!(outcome, RunOutcome::AllExited, "fast_path={fast_path}");
    assert!(
        handle.violations().is_empty(),
        "footprint sandbox EPERM'd its own program (fast_path={fast_path}): {:?}",
        handle.violations()
    );
    probe.counters()
}

#[test]
fn footprint_sandbox_does_not_suppress_batching() {
    // A console/file/compute program: everything it does is inside its own
    // footprint, so the narrowed sandbox stays entirely off the dispatch
    // path of the common calls and the observer gets them vectored.
    let program = sample(11, 14, OpSet::FS_CLIENT);
    for fast_path in [true, false] {
        let (batches, calls) = run_stacked(&program, fast_path);
        assert!(calls > 0, "observer saw no calls (fast_path={fast_path})");
        assert!(
            batches > 0,
            "footprint sandbox suppressed every vectored upcall \
             (fast_path={fast_path}, {calls} calls observed)"
        );
    }
}

#[test]
fn stacking_order_and_seeds_keep_counters_consistent() {
    // Across a spread of generated programs the observer must count at
    // least as many calls as batches, under both trap paths.
    for seed in [3, 9, 21] {
        let program = sample(seed, 10, OpSet::FS_CLIENT);
        for fast_path in [true, false] {
            let (batches, calls) = run_stacked(&program, fast_path);
            assert!(
                calls >= batches,
                "seed {seed}: {batches} batches but only {calls} calls"
            );
        }
    }
}

#[test]
fn flow_soundness_holds_across_seeds_and_faults() {
    for seed in 100..116 {
        let program = sample(seed, 12, OpSet::ALL);
        check_flow_soundness(&program).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
    // And under injected faults for a couple of seeds with real schedules.
    for seed in [100, 107] {
        let program = sample(seed, 12, OpSet::FS_CLIENT);
        for case in fault_schedule(&program).into_iter().take(6) {
            check_flow_faults(&program, &case)
                .unwrap_or_else(|e| panic!("seed {seed}, {case}: {e}"));
        }
    }
}
